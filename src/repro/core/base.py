"""Scheduler interface shared by the LCF family and all baselines.

A scheduler is a *stateful* object: the round-robin pointers, priority
chains, and random generators that implement fairness all persist across
scheduling cycles, exactly as the registers of the hardware
implementation do (Section 4.2). ``schedule`` consumes a request matrix
and returns a conflict-free schedule; ``reset`` restores the
power-on state.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.matching.verify import is_valid_schedule
from repro.types import RequestMatrix, Schedule, as_request_matrix


class Scheduler(abc.ABC):
    """Base class for crossbar schedulers over an ``n x n`` request matrix."""

    #: Registry name, e.g. ``"lcf_central"``; set by subclasses.
    name: str = "scheduler"

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"switch must have at least 1 port, got n={n}")
        self.n = n

    @abc.abstractmethod
    def _schedule(self, requests: RequestMatrix) -> Schedule:
        """Compute one scheduling cycle. ``requests`` may be mutated."""

    def schedule(self, requests: RequestMatrix) -> Schedule:
        """Compute a conflict-free schedule for one time slot.

        The input matrix is copied, so callers may reuse their buffer.
        Scheduler state (round-robin positions, RNG) advances by exactly
        one scheduling cycle.
        """
        matrix = as_request_matrix(requests)
        if matrix.shape[0] != self.n:
            raise ValueError(
                f"{self.name} is configured for n={self.n}, got a "
                f"{matrix.shape[0]}-port request matrix"
            )
        return self._schedule(matrix.copy())

    def reset(self) -> None:
        """Restore the power-on state. Subclasses with state must override."""

    def schedule_checked(self, requests: RequestMatrix) -> Schedule:
        """Like :meth:`schedule` but asserts validity — used in tests/debug."""
        matrix = as_request_matrix(requests)
        schedule = self.schedule(matrix)
        if not is_valid_schedule(matrix, schedule):
            raise AssertionError(
                f"{self.name} produced an invalid schedule {schedule.tolist()} "
                f"for requests\n{matrix.astype(int)}"
            )
        return schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


class IterativeScheduler(Scheduler):
    """Base class for iterative (PIM-style) schedulers.

    The paper simulates all iterative schedulers (``pim``, ``lcf_dist``,
    ``lcf_dist_rr``) with **4 iterations** (Section 6.3); this is the
    package-wide default.
    """

    DEFAULT_ITERATIONS = 4

    def __init__(self, n: int, iterations: int = DEFAULT_ITERATIONS):
        super().__init__(n)
        if iterations < 1:
            raise ValueError(f"need at least one iteration, got {iterations}")
        self.iterations = iterations

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, iterations={self.iterations})"


_INT64_MAX = np.iinfo(np.int64).max
# This helper runs ~n times per scheduling cycle across every scheduler
# in the package (profiling: the hottest function in a Figure 12 sweep),
# so the per-size index vector is cached instead of rebuilt per call.
_ARANGE_CACHE: dict[int, np.ndarray] = {}


def _arange(n: int) -> np.ndarray:
    indices = _ARANGE_CACHE.get(n)
    if indices is None:
        indices = np.arange(n)
        _ARANGE_CACHE[n] = indices
    return indices


def rotating_argmin(
    keys: np.ndarray, candidates: np.ndarray, start: int
) -> int:
    """Index of the minimum of ``keys`` over ``candidates``, breaking ties by
    the rotating chain that starts at ``start``.

    This is the paper's tie-break rule: "If there are several initiators
    with the highest priority, a rotating priority chain starting at the
    round-robin position determines the request to be granted"
    (Section 3). ``candidates`` is a boolean mask; at least one entry
    must be set.
    """
    n = len(keys)
    chain_pos = (_arange(n) - start) % n
    # keys <= n and chain_pos < n, so this composite key orders by key
    # first and chain position second with no overflow ambiguity.
    composite = np.where(candidates, keys * n + chain_pos, _INT64_MAX)
    winner = int(np.argmin(composite))
    if not candidates[winner]:
        raise ValueError("rotating_argmin called with no candidates")
    return winner
