"""The distributed Least Choice First scheduler (paper Section 5).

An iterative request/grant/accept protocol in the style of PIM
(Anderson et al.), but with the random selections replaced by
least-choice priorities:

* **Request** — every unmatched initiator sends a request to every
  unmatched target it has a packet for, *accompanied by the number of
  requests it is sending* (``nrq``).
* **Grant** — every unmatched target that received requests grants the
  one with the lowest ``nrq``; ties are broken round-robin. The grant is
  *accompanied by the number of requests the target received* (``ngt``).
* **Accept** — every unmatched initiator that received grants accepts
  the one with the lowest ``ngt``; ties are broken round-robin.

"During an iteration, only unmatched initiators and targets are
considered" — so both priority counts are over the *remaining* bipartite
subgraph, which is what makes this the distributed analogue of the
central scheduler's recomputed NRQ column.

The paper does not pin down the round-robin selection inside grant and
accept; we use per-port pointers that advance past the matched partner
when a match commits (the same discipline iSLIP uses), which keeps ties
rotating without global state. The ``lcf_dist_rr`` variant adds the
Section 5 fairness overlay: one request-matrix element per scheduling
cycle is the round-robin position and is matched before the iterations
begin, visiting every position once per ``n^2`` cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.base import IterativeScheduler, rotating_argmin
from repro.types import NO_GRANT, RequestMatrix, Schedule, empty_schedule


@dataclass
class IterationTrace:
    """Record of one request/grant/accept iteration (for the Figure 9
    worked example and the example scripts)."""

    requests: np.ndarray
    nrq: np.ndarray
    grants: np.ndarray
    ngt: np.ndarray
    accepts: list[tuple[int, int]] = field(default_factory=list)


class LCFDistributed(IterativeScheduler):
    """Distributed LCF (``lcf_dist`` in Figure 12). Default 4 iterations,
    matching the Section 6.3 simulation setup."""

    name = "lcf_dist"

    def __init__(self, n: int, iterations: int = IterativeScheduler.DEFAULT_ITERATIONS):
        super().__init__(n, iterations)
        self._grant_ptr = np.zeros(n, dtype=np.int64)  # per output
        self._accept_ptr = np.zeros(n, dtype=np.int64)  # per input
        #: When True, :attr:`last_trace` records every iteration.
        self.record_trace = False
        self.last_trace: list[IterationTrace] = []

    def reset(self) -> None:
        self._grant_ptr[:] = 0
        self._accept_ptr[:] = 0
        self.last_trace = []

    @property
    def pointers(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the (grant, accept) pointer arrays, for inspection."""
        return (
            np.array(self._grant_ptr, dtype=np.int64),
            np.array(self._accept_ptr, dtype=np.int64),
        )

    def _pre_iterations(
        self, requests: RequestMatrix, schedule: Schedule, out_matched: np.ndarray
    ) -> None:
        """Hook for the round-robin overlay (no-op in the pure scheduler)."""

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        schedule = empty_schedule(self.n)
        out_matched = np.zeros(self.n, dtype=bool)
        if self.record_trace:
            self.last_trace = []
        self._pre_iterations(requests, schedule, out_matched)
        for _ in range(self.iterations):
            if not self._iterate(requests, schedule, out_matched):
                break  # converged: no new matches are possible
        return schedule

    def _iterate(
        self, requests: RequestMatrix, schedule: Schedule, out_matched: np.ndarray
    ) -> bool:
        n = self.n
        in_unmatched = schedule == NO_GRANT

        # Request step: unmatched initiators -> unmatched targets.
        live = requests & in_unmatched[:, np.newaxis] & ~out_matched[np.newaxis, :]
        nrq = live.sum(axis=1)  # choices of each initiator, sent with requests
        ngt = live.sum(axis=0)  # requests received by each target, sent with grants

        # Grant step: each target grants its least-choice requester.
        grants = np.zeros((n, n), dtype=bool)
        for j in np.flatnonzero(ngt):
            winner = rotating_argmin(nrq, live[:, j], int(self._grant_ptr[j]))
            grants[winner, j] = True

        # Accept step: each initiator accepts the grant from the target
        # with the fewest received requests.
        trace = (
            IterationTrace(live.copy(), nrq.copy(), grants.copy(), ngt.copy())
            if self.record_trace
            else None
        )
        made_match = False
        for i in range(n):
            offered = grants[i]
            if not offered.any():
                continue
            j = rotating_argmin(ngt, offered, int(self._accept_ptr[i]))
            schedule[i] = j
            out_matched[j] = True
            made_match = True
            self._grant_ptr[j] = (i + 1) % n
            self._accept_ptr[i] = (j + 1) % n
            if trace is not None:
                trace.accepts.append((i, j))
        if trace is not None:
            self.last_trace.append(trace)
        return made_match


class LCFDistributedRR(LCFDistributed):
    """Distributed LCF with the round-robin overlay (``lcf_dist_rr``).

    "For every scheduling cycle, one element of the request matrix ... is
    the round-robin position that is given the highest priority in that
    it is scheduled before regular LCF scheduling takes place"
    (Section 5). The position walks the matrix column-major-by-row the
    same way the central diagonal start does: ``i := (i+1) mod n; if
    i = 0 then j := (j+1) mod n``.
    """

    name = "lcf_dist_rr"

    def __init__(self, n: int, iterations: int = IterativeScheduler.DEFAULT_ITERATIONS):
        super().__init__(n, iterations)
        self._rr_i = 0
        self._rr_j = 0

    @property
    def rr_position(self) -> tuple[int, int]:
        """The request-matrix element currently holding top priority."""
        return self._rr_i, self._rr_j

    def set_rr_position(self, i: int, j: int) -> None:
        """Force the round-robin position (paper-example replays)."""
        self._rr_i = i % self.n
        self._rr_j = j % self.n

    def reset(self) -> None:
        super().reset()
        self._rr_i = 0
        self._rr_j = 0

    def _pre_iterations(
        self, requests: RequestMatrix, schedule: Schedule, out_matched: np.ndarray
    ) -> None:
        if requests[self._rr_i, self._rr_j]:
            schedule[self._rr_i] = self._rr_j
            out_matched[self._rr_j] = True

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        schedule = super()._schedule(requests)
        self._rr_i = (self._rr_i + 1) % self.n
        if self._rr_i == 0:
            self._rr_j = (self._rr_j + 1) % self.n
        return schedule
