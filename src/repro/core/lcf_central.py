"""The central Least Choice First scheduler (paper Sections 3 and 4).

The scheduler allocates the ``n`` output ports sequentially. For each
output it grants the requesting input with the *fewest outstanding
requests* — the input with the least choice — so that inputs with many
choices remain available for the outputs scheduled later, maximising the
matching size. Ties are broken by a rotating priority chain, and a
rotating round-robin diagonal can pre-empt the LCF rule to provide the
hard ``b/n^2`` fairness bound (Figure 2 pseudocode).

The implementation below mirrors the Figure 2 pseudocode with the inner
per-output search vectorised; the semantics are identical:

* the output scheduled at step ``res`` is ``(J + res) mod n``;
* its round-robin position is input ``(I + res) mod n`` (the diagonal);
* ``nrq`` counts, for every input, the requests for outputs *not yet
  scheduled this cycle*, and is re-derived after every grant;
* after the cycle, ``I := (I+1) mod n`` and, when ``I`` wraps,
  ``J := (J+1) mod n``, so every matrix position is the round-robin
  position exactly once every ``n^2`` cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.base import Scheduler, rotating_argmin
from repro.types import NO_GRANT, RequestMatrix, Schedule, empty_schedule


@dataclass
class StepTrace:
    """Record of one per-output allocation step (a Figure 3 panel).

    ``nrq_before`` is the NRQ column as it stood when the output was
    scheduled — the paper's panels show exactly this recalculated
    priority state.
    """

    output: int
    rr_row: int
    nrq_before: np.ndarray
    granted: int  # input index or NO_GRANT
    rr_won: bool


class RRCoverage(enum.Enum):
    """How much of the request matrix the round-robin overlay covers per cycle.

    Section 3: "Variations of the round-robin scheduler are possible in
    that a single position, a row or column are covered every scheduling
    cycle"; the guaranteed bandwidth fraction ranges from 0 (pure LCF)
    through ``b/n^2`` (single position or diagonal) up to ``b/n`` (the
    whole diagonal granted before LCF runs).
    """

    #: Pure LCF — no unconditional round-robin grant; the rotating chain
    #: still breaks priority ties.
    NONE = "none"
    #: One position ``(I, J)`` wins unconditionally per cycle.
    SINGLE = "single"
    #: Figure 2 diagonal: position ``((I+res) mod n, (J+res) mod n)`` wins
    #: unconditionally when output ``(J+res) mod n`` is scheduled.
    DIAGONAL = "diagonal"
    #: The whole diagonal is granted *before* LCF scheduling starts.
    DIAGONAL_FIRST = "diagonal_first"


class LCFCentralVariant(Scheduler):
    """Central LCF scheduler parameterised by round-robin coverage.

    :class:`LCFCentral` and :class:`LCFCentralRR` are the two paper
    configurations; ``SINGLE`` and ``DIAGONAL_FIRST`` realise the rest of
    the Section 3 fairness/throughput range.
    """

    def __init__(self, n: int, coverage: RRCoverage = RRCoverage.DIAGONAL):
        super().__init__(n)
        self.coverage = coverage
        #: Round-robin requester offset (paper variable ``I``).
        self._i = 0
        #: Round-robin resource offset (paper variable ``J``).
        self._j = 0
        #: When True, :attr:`last_trace` records each allocation step.
        self.record_trace = False
        self.last_trace: list[StepTrace] = []

    # -- state ---------------------------------------------------------

    @property
    def rr_offsets(self) -> tuple[int, int]:
        """Current ``(I, J)`` round-robin offsets (diagonal start position)."""
        return self._i, self._j

    def set_rr_offsets(self, i: int, j: int) -> None:
        """Force the round-robin offsets — used to replay paper examples
        and to synchronise the RTL hardware model."""
        self._i = i % self.n
        self._j = j % self.n

    def reset(self) -> None:
        self._i = 0
        self._j = 0

    def _advance(self) -> None:
        """End-of-cycle rotation: ``I := (I+1) mod n; if I = 0 then
        J := (J+1) mod n`` (Figure 2, last line)."""
        self._i = (self._i + 1) % self.n
        if self._i == 0:
            self._j = (self._j + 1) % self.n

    # -- scheduling ----------------------------------------------------

    def _rr_wins(self, res: int) -> bool:
        """Whether the round-robin position pre-empts LCF at step ``res``."""
        if self.coverage is RRCoverage.DIAGONAL:
            return True
        if self.coverage is RRCoverage.SINGLE:
            return res == 0
        return False  # NONE and DIAGONAL_FIRST (handled before the loop)

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        n = self.n
        schedule = empty_schedule(n)
        col_free = np.ones(n, dtype=bool)
        if self.record_trace:
            self.last_trace = []

        if self.coverage is RRCoverage.DIAGONAL_FIRST:
            # Pre-grant every diagonal position with a request. Diagonal
            # rows/columns are pairwise distinct, so this is conflict free.
            for res in range(n):
                row = (self._i + res) % n
                col = (self._j + res) % n
                if requests[row, col]:
                    schedule[row] = col
                    col_free[col] = False
                    requests[row, :] = False

        # Requests for already-taken columns can never be granted, so they
        # do not count towards an input's number of choices.
        nrq = (requests & col_free[np.newaxis, :]).sum(axis=1)

        for res in range(n):
            col = (self._j + res) % n
            if not col_free[col]:
                continue
            rr_row = (self._i + res) % n

            grant = NO_GRANT
            rr_won = False
            if self._rr_wins(res) and requests[rr_row, col]:
                grant = rr_row  # round-robin position wins
                rr_won = True
            else:
                candidates = requests[:, col]
                if candidates.any():
                    grant = rotating_argmin(nrq, candidates, rr_row)

            if self.record_trace:
                self.last_trace.append(
                    StepTrace(col, rr_row, nrq.copy(), int(grant), rr_won)
                )
            if grant != NO_GRANT:
                schedule[grant] = col
                col_free[col] = False
                # Outstanding requests for this column can no longer be
                # granted this cycle (Figure 2: nrq[req] := nrq[req]-1).
                nrq -= requests[:, col]
                requests[grant, :] = False
                nrq[grant] = 0

        self._advance()
        return schedule

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n}, coverage={self.coverage.value})"


class LCFCentral(LCFCentralVariant):
    """Pure central LCF (``lcf_central`` in Figure 12).

    No unconditional round-robin grant; the rotating chain starting at
    the diagonal position still breaks ties, and the target scheduling
    sequence still rotates so no output is structurally favoured.
    Offers no starvation protection — maximum throughput end of the
    Section 3 trade-off.
    """

    name = "lcf_central"

    def __init__(self, n: int):
        super().__init__(n, coverage=RRCoverage.NONE)


class LCFCentralRR(LCFCentralVariant):
    """Central LCF with the round-robin diagonal — the exact Figure 2
    pseudocode (``lcf_central_rr`` in Figure 12).

    Guarantees every (input, output) pair the round-robin position once
    every ``n^2`` cycles and with it a hard bandwidth floor of
    ``b/n^2`` (Section 3).
    """

    name = "lcf_central_rr"

    def __init__(self, n: int):
        super().__init__(n, coverage=RRCoverage.DIAGONAL)
