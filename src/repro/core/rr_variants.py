"""Round-robin coverage variants of the central LCF scheduler.

Section 3 of the paper describes a *family* of fairness/throughput
trade-offs: "Variations of the round-robin scheduler are possible in
that a single position, a row or column are covered every scheduling
cycle... The lower bound of this range is given by a pure LCF scheduler
and the upper bound is given by a scheduler that uses a diagonal of
round-robin positions all of which are scheduled before any other
position is considered."

The guaranteed per-(input, output)-pair bandwidth fraction spans:

===================  ==============================================
coverage             guaranteed fraction of port bandwidth ``b``
===================  ==============================================
``NONE``             0                (pure LCF, max throughput)
``SINGLE``           b/n^2, one position visited every n^2 cycles
``DIAGONAL``         b/n^2            (Figure 2 — the paper default)
``DIAGONAL_FIRST``   b/n              (whole diagonal pre-granted)
===================  ==============================================

The algorithm lives in :mod:`repro.core.lcf_central`; this module adds
the quantitative fairness bounds used by the ablation benchmark
(``benchmarks/bench_ablation_rr.py``).
"""

from __future__ import annotations

from repro.core.lcf_central import LCFCentralVariant, RRCoverage


def guaranteed_fraction(coverage: RRCoverage, n: int) -> float:
    """Hard lower bound on the fraction of output bandwidth each
    (input, output) pair receives under saturation (Section 3)."""
    if coverage is RRCoverage.NONE:
        return 0.0
    if coverage in (RRCoverage.SINGLE, RRCoverage.DIAGONAL):
        return 1.0 / (n * n)
    if coverage is RRCoverage.DIAGONAL_FIRST:
        return 1.0 / n
    raise ValueError(f"unknown coverage {coverage!r}")


def make_variant(n: int, coverage: RRCoverage) -> LCFCentralVariant:
    """Construct a central LCF scheduler with the given RR coverage."""
    scheduler = LCFCentralVariant(n, coverage=coverage)
    scheduler.name = f"lcf_central[{coverage.value}]"
    return scheduler


__all__ = ["RRCoverage", "LCFCentralVariant", "guaranteed_fraction", "make_variant"]
