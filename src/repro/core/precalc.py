"""The precalculated schedule (paper Section 4.3).

Clint lets initiators pre-schedule connections — intended for real-time
traffic and for multicast, where one initiator drives several targets in
the same slot. The precalculated schedule arrives in the configuration
packet (the ``pre`` field); the LCF scheduler then runs in two stages:

1. **Integrity check** — the precalculated schedule is assumed conflict
   free, but the scheduler verifies it: "The integrity is violated if
   there are multiple requests for a target. In such a case, one request
   is accepted and the remaining ones are dropped." (Which one survives
   is not specified; we keep the lowest-numbered initiator and document
   that choice.)
2. **Regular LCF scheduling** over the initiators and targets not
   consumed by stage 1.

Because multicast connects one input to *several* outputs, the combined
result is expressed output-side (``T[j] = input or NO_GRANT``) rather
than as an input-side matching.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Scheduler
from repro.core.lcf_central import LCFCentralRR
from repro.types import NO_GRANT, OutputSchedule, RequestMatrix, Schedule


@dataclass
class PrecalcResult:
    """Outcome of one two-stage scheduling cycle."""

    #: Combined connection table: ``output_schedule[j]`` is the input
    #: driving output ``j`` (multicast inputs appear multiple times).
    output_schedule: OutputSchedule
    #: Precalculated pairs that passed the integrity check.
    accepted_precalc: np.ndarray
    #: Precalculated pairs dropped by the integrity check.
    dropped_precalc: list[tuple[int, int]]
    #: Stage-2 (regular LCF) grants, input side.
    lcf_schedule: Schedule

    @property
    def integrity_ok(self) -> bool:
        """True iff the precalculated schedule was conflict free as submitted."""
        return not self.dropped_precalc

    def connections(self) -> list[tuple[int, int]]:
        """All (input, output) connections established this slot."""
        return [
            (int(i), int(j))
            for j, i in enumerate(self.output_schedule)
            if i != NO_GRANT
        ]


def check_precalc_integrity(
    precalc: np.ndarray,
) -> tuple[np.ndarray, list[tuple[int, int]]]:
    """Stage-1 integrity check of a precalculated schedule.

    ``precalc[i, j]`` means initiator ``i`` pre-scheduled a connection to
    target ``j``. Returns ``(accepted, dropped)`` where ``accepted`` is a
    boolean matrix with at most one initiator per target and ``dropped``
    lists the conflicting pairs that were discarded (lowest initiator
    index wins each contested target).
    """
    precalc = np.asarray(precalc, dtype=bool)
    if precalc.ndim != 2 or precalc.shape[0] != precalc.shape[1]:
        raise ValueError(f"precalc schedule must be square, got {precalc.shape}")
    accepted = precalc.copy()
    dropped: list[tuple[int, int]] = []
    for j in range(precalc.shape[1]):
        contenders = np.flatnonzero(precalc[:, j])
        for loser in contenders[1:]:
            accepted[loser, j] = False
            dropped.append((int(loser), int(j)))
    return accepted, dropped


class PrecalcScheduler:
    """Two-stage scheduler: precalculated connections, then regular LCF.

    Wraps any :class:`~repro.core.base.Scheduler` (default: the Figure 2
    :class:`~repro.core.lcf_central.LCFCentralRR`, as in the Clint
    hardware) and runs it over the residual request matrix. Inputs that
    hold an accepted precalculated connection transmit their
    pre-scheduled (possibly multicast) packet and are excluded from
    stage 2; targets taken in stage 1 are likewise excluded. As the
    paper notes, the precalculated schedule "can cause conflicts with the
    round-robin positions and, thus, impact fairness" — the RR diagonal
    keeps rotating regardless, but a masked position simply loses its
    turn.
    """

    def __init__(self, n: int, scheduler: Scheduler | None = None):
        self.n = n
        self.scheduler = scheduler if scheduler is not None else LCFCentralRR(n)
        if self.scheduler.n != n:
            raise ValueError(
                f"wrapped scheduler is for n={self.scheduler.n}, expected {n}"
            )

    def reset(self) -> None:
        self.scheduler.reset()

    def schedule(
        self, requests: RequestMatrix, precalc: np.ndarray | None = None
    ) -> PrecalcResult:
        """Run one two-stage scheduling cycle."""
        requests = np.asarray(requests, dtype=bool)
        if precalc is None:
            precalc = np.zeros((self.n, self.n), dtype=bool)
        accepted, dropped = check_precalc_integrity(precalc)

        busy_inputs = accepted.any(axis=1)
        busy_outputs = accepted.any(axis=0)
        residual = (
            requests
            & ~busy_inputs[:, np.newaxis]
            & ~busy_outputs[np.newaxis, :]
        )
        lcf_schedule = self.scheduler.schedule(residual)

        output_schedule = np.full(self.n, NO_GRANT, dtype=np.int64)
        for j in range(self.n):
            owners = np.flatnonzero(accepted[:, j])
            if owners.size:
                output_schedule[j] = owners[0]
        for i, j in enumerate(lcf_schedule):
            if j != NO_GRANT:
                output_schedule[j] = i
        return PrecalcResult(output_schedule, accepted, dropped, lcf_schedule)
