"""The paper's primary contribution: the Least Choice First schedulers.

* :class:`~repro.core.lcf_central.LCFCentral` — pure central LCF
  (``lcf_central`` in Figure 12): outputs scheduled sequentially, the
  input with the fewest outstanding requests wins, ties broken by a
  rotating priority chain.
* :class:`~repro.core.lcf_central.LCFCentralRR` — Figure 2 pseudocode
  (``lcf_central_rr``): adds the rotating round-robin diagonal whose
  positions win unconditionally, giving the hard ``b/n^2`` bandwidth
  lower bound of Section 3.
* :class:`~repro.core.lcf_dist.LCFDistributed` /
  :class:`~repro.core.lcf_dist.LCFDistributedRR` — the Section 5
  iterative request/grant/accept schedulers (``lcf_dist`` /
  ``lcf_dist_rr``).
* :mod:`repro.core.precalc` — the Section 4.3 precalculated-schedule
  stage for multicast and real-time traffic.
* :mod:`repro.core.rr_variants` — the Section 3 family of round-robin
  coverage variants spanning the fairness range ``0 .. b/n``.
"""

from repro.core.base import IterativeScheduler, Scheduler
from repro.core.lcf_central import LCFCentral, LCFCentralRR
from repro.core.lcf_dist import LCFDistributed, LCFDistributedRR
from repro.core.lcf_dist_agents import LCFDistributedAgents
from repro.core.multicast import MulticastCell, MulticastQueue, MulticastScheduler
from repro.core.precalc import PrecalcResult, PrecalcScheduler, check_precalc_integrity
from repro.core.rr_variants import RRCoverage, LCFCentralVariant

__all__ = [
    "Scheduler",
    "IterativeScheduler",
    "LCFCentral",
    "LCFCentralRR",
    "LCFDistributed",
    "LCFDistributedRR",
    "LCFDistributedAgents",
    "MulticastCell",
    "MulticastQueue",
    "MulticastScheduler",
    "PrecalcScheduler",
    "PrecalcResult",
    "check_precalc_integrity",
    "RRCoverage",
    "LCFCentralVariant",
]
