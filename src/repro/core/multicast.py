"""Multicast crossbar scheduling — the least-choice rule generalised.

The paper supports multicast through the precalculated schedule
(Section 4.3) and cites Prabhakar, McKeown & Ahuja's multicast
scheduling work as reference [11]. This module builds the in-scheduler
counterpart: inputs hold queues of multicast *cells*, each with a
fanout set of destination outputs; the crossbar can copy one input to
many outputs in a slot (the same capability the precalculated schedule
exploits), and a scheduler decides which input each output listens to.

With **fanout splitting**, a cell may be delivered to a subset of its
fanout and stay queued with the *residue*. The scheduling discipline
here is the LCF idea transplanted: every output grants the contending
input whose head cell has the **fewest residual destinations** — the
least choice left. Small residues finish and free their inputs, which
is also how residue-concentration arguments (reference [11]) motivate
focusing service. A seeded random policy is included as the baseline.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.types import NO_GRANT


@dataclass
class MulticastCell:
    """A fixed-size cell destined for a set of outputs."""

    src: int
    fanout: set[int]
    t_generated: int
    #: Outputs already served (fanout splitting).
    delivered: set[int] = field(default_factory=set)

    @property
    def residue(self) -> set[int]:
        """Destinations still waiting for their copy."""
        return self.fanout - self.delivered

    @property
    def complete(self) -> bool:
        return not self.residue


class MulticastQueue:
    """Per-input FIFO of multicast cells; only the head is schedulable
    (the standard single-queue multicast model of reference [11])."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._cells: deque[MulticastCell] = deque()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._cells)

    def push(self, cell: MulticastCell) -> bool:
        if len(self._cells) >= self.capacity:
            self.dropped += 1
            return False
        self._cells.append(cell)
        return True

    def head(self) -> MulticastCell | None:
        return self._cells[0] if self._cells else None

    def pop_if_complete(self) -> MulticastCell | None:
        """Retire the head once its whole fanout is served."""
        if self._cells and self._cells[0].complete:
            return self._cells.popleft()
        return None


class MulticastScheduler:
    """Least-residue-first multicast scheduling with fanout splitting.

    Each slot, every output with contenders grants the input whose head
    cell has the smallest residue; ties rotate. ``policy="random"``
    replaces the residue rule with a uniform choice (the baseline).
    """

    def __init__(self, n: int, policy: str = "lcf", seed: int = 0):
        if policy not in ("lcf", "random"):
            raise ValueError(f"unknown policy {policy!r}")
        self.n = n
        self.policy = policy
        self._rng = np.random.default_rng(seed)
        self._offset = 0

    def reset(self) -> None:
        self._rng = np.random.default_rng(0)
        self._offset = 0

    def schedule(self, heads: list[MulticastCell | None]) -> np.ndarray:
        """Pick, for every output, the input it copies from this slot.

        ``heads[i]`` is input ``i``'s head cell (or None). Returns the
        output-side assignment ``T[j] = input or NO_GRANT``. One input
        may serve many outputs — that is the multicast capability of the
        fabric.
        """
        if len(heads) != self.n:
            raise ValueError(f"need {self.n} head entries, got {len(heads)}")
        assignment = np.full(self.n, NO_GRANT, dtype=np.int64)
        for j in range(self.n):
            contenders = [
                i
                for i, cell in enumerate(heads)
                if cell is not None and j in cell.residue
            ]
            if not contenders:
                continue
            if self.policy == "random":
                winner = int(self._rng.choice(contenders))
            else:
                # Least residue first; ties via the rotating chain.
                winner = min(
                    contenders,
                    key=lambda i: (
                        len(heads[i].residue),
                        (i - self._offset) % self.n,
                    ),
                )
            assignment[j] = winner
        self._offset = (self._offset + 1) % self.n
        return assignment
