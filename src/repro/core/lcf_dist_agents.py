"""Message-passing implementation of the distributed LCF scheduler.

:class:`~repro.core.lcf_dist.LCFDistributed` computes the Section 5
protocol on matrices — convenient, but it hides the distribution. This
module plays the protocol out the way Figure 8(b) draws it: one agent
per input port and one per output port, no shared state, explicit
:class:`RequestMsg` / :class:`GrantMsg` / :class:`AcceptMsg` objects
with the exact field widths of Figure 10b (``req(1)+nrq(log2 n)``,
``gnt(1)+ngt(log2 n)``, ``acc(1)``).

Observability assumption (documented because the paper leaves it
implicit): accepts are visible to all agents — the natural behaviour on
the bus-based interconnect the paper suggests for saving bandwidth
("if busses are used instead of point-to-point connections...").
Input agents use that to stop requesting already-matched targets, which
is what makes the per-iteration ``nrq`` counts equal to the matrix
implementation's "only unmatched initiators and targets are
considered".

The property test (``tests/core/test_lcf_dist_agents.py``) shows the
agent system computes *bit-identical matchings* to
:class:`LCFDistributed`, cycle after cycle, and that its measured wire
traffic never exceeds the Section 6.2 budget
``i * n^2 * (2 log2 n + 3)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.base import IterativeScheduler, rotating_argmin
from repro.types import NO_GRANT, RequestMatrix, Schedule, empty_schedule


def _log2_ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(n))) if n > 1 else 1


@dataclass(frozen=True)
class RequestMsg:
    """Input -> output: "I want you", carrying the sender's choice count."""

    src: int  # input port
    dst: int  # output port
    nrq: int  # requests the sender is sending this iteration

    def bits(self, n: int) -> int:
        return 1 + _log2_ceil(n)  # req(1) + nrq(log2 n)


@dataclass(frozen=True)
class GrantMsg:
    """Output -> input: "you may send", carrying the receiver's demand."""

    src: int  # output port
    dst: int  # input port
    ngt: int  # requests the output received this iteration

    def bits(self, n: int) -> int:
        return 1 + _log2_ceil(n)  # gnt(1) + ngt(log2 n)


@dataclass(frozen=True)
class AcceptMsg:
    """Input -> output (observed by everyone on the bus): match committed."""

    src: int  # input port
    dst: int  # output port

    def bits(self, n: int) -> int:
        return 1  # acc(1)


@dataclass
class MessageLog:
    """Wire-traffic accounting for one scheduling cycle."""

    requests: int = 0
    grants: int = 0
    accepts: int = 0
    total_bits: int = 0

    @property
    def total_messages(self) -> int:
        return self.requests + self.grants + self.accepts


class _InputAgent:
    """Initiator-side logic: local request row, accept pointer."""

    def __init__(self, index: int, n: int):
        self.index = index
        self.n = n
        self.accept_ptr = 0
        self.row = np.zeros(n, dtype=bool)
        self.matched = NO_GRANT

    def start_cycle(self, row: np.ndarray) -> None:
        self.row = row.copy()
        self.matched = NO_GRANT

    def make_requests(self, taken_outputs: np.ndarray) -> list[RequestMsg]:
        """Request step: one message per still-interesting target,
        all carrying this iteration's choice count."""
        if self.matched != NO_GRANT:
            return []
        targets = np.flatnonzero(self.row & ~taken_outputs)
        return [RequestMsg(self.index, int(j), len(targets)) for j in targets]

    def choose_accept(self, grants: list[GrantMsg]) -> AcceptMsg | None:
        """Accept step: lowest ngt wins, ties rotate from the pointer."""
        if self.matched != NO_GRANT or not grants:
            return None
        keys = np.zeros(self.n, dtype=np.int64)
        offered = np.zeros(self.n, dtype=bool)
        for grant in grants:
            offered[grant.src] = True
            keys[grant.src] = grant.ngt
        winner = rotating_argmin(keys, offered, self.accept_ptr)
        return AcceptMsg(self.index, winner)

    def observe_accept(self, accept: AcceptMsg) -> None:
        if accept.src == self.index:
            self.matched = accept.dst
            self.accept_ptr = (accept.dst + 1) % self.n


class _OutputAgent:
    """Target-side logic: grant pointer, matched flag."""

    def __init__(self, index: int, n: int):
        self.index = index
        self.n = n
        self.grant_ptr = 0
        self.matched = NO_GRANT

    def start_cycle(self) -> None:
        self.matched = NO_GRANT

    def choose_grant(self, requests: list[RequestMsg]) -> GrantMsg | None:
        """Grant step: lowest nrq wins, ties rotate from the pointer.
        The grant carries ngt = how many requests arrived."""
        if self.matched != NO_GRANT or not requests:
            return None
        keys = np.zeros(self.n, dtype=np.int64)
        requested = np.zeros(self.n, dtype=bool)
        for request in requests:
            requested[request.src] = True
            keys[request.src] = request.nrq
        winner = rotating_argmin(keys, requested, self.grant_ptr)
        return GrantMsg(self.index, winner, len(requests))

    def observe_accept(self, accept: AcceptMsg) -> None:
        if accept.dst == self.index:
            self.matched = accept.src
            self.grant_ptr = (accept.src + 1) % self.n


class LCFDistributedAgents(IterativeScheduler):
    """Distributed LCF as genuinely separate per-port agents.

    Drop-in equivalent to :class:`~repro.core.lcf_dist.LCFDistributed`
    (verified by property test); additionally exposes
    :attr:`last_message_log` with the Figure 10b wire accounting.
    """

    name = "lcf_dist_agents"

    def __init__(self, n: int, iterations: int = IterativeScheduler.DEFAULT_ITERATIONS):
        super().__init__(n, iterations)
        self.inputs = [_InputAgent(i, n) for i in range(n)]
        self.outputs = [_OutputAgent(j, n) for j in range(n)]
        self.last_message_log = MessageLog()

    def reset(self) -> None:
        self.inputs = [_InputAgent(i, self.n) for i in range(self.n)]
        self.outputs = [_OutputAgent(j, self.n) for j in range(self.n)]
        self.last_message_log = MessageLog()

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        n = self.n
        log = MessageLog()
        for i, agent in enumerate(self.inputs):
            agent.start_cycle(requests[i])
        for agent in self.outputs:
            agent.start_cycle()
        taken_outputs = np.zeros(n, dtype=bool)

        for _ in range(self.iterations):
            # Request step: each input broadcasts to its targets.
            inboxes: list[list[RequestMsg]] = [[] for _ in range(n)]
            for agent in self.inputs:
                for message in agent.make_requests(taken_outputs):
                    inboxes[message.dst].append(message)
                    log.requests += 1
                    log.total_bits += message.bits(n)
            if not any(inboxes):
                break

            # Grant step: each output answers its chosen requester.
            grant_boxes: list[list[GrantMsg]] = [[] for _ in range(n)]
            for agent in self.outputs:
                grant = agent.choose_grant(inboxes[agent.index])
                if grant is not None:
                    grant_boxes[grant.dst].append(grant)
                    log.grants += 1
                    log.total_bits += grant.bits(n)

            # Accept step: accepts commit matches and are observed by all.
            accepts: list[AcceptMsg] = []
            for agent in self.inputs:
                accept = agent.choose_accept(grant_boxes[agent.index])
                if accept is not None:
                    accepts.append(accept)
                    log.accepts += 1
                    log.total_bits += accept.bits(n)
            for accept in accepts:
                taken_outputs[accept.dst] = True
                for agent in self.inputs:
                    agent.observe_accept(accept)
                for agent in self.outputs:
                    agent.observe_accept(accept)

        self.last_message_log = log
        schedule = empty_schedule(n)
        for i, agent in enumerate(self.inputs):
            schedule[i] = agent.matched
        return schedule
