"""Generic component-state capture and restore.

The simulation's mutable state lives in plain attribute dicts:
scheduler pointers, VOQ deques, PCG64 generators, Welford accumulators,
P² quantile markers, health-estimator arrays. :func:`snapshot_state`
walks ``vars(obj)`` (extended to ``__slots__``-backed classes) and
encodes every value into tagged, deterministic
JSON; :func:`restore_state` decodes it back *onto a freshly constructed
twin* of the object — mutating nested objects in place, so references
held elsewhere (the switch's scheduler, an adapter's estimator) stay
valid.

Encoding rules (the ``__repro__`` tag says how to decode):

==============  =====================================================
value           encoding
==============  =====================================================
scalar          as-is (numpy scalars coerced to Python)
``ndarray``     ``{"__repro__": "ndarray", dtype, shape, data}``
``Generator``   ``{"__repro__": "rng", state}`` (``bit_generator.state``)
``deque``       ``{"__repro__": "deque", items}``
``tuple``       ``{"__repro__": "tuple", items}``
``set``         ``{"__repro__": "set", items}`` (sorted, deterministic)
``dict``        ``{"__repro__": "dict", items}`` (sorted key/value pairs)
``Enum``        ``{"__repro__": "enum", value}``
object          ``{"__repro__": "object", cls, state}`` (recursive)
skipped         ``{"__repro__": "skip"}``
==============  =====================================================

*Skipped* values are wiring, not state: tracers, metrics registries and
their instruments, fault injectors (pure functions of plan + seed,
rebuilt on resume), frozen config dataclasses, and callables. A skip
tag decodes to whatever the fresh twin already holds, so resume-side
wiring (a new tracer, a rebuilt injector) survives restoration.

Attribute names in :data:`SKIP_ATTRS` are never captured: they either
point at wiring (``tracer``/``metrics``/``injector``) or at per-slot
transients regenerated before anyone reads them (``last_trace``).

Determinism: attribute names, dict items, and set members are sorted,
so the same state always encodes to the same JSON — the property the
golden-format pin and checkpoint diffing rely on.
"""

from __future__ import annotations

import dataclasses
import enum
import json
from collections import deque

import numpy as np

from repro.checkpoint.format import CheckpointError
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = [
    "SKIP_ATTRS",
    "snapshot_state",
    "restore_state",
    "snapshot_metrics",
    "restore_metrics",
]

TAG = "__repro__"

#: Attribute names excluded from capture everywhere: instrumentation
#: wiring, rebuilt-on-resume components, and per-slot transients.
SKIP_ATTRS = frozenset(
    {"tracer", "metrics", "injector", "config", "policy", "last_trace"}
)

_SKIP = {TAG: "skip"}


def _is_wiring(value: object) -> bool:
    """True for values that are wiring, not serialisable run state."""
    if isinstance(value, (Tracer, MetricsRegistry, Counter, Gauge, Histogram)):
        return True
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        # Frozen dataclasses are configuration (SimConfig, AdaptConfig,
        # FaultPlan...): immutable, rebuilt from the run spec.
        if type(value).__dataclass_params__.frozen:
            return True
    # Fault injectors are pure functions of (plan, n, seed); import
    # lazily to keep this module's dependency footprint small.
    from repro.faults.injector import FaultInjector

    return isinstance(value, FaultInjector)


def encode_value(value: object):
    """Encode one value into tagged, JSON-serialisable form."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, np.ndarray):
        return {
            TAG: "ndarray",
            "dtype": str(value.dtype),
            "shape": list(value.shape),
            "data": value.tolist(),
        }
    if isinstance(value, np.random.Generator):
        return {TAG: "rng", "state": value.bit_generator.state}
    if isinstance(value, deque):
        return {TAG: "deque", "items": [encode_value(item) for item in value]}
    if isinstance(value, tuple):
        return {TAG: "tuple", "items": [encode_value(item) for item in value]}
    if isinstance(value, (set, frozenset)):
        items = [encode_value(item) for item in value]
        items.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return {TAG: "set", "items": items}
    if isinstance(value, list):
        return [encode_value(item) for item in value]
    if isinstance(value, dict):
        items = [[encode_value(k), encode_value(v)] for k, v in value.items()]
        items.sort(key=lambda pair: json.dumps(pair[0], sort_keys=True))
        return {TAG: "dict", "items": items}
    if isinstance(value, enum.Enum):
        return {TAG: "enum", "value": encode_value(value.value)}
    if _is_wiring(value) or callable(value):
        return dict(_SKIP)
    if hasattr(value, "__dict__") or _slot_names(type(value)):
        return {
            TAG: "object",
            "cls": type(value).__name__,
            "state": snapshot_state(value),
        }
    raise CheckpointError(
        f"cannot serialise a {type(value).__name__} into a checkpoint"
    )


def _slot_names(cls: type) -> tuple[str, ...]:
    """All ``__slots__`` names across the MRO (empty for dict-backed)."""
    names: list[str] = []
    for klass in cls.__mro__:
        slots = klass.__dict__.get("__slots__", ())
        if isinstance(slots, str):
            slots = (slots,)
        names.extend(slots)
    return tuple(names)


def _attr_items(obj: object) -> list[tuple[str, object]]:
    """``vars(obj)`` extended to ``__slots__``-backed objects."""
    items = dict(vars(obj)) if hasattr(obj, "__dict__") else {}
    for name in _slot_names(type(obj)):
        if name not in items and hasattr(obj, name):
            items[name] = getattr(obj, name)
    return sorted(items.items())


def decode_value(encoded, template=None):
    """Decode one encoded value, using ``template`` (the fresh twin's
    current attribute value) where the encoding is not self-contained:
    skip tags keep the template, object tags mutate it in place, rng
    tags restore the template generator's stream position, and enum
    tags rebuild through the template's enum class."""
    if isinstance(encoded, dict) and TAG in encoded:
        kind = encoded[TAG]
        if kind == "skip":
            return template
        if kind == "ndarray":
            array = np.asarray(encoded["data"], dtype=np.dtype(encoded["dtype"]))
            return array.reshape(encoded["shape"])
        if kind == "rng":
            generator = (
                template
                if isinstance(template, np.random.Generator)
                else np.random.default_rng()
            )
            generator.bit_generator.state = encoded["state"]
            return generator
        if kind == "deque":
            maxlen = template.maxlen if isinstance(template, deque) else None
            return deque(
                (decode_value(item) for item in encoded["items"]), maxlen=maxlen
            )
        if kind == "tuple":
            return tuple(decode_value(item) for item in encoded["items"])
        if kind == "set":
            return {decode_value(item) for item in encoded["items"]}
        if kind == "dict":
            out = {}
            for pair in encoded["items"]:
                key = decode_value(pair[0])
                inner = template.get(key) if isinstance(template, dict) else None
                out[key] = decode_value(pair[1], inner)
            return out
        if kind == "enum":
            value = decode_value(encoded["value"])
            if isinstance(template, enum.Enum):
                return type(template)(value)
            return value
        if kind == "object":
            if template is None:
                raise CheckpointError(
                    f"checkpoint holds a {encoded.get('cls')} but the "
                    "rebuilt run has nothing to restore it into"
                )
            restore_state(template, encoded["state"])
            return template
        raise CheckpointError(f"unknown checkpoint encoding tag {kind!r}")
    if isinstance(encoded, list):
        if isinstance(template, list) and len(template) == len(encoded):
            return [
                decode_value(item, inner)
                for item, inner in zip(encoded, template)
            ]
        return [decode_value(item) for item in encoded]
    return encoded


def snapshot_state(obj: object, skip: frozenset | set | tuple = ()) -> dict:
    """Encode every captured attribute of ``obj`` (sorted by name)."""
    excluded = SKIP_ATTRS.union(skip)
    return {
        name: encode_value(value)
        for name, value in _attr_items(obj)
        if name not in excluded
    }


def restore_state(obj: object, snapshot: dict, skip: frozenset | set | tuple = ()) -> None:
    """Restore a :func:`snapshot_state` capture onto a fresh twin.

    ``obj`` must be structurally identical to the captured object —
    built by the same deterministic construction path. Nested objects
    are mutated in place so existing references stay valid.
    """
    excluded = SKIP_ATTRS.union(skip)
    for name, encoded in snapshot.items():
        if name in excluded:
            continue
        setattr(obj, name, decode_value(encoded, getattr(obj, name, None)))


def snapshot_metrics(registry: MetricsRegistry) -> dict:
    """Encode every instrument of a registry by name."""
    out: dict = {}
    for name, instrument in registry.instruments():
        if isinstance(instrument, Counter):
            out[name] = {"kind": "counter", "value": instrument.value}
        elif isinstance(instrument, Gauge):
            out[name] = {"kind": "gauge", "value": instrument.value}
        elif isinstance(instrument, Histogram):
            out[name] = {
                "kind": "histogram",
                "edges": list(instrument.edges),
                "counts": list(instrument.counts),
                "overflow": instrument.overflow,
                "count": instrument.count,
                "total": instrument.total,
                "min": instrument.min,
                "max": instrument.max,
            }
    return out


def restore_metrics(registry: MetricsRegistry, snapshot: dict) -> None:
    """Restore instrument values into a registry, creating any missing.

    Existing instruments are mutated in place — components hold direct
    references to them (the switch's ``_m_*`` handles, the estimator's
    counters), so replacing the objects would silently disconnect the
    hot path from the export path.
    """
    for name, entry in snapshot.items():
        kind = entry["kind"]
        if kind == "counter":
            registry.counter(name).value = int(entry["value"])
        elif kind == "gauge":
            registry.gauge(name).value = entry["value"]
        elif kind == "histogram":
            histogram = registry.histogram(name, entry["edges"])
            histogram.counts = [int(count) for count in entry["counts"]]
            histogram.overflow = int(entry["overflow"])
            histogram.count = int(entry["count"])
            histogram.total = float(entry["total"])
            histogram.min = entry["min"]
            histogram.max = entry["max"]
        else:
            raise CheckpointError(f"unknown instrument kind {kind!r}")
