"""Checkpoint/restore for long simulation runs (the soak-run layer).

``save_checkpoint``/``load_checkpoint`` define the on-disk envelope
(versioned, checksummed, atomically written);
:mod:`repro.checkpoint.state` captures and restores component state
generically; :func:`resume_simulation` continues a checkpointed run —
bit-identically — from where it stopped. The driver-side half lives in
:func:`repro.sim.run_simulation` (``checkpoint_path`` /
``checkpoint_every`` / ``stop_at_slot``).

See ``docs/CHECKPOINT.md`` for the format, the guarantees, and the
limitations (what is rebuilt versus restored, and why the tracer is
neither).
"""

from repro.checkpoint.core import (
    capture_payload,
    make_run_spec,
    resume_simulation,
)
from repro.checkpoint.format import (
    CHECKPOINT_FORMAT,
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    payload_checksum,
    save_checkpoint,
)
from repro.checkpoint.state import (
    restore_metrics,
    restore_state,
    snapshot_metrics,
    snapshot_state,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "capture_payload",
    "load_checkpoint",
    "make_run_spec",
    "payload_checksum",
    "restore_metrics",
    "restore_state",
    "resume_simulation",
    "save_checkpoint",
    "snapshot_metrics",
    "snapshot_state",
]
