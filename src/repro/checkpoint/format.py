"""The on-disk checkpoint envelope: versioned, checksummed, atomic.

A checkpoint file is one JSON document::

    {
      "format": "repro-checkpoint",
      "version": 1,
      "checksum": "<sha256 of the canonical payload JSON>",
      "payload": { ... }
    }

``format`` and ``version`` make the file self-identifying; the
checksum is computed over the *canonical* payload rendering
(``sort_keys=True``, compact separators), so any truncation,
bit-flip, or hand edit is detected at load time. Writes go through
:func:`repro.ioutil.atomic_write_text` — a kill mid-write leaves the
previous checkpoint (or nothing), never a torn file.

Every failure mode — missing file, unparseable JSON, wrong format
name, unknown version, checksum mismatch — raises
:class:`CheckpointError`, which the CLIs map to exit status 2. A
corrupt checkpoint is never silently resumed.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.ioutil import atomic_write_text

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "payload_checksum",
    "save_checkpoint",
    "load_checkpoint",
]

#: The ``format`` field every checkpoint file must carry.
CHECKPOINT_FORMAT = "repro-checkpoint"

#: Bump when the payload schema changes incompatibly. Loaders reject
#: any other version instead of guessing — the golden-format gate
#: (``tools/check_checkpoint_format.py``) makes the bump deliberate.
CHECKPOINT_VERSION = 1


class CheckpointError(Exception):
    """A checkpoint file is missing, truncated, corrupt, or incompatible."""


def _canonical(payload: dict) -> str:
    """The canonical payload rendering the checksum is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def payload_checksum(payload: dict) -> str:
    """SHA-256 hex digest of the canonical payload JSON."""
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()


def save_checkpoint(path: str | Path, payload: dict) -> Path:
    """Write ``payload`` to ``path`` inside the versioned envelope.

    The write is atomic (temp file + rename); the function returns the
    path written. The payload must be JSON-serialisable — use
    :mod:`repro.checkpoint.state` to encode component state.
    """
    envelope = {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "checksum": payload_checksum(payload),
        "payload": payload,
    }
    path = Path(path)
    atomic_write_text(path, json.dumps(envelope, sort_keys=True))
    return path


def load_checkpoint(path: str | Path) -> dict:
    """Read, validate, and return the payload of a checkpoint file.

    Raises :class:`CheckpointError` on any integrity problem; never
    returns a payload whose checksum does not verify.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON (truncated or corrupt): {exc}"
        ) from exc
    if not isinstance(envelope, dict):
        raise CheckpointError(f"checkpoint {path} is not a JSON object")
    if envelope.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path} has format {envelope.get('format')!r}, "
            f"expected {CHECKPOINT_FORMAT!r}"
        )
    version = envelope.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} is version {version!r}; this build reads "
            f"version {CHECKPOINT_VERSION} only"
        )
    payload = envelope.get("payload")
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {path} has no payload object")
    expected = envelope.get("checksum")
    actual = payload_checksum(payload)
    if expected != actual:
        raise CheckpointError(
            f"checkpoint {path} failed its checksum (stored {expected!r}, "
            f"computed {actual!r}) — refusing to resume from corrupt state"
        )
    return payload
