"""Checkpoint payloads for whole simulation runs, and resuming them.

A simulation checkpoint taken at slot ``k`` holds everything needed to
make the remaining slots ``k .. total_slots-1`` *bit-identical* to an
uninterrupted run:

* the **run spec** — every argument :func:`repro.sim.run_simulation`
  needs to rebuild the exact same objects (config fields, scheduler
  name, traffic name + kwargs, fault-plan spec, adapter spec, admission
  watermarks, the ``fast`` flag);
* the **component state** — the traffic pattern (including its PCG64
  stream position), the switch and everything hanging off it
  (scheduler pointers and tie-break chains, VOQ/PQ contents, Welford
  accumulators, adaptive-estimator arrays, admission counters),
  captured by :mod:`repro.checkpoint.state`;
* the **instrument values** of the metrics registry, restored into
  fresh instruments in place;
* the **exporter position** (path, cadence, writes so far) so a soak
  run's snapshot files keep their cadence across the restart.

What is *not* serialised: the tracer. Trace events already written
belong to the first part of the run; a resumed run emits slots
``k..`` into whatever tracer the resumer attaches, and the full trace
is the concatenation of the two — byte-identical to the uninterrupted
trace (property-tested in ``tests/checkpoint/``).

Checkpoints are taken at slot boundaries only (after slot ``k-1``
finished, before slot ``k`` starts), which is why the driver caps its
slot blocks at checkpoint boundaries.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.checkpoint.format import CheckpointError, load_checkpoint
from repro.checkpoint.state import (
    restore_metrics,
    restore_state,
    snapshot_metrics,
    snapshot_state,
)

__all__ = ["make_run_spec", "capture_payload", "resume_simulation"]

#: The ``kind`` tag single-switch simulation payloads carry.
SIMULATION_KIND = "simulation"


def _spec_pairs(spec) -> list | None:
    """``to_spec()`` output as JSON-safe ``[key, value]`` pairs."""
    if spec is None:
        return None
    return [[key, value] for key, value in spec]


def make_run_spec(
    *,
    config,
    scheduler: str,
    load: float,
    traffic: str,
    traffic_kwargs: dict | None,
    collect_service: bool,
    collect_percentiles: bool,
    fast: bool,
    plan=None,
    adapter=None,
    admission=None,
    has_metrics: bool = False,
    checkpoint_every: int | None = None,
) -> dict:
    """The JSON-safe description of a run, sufficient to rebuild it.

    ``plan``/``adapter``/``admission`` are the *resolved* objects (or
    ``None``); their wire specs are what goes into the checkpoint, so
    resume goes through the same ``make_*`` constructors as the
    original call.
    """
    return {
        "config": dataclasses.asdict(config),
        "scheduler": scheduler,
        "load": load,
        "traffic": traffic,
        "traffic_kwargs": dict(traffic_kwargs or {}),
        "collect_service": bool(collect_service),
        "collect_percentiles": bool(collect_percentiles),
        "fast": bool(fast),
        "faults": _spec_pairs(plan.to_spec()) if plan is not None else None,
        "adapt": _spec_pairs(adapter.to_spec()) if adapter is not None else None,
        "admission": (
            [admission.low, admission.high] if admission is not None else None
        ),
        "has_metrics": bool(has_metrics),
        "checkpoint_every": checkpoint_every,
    }


def capture_payload(
    run_spec: dict,
    slot: int,
    pattern,
    switch,
    metrics=None,
    exporter=None,
) -> dict:
    """Snapshot a running simulation into a checkpoint payload.

    ``slot`` is the *next* slot to execute: slots ``0..slot-1`` have
    run to completion, including their exporter ticks.
    """
    exporter_state = None
    if exporter is not None:
        exporter_state = {
            "path": str(exporter.path),
            "every": exporter.every,
            "fmt": exporter.fmt,
            "writes": exporter.writes,
            "next_due": exporter._next_due,
        }
    return {
        "kind": SIMULATION_KIND,
        "slot": slot,
        "run": run_spec,
        "state": {
            "pattern": snapshot_state(pattern),
            "switch": snapshot_state(switch),
            "metrics": snapshot_metrics(metrics) if metrics is not None else None,
            "exporter": exporter_state,
        },
    }


def resume_simulation(
    path,
    tracer=None,
    metrics=None,
    exporter=None,
    checkpoint_path=None,
    checkpoint_every=None,
    stop_at_slot: int | None = None,
):
    """Continue a checkpointed run to completion (or the next stop).

    Rebuilds the run from the stored spec — same constructors, same
    seeds — restores every component's captured state, and drives the
    remaining slots. The returned :class:`repro.sim.SimResult` is
    bit-identical to what the uninterrupted run would have produced.

    ``tracer`` receives the *remaining* slots' events; the full trace
    of the logical run is the pre-checkpoint trace followed by this
    one. ``metrics`` defaults to a fresh registry when the original
    run had one (restored to the captured instrument values);
    ``exporter`` is rebuilt from the stored position unless an
    explicit one is passed.

    By default the resumed run keeps checkpointing to the *same* file
    at the stored cadence; pass ``checkpoint_path``/``checkpoint_every``
    to redirect or ``stop_at_slot`` to pause again later.

    Raises :class:`CheckpointError` for anything unresumable: a corrupt
    or wrong-version file (via :func:`load_checkpoint`) or a payload of
    the wrong kind.
    """
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.admission import make_admission
    from repro.sim.config import SimConfig
    from repro.sim.simulator import _drive_and_package, build_switch
    from repro.traffic.base import make_traffic

    payload = load_checkpoint(path)
    if payload.get("kind") != SIMULATION_KIND:
        raise CheckpointError(
            f"checkpoint {path} holds a {payload.get('kind')!r} payload, "
            f"not a {SIMULATION_KIND!r} one"
        )
    run = payload["run"]
    state = payload["state"]
    start_slot = int(payload["slot"])

    config = SimConfig(**run["config"])
    pattern = make_traffic(
        run["traffic"],
        config.n_ports,
        run["load"],
        seed=config.seed,
        **run["traffic_kwargs"],
    )

    injector = None
    if run["faults"] is not None:
        plan = FaultPlan.from_spec(run["faults"])
        if not plan.is_null:
            injector = FaultInjector(plan, config.n_ports, seed=config.seed)

    adapter = None
    if run["adapt"] is not None:
        from repro.adapt.adapter import make_adapter

        adapter = make_adapter(run["adapt"])
        if adapter is not None:
            adapter.reset()

    admission = make_admission(run["admission"])

    if metrics is None and run["has_metrics"]:
        metrics = MetricsRegistry()

    exporter_state = state.get("exporter")
    if exporter is not None:
        from repro.obs.serve import effective_exporter

        exporter = effective_exporter(exporter)
    elif exporter_state is not None:
        from repro.obs.serve import SnapshotExporter

        if metrics is None:
            metrics = MetricsRegistry()
        exporter = SnapshotExporter(
            metrics,
            Path(exporter_state["path"]),
            every=exporter_state["every"],
            fmt=exporter_state["fmt"],
        )
    if exporter is not None and metrics is None:
        metrics = exporter.registry

    switch = build_switch(
        config,
        run["scheduler"],
        collect_service=run["collect_service"],
        collect_latencies=run["collect_percentiles"],
        seed=config.seed,
        tracer=tracer,
        metrics=metrics,
        injector=injector,
        adapter=adapter,
        fast=run["fast"],
        admission=admission,
    )

    restore_state(pattern, state["pattern"])
    restore_state(switch, state["switch"])
    if metrics is not None and state["metrics"] is not None:
        restore_metrics(metrics, state["metrics"])
    if exporter is not None and exporter_state is not None:
        exporter.writes = exporter_state["writes"]
        exporter._next_due = exporter_state["next_due"]

    if checkpoint_path is None:
        checkpoint_path = str(path)
        if checkpoint_every is None:
            checkpoint_every = run.get("checkpoint_every")

    run_spec = dict(run, checkpoint_every=checkpoint_every)
    return _drive_and_package(
        config=config,
        scheduler_name=run["scheduler"],
        load=run["load"],
        switch=switch,
        pattern=pattern,
        exporter=exporter,
        metrics=metrics,
        collect_percentiles=run["collect_percentiles"],
        start_slot=start_slot,
        run_spec=run_spec,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        stop_at_slot=stop_at_slot,
    )
