"""Shared type aliases and conventions for the LCF reproduction.

Conventions (used consistently across the package):

* A **request matrix** ``R`` is a boolean ``(n, n)`` array. ``R[i, j]`` is
  True iff input (initiator) ``i`` has at least one packet queued for
  output (target) ``j``.
* A **schedule** ``S`` is an int64 ``(n,)`` array indexed by input port:
  ``S[i]`` is the output granted to input ``i`` or :data:`NO_GRANT`.
  A schedule must be conflict free — no output appears twice.
* An **output schedule** ``T`` is the transpose view used where multicast
  is possible (Clint precalculated schedules): ``T[j]`` is the input
  connected to output ``j`` or :data:`NO_GRANT`. Multicast is an input
  appearing under several outputs.

All stochastic code takes a :class:`numpy.random.Generator` so that runs
are reproducible bit for bit.
"""

from __future__ import annotations

from typing import TypeAlias

import numpy as np
import numpy.typing as npt

#: Sentinel meaning "no grant" in schedules (matches the paper's ``-1``).
NO_GRANT: int = -1

RequestMatrix: TypeAlias = npt.NDArray[np.bool_]
Schedule: TypeAlias = npt.NDArray[np.int64]
OutputSchedule: TypeAlias = npt.NDArray[np.int64]


def empty_schedule(n: int) -> Schedule:
    """Return a fresh all-``NO_GRANT`` schedule for ``n`` inputs."""
    return np.full(n, NO_GRANT, dtype=np.int64)


def as_request_matrix(matrix: npt.ArrayLike) -> RequestMatrix:
    """Coerce ``matrix`` to a square boolean request matrix.

    Raises ``ValueError`` if the input is not square and 2-D.
    """
    arr = np.asarray(matrix, dtype=bool)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise ValueError(f"request matrix must be square 2-D, got shape {arr.shape}")
    return arr
