"""On-disk JSON result cache for sweep points.

Each completed simulation point is written to its own file under the
cache root, named by :func:`point_key` — a SHA-256 over the canonical
JSON of everything that determines the simulation's output: every
``SimConfig`` field (with the *effective* per-replicate seed), the
scheduler name, the load, and the traffic pattern with its parameters.
Identical inputs always map to the same file, so

* re-running a finished sweep is pure cache reads (seconds, not hours);
* an interrupted sweep resumes where it stopped — points are written
  as they complete, one file each, with atomic rename;
* changing any input (a load, the port count, the seed) misses cleanly.

``CACHE_VERSION`` is folded into the key; bump it whenever simulator
semantics change so stale entries are ignored rather than trusted.
Corrupt or truncated files (e.g. from a kill mid-write of a non-atomic
external copy) are treated as misses.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.sim.config import SimConfig
from repro.sim.simulator import SimResult
from repro.sweep.spec import SweepPoint

#: Bump when simulator semantics change; folded into every cache key.
CACHE_VERSION = 1


def point_key(config: SimConfig, point: SweepPoint) -> str:
    """Stable content hash identifying one simulation point.

    ``config.seed`` is replaced by the point's effective replicate seed,
    so the same spec hashed replicate-by-replicate yields distinct keys
    while a direct ``run_simulation`` call with that seed matches.
    """
    payload = {
        "version": CACHE_VERSION,
        "config": asdict(config) | {"seed": point.seed},
        "scheduler": point.scheduler,
        "load": point.load,
        "traffic": point.traffic,
        "traffic_kwargs": sorted([key, repr(value)] for key, value in point.traffic_kwargs),
    }
    if point.fault_kwargs:
        # Folded in only when non-empty so fault-free points keep the
        # cache keys they had before fault injection existed.
        payload["faults"] = sorted(
            [key, repr(value)] for key, value in point.fault_kwargs
        )
    if getattr(point, "adapt_kwargs", ()):
        # Same deal for the scheduling stance — non-empty even at zero
        # faults (a starvation-mode adapter can act without any), so it
        # is always folded in when present.
        payload["adapt"] = sorted(
            [key, repr(value)] for key, value in point.adapt_kwargs
        )
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def result_to_payload(result: SimResult) -> dict:
    """JSON-serialisable form of a :class:`SimResult` (lossless)."""
    return {
        "scheduler": result.scheduler,
        "load": result.load,
        "config": asdict(result.config),
        "mean_latency": result.mean_latency,
        "std_latency": result.std_latency,
        "min_latency": result.min_latency,
        "max_latency": result.max_latency,
        "offered": result.offered,
        "forwarded": result.forwarded,
        "dropped": result.dropped,
        "throughput": result.throughput,
        "percentiles": [[float(p), float(v)] for p, v in result.percentiles.items()],
        "service_counts": (
            result.service_counts.tolist() if result.service_counts is not None else None
        ),
        "shed": result.shed,
    }


def payload_to_result(payload: dict) -> SimResult:
    """Inverse of :func:`result_to_payload`."""
    service = payload.get("service_counts")
    return SimResult(
        scheduler=payload["scheduler"],
        load=payload["load"],
        config=SimConfig(**payload["config"]),
        mean_latency=payload["mean_latency"],
        std_latency=payload["std_latency"],
        min_latency=payload["min_latency"],
        max_latency=payload["max_latency"],
        offered=payload["offered"],
        forwarded=payload["forwarded"],
        dropped=payload["dropped"],
        throughput=payload["throughput"],
        percentiles={float(p): float(v) for p, v in payload.get("percentiles", [])},
        service_counts=np.asarray(service, dtype=np.int64) if service is not None else None,
        # Entries written before admission control existed lack the
        # field; 0 (nothing shed) is exactly what those runs did.
        shed=payload.get("shed", 0),
    )


class ResultCache:
    """Directory of one-JSON-file-per-point simulation results."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> SimResult | None:
        """Cached result for ``key``, or ``None`` on miss/corruption."""
        path = self.path_for(key)
        try:
            payload = json.loads(path.read_text())
            result = payload_to_result(payload)
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, result: SimResult) -> Path:
        """Persist one point atomically (write temp file, then rename)."""
        path = self.path_for(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        # allow_nan: empty measurement windows legitimately produce NaN
        # latencies; Python's json round-trips them (non-strict JSON).
        tmp.write_text(json.dumps(result_to_payload(result), allow_nan=True))
        tmp.replace(path)
        return path

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def clear(self) -> int:
        """Delete every cached point; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*.json"):
            path.unlink()
            removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache({str(self.root)!r}, entries={len(self)})"
