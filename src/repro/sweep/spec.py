"""Sweep specification: the (scheduler x load x replicate) point grid.

A :class:`SweepSpec` describes a whole experiment; :meth:`SweepSpec.points`
flattens it into :class:`SweepPoint` records, each carrying the exact
``SimConfig`` seed its simulation must run under. Seeds are derived
deterministically — replicate ``r`` runs with ``config.seed + r`` — so

* replicate 0 of every (scheduler, load) cell is *bit-identical* to a
  plain ``run_simulation(config, scheduler, load)`` call, and
* the grid's outcome is a pure function of the spec: any executor
  (serial loop, process pool, resumed cache) produces the same results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.registry import PAPER_SCHEDULERS
from repro.sim.config import SimConfig

#: The load grid of Figure 12 (0.05 steps up to 1.0).
PAPER_LOADS = tuple(round(0.05 * k, 2) for k in range(1, 21))


@dataclass(frozen=True)
class SweepPoint:
    """One simulation to run: a grid cell plus its replicate seed."""

    scheduler: str
    load: float
    traffic: str
    traffic_kwargs: tuple[tuple[str, object], ...]
    #: Effective ``SimConfig.seed`` for this run (base seed + replicate).
    seed: int
    #: 0-based replicate index within the (scheduler, load) cell.
    replicate: int
    #: Flattened :meth:`repro.faults.FaultPlan.to_spec` pairs; empty for
    #: a fault-free run (the default, and the historical wire format —
    #: fault-free points hash to the same cache keys as before this
    #: field existed).
    fault_kwargs: tuple[tuple[str, object], ...] = ()
    #: Flattened adapter spec (:meth:`repro.adapt.AdaptConfig.to_spec`
    #: or ``(("policy", "oblivious"),)``); empty for the informed
    #: default stance — and, like ``fault_kwargs``, invisible to the
    #: cache key when empty so historical keys are unchanged.
    adapt_kwargs: tuple[tuple[str, object], ...] = ()

    @property
    def grid_key(self) -> tuple[str, float]:
        """The (scheduler, load) cell this point belongs to."""
        return (self.scheduler, self.load)

    def label(self) -> str:
        """Short human-readable identifier for progress lines."""
        return f"{self.scheduler} load={self.load} rep={self.replicate}"


@dataclass(frozen=True)
class SweepSpec:
    """A (schedulers x loads x replicates) simulation grid."""

    schedulers: tuple[str, ...] = PAPER_SCHEDULERS
    loads: tuple[float, ...] = PAPER_LOADS
    config: SimConfig = field(default_factory=SimConfig)
    traffic: str = "bernoulli"
    traffic_kwargs: tuple[tuple[str, object], ...] = ()
    #: Independent repetitions per (scheduler, load) cell; shard ``r``
    #: runs under seed ``config.seed + r`` and shards are merged with
    #: :func:`repro.sweep.merge.merge_results`.
    replicates: int = 1
    #: Fault plan applied to every point of the grid, as the flat
    #: ``FaultPlan.to_spec()`` pairs (keeps the spec hashable/frozen).
    fault_kwargs: tuple[tuple[str, object], ...] = ()
    #: Scheduling stance applied to every point, as the flat adapter
    #: spec pairs (see :func:`repro.adapt.make_adapter`); empty keeps
    #: the informed default.
    adapt_kwargs: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.replicates < 1:
            raise ValueError(f"replicates must be >= 1, got {self.replicates}")
        if not self.schedulers:
            raise ValueError("schedulers must be non-empty")
        if not self.loads:
            raise ValueError("loads must be non-empty")

    def seed_for(self, replicate: int) -> int:
        """Shard seed derivation: base seed plus the replicate index."""
        return self.config.seed + replicate

    def points(self) -> list[SweepPoint]:
        """Flatten the grid, scheduler-major then load then replicate.

        The order is part of the contract: serial execution and shard
        merging both follow it, which is what makes ``workers=1``
        reproduce the historical sequential trajectory exactly.
        """
        return [
            SweepPoint(
                scheduler=name,
                load=load,
                traffic=self.traffic,
                traffic_kwargs=self.traffic_kwargs,
                seed=self.seed_for(replicate),
                replicate=replicate,
                fault_kwargs=self.fault_kwargs,
                adapt_kwargs=self.adapt_kwargs,
            )
            for name in self.schedulers
            for load in self.loads
            for replicate in range(self.replicates)
        ]

    def grid_keys(self) -> list[tuple[str, float]]:
        """The (scheduler, load) cells, in the same major order."""
        return [(name, load) for name in self.schedulers for load in self.loads]

    def point_config(self, point: SweepPoint) -> SimConfig:
        """The exact ``SimConfig`` the point's simulation runs under."""
        return self.config.with_(seed=point.seed)

    def n_points(self) -> int:
        return len(self.schedulers) * len(self.loads) * self.replicates
