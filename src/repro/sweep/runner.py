"""The parallel sweep runner.

:class:`ParallelRunner` executes every :class:`~repro.sweep.spec.SweepPoint`
of a :class:`~repro.sweep.spec.SweepSpec`:

1. each point is looked up in the :class:`~repro.sweep.cache.ResultCache`
   (if one is attached) — hits skip simulation entirely;
2. misses run through :func:`repro.sim.simulator.run_simulation`,
   serially in spec order when ``workers <= 1`` (bit-identical to the
   historical sequential loop) or fanned out over a
   ``multiprocessing.Pool`` otherwise;
3. each computed point is written back to the cache *as it completes*,
   so an interrupted sweep resumes from the completed prefix;
4. replicate shards of each (scheduler, load) cell are merged in
   replicate order with :func:`repro.sweep.merge.merge_results`.

Because every point is a pure function of its seed, the merged
statistics are independent of worker count and completion order — a
``workers=4`` run reproduces the ``workers=1`` numbers exactly (shards
are always merged in the same order, so there is not even a
floating-point merge-order difference).

Telemetry: beyond the per-point progress lines, the final
:class:`SweepRunReport` carries structured counters — cache hit rate,
per-scheduler compute seconds, per-worker :class:`WorkerTelemetry`
(points and compute seconds per process), and the shard-merge wall
clock. With ``profile_dir`` set, every computed point additionally runs
under :mod:`cProfile` and dumps its stats file into that directory
(load with ``pstats`` or ``snakeviz``) — the per-point answer to
"where does the wall-clock go inside a sweep".
"""

from __future__ import annotations

import cProfile
import os
import re
import time
from dataclasses import dataclass, field
from multiprocessing import Pool
from pathlib import Path
from typing import Callable

from repro.columnar.run import run_replicates
from repro.sim.config import SimConfig
from repro.sim.simulator import SimResult, run_simulation
from repro.sweep.cache import ResultCache, point_key
from repro.sweep.merge import merge_results
from repro.sweep.spec import SweepPoint, SweepSpec


def _profile_path(profile_dir: str, index: int, point: SweepPoint) -> Path:
    slug = re.sub(r"[^A-Za-z0-9_.-]+", "_", point.label())
    return Path(profile_dir) / f"{index:04d}-{slug}.prof"


def _run_point(
    args: tuple[int, SimConfig, SweepPoint, str | None, bool, str | None, int | None]
) -> tuple[int, SimResult, float, int]:
    """Worker entry point (module level so it pickles for Pool)."""
    index, config, point, profile_dir, fast, ckpt_path, ckpt_every = args
    start = time.perf_counter()
    faults = dict(point.fault_kwargs) or None
    adapter = dict(point.adapt_kwargs) or None

    def simulate() -> SimResult:
        # A pre-empted in-flight point left a checkpoint next to its
        # cache slot: resume it instead of recomputing the completed
        # slots. Anything unresumable (truncated by the kill, written
        # by an older format version) is recomputed from scratch —
        # bit-identical either way, so the fallback is safe.
        if ckpt_path is not None and os.path.exists(ckpt_path):
            from repro.checkpoint import CheckpointError, resume_simulation

            try:
                return resume_simulation(ckpt_path)
            except CheckpointError:
                pass
        return run_simulation(
            config,
            point.scheduler,
            point.load,
            traffic=point.traffic,
            traffic_kwargs=dict(point.traffic_kwargs),
            faults=faults,
            adapter=adapter,
            fast=fast,
            checkpoint_path=ckpt_path,
            checkpoint_every=ckpt_every,
        )

    if profile_dir is not None:
        profiler = cProfile.Profile()
        result = profiler.runcall(simulate)
        profiler.dump_stats(_profile_path(profile_dir, index, point))
    else:
        result = simulate()
    if ckpt_path is not None:
        # The point finished; its cache entry supersedes the checkpoint.
        Path(ckpt_path).unlink(missing_ok=True)
    return index, result, time.perf_counter() - start, os.getpid()


def _run_block(
    args: tuple[list[int], SimConfig, list[SweepPoint], str | None, bool]
) -> tuple[list[int], list[SimResult], float, int]:
    """Columnar block worker: all pending replicates of one cell at once.

    ``run_replicates`` picks the execution strategy (columnar engine,
    switch-reuse serial, or plain serial) per configuration; every
    strategy is bit-identical per replicate to :func:`_run_point`'s
    ``run_simulation`` call, so blocks and points share cache entries
    freely.
    """
    indices, config, cell, profile_dir, fast = args
    start = time.perf_counter()
    first = cell[0]

    def simulate() -> list[SimResult]:
        return run_replicates(
            config,
            first.scheduler,
            first.load,
            seeds=[point.seed for point in cell],
            traffic=first.traffic,
            traffic_kwargs=dict(first.traffic_kwargs),
            faults=dict(first.fault_kwargs) or None,
            adapter=dict(first.adapt_kwargs) or None,
            fast=fast,
            columnar=True,
        )

    if profile_dir is not None:
        profiler = cProfile.Profile()
        results = profiler.runcall(simulate)
        profiler.dump_stats(_profile_path(profile_dir, indices[0], first))
    else:
        results = simulate()
    return indices, results, time.perf_counter() - start, os.getpid()


@dataclass
class PointOutcome:
    """How one sweep point was resolved."""

    point: SweepPoint
    result: SimResult
    #: True if the result came from the cache instead of a simulation.
    cached: bool
    #: Compute seconds inside the worker (0.0 for cache hits).
    elapsed: float
    #: OS pid of the worker process that computed it (0 for cache hits).
    worker_pid: int = 0


@dataclass
class WorkerTelemetry:
    """Per-worker-process accounting of one sweep execution."""

    pid: int
    points: int = 0
    compute_seconds: float = 0.0

    @property
    def points_per_sec(self) -> float:
        """Computed points per second of this worker's busy time."""
        return self.points / self.compute_seconds if self.compute_seconds > 0 else 0.0


@dataclass
class SweepRunReport:
    """Timing/caching summary of one sweep execution."""

    total_points: int
    computed: int
    cache_hits: int
    workers: int
    #: End-to-end wall-clock of the whole run, seconds.
    wall_clock: float
    #: Per-scheduler compute seconds (summed over that scheduler's points).
    scheduler_seconds: dict[str, float] = field(default_factory=dict)
    #: Per-worker-process accounting, busiest first.
    worker_stats: list[WorkerTelemetry] = field(default_factory=list)
    #: Wall-clock seconds spent merging replicate shards.
    merge_seconds: float = 0.0
    #: Directory per-point cProfile stats were written to (None = off).
    profile_dir: str | None = None

    @property
    def points_per_sec(self) -> float:
        """Computed points per wall-clock second (cache hits excluded)."""
        return self.computed / self.wall_clock if self.wall_clock > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of points served from the cache."""
        return self.cache_hits / self.total_points if self.total_points else 0.0

    def summary(self) -> str:
        lines = [
            f"sweep: {self.total_points} points "
            f"({self.computed} computed, {self.cache_hits} cached, "
            f"{self.cache_hit_rate:.0%} hit rate) "
            f"in {self.wall_clock:.1f}s with {self.workers} worker(s) "
            f"[{self.points_per_sec:.2f} pts/s, merge {self.merge_seconds * 1e3:.0f}ms]"
        ]
        for name, seconds in sorted(
            self.scheduler_seconds.items(), key=lambda item: -item[1]
        ):
            lines.append(f"  {name:<16} {seconds:8.1f}s compute")
        for stats in self.worker_stats:
            lines.append(
                f"  worker {stats.pid:<8} {stats.points:4d} pts "
                f"{stats.compute_seconds:8.1f}s busy "
                f"[{stats.points_per_sec:.2f} pts/s]"
            )
        if self.profile_dir is not None:
            lines.append(f"  per-point cProfile stats in {self.profile_dir}/")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable form (dashboard/CI artifacts)."""
        return {
            "total_points": self.total_points,
            "computed": self.computed,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
            "workers": self.workers,
            "wall_clock": self.wall_clock,
            "points_per_sec": self.points_per_sec,
            "merge_seconds": self.merge_seconds,
            "scheduler_seconds": dict(self.scheduler_seconds),
            "worker_stats": [
                {
                    "pid": stats.pid,
                    "points": stats.points,
                    "compute_seconds": stats.compute_seconds,
                }
                for stats in self.worker_stats
            ],
            "profile_dir": self.profile_dir,
        }


@dataclass
class SweepRun:
    """Everything a finished sweep produced."""

    spec: SweepSpec
    #: One outcome per point, in :meth:`SweepSpec.points` order.
    outcomes: list[PointOutcome]
    report: SweepRunReport

    def __post_init__(self) -> None:
        merge_start = time.perf_counter()
        shards: dict[tuple[str, float], list[SimResult]] = {}
        for outcome in self.outcomes:
            shards.setdefault(outcome.point.grid_key, []).append(outcome.result)
        #: Merged result per (scheduler, load) cell, replicate shards
        #: combined in replicate order.
        self.merged: dict[tuple[str, float], SimResult] = {
            key: merge_results(cell) for key, cell in shards.items()
        }
        self.report.merge_seconds = time.perf_counter() - merge_start

    def get(self, scheduler: str, load: float) -> SimResult:
        """The merged result of one grid cell."""
        return self.merged[(scheduler, load)]

    def replicates(self, scheduler: str, load: float) -> list[SimResult]:
        """The individual replicate shards of one grid cell, in order."""
        return [
            outcome.result
            for outcome in self.outcomes
            if outcome.point.grid_key == (scheduler, load)
        ]


class ParallelRunner:
    """Execute a :class:`SweepSpec`, optionally in parallel and cached.

    ``workers``
        process count; ``<= 1`` runs serially in spec order.
    ``cache``
        a :class:`ResultCache`, a directory path to open one at, or
        ``None`` to disable caching.
    ``progress``
        ``True`` to print per-point progress lines, or a callable
        receiving each line (e.g. ``log.info``).
    ``profile_dir``
        directory to dump one cProfile stats file per computed point
        into (created if missing); ``None`` disables profiling.
    ``fast``
        run every computed point on the :mod:`repro.fastpath` layer.
        Results are bit-identical to the reference layer, which is why
        ``fast`` is *not* part of the cache key — fast and reference
        runs share cache entries freely.
    ``checkpoint_every``
        checkpoint every in-flight point's state to ``<cache
        root>/<point key>.ckpt`` at this slot cadence (requires a
        cache). A killed sweep then resumes *mid-point*: completed
        points come back as cache hits, and interrupted points continue
        from their last checkpoint instead of recomputing — with
        bit-identical results (the checkpoint file is keyed by the same
        content hash as the cache entry, so any spec change misses
        cleanly). The checkpoint is deleted when its point completes.
    ``columnar``
        hand each worker a whole replicate *block* — all pending
        replicates of one (scheduler, load) cell — executed through
        :func:`repro.columnar.run.run_replicates`, which batches the
        block across a numpy replicate axis when the configuration is
        covered and falls back to serial execution otherwise. Results
        and cache keys are identical to point-by-point execution (like
        ``fast``, the strategy is not part of the experiment
        definition), so cache hits still resolve per point and a block
        only covers the misses. Incompatible with ``checkpoint_every``
        (checkpoints are per-point mid-run state).
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | str | Path | None = None,
        progress: bool | Callable[[str], None] = False,
        profile_dir: str | Path | None = None,
        fast: bool = False,
        checkpoint_every: int | None = None,
        columnar: bool = False,
    ):
        self.workers = workers
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        if checkpoint_every is not None:
            if cache is None:
                raise ValueError(
                    "checkpoint_every needs a cache to keep checkpoints in"
                )
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if columnar:
                raise ValueError(
                    "columnar blocks cannot checkpoint mid-point; "
                    "drop checkpoint_every or columnar"
                )
        self.cache = cache
        self.progress = progress
        self.profile_dir = str(profile_dir) if profile_dir is not None else None
        self.fast = fast
        self.checkpoint_every = checkpoint_every
        self.columnar = columnar

    def _emit(self, line: str) -> None:
        if callable(self.progress):
            self.progress(line)
        elif self.progress:
            print(line)

    def run(self, spec: SweepSpec) -> SweepRun:
        points = spec.points()
        total = len(points)
        outcomes: list[PointOutcome | None] = [None] * total
        keys: list[str | None] = [None] * total
        pending: list[tuple] = []
        start = time.perf_counter()
        if self.profile_dir is not None:
            Path(self.profile_dir).mkdir(parents=True, exist_ok=True)

        for index, point in enumerate(points):
            if self.cache is not None:
                keys[index] = point_key(spec.config, point)
                hit = self.cache.get(keys[index])
                if hit is not None:
                    outcomes[index] = PointOutcome(point, hit, cached=True, elapsed=0.0)
                    continue
            ckpt_path = None
            if self.checkpoint_every is not None and keys[index] is not None:
                ckpt_path = str(self.cache.root / f"{keys[index]}.ckpt")
            pending.append(
                (
                    index,
                    spec.point_config(point),
                    point,
                    self.profile_dir,
                    self.fast,
                    ckpt_path,
                    self.checkpoint_every,
                )
            )

        hits = total - len(pending)
        if hits:
            self._emit(f"cache: {hits}/{total} points already computed")

        completed = 0
        workers: dict[int, WorkerTelemetry] = {}

        def finish(index: int, result: SimResult, elapsed: float, pid: int) -> None:
            nonlocal completed
            completed += 1
            point = points[index]
            outcomes[index] = PointOutcome(
                point, result, cached=False, elapsed=elapsed, worker_pid=pid
            )
            telemetry = workers.setdefault(pid, WorkerTelemetry(pid))
            telemetry.points += 1
            telemetry.compute_seconds += elapsed
            if self.cache is not None and keys[index] is not None:
                self.cache.put(keys[index], result)
            running = time.perf_counter() - start
            rate = completed / running if running > 0 else 0.0
            remaining = len(pending) - completed
            eta = remaining / rate if rate > 0 else float("inf")
            self._emit(
                f"[{hits + completed}/{total}] {point.label():<32} "
                f"{elapsed:6.2f}s | {rate:5.2f} pts/s, ETA {eta:5.0f}s"
            )

        if pending and self.columnar:
            # Regroup the misses into per-cell replicate blocks. Spec
            # order is scheduler-major then load then replicate, so the
            # pending replicates of a cell are always consecutive.
            blocks: list[tuple[list[int], SimConfig, list[SweepPoint], str | None, bool]] = []
            for args in pending:
                index, point = args[0], args[2]
                if blocks and blocks[-1][2][-1].grid_key == point.grid_key:
                    blocks[-1][0].append(index)
                    blocks[-1][2].append(point)
                else:
                    blocks.append(
                        ([index], spec.config, [point], self.profile_dir, self.fast)
                    )

            def finish_block(
                indices: list[int],
                results: list[SimResult],
                elapsed: float,
                pid: int,
            ) -> None:
                # Per-point compute time is attributed evenly across the
                # block — the replicates ran interleaved, not in turn.
                share = elapsed / len(indices)
                for index, result in zip(indices, results):
                    finish(index, result, share, pid)

            if self.workers <= 1:
                for args in blocks:
                    finish_block(*_run_block(args))
            else:
                with Pool(self.workers) as pool:
                    for indices, results, elapsed, pid in pool.imap_unordered(
                        _run_block, blocks
                    ):
                        finish_block(indices, results, elapsed, pid)
        elif pending:
            if self.workers <= 1:
                for args in pending:
                    finish(*_run_point(args))
            else:
                with Pool(self.workers) as pool:
                    for index, result, elapsed, pid in pool.imap_unordered(
                        _run_point, pending
                    ):
                        finish(index, result, elapsed, pid)

        wall = time.perf_counter() - start
        scheduler_seconds: dict[str, float] = {}
        for outcome in outcomes:
            seconds = scheduler_seconds.setdefault(outcome.point.scheduler, 0.0)
            scheduler_seconds[outcome.point.scheduler] = seconds + outcome.elapsed
        report = SweepRunReport(
            total_points=total,
            computed=completed,
            cache_hits=hits,
            workers=self.workers,
            wall_clock=wall,
            scheduler_seconds=scheduler_seconds,
            worker_stats=sorted(
                workers.values(), key=lambda w: -w.compute_seconds
            ),
            profile_dir=self.profile_dir,
        )
        run = SweepRun(spec=spec, outcomes=list(outcomes), report=report)
        self._emit(report.summary())
        return run
