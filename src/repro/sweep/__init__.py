"""The parallel sweep engine.

Every Figure 12 data point is an independent simulation, so the full
(scheduler x load x replicate) grid is embarrassingly parallel. This
package turns that observation into infrastructure:

* :mod:`repro.sweep.spec` — :class:`SweepSpec` enumerates the grid as
  :class:`SweepPoint` records with deterministically derived per-
  replicate seeds;
* :mod:`repro.sweep.runner` — :class:`ParallelRunner` fans points out
  over ``multiprocessing`` workers (``workers=1`` is a serial path
  bit-identical to calling :func:`repro.sim.simulator.run_simulation`
  in a loop), reports progress/ETA, and aggregates a timing report;
* :mod:`repro.sweep.cache` — :class:`ResultCache`, an on-disk JSON
  store keyed by a stable hash of ``SimConfig`` + point, so
  interrupted sweeps resume without recomputation;
* :mod:`repro.sweep.merge` — replicate shards are combined with
  :meth:`repro.sim.metrics.OnlineStats.merge` (Chan et al. pooled
  mean/variance) into a single merged :class:`~repro.sim.simulator.SimResult`.

The Figure 12 presentation layer (:mod:`repro.analysis.sweep`) is a
thin client of this engine.
"""

from repro.sweep.cache import CACHE_VERSION, ResultCache, point_key
from repro.sweep.merge import merge_results, stats_from_result
from repro.sweep.runner import (
    ParallelRunner,
    PointOutcome,
    SweepRun,
    SweepRunReport,
    WorkerTelemetry,
)
from repro.sweep.spec import PAPER_LOADS, SweepPoint, SweepSpec

__all__ = [
    "PAPER_LOADS",
    "SweepPoint",
    "SweepSpec",
    "ParallelRunner",
    "PointOutcome",
    "SweepRun",
    "SweepRunReport",
    "WorkerTelemetry",
    "ResultCache",
    "point_key",
    "CACHE_VERSION",
    "merge_results",
    "stats_from_result",
]
