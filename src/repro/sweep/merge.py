"""Shard merging: combine replicate ``SimResult`` shards into one.

Every latency statistic a :class:`~repro.sim.simulator.SimResult`
carries (mean, std, min, max) summarises an
:class:`~repro.sim.metrics.OnlineStats` stream whose sample count is
``forwarded`` — each packet forwarded inside the measurement window
contributes exactly one latency sample. That makes the summary
*sufficient* for exact recombination: :func:`stats_from_result`
reconstructs the ``OnlineStats`` (``m2 = std² · (count − 1)``), and
:meth:`OnlineStats.merge` recombines shards with Chan et al.'s pooled
mean/variance, which is algebraically identical to having streamed all
samples through a single accumulator (up to floating-point merge
order).

Counters (offered / forwarded / dropped) sum; throughput pools as
total forwarded over total port-slots. Percentiles are *not* mergeable
from summaries (a quantile needs the samples), so the merged result
carries none unless there is exactly one shard, which passes through
untouched — that is the invariant making a ``replicates=1`` sweep
bit-identical to a plain ``run_simulation`` call.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from functools import reduce

from repro.sim.metrics import OnlineStats
from repro.sim.simulator import SimResult


def stats_from_result(result: SimResult) -> OnlineStats:
    """Reconstruct the latency ``OnlineStats`` a result summarises."""
    stats = OnlineStats()
    stats.count = result.forwarded
    if stats.count:
        stats._mean = result.mean_latency
        stats.min = result.min_latency
        stats.max = result.max_latency
    if stats.count > 1 and not math.isnan(result.std_latency):
        stats._m2 = result.std_latency**2 * (stats.count - 1)
    return stats


def merge_stats(shards: Sequence[OnlineStats]) -> OnlineStats:
    """Left-fold ``OnlineStats.merge`` over shards (order = shard order)."""
    if not shards:
        return OnlineStats()
    return reduce(lambda left, right: left.merge(right), shards)


def merge_results(results: Sequence[SimResult]) -> SimResult:
    """Merge replicate shards of one (scheduler, load) cell.

    All shards must be for the same scheduler and load. A single shard
    is returned unchanged (preserving percentiles and service counts
    exactly); multiple shards are pooled as documented in the module
    docstring. The merged result's ``config`` is the first shard's —
    its seed identifies the replicate-0 stream the cell started from.
    """
    if not results:
        raise ValueError("merge_results needs at least one shard")
    if len(results) == 1:
        return results[0]
    cells = {(r.scheduler, r.load) for r in results}
    if len(cells) != 1:
        raise ValueError(f"shards span multiple (scheduler, load) cells: {sorted(cells)}")

    merged = merge_stats([stats_from_result(r) for r in results])
    forwarded = sum(r.forwarded for r in results)
    port_slots = sum(r.config.n_ports * r.config.measure_slots for r in results)
    if all(r.service_counts is not None for r in results):
        service_counts = sum(
            (r.service_counts for r in results[1:]), results[0].service_counts
        )
    else:
        service_counts = None
    return SimResult(
        scheduler=results[0].scheduler,
        load=results[0].load,
        config=results[0].config,
        mean_latency=merged.mean,
        std_latency=merged.std,
        min_latency=merged.min if merged.count else math.nan,
        max_latency=merged.max if merged.count else math.nan,
        offered=sum(r.offered for r in results),
        forwarded=forwarded,
        dropped=sum(r.dropped for r in results),
        throughput=forwarded / port_slots if port_slots else math.nan,
        percentiles={},
        service_counts=service_counts,
    )
