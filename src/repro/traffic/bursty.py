"""Bursty on/off traffic (two-state Markov-modulated arrivals).

Each input alternates between an *on* state — one packet every slot, all
to the same destination — and an idle *off* state. Burst (on-period)
lengths are geometric with mean ``mean_burst``; off-period lengths are
geometric with the mean required to hit the requested long-run load:

``load = E[on] / (E[on] + E[off])  =>  E[off] = E[on] * (1 - load) / load``

Correlated arrivals like these are what real packet traces look like
after segmentation into fixed-size cells; they inflate queueing delay
relative to Bernoulli traffic at the same load and are the standard
robustness check for schedulers tuned on i.i.d. arrivals.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.base import NO_ARRIVAL, TrafficPattern


class BurstyOnOff(TrafficPattern):
    """Per-input on/off Markov source with per-burst fixed destination."""

    name = "bursty"

    def __init__(self, n: int, load: float, seed: int = 0, mean_burst: float = 16.0):
        super().__init__(n, load, seed)
        if mean_burst < 1.0:
            raise ValueError(f"mean burst length must be >= 1, got {mean_burst}")
        self.mean_burst = mean_burst
        # Per-slot probability of ending the current on/off period.
        self._p_end_on = 1.0 / mean_burst
        if load >= 1.0:
            self._p_end_off = 1.0  # bursts run back to back, no idle slot
        elif load <= 0.0:
            self._p_end_off = 0.0  # never leaves off
        else:
            # Off periods are geometric with support {1, 2, ...}: at least
            # one idle slot separates bursts, so the achievable load is
            # capped at mean_burst / (mean_burst + 1); the mean is clamped
            # accordingly.
            mean_off = max(1.0, mean_burst * (1.0 - load) / load)
            self._p_end_off = 1.0 / mean_off
        self._on = np.zeros(n, dtype=bool)
        self._dst = np.zeros(n, dtype=np.int64)

    def reset(self) -> None:
        super().reset()
        self._on[:] = False
        self._dst[:] = 0

    def arrivals(self) -> np.ndarray:
        n = self.n
        # State transitions happen at slot boundaries, before generation.
        end = self.rng.random(n)
        turn_off = self._on & (end < self._p_end_on)
        turn_on = ~self._on & (end < self._p_end_off)
        if self.load >= 1.0:
            # Full load: a finished burst rolls straight into a new one
            # (fresh destination) with no idle slot.
            turn_on |= turn_off
        self._on = (self._on & ~turn_off) | turn_on
        # A fresh burst picks a new uniform destination and holds it.
        new_dst = self.rng.integers(0, n, size=n)
        self._dst = np.where(turn_on, new_dst, self._dst)
        return np.where(self._on, self._dst, NO_ARRIVAL).astype(np.int64)

    def rate_matrix(self) -> np.ndarray:
        return np.full((self.n, self.n), self.load / self.n)
