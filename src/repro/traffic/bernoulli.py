"""Uniform Bernoulli i.i.d. traffic — the Figure 12 workload.

Each slot, each input generates a packet with probability ``load``; the
destination is uniform over all ``n`` outputs (the paper's hosts may
send to themselves in simulation, and so may ours — ``self_traffic``
can be disabled to model the ``n-1``-queue variant mentioned in
Section 2).

Arrivals are drawn in chunks of ``batch`` slots with one vectorised
generator call per variate, which amortises numpy dispatch overhead
over the whole chunk. The default ``batch=1`` consumes the random
stream exactly like the historical per-slot implementation (PCG64
fills a ``(1, n)`` request the same way as an ``(n,)`` one —
regression-tested), so golden traces, sweep cache keys and seeded
experiments are unaffected; larger batches are an explicit opt-in to a
*different but equally valid* sample path.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.base import NO_ARRIVAL, TrafficPattern


class BernoulliUniform(TrafficPattern):
    """I.i.d. Bernoulli arrivals with uniformly distributed destinations."""

    name = "bernoulli"

    def __init__(
        self,
        n: int,
        load: float,
        seed: int = 0,
        self_traffic: bool = True,
        batch: int = 1,
    ):
        super().__init__(n, load, seed)
        self.self_traffic = self_traffic
        if not self_traffic and n < 2:
            raise ValueError("self_traffic=False needs at least 2 ports")
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        self.batch = batch
        #: Pre-drawn destination vectors, popped newest-last (reversed
        #: slot order so ``pop()`` is O(1)).
        self._pending: list[np.ndarray] = []

    def reset(self) -> None:
        super().reset()
        self._pending.clear()

    def arrivals(self) -> np.ndarray:
        if not self._pending:
            self._refill()
        return self._pending.pop()

    def _refill(self) -> None:
        batch, n = self.batch, self.n
        active = self.rng.random((batch, n)) < self.load
        dst = self.rng.integers(0, n, size=(batch, n))
        if not self.self_traffic:
            # Redraw destinations uniformly over the other n-1 ports by
            # shifting: pick an offset in [1, n-1] from self.
            offsets = self.rng.integers(1, n, size=(batch, n))
            dst = (np.arange(n) + offsets) % n
        chunk = np.where(active, dst, NO_ARRIVAL).astype(np.int64)
        self._pending = [chunk[k] for k in range(batch - 1, -1, -1)]

    def rate_matrix(self) -> np.ndarray:
        if self.self_traffic:
            return np.full((self.n, self.n), self.load / self.n)
        rate = np.full((self.n, self.n), self.load / (self.n - 1))
        np.fill_diagonal(rate, 0.0)
        return rate
