"""Uniform Bernoulli i.i.d. traffic — the Figure 12 workload.

Each slot, each input generates a packet with probability ``load``; the
destination is uniform over all ``n`` outputs (the paper's hosts may
send to themselves in simulation, and so may ours — ``self_traffic``
can be disabled to model the ``n-1``-queue variant mentioned in
Section 2).
"""

from __future__ import annotations

import numpy as np

from repro.traffic.base import NO_ARRIVAL, TrafficPattern


class BernoulliUniform(TrafficPattern):
    """I.i.d. Bernoulli arrivals with uniformly distributed destinations."""

    name = "bernoulli"

    def __init__(self, n: int, load: float, seed: int = 0, self_traffic: bool = True):
        super().__init__(n, load, seed)
        self.self_traffic = self_traffic
        if not self_traffic and n < 2:
            raise ValueError("self_traffic=False needs at least 2 ports")

    def arrivals(self) -> np.ndarray:
        active = self.rng.random(self.n) < self.load
        dst = self.rng.integers(0, self.n, size=self.n)
        if not self.self_traffic:
            # Redraw destinations uniformly over the other n-1 ports by
            # shifting: pick an offset in [1, n-1] from self.
            offsets = self.rng.integers(1, self.n, size=self.n)
            dst = (np.arange(self.n) + offsets) % self.n
        return np.where(active, dst, NO_ARRIVAL).astype(np.int64)

    def rate_matrix(self) -> np.ndarray:
        if self.self_traffic:
            return np.full((self.n, self.n), self.load / self.n)
        rate = np.full((self.n, self.n), self.load / (self.n - 1))
        np.fill_diagonal(rate, 0.0)
        return rate
