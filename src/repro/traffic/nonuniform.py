"""Nonuniform traffic patterns from the input-queued switching literature.

These go beyond the paper's uniform-traffic evaluation; they are the
standard stress cases (cf. McKeown's iSLIP paper and the BookSim
workload set) used by ``benchmarks/bench_nonuniform.py`` to probe where
least-choice prioritisation helps or hurts.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.base import NO_ARRIVAL, TrafficPattern


class Hotspot(TrafficPattern):
    """A fraction of all traffic converges on one hot output; the rest is
    uniform. ``fraction=1`` is a pure single-server queue on the hotspot."""

    name = "hotspot"

    def __init__(
        self,
        n: int,
        load: float,
        seed: int = 0,
        hotspot: int = 0,
        fraction: float = 0.5,
    ):
        super().__init__(n, load, seed)
        if not 0 <= hotspot < n:
            raise ValueError(f"hotspot port {hotspot} out of range for n={n}")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        self.hotspot = hotspot
        self.fraction = fraction

    def arrivals(self) -> np.ndarray:
        active = self.rng.random(self.n) < self.load
        uniform_dst = self.rng.integers(0, self.n, size=self.n)
        hot = self.rng.random(self.n) < self.fraction
        dst = np.where(hot, self.hotspot, uniform_dst)
        return np.where(active, dst, NO_ARRIVAL).astype(np.int64)

    def rate_matrix(self) -> np.ndarray:
        rate = np.full((self.n, self.n), self.load * (1 - self.fraction) / self.n)
        rate[:, self.hotspot] += self.load * self.fraction
        return rate


class Diagonal(TrafficPattern):
    """Two-destination diagonal traffic: input ``i`` sends 2/3 of its
    packets to output ``i`` and 1/3 to output ``(i+1) mod n``.

    Harsh for round-robin schedulers because per-output contention is
    concentrated on two inputs with very unequal demands.
    """

    name = "diagonal"

    def arrivals(self) -> np.ndarray:
        active = self.rng.random(self.n) < self.load
        second = self.rng.random(self.n) < (1.0 / 3.0)
        ports = np.arange(self.n)
        dst = np.where(second, (ports + 1) % self.n, ports)
        return np.where(active, dst, NO_ARRIVAL).astype(np.int64)

    def rate_matrix(self) -> np.ndarray:
        rate = np.zeros((self.n, self.n))
        ports = np.arange(self.n)
        rate[ports, ports] = self.load * 2.0 / 3.0
        rate[ports, (ports + 1) % self.n] = self.load / 3.0
        return rate


class LogDiagonal(TrafficPattern):
    """Exponentially decaying diagonal: ``P(dst = (i+k) mod n) ∝ 2^{-k}``.

    Every input has some demand for every output, but heavily skewed —
    a middle ground between uniform and diagonal.
    """

    name = "logdiagonal"

    def __init__(self, n: int, load: float, seed: int = 0):
        super().__init__(n, load, seed)
        weights = 2.0 ** -np.arange(n)
        self._offsets_p = weights / weights.sum()

    def arrivals(self) -> np.ndarray:
        active = self.rng.random(self.n) < self.load
        offsets = self.rng.choice(self.n, size=self.n, p=self._offsets_p)
        dst = (np.arange(self.n) + offsets) % self.n
        return np.where(active, dst, NO_ARRIVAL).astype(np.int64)

    def rate_matrix(self) -> np.ndarray:
        rate = np.zeros((self.n, self.n))
        for i in range(self.n):
            for k in range(self.n):
                rate[i, (i + k) % self.n] = self.load * self._offsets_p[k]
        return rate


class Permutation(TrafficPattern):
    """Fixed random permutation traffic: input ``i`` always sends to
    ``perm[i]``. Contention free — any work-conserving scheduler should
    sustain load 1.0, which makes this a good correctness canary."""

    name = "permutation"

    def __init__(
        self, n: int, load: float, seed: int = 0, permutation: np.ndarray | None = None
    ):
        super().__init__(n, load, seed)
        if permutation is None:
            # Derived, fixed permutation: independent of the arrival stream
            # so that reset() does not change the traffic matrix.
            permutation = np.random.default_rng(seed + 7919).permutation(n)
        permutation = np.asarray(permutation, dtype=np.int64)
        if sorted(permutation.tolist()) != list(range(n)):
            raise ValueError("permutation must be a permutation of 0..n-1")
        self.permutation = permutation

    def arrivals(self) -> np.ndarray:
        active = self.rng.random(self.n) < self.load
        return np.where(active, self.permutation, NO_ARRIVAL).astype(np.int64)

    def rate_matrix(self) -> np.ndarray:
        rate = np.zeros((self.n, self.n))
        rate[np.arange(self.n), self.permutation] = self.load
        return rate
