"""Trace recording and replay.

``TraceReplay`` feeds a pre-recorded arrival trace into the simulator —
useful for regression tests (bit-exact workloads), for replaying a
workload against several schedulers, and as the substitution point where
a user with real packet traces would plug them in. ``record_trace``
captures any pattern's output into a replayable array.
"""

from __future__ import annotations

import numpy as np

from repro.traffic.base import NO_ARRIVAL, TrafficPattern


class TraceReplay(TrafficPattern):
    """Replay a ``(slots, n)`` destination trace; wraps around at the end."""

    name = "trace"

    def __init__(self, trace: np.ndarray, wrap: bool = True):
        trace = np.asarray(trace, dtype=np.int64)
        if trace.ndim != 2:
            raise ValueError(f"trace must be 2-D (slots, n), got shape {trace.shape}")
        n = trace.shape[1]
        mask = trace != NO_ARRIVAL
        if mask.any() and (trace[mask].min() < 0 or trace[mask].max() >= n):
            raise ValueError("trace contains destinations out of range")
        load = float(mask.mean()) if trace.size else 0.0
        super().__init__(n, load, seed=0)
        self.trace = trace
        self.wrap = wrap
        self._cursor = 0

    def reset(self) -> None:
        super().reset()
        self._cursor = 0

    def arrivals(self) -> np.ndarray:
        if self._cursor >= len(self.trace):
            if not self.wrap:
                return np.full(self.n, NO_ARRIVAL, dtype=np.int64)
            self._cursor = 0
        row = self.trace[self._cursor]
        self._cursor += 1
        return row.copy()

    def rate_matrix(self) -> np.ndarray:
        counts = np.zeros((self.n, self.n), dtype=np.int64)
        for row in self.trace:
            mask = row != NO_ARRIVAL
            np.add.at(counts, (np.flatnonzero(mask), row[mask]), 1)
        slots = max(len(self.trace), 1)
        return counts / slots


def record_trace(pattern: TrafficPattern, slots: int) -> np.ndarray:
    """Capture ``slots`` slots of arrivals from ``pattern`` into a trace
    array suitable for :class:`TraceReplay`."""
    return np.stack([pattern.arrivals() for _ in range(slots)])
