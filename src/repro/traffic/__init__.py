"""Workload generators for the switch simulator.

The paper's Figure 12 uses uniform Bernoulli traffic ("Load is the
probability that a host generates a packet in a given time slot. The
destinations of the packets are uniformly distributed."). The other
patterns here are the standard stress workloads from the input-queued
switching literature (hotspot, diagonal, permutation, bursty on/off)
used by the beyond-paper benchmarks.
"""

from repro.traffic.base import NO_ARRIVAL, TrafficPattern, make_traffic, available_patterns
from repro.traffic.bernoulli import BernoulliUniform
from repro.traffic.bursty import BurstyOnOff
from repro.traffic.nonuniform import Diagonal, Hotspot, LogDiagonal, Permutation
from repro.traffic.trace import TraceReplay, record_trace

__all__ = [
    "NO_ARRIVAL",
    "TrafficPattern",
    "make_traffic",
    "available_patterns",
    "BernoulliUniform",
    "BurstyOnOff",
    "Hotspot",
    "Diagonal",
    "LogDiagonal",
    "Permutation",
    "TraceReplay",
    "record_trace",
]
