"""Reproduction of *The Least Choice First Scheduling Method for
High-Speed Network Switches* (Gura & Eberle, IPPS 2002).

Quickstart::

    import numpy as np
    from repro import LCFCentralRR

    scheduler = LCFCentralRR(4)
    requests = np.array(
        [
            [0, 1, 1, 0],  # I0 requests T1, T2
            [1, 0, 1, 1],  # I1 requests T0, T2, T3
            [1, 0, 1, 1],  # I2 requests T0, T2, T3
            [0, 1, 0, 0],  # I3 requests T1
        ],
        dtype=bool,
    )
    schedule = scheduler.schedule(requests)  # the Figure 3 example

Simulation (a Figure 12 data point)::

    from repro import SimConfig, run_simulation

    result = run_simulation(SimConfig(measure_slots=5000), "lcf_central", load=0.8)
    print(result.mean_latency)

See ``DESIGN.md`` for the full system inventory and ``EXPERIMENTS.md``
for the paper-versus-measured record.
"""

from repro._version import __version__
from repro.adapt import (
    AdaptConfig,
    AdaptiveLCF,
    BackupPortPolicy,
    HealthEstimator,
    ObliviousAdapter,
    make_adapter,
)
from repro.baselines import (
    FIFOScheduler,
    GreedyMaximal,
    ISLIP,
    PIM,
    RandomMaximal,
    WrappedWaveFront,
    available_schedulers,
    make_scheduler,
)
from repro.core import (
    IterativeScheduler,
    LCFCentral,
    LCFCentralRR,
    LCFCentralVariant,
    LCFDistributed,
    LCFDistributedRR,
    PrecalcResult,
    PrecalcScheduler,
    RRCoverage,
    Scheduler,
    check_precalc_integrity,
)
from repro.baselines.weighted import LQF, OCF
from repro.core.multicast import MulticastCell, MulticastScheduler
from repro.fabric import (
    ClosNetwork,
    CrossbarFabric,
    FabricResult,
    FabricShard,
    FabricSpec,
    make_router,
    run_fabric,
)
from repro.checkpoint import (
    CheckpointError,
    load_checkpoint,
    resume_simulation,
    save_checkpoint,
)
from repro.columnar import (
    ColumnarEngine,
    columnar_schedulers,
    columnar_supported,
    has_columnar_kernel,
    make_columnar_kernel,
    run_replicates,
)
from repro.fastpath import (
    FastISLIP,
    FastLCFCentral,
    FastLCFCentralRR,
    FastPIM,
    fast_schedulers,
    has_fast_kernel,
    make_fast_scheduler,
)
from repro.faults import FaultInjector, FaultPlan
from repro.matching import hopcroft_karp, maximum_matching_size
from repro.obs import (
    JsonlTracer,
    MatchingQualityProbe,
    MetricsRegistry,
    NullTracer,
    RingTracer,
    Tracer,
)
from repro.sim import (
    AdmissionController,
    InputQueuedSwitch,
    OutputBufferedSwitch,
    PipelinedSwitch,
    SimConfig,
    SimResult,
    make_admission,
    run_simulation,
)
from repro.sim.cioq import CIOQSwitch
from repro.sweep import (
    ParallelRunner,
    ResultCache,
    SweepPoint,
    SweepSpec,
    merge_results,
)
from repro.traffic import TrafficPattern, make_traffic
from repro.types import NO_GRANT

__all__ = [
    "__version__",
    "NO_GRANT",
    # core
    "Scheduler",
    "IterativeScheduler",
    "LCFCentral",
    "LCFCentralRR",
    "LCFCentralVariant",
    "LCFDistributed",
    "LCFDistributedRR",
    "RRCoverage",
    "PrecalcScheduler",
    "PrecalcResult",
    "check_precalc_integrity",
    # baselines
    "PIM",
    "ISLIP",
    "WrappedWaveFront",
    "FIFOScheduler",
    "GreedyMaximal",
    "RandomMaximal",
    "available_schedulers",
    "make_scheduler",
    # matching
    "hopcroft_karp",
    "maximum_matching_size",
    # simulation
    "SimConfig",
    "SimResult",
    "run_simulation",
    "AdmissionController",
    "make_admission",
    "InputQueuedSwitch",
    "OutputBufferedSwitch",
    "PipelinedSwitch",
    "CIOQSwitch",
    # fastpath kernels
    "FastLCFCentral",
    "FastLCFCentralRR",
    "FastISLIP",
    "FastPIM",
    "fast_schedulers",
    "has_fast_kernel",
    "make_fast_scheduler",
    # sweep engine
    "SweepSpec",
    "SweepPoint",
    "ParallelRunner",
    "ResultCache",
    "merge_results",
    # columnar replicate batching
    "ColumnarEngine",
    "run_replicates",
    "columnar_schedulers",
    "columnar_supported",
    "has_columnar_kernel",
    "make_columnar_kernel",
    # checkpoint/restore
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "resume_simulation",
    # fault injection
    "FaultPlan",
    "FaultInjector",
    # adaptive fault reaction
    "AdaptConfig",
    "AdaptiveLCF",
    "HealthEstimator",
    "BackupPortPolicy",
    "ObliviousAdapter",
    "make_adapter",
    # observability
    "Tracer",
    "NullTracer",
    "RingTracer",
    "JsonlTracer",
    "MetricsRegistry",
    "MatchingQualityProbe",
    # extensions
    "LQF",
    "OCF",
    "MulticastCell",
    "MulticastScheduler",
    "CrossbarFabric",
    "ClosNetwork",
    # multi-switch fabric simulation
    "FabricSpec",
    "FabricResult",
    "FabricShard",
    "run_fabric",
    "make_router",
    # traffic
    "TrafficPattern",
    "make_traffic",
]
