"""Replicate-batched request bitsets.

The columnar engine computes on boolean tensors (numpy vectorises those
directly), but exposes the packed ``(R, n, words)`` uint64 layout for
inspection and for cross-checking against the serial fastpath masks:
word ``w`` of row ``i`` holds bit ``j & 63`` for output ``j = 64*w + k``,
LSB-first — the same layout as :mod:`repro.fastpath.bitops` word tuples,
with :data:`~repro.fastpath.bitops.WORD_BITS`-bit words.
"""

from __future__ import annotations

import numpy as np

from repro.fastpath.bitops import WORD_BITS, word_count


def pack_requests(requests: np.ndarray) -> np.ndarray:
    """Pack a boolean request batch into uint64 bitset words.

    ``requests`` is ``(R, n, n)`` indexed ``[replicate, input, output]``;
    the result is ``(R, n, word_count(n))`` uint64, LSB-first within and
    across words (bit ``j`` of input ``i`` lives at
    ``packed[r, i, j >> 6] >> (j & 63) & 1``).
    """
    arr = np.ascontiguousarray(requests, dtype=np.uint8)
    reps, n, n2 = arr.shape
    if n != n2:
        raise ValueError(f"request batch must be (R, n, n), got {arr.shape}")
    words = word_count(n)
    padded = np.zeros((reps, n, words * WORD_BITS), dtype=np.uint8)
    padded[:, :, :n] = arr
    packed = np.packbits(padded, axis=2, bitorder="little")
    return packed.view(np.uint64).reshape(reps, n, words)


def unpack_requests(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_requests` — back to boolean ``(R, n, n)``."""
    reps = packed.shape[0]
    bits = np.unpackbits(
        packed.reshape(reps, n, -1).view(np.uint8), axis=2, bitorder="little"
    )
    return bits[:, :, :n].astype(bool)
