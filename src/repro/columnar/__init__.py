"""Columnar multi-replicate engine: R replicates per worker, one slot loop.

Every Figure-12-style sweep point runs R replicates of the same
(scheduler, load, n) configuration with different seeds. The serial
stack simulates them one at a time; this package packs them into
replicate-batched numpy state and advances all R per slot, so the
per-slot Python overhead — the cost the ROADMAP shows decaying the
bitset fastpath's win at high port counts — is paid once per *batch*
instead of once per replicate.

Layers:

* :mod:`repro.columnar.kernels` — replicate-batched scheduler kernels
  (``lcf_central``, ``lcf_central_rr``, ``islip``), bit-identical per
  replicate to the serial schedulers including tie-breaks and pointer
  state.
* :mod:`repro.columnar.engine` — the batched PQ/VOQ slot pipeline with
  per-replicate RNG streams and exact-order Welford statistics replay.
* :mod:`repro.columnar.run` — :func:`run_replicates`, the entry point
  that picks columnar / switch-reuse serial / plain serial per
  configuration and always returns serial-identical results.
* :mod:`repro.columnar.bench` — the ``columnar_*`` benchmark families
  (slots x replicates per second vs R serial fast runs) feeding
  ``BENCH_speed.json`` and the CI gate.

The sweep engine integrates through ``ParallelRunner(columnar=True)`` /
``lcf-sweep --columnar``; see docs/PERFORMANCE.md ("Batching
replicates") for measured scaling.
"""

from repro.columnar.bitpack import pack_requests, unpack_requests
from repro.columnar.engine import (
    DEFAULT_MAX_BYTES,
    ColumnarEngine,
    ColumnarMemoryError,
)
from repro.columnar.kernels import (
    COLUMNAR_SCHEDULER_NAMES,
    ColumnarISLIP,
    ColumnarKernel,
    ColumnarLCFCentral,
    columnar_schedulers,
    has_columnar_kernel,
    make_columnar_kernel,
)
from repro.columnar.run import columnar_supported, run_replicates

__all__ = [
    "COLUMNAR_SCHEDULER_NAMES",
    "DEFAULT_MAX_BYTES",
    "ColumnarEngine",
    "ColumnarISLIP",
    "ColumnarKernel",
    "ColumnarLCFCentral",
    "ColumnarMemoryError",
    "columnar_schedulers",
    "columnar_supported",
    "has_columnar_kernel",
    "make_columnar_kernel",
    "pack_requests",
    "run_replicates",
    "unpack_requests",
]
