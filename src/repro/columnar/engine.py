"""The columnar simulation engine: R replicates of one config per process.

One :class:`ColumnarEngine` packs R replicates of a single
(scheduler, load, n) simulation into replicate-batched numpy state —
per-input packet queues and per-pair VOQs as circular timestamp buffers
with a leading replicate axis, the request state as a boolean
``(R, n, n)`` tensor maintained incrementally — and advances all R
replicates one slot per iteration with vectorised stage kernels. The
scheduling stage itself is a :mod:`repro.columnar.kernels` batched
kernel.

**Bit-identity contract.** Per replicate, every statistic the engine
produces — Welford latency moments, min/max, percentile samples,
offered/forwarded/dropped counters, service counts, and the traffic
generator's end-of-run RNG position — is identical to running the
serial :func:`repro.sim.simulator.run_simulation` with that replicate's
seed. Two design points make this exact rather than approximate:

* each replicate owns its serial :class:`~repro.traffic.TrafficPattern`
  instance, called once per slot, so the RNG sample path cannot differ;
* latency statistics are *replayed* into per-replicate Welford
  accumulators in the serial order (slot-major, input-ascending) —
  Welford is sequential in floating point, so the engine defers the
  scalar recurrence to batched flushes instead of changing it.

Queue buffers start shallow and double on demand up to the configured
capacities; if the projected allocation exceeds ``max_bytes`` the
engine raises :class:`ColumnarMemoryError`, and the caller
(:func:`repro.columnar.run.run_replicates`) reruns the block serially —
safe precisely because both paths are bit-identical.
"""

from __future__ import annotations

import math

import numpy as np

from repro.columnar.bitpack import pack_requests
from repro.columnar.kernels import ColumnarKernel, make_columnar_kernel
from repro.sim.config import SimConfig
from repro.sim.metrics import OnlineStats, latency_percentiles
from repro.sim.simulator import SimResult
from repro.traffic.base import NO_ARRIVAL, make_traffic
from repro.types import NO_GRANT

#: Default ceiling on the engine's large buffer allocations (bytes).
DEFAULT_MAX_BYTES = 2 * 1024**3

#: Flush the deferred latency chunks after roughly this many samples.
_FLUSH_SAMPLES = 1 << 16

#: Initial circular-buffer depths (packets); doubled on demand.
_PQ_DEPTH0 = 8
_VOQ_DEPTH0 = 4


class ColumnarMemoryError(RuntimeError):
    """Raised when growing the batched queue buffers would exceed the
    engine's memory ceiling; callers fall back to serial execution."""


class ColumnarEngine:
    """Batched simulator for R replicates of one crossbar configuration.

    ``seeds`` gives each replicate its traffic/config seed (the serial
    equivalent is ``run_simulation(config.with_(seed=s), ...)`` per
    seed). Only registry traffic names and schedulers with a columnar
    kernel are supported — eligibility screening lives in
    :func:`repro.columnar.run.columnar_supported`.
    """

    def __init__(
        self,
        config: SimConfig,
        scheduler_name: str,
        load: float,
        seeds: list[int],
        *,
        traffic: str = "bernoulli",
        traffic_kwargs: dict | None = None,
        collect_service: bool = False,
        collect_percentiles: bool = False,
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        n = config.n_ports
        reps = len(seeds)
        if reps < 1:
            raise ValueError("need at least one replicate seed")
        self.config = config
        self.scheduler_name = scheduler_name
        self.load = load
        self.seeds = list(seeds)
        self.collect_service = collect_service
        self.collect_percentiles = collect_percentiles
        self.max_bytes = max_bytes
        self.measuring = False

        self.kernel: ColumnarKernel = make_columnar_kernel(
            scheduler_name, n, reps, iterations=config.iterations
        )
        #: One serial traffic pattern per replicate (public: equivalence
        #: tests compare end-of-run RNG positions against serial runs).
        self.patterns = [
            make_traffic(traffic, n, load, seed=s, **(traffic_kwargs or {}))
            for s in self.seeds
        ]

        self._n = n
        self._reps = reps
        rn = reps * n
        # Index grids: _cell_rn[r, i] = r*n + i rows into the PQ buffers;
        # _vq_base[r, i] + dst rows into the VOQ buffers;
        # _reqT_base[r, i] + dst*n flat offsets into the request tensor.
        self._cell_rn = np.arange(rn).reshape(reps, n)
        r_grid, i_grid = np.divmod(self._cell_rn, n)
        self._vq_base = self._cell_rn * n
        self._reqT_base = r_grid * (n * n) + i_grid

        # Per-input packet queues: circular (dst, timestamp) buffers.
        self._pq_depth = min(_PQ_DEPTH0, config.pq_capacity)
        self._pq_dst = np.zeros((rn, self._pq_depth), dtype=np.int64)
        self._pq_ts = np.zeros((rn, self._pq_depth), dtype=np.int64)
        self._pq_head = np.zeros((reps, n), dtype=np.int64)
        self._pq_len = np.zeros((reps, n), dtype=np.int64)
        self._pq_dropped = np.zeros((reps, n), dtype=np.int64)

        # Per-pair VOQs: circular timestamp buffers, one row per
        # (replicate, input, output) triple.
        self._voq_depth = min(_VOQ_DEPTH0, config.voq_capacity)
        self._voq_ts = np.zeros((rn * n, self._voq_depth), dtype=np.int64)
        self._voq_head = np.zeros(rn * n, dtype=np.int64)
        self._voq_len = np.zeros(rn * n, dtype=np.int64)

        # Transposed request tensor [replicate, output, input] — the
        # layout the kernels consume — plus its flat view for scatter
        # updates at _reqT_base + dst*n.
        self._reqT = np.zeros((reps, n, n), dtype=bool)
        self._req_flat = self._reqT.reshape(-1)

        self._offered = np.zeros(reps, dtype=np.int64)
        self._forwarded = np.zeros(reps, dtype=np.int64)
        self._stats = [OnlineStats() for _ in range(reps)]
        self._samples: list[list[np.ndarray]] | None = (
            [[] for _ in range(reps)] if collect_percentiles else None
        )
        if collect_service:
            self._svc = np.zeros((reps, n, n), dtype=np.int64)
            self._svc_flat = self._svc.reshape(-1)
            self._svc_base = self._cell_rn * n
        else:
            self._svc = None

        # Deferred Welford replay: per-slot (delay values, flat r*n+i
        # positions) chunks, flushed in serial order per replicate.
        self._chunk_vals: list[np.ndarray] = []
        self._chunk_flat: list[np.ndarray] = []
        self._chunk_count = 0

        self._arr = np.empty((reps, n), dtype=np.int64)
        # Fail fast when even the shallow initial buffers exceed the
        # ceiling — callers fall back before simulating a single slot.
        self._check_budget(0)

    # -- memory management -------------------------------------------

    def _buffer_bytes(self) -> int:
        return self._pq_dst.nbytes + self._pq_ts.nbytes + self._voq_ts.nbytes

    def _check_budget(self, extra: int) -> None:
        total = self._buffer_bytes() + extra
        if total > self.max_bytes:
            raise ColumnarMemoryError(
                f"columnar buffers would need {total} bytes "
                f"(limit {self.max_bytes}); falling back to serial"
            )

    @staticmethod
    def _regrow(buf: np.ndarray, head: np.ndarray, depth: int, new_depth: int) -> np.ndarray:
        """Return ``buf`` re-based so every circular row starts at 0."""
        idx = (head[:, np.newaxis] + np.arange(depth)) % depth
        out = np.empty((buf.shape[0], new_depth), dtype=buf.dtype)
        out[:, :depth] = np.take_along_axis(buf, idx, axis=1)
        return out

    def _grow_pq(self) -> None:
        new_depth = min(self.config.pq_capacity, self._pq_depth * 2)
        self._check_budget(
            (new_depth - self._pq_depth) * self._pq_dst.shape[0] * 8 * 2
        )
        head = self._pq_head.reshape(-1)
        self._pq_dst = self._regrow(self._pq_dst, head, self._pq_depth, new_depth)
        self._pq_ts = self._regrow(self._pq_ts, head, self._pq_depth, new_depth)
        self._pq_head[:] = 0
        self._pq_depth = new_depth

    def _grow_voq(self) -> None:
        new_depth = min(self.config.voq_capacity, self._voq_depth * 2)
        self._check_budget(
            (new_depth - self._voq_depth) * self._voq_ts.shape[0] * 8
        )
        self._voq_ts = self._regrow(
            self._voq_ts, self._voq_head, self._voq_depth, new_depth
        )
        self._voq_head[:] = 0
        self._voq_depth = new_depth

    # -- inspection ---------------------------------------------------

    def request_bitsets(self) -> np.ndarray:
        """Current request state as ``(R, n, words)`` uint64 bitsets —
        the serial ``VOQSet.row_masks`` / ``row_words`` layout, for
        cross-checks and debugging."""
        return pack_requests(self._reqT.transpose(0, 2, 1))

    def voq_occupancy(self) -> np.ndarray:
        """Current per-pair queue depths as an ``(R, n, n)`` array."""
        return self._voq_len.reshape(self._reps, self._n, self._n).copy()

    # -- slot pipeline ------------------------------------------------

    def _slot(self, slot: int) -> None:
        n = self._n
        measuring = self.measuring
        arr = self._arr
        for r, pattern in enumerate(self.patterns):
            arr[r] = pattern.arrivals()

        # 1. Generation into PQs (drop when full, count drops always,
        #    count offered only while measuring — the serial stage 1).
        valid = arr != NO_ARRIVAL
        if measuring:
            self._offered += valid.sum(axis=1)
        can = valid & (self._pq_len < self.config.pq_capacity)
        if (can & (self._pq_len >= self._pq_depth)).any():
            self._grow_pq()
        pos = self._pq_head + self._pq_len
        np.subtract(pos, self._pq_depth, out=pos, where=pos >= self._pq_depth)
        cells = self._cell_rn[can]
        slots_in = pos[can]
        self._pq_dst[cells, slots_in] = arr[can]
        self._pq_ts[cells, slots_in] = slot
        self._pq_len += can
        self._pq_dropped += valid & ~can

        # 2. Injection: one packet per input per slot, head-of-line
        #    blocking when the destination VOQ is full.
        has = self._pq_len > 0
        dst = np.where(has, self._pq_dst[self._cell_rn, self._pq_head], 0)
        vcell = self._vq_base + dst
        vlen = self._voq_len[vcell]
        do = has & (vlen < self.config.voq_capacity)
        if (do & (vlen >= self._voq_depth)).any():
            self._grow_voq()
        ts = self._pq_ts[self._cell_rn, self._pq_head]
        new_head = self._pq_head + 1
        np.subtract(
            new_head, self._pq_depth, out=new_head, where=new_head >= self._pq_depth
        )
        np.copyto(self._pq_head, new_head, where=do)
        self._pq_len -= do
        vpos = self._voq_head[vcell] + vlen
        np.subtract(vpos, self._voq_depth, out=vpos, where=vpos >= self._voq_depth)
        injected = vcell[do]
        self._voq_ts[injected, vpos[do]] = ts[do]
        self._voq_len[injected] += 1
        self._req_flat[(self._reqT_base + dst * n)[do]] = True

        # 3. Scheduling over the live request tensor (read-only kernel).
        grants = self.kernel.schedule_batch(self._reqT)

        # 4. Forwarding: pop matched VOQ heads, clear emptied request
        #    bits, log latencies for the deferred Welford replay.
        gm = grants != NO_GRANT
        g0 = np.where(gm, grants, 0)
        vcell = self._vq_base + g0
        vhead = self._voq_head[vcell]
        ts = self._voq_ts[vcell, vhead]
        forwarded_cells = vcell[gm]
        new_head = vhead + 1
        np.subtract(
            new_head, self._voq_depth, out=new_head, where=new_head >= self._voq_depth
        )
        self._voq_head[forwarded_cells] = new_head[gm]
        self._voq_len[forwarded_cells] -= 1
        emptied = self._voq_len[forwarded_cells] == 0
        req_idx = (self._reqT_base + g0 * n)[gm]
        self._req_flat[req_idx[emptied]] = False
        if measuring:
            self._forwarded += gm.sum(axis=1)
            flat = np.flatnonzero(gm)
            delay = (slot + 1 - ts).ravel()[flat]
            self._chunk_vals.append(delay)
            self._chunk_flat.append(flat)
            self._chunk_count += len(flat)
            if self._svc is not None:
                self._svc_flat[(self._svc_base + g0)[gm]] += 1

    def _flush(self) -> None:
        """Replay the deferred latency chunks into the per-replicate
        Welford accumulators, in exact serial order (slot-major within
        each replicate, input-ascending within each slot)."""
        if not self._chunk_count:
            return
        vals = np.concatenate(self._chunk_vals)
        reps = np.concatenate(self._chunk_flat) // self._n
        self._chunk_vals.clear()
        self._chunk_flat.clear()
        self._chunk_count = 0
        for r in range(self._reps):
            mine = vals[reps == r]
            if not mine.size:
                continue
            if self._samples is not None:
                self._samples[r].append(mine)
            stats = self._stats[r]
            count = stats.count
            mean = stats._mean
            m2 = stats._m2
            lo = stats.min
            hi = stats.max
            # The serial OnlineStats.add recurrence on Python ints, one
            # sample at a time — sequential on purpose: Welford is not
            # reorderable in floating point.
            for value in mine.tolist():
                count += 1
                delta = value - mean
                mean += delta / count
                m2 += delta * (value - mean)
                if value < lo:
                    lo = value
                if value > hi:
                    hi = value
            stats.count = count
            stats._mean = mean
            stats._m2 = m2
            stats.min = lo
            stats.max = hi

    def _package(self, r: int) -> SimResult:
        """Mirror of the serial ``_package_result`` for one replicate."""
        config = self.config.with_(seed=self.seeds[r])
        stats = self._stats[r]
        if self.collect_percentiles:
            chunks = self._samples[r]
            samples = (
                np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
            )
            percentiles = latency_percentiles(samples)
        else:
            percentiles = {}
        port_slots = config.n_ports * config.measure_slots
        forwarded = int(self._forwarded[r])
        return SimResult(
            scheduler=self.scheduler_name,
            load=self.load,
            config=config,
            mean_latency=stats.mean,
            std_latency=stats.std,
            min_latency=stats.min if stats.count else math.nan,
            max_latency=stats.max if stats.count else math.nan,
            offered=int(self._offered[r]),
            forwarded=forwarded,
            dropped=int(self._pq_dropped[r].sum()),
            throughput=forwarded / port_slots if port_slots else math.nan,
            percentiles=percentiles,
            service_counts=self._svc[r].copy() if self._svc is not None else None,
            shed=0,
        )

    def run(self) -> list[SimResult]:
        """Drive warmup + measurement for all replicates; returns one
        :class:`~repro.sim.simulator.SimResult` per seed, in seed order."""
        config = self.config
        warmup = config.warmup_slots
        for slot in range(config.total_slots):
            if slot == warmup:
                self.measuring = True
            self._slot(slot)
            if self._chunk_count >= _FLUSH_SAMPLES:
                self._flush()
        self._flush()
        return [self._package(r) for r in range(self._reps)]
