"""The ``columnar_*`` benchmark families: replicate batching vs serial.

The quantity defended here is *replicate-slots per second* — simulated
slots times replicates, per wall-clock second — for a whole replicate
block. The reference is what the block costs without the columnar
engine: R independent fast serial runs (through the same
:func:`~repro.columnar.run.run_replicates` entry point with
``columnar=False``, so the serial side also gets the switch-reuse
optimisation — the honest baseline). ``speedup`` is their ratio, the
same host-portable signal the kernel families gate on.

Report families are named ``columnar_<scheduler>_r<R>`` (e.g.
``columnar_lcf_central_rr_r32``) with the standard per-width cell
schema, so they merge into ``BENCH_speed.json`` and flow through
``tools/check_bench_regression.py`` unchanged. The committed claim —
the acceptance bar of the columnar work — is the
``columnar_lcf_central_rr:r32`` family at >= 3x for n=64.

Whole-simulation timing is expensive, so the suite scales its slot
budget down with width (:func:`scaled_slots`, the analogue of
:func:`repro.fastpath.bench.scaled_cycles`) and reports the median of
``repeats`` windows.
"""

from __future__ import annotations

import statistics
import time

from repro.columnar.kernels import columnar_schedulers
from repro.columnar.run import run_replicates
from repro.fastpath.bench import REPORT_VERSION, _platform_fields
from repro.sim.config import SimConfig

#: Schedulers the columnar families measure — exactly the covered set.
DEFAULT_COLUMNAR_SCHEDULERS = columnar_schedulers()

#: Replicate counts per family (the sweep's common block sizes).
DEFAULT_REPLICATES = (8, 32)

#: Switch widths per cell. 128 exercises the multi-word request packing
#: and the widths where serial per-slot Python overhead peaks.
DEFAULT_COLUMNAR_SIZES = (16, 64, 128)

#: Offered load of the benchmark runs — the paper's high-load region,
#: where queues are occupied and the schedulers do real work.
DEFAULT_LOAD = 0.9

#: Slot budget at the anchor width (full at ``n <= SLOT_ANCHOR``).
DEFAULT_WARMUP_SLOTS = 200
DEFAULT_MEASURE_SLOTS = 600
SLOT_ANCHOR = 64


def scaled_slots(slots: int, n: int, anchor: int = SLOT_ANCHOR, floor: int = 100) -> int:
    """Per-cell slot count: full up to ``anchor`` ports, then inverse
    with width so wall time per cell stays roughly flat (a slot costs
    about O(n) on both the columnar and the serial path)."""
    if n <= anchor:
        return slots
    return max(floor, slots * anchor // n)


def measure_columnar_cell(
    name: str,
    n: int,
    replicates: int,
    load: float = DEFAULT_LOAD,
    warmup_slots: int = DEFAULT_WARMUP_SLOTS,
    measure_slots: int = DEFAULT_MEASURE_SLOTS,
    repeats: int = 3,
) -> dict[str, float]:
    """Columnar vs serial replicate-slot rates for one (name, n, R) cell.

    Both paths run the identical replicate block (same config, same
    seeds, bit-identical results); only the execution strategy differs.
    """
    config = SimConfig(
        n_ports=n,
        warmup_slots=scaled_slots(warmup_slots, n),
        measure_slots=scaled_slots(measure_slots, n),
    )
    rep_slots = config.total_slots * replicates

    def rate(columnar: bool) -> float:
        windows = []
        for _ in range(repeats):
            start = time.perf_counter()
            run_replicates(
                config, name, load, replicates, columnar=columnar, fast=True
            )
            windows.append(rep_slots / (time.perf_counter() - start))
        return statistics.median(windows)

    serial = rate(columnar=False)
    columnar = rate(columnar=True)
    return {
        "reference_slots_per_sec": round(serial, 1),
        "fast_slots_per_sec": round(columnar, 1),
        "speedup": round(columnar / serial, 3),
    }


def columnar_family(name: str, replicates: int) -> str:
    """Report family name of one (scheduler, R) pair."""
    return f"columnar_{name}_r{replicates}"


def run_columnar_suite(
    names: tuple[str, ...] | None = None,
    replicates: tuple[int, ...] = DEFAULT_REPLICATES,
    sizes: tuple[int, ...] = DEFAULT_COLUMNAR_SIZES,
    load: float = DEFAULT_LOAD,
    warmup_slots: int = DEFAULT_WARMUP_SLOTS,
    measure_slots: int = DEFAULT_MEASURE_SLOTS,
    repeats: int = 3,
    progress=None,
) -> dict:
    """Measure every (scheduler, R, n) cell; same report schema as
    :func:`repro.fastpath.bench.run_speed_suite`, families named
    ``columnar_<scheduler>_r<R>``."""
    if names is None:
        names = DEFAULT_COLUMNAR_SCHEDULERS
    report: dict = {
        "version": REPORT_VERSION,
        "load": load,
        "warmup_slots": warmup_slots,
        "measure_slots": measure_slots,
        "repeats": repeats,
        **_platform_fields(),
        "schedulers": {},
    }
    for name in names:
        for r in replicates:
            cells = report["schedulers"].setdefault(columnar_family(name, r), {})
            for n in sizes:
                cells[str(n)] = cell = measure_columnar_cell(
                    name,
                    n,
                    r,
                    load=load,
                    warmup_slots=warmup_slots,
                    measure_slots=measure_slots,
                    repeats=repeats,
                )
                if progress is not None:
                    progress(
                        f"{columnar_family(name, r):<28} n={n:<3} "
                        f"serial {cell['reference_slots_per_sec']:>9.0f} "
                        f"rep-slots/s  columnar {cell['fast_slots_per_sec']:>9.0f} "
                        f"rep-slots/s  {cell['speedup']:.2f}x"
                    )
    return report
