"""`run_replicates`: the multi-replicate entry point.

One call simulates R replicates (same scheduler/load/config, different
seeds) and returns one :class:`~repro.sim.simulator.SimResult` per
seed, in seed order. Three execution strategies, all bit-identical per
replicate:

1. **Columnar** (default when eligible): the
   :class:`~repro.columnar.engine.ColumnarEngine` advances all R
   replicates per slot with batched numpy kernels — the fast path for
   covered schedulers (see
   :func:`~repro.columnar.kernels.columnar_schedulers`) on plain
   registry traffic with no instrumentation attached.
2. **Serial with switch reuse**: one
   :class:`~repro.sim.InputQueuedSwitch` is built for the cell and
   :meth:`~repro.sim.InputQueuedSwitch.reset_run` re-arms it per
   replicate (fresh scheduler + traffic seed) — rebuilding the ``n^2``
   VOQ structures per replicate showed up in sweep ``--profile`` dumps.
3. **Plain serial**: one :func:`~repro.sim.run_simulation` per seed,
   for everything the other two cannot express (dedicated switch
   models, faults, adapters, admission control, tracing).

Eligibility is decided here (:func:`columnar_supported`), so callers
can pass ``columnar=True`` unconditionally — uncovered configurations
fall back, they never fail. A :class:`ColumnarMemoryError` mid-run
(queue growth beyond the memory ceiling) also falls back, rerunning the
whole block serially from scratch — safe because both paths produce
identical results.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.baselines.registry import make_scheduler
from repro.columnar.engine import (
    DEFAULT_MAX_BYTES,
    ColumnarEngine,
    ColumnarMemoryError,
)
from repro.columnar.kernels import has_columnar_kernel
from repro.fastpath.registry import make_fast_scheduler
from repro.faults.plan import FaultPlan
from repro.sim.config import SimConfig
from repro.sim.crossbar import InputQueuedSwitch
from repro.sim.simulator import SimResult, _drive, _package_result, run_simulation
from repro.traffic.base import make_traffic


def _null_faults(faults) -> bool:
    """Whether ``faults`` resolves to no injector at all (None or a null
    plan) — the serial driver treats both identically."""
    if faults is None:
        return True
    plan = faults if isinstance(faults, FaultPlan) else FaultPlan.from_spec(faults)
    return plan.is_null


def columnar_supported(
    scheduler_name: str,
    *,
    traffic: object = "bernoulli",
    faults=None,
    adapter=None,
    admission=None,
    tracer_factory=None,
) -> tuple[bool, str]:
    """Whether a replicate block can run on the columnar engine.

    Returns ``(supported, reason)`` — ``reason`` names the first
    blocking feature when unsupported (useful in logs and tests).
    """
    if not has_columnar_kernel(scheduler_name):
        return False, f"no columnar kernel for scheduler {scheduler_name!r}"
    if not isinstance(traffic, str):
        return False, "traffic must be a registry name, not a pattern instance"
    if not _null_faults(faults):
        return False, "fault injection runs per replicate"
    if adapter is not None:
        return False, "adaptive scheduling runs per replicate"
    if admission is not None:
        return False, "admission control runs per replicate"
    if tracer_factory is not None:
        return False, "tracing runs per replicate"
    return True, ""


def _run_serial(
    config: SimConfig,
    scheduler_name: str,
    load: float,
    seeds: list[int],
    *,
    traffic,
    traffic_kwargs,
    collect_service: bool,
    collect_percentiles: bool,
    faults,
    adapter,
    admission,
    tracer_factory,
    fast: bool,
) -> list[SimResult]:
    reuse = (
        isinstance(traffic, str)
        and scheduler_name not in ("fifo", "outbuf")
        and _null_faults(faults)
        and adapter is None
        and admission is None
        and tracer_factory is None
    )
    if not reuse:
        return [
            run_simulation(
                config.with_(seed=seed),
                scheduler_name,
                load,
                traffic=traffic,
                traffic_kwargs=traffic_kwargs,
                collect_service=collect_service,
                collect_percentiles=collect_percentiles,
                tracer=tracer_factory(index) if tracer_factory is not None else None,
                faults=faults,
                adapter=adapter,
                admission=admission,
                fast=fast,
            )
            for index, seed in enumerate(seeds)
        ]

    # Build the switch once for the cell; per replicate only the
    # scheduler and traffic seeds change (satellite of the columnar
    # work: the n^2 VOQ structures dominate build time).
    maker = make_fast_scheduler if fast else make_scheduler
    switch: InputQueuedSwitch | None = None
    results = []
    for seed in seeds:
        cfg = config.with_(seed=seed)
        pattern = make_traffic(
            traffic, cfg.n_ports, load, seed=seed, **(traffic_kwargs or {})
        )
        scheduler = maker(
            scheduler_name, cfg.n_ports, iterations=cfg.iterations, seed=seed
        )
        if switch is None:
            switch = InputQueuedSwitch(
                cfg,
                scheduler,
                collect_service=collect_service,
                collect_latencies=collect_percentiles,
            )
        else:
            switch.reset_run(scheduler)
        _drive(cfg, switch, pattern, None)
        results.append(
            _package_result(cfg, scheduler_name, load, switch, collect_percentiles)
        )
    return results


def run_replicates(
    config: SimConfig,
    scheduler_name: str,
    load: float,
    replicates: int | None = None,
    *,
    seeds: Sequence[int] | None = None,
    traffic: str = "bernoulli",
    traffic_kwargs: dict | None = None,
    collect_service: bool = False,
    collect_percentiles: bool = False,
    faults=None,
    adapter=None,
    admission=None,
    tracer_factory: Callable[[int], object] | None = None,
    fast: bool = True,
    columnar: bool = True,
    max_bytes: int = DEFAULT_MAX_BYTES,
) -> list[SimResult]:
    """Simulate R replicates of one (scheduler, load) cell.

    Replicate ``r`` is bit-identical to
    ``run_simulation(config.with_(seed=seeds[r]), scheduler_name, load,
    ...)`` — the execution strategy (columnar, switch-reuse serial, or
    plain serial) is an implementation detail, never part of the
    experiment definition (sweep cache keys ignore it, exactly like
    ``fast``).

    ``seeds`` defaults to ``config.seed + r`` for ``r in
    range(replicates)`` — the sweep engine's replicate seeding. Pass
    explicit seeds to run a subset (e.g. the cache misses of a cell).

    ``tracer_factory`` (replicate index -> tracer) attaches a tracer
    per replicate; like faults/adapters/admission it forces the serial
    path, where traces are the serial traces by construction.
    """
    if seeds is None:
        if replicates is None:
            raise ValueError("pass replicates or explicit seeds")
        if replicates < 1:
            raise ValueError(f"need at least one replicate, got {replicates}")
        seed_list = [config.seed + r for r in range(replicates)]
    else:
        seed_list = [int(s) for s in seeds]
        if not seed_list:
            raise ValueError("seeds must be non-empty")
        if replicates is not None and replicates != len(seed_list):
            raise ValueError(
                f"replicates={replicates} disagrees with {len(seed_list)} seeds"
            )

    if columnar:
        supported, _ = columnar_supported(
            scheduler_name,
            traffic=traffic,
            faults=faults,
            adapter=adapter,
            admission=admission,
            tracer_factory=tracer_factory,
        )
        if supported:
            try:
                return ColumnarEngine(
                    config,
                    scheduler_name,
                    load,
                    seed_list,
                    traffic=traffic,
                    traffic_kwargs=traffic_kwargs,
                    collect_service=collect_service,
                    collect_percentiles=collect_percentiles,
                    max_bytes=max_bytes,
                ).run()
            except ColumnarMemoryError:
                # Buffers outgrew the ceiling (at allocation or during
                # queue growth); rerun serially from scratch
                # (bit-identical, just slower).
                pass

    return _run_serial(
        config,
        scheduler_name,
        load,
        seed_list,
        traffic=traffic,
        traffic_kwargs=traffic_kwargs,
        collect_service=collect_service,
        collect_percentiles=collect_percentiles,
        faults=faults,
        adapter=adapter,
        admission=admission,
        tracer_factory=tracer_factory,
        fast=fast,
    )
