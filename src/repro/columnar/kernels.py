"""Batched scheduler kernels: R replicates advanced per call.

A columnar kernel is the replicate-batched twin of a serial
:class:`~repro.core.base.Scheduler`: one call to
:meth:`ColumnarKernel.schedule_batch` performs exactly one scheduling
cycle for every replicate at once, over a request tensor with a leading
replicate axis. The grants, the tie-breaks, and the end-of-cycle state
(round-robin offsets, grant/accept pointers) are **bit-identical per
replicate** to running R independent serial schedulers — enforced by
the hypothesis suites in ``tests/columnar/``.

Layout convention: kernels consume the *transposed* request tensor
``reqT`` of shape ``(R, n, n)`` indexed ``[replicate, output, input]``,
so the per-output candidate slice ``reqT[:, col, :]`` that every grant
step needs is a near-contiguous ``(R, n)`` view. Kernels treat the
tensor as **read-only** — the engine maintains it incrementally and
passes the live tensor without copying.
:func:`repro.columnar.bitpack.pack_requests` converts to the
``(R, n, words)`` uint64 bitset layout for inspection and for
cross-checks against the serial VOQ masks.

Why this wins: the serial fast path already replaced numpy-per-call
overhead with machine-word bit tricks, but it still pays the Python
interpreter once per (replicate, output) grant step. Here each grant
step is a handful of numpy calls over ``(R, n)`` arrays, so the
interpreter cost is amortised across all R replicates — the sweep
engine's process parallelism then multiplies this per-worker
vectorisation instead of replacing it.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import IterativeScheduler, _INT64_MAX
from repro.core.lcf_central import RRCoverage
from repro.types import NO_GRANT

# CHAIN[s, i] = (i - s) % n: the rotating tie-break chain starting at
# ``s``, as one gatherable row per start position. Shared by every
# kernel instance of a given size (read-only).
_CHAIN_CACHE: dict[int, np.ndarray] = {}


# Poison value for a matched input's nrq key, and the threshold that
# separates real composite keys (<= n^2 + n) from poisoned ones. The
# loop decrements a poisoned key at most n times by n, so it never
# drops below _MATCHED - n^2 >> _MATCHED_THRESHOLD for any sane n.
_MATCHED = np.int64(1) << 40
_MATCHED_THRESHOLD = np.int64(1) << 39


def chain_table(n: int) -> np.ndarray:
    """The ``(n, n)`` rotating-chain ordinal table for ``n`` ports."""
    table = _CHAIN_CACHE.get(n)
    if table is None:
        idx = np.arange(n, dtype=np.int64)
        table = (idx[np.newaxis, :] - idx[:, np.newaxis]) % n
        table.setflags(write=False)
        _CHAIN_CACHE[n] = table
    return table


class ColumnarKernel:
    """Base class for replicate-batched scheduler kernels."""

    #: Registry name of the serial scheduler this kernel batches.
    name: str = "columnar"

    def __init__(self, n: int, replicates: int):
        if n < 1:
            raise ValueError(f"switch must have at least 1 port, got n={n}")
        if replicates < 1:
            raise ValueError(f"need at least 1 replicate, got R={replicates}")
        self.n = n
        self.replicates = replicates

    def schedule_batch(self, requests_t: np.ndarray) -> np.ndarray:
        """One scheduling cycle for every replicate.

        ``requests_t`` is the transposed request tensor
        ``(R, n_out, n_in)`` (boolean), treated as read-only. Returns an
        int64 ``(R, n)`` schedule batch: row ``r`` is the serial
        scheduler's schedule (output per input, or
        :data:`~repro.types.NO_GRANT`).
        """
        raise NotImplementedError

    def reset(self) -> None:
        """Restore every replicate's power-on scheduler state."""


class ColumnarLCFCentral(ColumnarKernel):
    """Batched central LCF (``lcf_central`` / ``lcf_central_rr``).

    The Figure 2 offsets ``(I, J)`` advance data-independently (every
    cycle, regardless of the requests), so a single scalar offset pair
    serves all replicates — replicates only diverge in their request
    state, never in the round-robin position.

    Per output step the serial ``rotating_argmin`` composite key
    ``nrq * n + chain_pos`` is unique among candidates, so a plain
    ``argmin`` over ``np.where(candidates, key, INT64_MAX)`` reproduces
    the serial grant exactly, replicate by replicate. Granted inputs are
    excluded from later steps by poisoning their ``nrq`` key to
    :data:`_MATCHED` (far above any real composite key, far below the
    no-request sentinel) rather than by clearing request rows — the
    input tensor stays pristine and the hot loop saves a mask AND plus
    a scatter per step.
    """

    def __init__(self, n: int, replicates: int, coverage: RRCoverage):
        super().__init__(n, replicates)
        if coverage not in (RRCoverage.NONE, RRCoverage.DIAGONAL):
            raise ValueError(
                f"columnar LCF supports NONE/DIAGONAL coverage, got {coverage}"
            )
        self.coverage = coverage
        self.name = "lcf_central" if coverage is RRCoverage.NONE else "lcf_central_rr"
        self._i = 0
        self._j = 0
        self._rows = np.arange(replicates)

    @property
    def rr_offsets(self) -> tuple[int, int]:
        """Current ``(I, J)`` offsets (shared by construction)."""
        return self._i, self._j

    def reset(self) -> None:
        self._i = 0
        self._j = 0

    def schedule_batch(self, requests_t: np.ndarray) -> np.ndarray:
        n = self.n
        reps = self.replicates
        chain = chain_table(n)
        rows = self._rows
        diagonal = self.coverage is RRCoverage.DIAGONAL
        schedule = np.full((reps, n), NO_GRANT, dtype=np.int64)
        # nrq scaled by n so adding the chain ordinal yields the serial
        # composite key directly (nrq <= n, so no overflow ambiguity).
        # Real composite keys are < _MATCHED_THRESHOLD; a granted input
        # is poisoned to _MATCHED, which stays above the threshold under
        # the <= n^3 total decrement the loop below can apply but below
        # the INT64_MAX no-request sentinel — so matched inputs lose to
        # every real candidate and a matched-only column grants nothing.
        nrq_key = requests_t.sum(axis=1, dtype=np.int64) * n
        scale = np.int64(n)

        i0, j0 = self._i, self._j
        for res in range(n):
            col = (j0 + res) % n
            rr_row = (i0 + res) % n
            colreq = requests_t[:, col, :]
            key = np.where(colreq, nrq_key + chain[rr_row], _INT64_MAX)
            winner = np.argmin(key, axis=1)
            # A replicate has a grant iff its argmin hit an unmatched
            # requester (the serial code clears granted rows, emptying
            # the candidate set instead).
            has = key[rows, winner] < _MATCHED_THRESHOLD
            if diagonal:
                # Figure 2: the diagonal position pre-empts LCF (when
                # the diagonal input requests the column and is not yet
                # matched).
                winner = np.where(key[:, rr_row] < _MATCHED_THRESHOLD, rr_row, winner)
            # Figure 2: nrq[req] := nrq[req] - 1 for this column's
            # requesters. Matched requesters are decremented too, which
            # is harmless: their key stays far above the threshold.
            nrq_key -= colreq * scale
            granted = np.nonzero(has)[0]
            if granted.size:
                g = winner[granted]
                schedule[granted, g] = col
                nrq_key[granted, g] = _MATCHED

        # Figure 2, last line: I := (I+1) mod n; if I = 0, J := (J+1).
        self._i = (self._i + 1) % n
        if self._i == 0:
            self._j = (self._j + 1) % n
        return schedule


class ColumnarISLIP(ColumnarKernel):
    """Batched iSLIP.

    Pointers are data-dependent, so each replicate carries its own
    ``(n,)`` grant/accept pointer rows. The grant key (cyclic ordinal
    from the grant pointer, or ``n`` where there is no live request) is
    materialised once per cycle and then updated incrementally as ports
    match; the accept key is rebuilt per iteration by scattering the
    (at most one per output) grants into a pre-filled buffer.
    """

    name = "islip"

    def __init__(
        self,
        n: int,
        replicates: int,
        iterations: int = IterativeScheduler.DEFAULT_ITERATIONS,
    ):
        super().__init__(n, replicates)
        if iterations < 1:
            raise ValueError(f"need at least one iteration, got {iterations}")
        self.iterations = iterations
        self._grant_ptr = np.zeros((replicates, n), dtype=np.int64)
        self._accept_ptr = np.zeros((replicates, n), dtype=np.int64)
        chain = chain_table(n)
        # ord_g[r, j, :] = cyclic order from grant_ptr[r, j];
        # ord_a[r, i, :] = cyclic order from accept_ptr[r, i].
        # Cached across cycles, refreshed only for pointer rows a
        # first-iteration accept actually moved.
        self._ord_g = np.broadcast_to(chain[0], (replicates, n, n)).copy()
        self._ord_a = self._ord_g.copy()
        self._gkey = np.empty((replicates, n, n), dtype=np.int64)
        self._akey = np.empty((replicates, n, n), dtype=np.int64)
        self._rows = np.arange(replicates)

    @property
    def pointers(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the ``(R, n)`` (grant, accept) pointer batches."""
        return self._grant_ptr.copy(), self._accept_ptr.copy()

    def reset(self) -> None:
        chain = chain_table(self.n)
        self._grant_ptr[:] = 0
        self._accept_ptr[:] = 0
        self._ord_g[:] = chain[0]
        self._ord_a[:] = chain[0]

    def schedule_batch(self, requests_t: np.ndarray) -> np.ndarray:
        n = self.n
        reps = self.replicates
        chain = chain_table(n)
        schedule = np.full((reps, n), NO_GRANT, dtype=np.int64)
        gkey = self._gkey
        akey = self._akey
        arange_n = np.arange(n)
        # gkey[r, j, i]: grant-pointer ordinal of input i at output j, or
        # n where input i has nothing live for output j. Matched ports
        # are retired from it in place after each iteration.
        np.copyto(gkey, self._ord_g)
        np.copyto(gkey, n, where=np.logical_not(requests_t))

        for iteration in range(self.iterations):
            # Grant step: per (replicate, output), the requesting input
            # next at or after the grant pointer.
            gwin = np.argmin(gkey, axis=2)
            gval = gkey[self._rows[:, np.newaxis], arange_n, gwin]
            ghas = gval != n
            if not ghas.any():
                break
            rg, jg = np.nonzero(ghas)
            ig = gwin[rg, jg]

            # Accept step: per (replicate, input), the granting output
            # next at or after the accept pointer. Outputs grant at most
            # one input each, so accepted outputs are distinct per
            # replicate and the scatters below are conflict free.
            akey.fill(n)
            akey[rg, ig, jg] = self._ord_a[rg, ig, jg]
            awin = np.argmin(akey, axis=2)
            aval = akey[self._rows[:, np.newaxis], arange_n, awin]
            ra, ia = np.nonzero(aval != n)
            ja = awin[ra, ia]
            schedule[ra, ia] = ja
            # Retire matched ports: their rows/columns can never be live
            # again this cycle.
            gkey[ra, ja, :] = n
            gkey[ra, :, ia] = n

            if iteration == 0 and len(ra):
                # Pointer update only on first-iteration accepts
                # (McKeown 1999, Section II-C).
                gp = (ia + 1) % n
                ap = (ja + 1) % n
                self._grant_ptr[ra, ja] = gp
                self._accept_ptr[ra, ia] = ap
                self._ord_g[ra, ja] = chain[gp]
                self._ord_a[ra, ia] = chain[ap]
        return schedule


_COLUMNAR_FACTORIES = {
    "lcf_central": lambda n, R, **kw: ColumnarLCFCentral(n, R, RRCoverage.NONE),
    "lcf_central_rr": lambda n, R, **kw: ColumnarLCFCentral(
        n, R, RRCoverage.DIAGONAL
    ),
    "islip": lambda n, R, iterations=IterativeScheduler.DEFAULT_ITERATIONS, **kw: (
        ColumnarISLIP(n, R, iterations)
    ),
}

#: Registry names with a columnar kernel (everything else falls back).
COLUMNAR_SCHEDULER_NAMES = frozenset(_COLUMNAR_FACTORIES)


def columnar_schedulers() -> tuple[str, ...]:
    """Sorted registry names that have a replicate-batched kernel."""
    return tuple(sorted(_COLUMNAR_FACTORIES))


def has_columnar_kernel(name: str) -> bool:
    """Whether ``make_columnar_kernel(name, ...)`` can batch this scheduler."""
    return name in _COLUMNAR_FACTORIES


def make_columnar_kernel(name: str, n: int, replicates: int, **kwargs) -> ColumnarKernel:
    """Construct the columnar kernel for a registry scheduler name.

    Unlike :func:`~repro.fastpath.registry.make_fast_scheduler` there is
    no silent fallback — the engine decides per configuration whether to
    batch or run serially, so an uncovered name here is a bug.
    """
    factory = _COLUMNAR_FACTORIES.get(name)
    if factory is None:
        raise KeyError(
            f"no columnar kernel for {name!r}; "
            f"covered: {', '.join(columnar_schedulers())}"
        )
    return factory(n, replicates, **kwargs)
