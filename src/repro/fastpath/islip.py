"""Bitset kernel for iSLIP.

Same request/grant/accept rounds as :class:`repro.baselines.islip.ISLIP`
— including the first-iteration-only pointer update that desynchronises
the grant pointers — but the per-output grant and per-input accept
selections are single-word rotate-and-lowest-bit operations instead of
numpy argmins. Pointer state lives in plain Python lists; the
``pointers`` property still returns numpy arrays so inspection code and
tests see the reference shape.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import IterativeScheduler
from repro.fastpath.bitops import derive_cols
from repro.fastpath.kernel import BitmaskKernelMixin
from repro.types import NO_GRANT


class FastISLIP(BitmaskKernelMixin, IterativeScheduler):
    """Bitset twin of :class:`repro.baselines.islip.ISLIP`."""

    name = "islip"

    def __init__(self, n: int, iterations: int = IterativeScheduler.DEFAULT_ITERATIONS):
        super().__init__(n, iterations)
        self._grant_ptr = [0] * n
        self._accept_ptr = [0] * n

    def reset(self) -> None:
        self._grant_ptr = [0] * self.n
        self._accept_ptr = [0] * self.n

    @property
    def pointers(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the (grant, accept) pointer arrays, for inspection."""
        return (
            np.array(self._grant_ptr, dtype=np.int64),
            np.array(self._accept_ptr, dtype=np.int64),
        )

    def schedule_masks(
        self, rows: list[int], cols: list[int] | None = None
    ) -> list[int]:
        """One scheduling cycle over request bitmasks (see
        :meth:`repro.fastpath.lcf.FastLCFCentralVariant.schedule_masks`
        for the mask convention; neither list is mutated)."""
        n = self.n
        if cols is None:
            cols = derive_cols(rows, n)
        full = (1 << n) - 1
        grant_ptr = self._grant_ptr
        accept_ptr = self._accept_ptr
        schedule = [NO_GRANT] * n
        in_free = full  # unmatched inputs
        out_free = full  # unmatched outputs

        for iteration in range(self.iterations):
            # Grant step: each unmatched output with live requesters
            # grants the one next at or after its pointer.
            offers = [0] * n  # per-input masks of granting outputs
            granted_inputs = 0
            remaining = out_free
            while remaining:
                out_bit = remaining & -remaining
                remaining ^= out_bit
                j = out_bit.bit_length() - 1
                cand = cols[j] & in_free
                if not cand:
                    continue
                start = grant_ptr[j]
                rotated = (cand >> start) | ((cand << (n - start)) & full)
                winner = start + (rotated & -rotated).bit_length() - 1
                if winner >= n:
                    winner -= n
                offers[winner] |= out_bit
                granted_inputs |= 1 << winner
            if not granted_inputs:
                break  # no live requests left

            # Accept step: each input with offers takes the one next at
            # or after its pointer (inputs in ascending order, like the
            # reference's flatnonzero walk).
            while granted_inputs:
                in_bit = granted_inputs & -granted_inputs
                granted_inputs ^= in_bit
                i = in_bit.bit_length() - 1
                mask = offers[i]
                start = accept_ptr[i]
                rotated = (mask >> start) | ((mask << (n - start)) & full)
                j = start + (rotated & -rotated).bit_length() - 1
                if j >= n:
                    j -= n
                schedule[i] = j
                in_free &= ~in_bit
                out_free &= ~(1 << j)
                if iteration == 0:
                    # Pointer update only on first-iteration accepts
                    # (McKeown 1999, Section II-C).
                    grant_ptr[j] = i + 1 if i + 1 < n else 0
                    accept_ptr[i] = j + 1 if j + 1 < n else 0
        return schedule
