"""Bitset kernel for PIM with a bit-identical random stream.

:class:`repro.baselines.pim.PIM` draws its grant/accept selections with
``rng.choice(flatnonzero(mask))``; for a 1-D candidate array that is
exactly one bounded ``rng.integers(0, len)`` draw (verified by
``tests/fastpath``). The fast kernel therefore draws the same bounded
integer from the same generator and walks to the ``k``-th set bit of
the candidate mask — the random *stream* is consumed identically, so
fast and reference PIM agree grant for grant, forever.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import IterativeScheduler
from repro.fastpath.bitops import derive_cols
from repro.fastpath.kernel import BitmaskKernelMixin
from repro.types import NO_GRANT


class FastPIM(BitmaskKernelMixin, IterativeScheduler):
    """Bitset twin of :class:`repro.baselines.pim.PIM`."""

    name = "pim"

    def __init__(
        self,
        n: int,
        iterations: int = IterativeScheduler.DEFAULT_ITERATIONS,
        seed: int = 0,
    ):
        super().__init__(n, iterations)
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """Rewind the random stream to the construction-time seed."""
        self._rng = np.random.default_rng(self.seed)

    def schedule_masks(
        self, rows: list[int], cols: list[int] | None = None
    ) -> list[int]:
        """One scheduling cycle over request bitmasks (see
        :meth:`repro.fastpath.lcf.FastLCFCentralVariant.schedule_masks`
        for the mask convention; neither list is mutated)."""
        n = self.n
        if cols is None:
            cols = derive_cols(rows, n)
        full = (1 << n) - 1
        integers = self._rng.integers
        schedule = [NO_GRANT] * n
        in_free = full
        out_free = full

        for _ in range(self.iterations):
            # Grant step: each unmatched output picks uniformly among
            # its live requesters. The draw happens even for a single
            # candidate — the reference consumes the stream there too.
            offers = [0] * n
            granted_inputs = 0
            remaining = out_free
            while remaining:
                out_bit = remaining & -remaining
                remaining ^= out_bit
                cand = cols[out_bit.bit_length() - 1] & in_free
                if not cand:
                    continue
                k = int(integers(0, cand.bit_count()))
                for _ in range(k):
                    cand &= cand - 1
                winner = (cand & -cand).bit_length() - 1
                offers[winner] |= out_bit
                granted_inputs |= 1 << winner
            if not granted_inputs:
                break

            # Accept step: each input with offers picks uniformly.
            while granted_inputs:
                in_bit = granted_inputs & -granted_inputs
                granted_inputs ^= in_bit
                i = in_bit.bit_length() - 1
                mask = offers[i]
                k = int(integers(0, mask.bit_count()))
                for _ in range(k):
                    mask &= mask - 1
                j = (mask & -mask).bit_length() - 1
                schedule[i] = j
                in_free &= ~in_bit
                out_free &= ~(1 << j)
        return schedule
