"""Bitset kernels for the central LCF scheduler family.

Drop-in twins of :class:`repro.core.lcf_central.LCFCentralVariant` and
its two paper configurations. The kernel follows the Figure 2
pseudocode on Python-int bitmasks:

* ``col_free`` / ``free_in`` are one-word masks of the outputs still
  schedulable and the inputs not yet granted this cycle;
* NRQ — the per-input number of *remaining* choices — starts as the
  popcount of ``row & col_free`` and is decremented for every requester
  of a taken column, exactly the ``nrq[req] := nrq[req] - 1`` step;
* the rotating tie-break chain is a bit rotation: candidates are
  scanned in chain order starting at the round-robin row, so the first
  strict NRQ minimum seen *is* the rotating-argmin winner.

The untraced hot path picks its strategy by switch size. Up to 32
ports the straightforward per-bit scan wins: candidate masks are a
handful of bits and the ``NRQ == 1`` early exit fires constantly. For
larger switches the kernel keeps the free inputs *bucketed by NRQ
value* (one bitmask per value): a column's winner is the first bucket,
in ascending value order, that intersects its candidate mask — one AND
per bucket probed instead of one NRQ lookup per candidate bit — and
the Figure 2 losers-decrement becomes a bulk move of each bucket's
intersection with the taken column's requesters into the next-lower
bucket: one AND/OR per value instead of one decrement per requester.
Decision-trace mode needs per-step NRQ snapshots, so it keeps the
per-bit kernel (tracing is an observability mode; its cost is
irrelevant).

``n > 64`` switches go through the inherited
:meth:`~repro.fastpath.kernel.BitmaskKernelMixin.schedule_words`
bridge, which joins each word tuple into one wide Python int and runs
this same bucketed kernel. For the central family that join *is* the
multi-word strategy: a 128-port row is a two-digit big int, so every
AND/OR/popcount in the bucket loop stays a single C-level call,
whereas per-word tuple arithmetic costs a Python-level loop (and a
list allocation) per operation. Measured at 128 ports the joined
bucket kernel is ~2x the reference while a word-tuple transcription of
it ran *slower* than the reference.

State handling (the ``I``/``J`` offsets, ``reset``, trace recording) is
inherited from the reference class, so the two implementations cannot
drift apart structurally; bit-identical behaviour — schedules, decision
traces, round-robin state — is enforced by ``tests/fastpath/``.
"""

from __future__ import annotations

import numpy as np

from repro.core.lcf_central import LCFCentralVariant, RRCoverage, StepTrace
from repro.fastpath.bitops import derive_cols
from repro.fastpath.kernel import BitmaskKernelMixin
from repro.types import NO_GRANT

#: Largest port count scheduled by the per-bit scan; above this the
#: NRQ-bucket strategy wins (crossover measured between 32 and 64).
_SCAN_MAX_PORTS = 32


class FastLCFCentralVariant(BitmaskKernelMixin, LCFCentralVariant):
    """Central LCF on per-input bitmasks (any :class:`RRCoverage`)."""

    def schedule_masks(
        self, rows: list[int], cols: list[int] | None = None
    ) -> list[int]:
        """One scheduling cycle over request bitmasks.

        ``rows[i]`` has bit ``j`` set iff input ``i`` requests output
        ``j``; ``cols`` is the transposed view (derived when omitted).
        Neither list is mutated. Returns the per-input grant list
        (``NO_GRANT`` where unmatched) and advances the round-robin
        state by one cycle, like :meth:`schedule`.
        """
        if self.record_trace:
            return self._schedule_masks_traced(rows, cols)
        if self.n <= _SCAN_MAX_PORTS:
            return self._schedule_masks_scan(rows, cols)
        return self._schedule_masks_bucketed(rows, cols)

    def _pre_grants(
        self, rows: list[int], schedule: list[int], col_free: int, free_in: int
    ) -> tuple[int, int]:
        """Apply the DIAGONAL_FIRST pre-grant sweep (no-op otherwise)."""
        if self.coverage is RRCoverage.DIAGONAL_FIRST:
            n = self.n
            i0, j0 = self._i, self._j
            for res in range(n):
                row = i0 + res
                if row >= n:
                    row -= n
                col = j0 + res
                if col >= n:
                    col -= n
                if free_in >> row & 1 and rows[row] >> col & 1:
                    schedule[row] = col
                    col_free &= ~(1 << col)
                    free_in &= ~(1 << row)
        return col_free, free_in

    def _schedule_masks_scan(
        self, rows: list[int], cols: list[int] | None = None
    ) -> list[int]:
        """Per-bit kernel — the small-switch hot path."""
        n = self.n
        if cols is None:
            cols = derive_cols(rows, n)
        i0, j0 = self._i, self._j
        full = (1 << n) - 1
        schedule = [NO_GRANT] * n
        col_free, free_in = self._pre_grants(rows, schedule, full, full)

        # NRQ after any pre-grants: remaining choices per free input.
        nrq = [
            (rows[i] & col_free).bit_count() if free_in >> i & 1 else 0
            for i in range(n)
        ]

        diagonal = self.coverage is RRCoverage.DIAGONAL
        single = self.coverage is RRCoverage.SINGLE
        for res in range(n):
            col = j0 + res
            if col >= n:
                col -= n
            col_bit = 1 << col
            if not col_free & col_bit:
                continue
            rr_row = i0 + res
            if rr_row >= n:
                rr_row -= n

            grant = NO_GRANT
            if (
                (diagonal or (single and res == 0))
                and free_in >> rr_row & 1
                and rows[rr_row] & col_bit
            ):
                grant = rr_row
            else:
                cand = cols[col] & free_in
                if cand:
                    # Rotate so the chain starts at rr_row: scanning the
                    # rotated mask LSB-first visits candidates in tie
                    # order, so the first strict minimum wins.
                    rotated = (cand >> rr_row) | ((cand << (n - rr_row)) & full)
                    best_nrq = n + 1
                    while rotated:
                        low = rotated & -rotated
                        i = rr_row + low.bit_length() - 1
                        if i >= n:
                            i -= n
                        count = nrq[i]
                        if count < best_nrq:
                            best_nrq = count
                            grant = i
                            if count == 1:
                                break  # a live candidate's NRQ floor
                        rotated ^= low

            if grant != NO_GRANT:
                schedule[grant] = col
                col_free &= ~col_bit
                # Figure 2: every remaining requester of the taken
                # column loses one choice.
                losers = cols[col] & free_in
                while losers:
                    low = losers & -losers
                    nrq[low.bit_length() - 1] -= 1
                    losers ^= low
                free_in &= ~(1 << grant)
                nrq[grant] = 0

        self._advance()
        return schedule

    def _schedule_masks_bucketed(
        self, rows: list[int], cols: list[int] | None = None
    ) -> list[int]:
        """NRQ-bucket kernel — the large-switch hot path."""
        n = self.n
        if cols is None:
            cols = derive_cols(rows, n)
        i0, j0 = self._i, self._j
        full = (1 << n) - 1
        schedule = [NO_GRANT] * n
        col_free, free_in = self._pre_grants(rows, schedule, full, full)

        # NRQ buckets after any pre-grants: ``buckets[v]`` is the mask
        # of free inputs with exactly ``v`` remaining choices, and
        # ``values`` keeps the occupied NRQ values in ascending order —
        # maintained incrementally by the move pass below, so no column
        # ever sorts. Zero-NRQ inputs are left out — they request no
        # free column, so they can never be a candidate.
        buckets: dict[int, int] = {}
        remaining = free_in
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            count = (rows[low.bit_length() - 1] & col_free).bit_count()
            if count:
                buckets[count] = buckets.get(count, 0) | low
        values = sorted(buckets)

        diagonal = self.coverage is RRCoverage.DIAGONAL
        single = self.coverage is RRCoverage.SINGLE
        for res in range(n):
            col = j0 + res
            if col >= n:
                col -= n
            col_bit = 1 << col
            if not col_free & col_bit:
                continue
            rr_row = i0 + res
            if rr_row >= n:
                rr_row -= n

            grant = NO_GRANT
            if (
                (diagonal or (single and res == 0))
                and free_in >> rr_row & 1
                and rows[rr_row] & col_bit
            ):
                grant = rr_row
                # The RR winner's bucket is not known from a scan;
                # its NRQ is one popcount (col_free still includes col).
                grant_value = (rows[grant] & col_free).bit_count()
            else:
                cand = cols[col] & free_in
                if cand:
                    for value in values:
                        tied = cand & buckets[value]
                        if tied:
                            # Rotate so the chain starts at rr_row; the
                            # lowest bit of the rotation is the first
                            # least-choice candidate in tie order.
                            rotated = (tied >> rr_row) | (
                                (tied << (n - rr_row)) & full
                            )
                            grant = rr_row + (rotated & -rotated).bit_length() - 1
                            if grant >= n:
                                grant -= n
                            grant_value = value
                            break

            if grant != NO_GRANT:
                grant_bit = 1 << grant
                schedule[grant] = col
                col_free &= ~col_bit
                free_in &= ~grant_bit
                # Figure 2: every remaining requester of the taken
                # column loses one choice — whole buckets shift down by
                # one value at a time (ascending, so a mask never moves
                # twice). The grantee leaves the structure; ``values``
                # is rebuilt in the same walk, staying sorted.
                losers = cols[col] & free_in
                new_values = []
                for value in values:
                    mask = buckets[value]
                    if value == grant_value:
                        mask ^= grant_bit
                        if not mask:
                            del buckets[value]
                            continue
                        buckets[value] = mask
                    moved = mask & losers
                    if not moved:
                        new_values.append(value)
                        continue
                    kept = mask ^ moved
                    if kept:
                        buckets[value] = kept
                    else:
                        del buckets[value]
                    if value > 1:
                        if buckets.get(value - 1):
                            buckets[value - 1] |= moved
                        else:
                            buckets[value - 1] = moved
                        if not new_values or new_values[-1] != value - 1:
                            new_values.append(value - 1)
                    if kept:
                        new_values.append(value)
                values = new_values

        self._advance()
        return schedule

    def _schedule_masks_traced(
        self, rows: list[int], cols: list[int] | None = None
    ) -> list[int]:
        """The per-bit kernel with :class:`StepTrace` recording — the
        decision-trace twin of the reference inner loop."""
        n = self.n
        if cols is None:
            cols = derive_cols(rows, n)
        i0, j0 = self._i, self._j
        full = (1 << n) - 1
        schedule = [NO_GRANT] * n
        self.last_trace = []
        col_free, free_in = self._pre_grants(rows, schedule, full, full)

        # NRQ after any pre-grants: remaining choices per free input.
        nrq = [
            (rows[i] & col_free).bit_count() if free_in >> i & 1 else 0
            for i in range(n)
        ]

        diagonal = self.coverage is RRCoverage.DIAGONAL
        single = self.coverage is RRCoverage.SINGLE
        for res in range(n):
            col = j0 + res
            if col >= n:
                col -= n
            col_bit = 1 << col
            if not col_free & col_bit:
                continue
            rr_row = i0 + res
            if rr_row >= n:
                rr_row -= n

            grant = NO_GRANT
            rr_won = False
            if (
                (diagonal or (single and res == 0))
                and free_in >> rr_row & 1
                and rows[rr_row] & col_bit
            ):
                grant = rr_row
                rr_won = True
            else:
                cand = cols[col] & free_in
                if cand:
                    rotated = (cand >> rr_row) | ((cand << (n - rr_row)) & full)
                    best_nrq = n + 1
                    while rotated:
                        low = rotated & -rotated
                        i = rr_row + low.bit_length() - 1
                        if i >= n:
                            i -= n
                        count = nrq[i]
                        if count < best_nrq:
                            best_nrq = count
                            grant = i
                            if count == 1:
                                break  # a live candidate's NRQ floor
                        rotated ^= low

            self.last_trace.append(
                StepTrace(
                    col,
                    rr_row,
                    np.array(nrq, dtype=np.int64),
                    grant,
                    rr_won,
                )
            )
            if grant != NO_GRANT:
                schedule[grant] = col
                col_free &= ~col_bit
                losers = cols[col] & free_in
                while losers:
                    low = losers & -losers
                    nrq[low.bit_length() - 1] -= 1
                    losers ^= low
                free_in &= ~(1 << grant)
                nrq[grant] = 0

        self._advance()
        return schedule


class FastLCFCentral(FastLCFCentralVariant):
    """Bitset twin of :class:`repro.core.lcf_central.LCFCentral`."""

    name = "lcf_central"

    def __init__(self, n: int):
        super().__init__(n, coverage=RRCoverage.NONE)


class FastLCFCentralRR(FastLCFCentralVariant):
    """Bitset twin of :class:`repro.core.lcf_central.LCFCentralRR`."""

    name = "lcf_central_rr"

    def __init__(self, n: int):
        super().__init__(n, coverage=RRCoverage.DIAGONAL)
