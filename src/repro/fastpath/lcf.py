"""Bitset kernels for the central LCF scheduler family.

Drop-in twins of :class:`repro.core.lcf_central.LCFCentralVariant` and
its two paper configurations. The kernel follows the Figure 2
pseudocode on Python-int bitmasks:

* ``col_free`` / ``free_in`` are one-word masks of the outputs still
  schedulable and the inputs not yet granted this cycle;
* NRQ — the per-input number of *remaining* choices — starts as the
  popcount of ``row & col_free`` and is decremented for every requester
  of a taken column, exactly the ``nrq[req] := nrq[req] - 1`` step;
* the rotating tie-break chain is a bit rotation: candidates are
  scanned in chain order starting at the round-robin row, so the first
  strict NRQ minimum seen *is* the rotating-argmin winner — with an
  early exit at NRQ 1, the least choice possible for a live candidate.

State handling (the ``I``/``J`` offsets, ``reset``, trace recording) is
inherited from the reference class, so the two implementations cannot
drift apart structurally; bit-identical behaviour — schedules, decision
traces, round-robin state — is enforced by ``tests/fastpath/``.
"""

from __future__ import annotations

import numpy as np

from repro.core.lcf_central import LCFCentralVariant, RRCoverage, StepTrace
from repro.fastpath.bitops import derive_cols
from repro.fastpath.kernel import BitmaskKernelMixin
from repro.types import NO_GRANT


class FastLCFCentralVariant(BitmaskKernelMixin, LCFCentralVariant):
    """Central LCF on per-input bitmasks (any :class:`RRCoverage`)."""

    def schedule_masks(
        self, rows: list[int], cols: list[int] | None = None
    ) -> list[int]:
        """One scheduling cycle over request bitmasks.

        ``rows[i]`` has bit ``j`` set iff input ``i`` requests output
        ``j``; ``cols`` is the transposed view (derived when omitted).
        Neither list is mutated. Returns the per-input grant list
        (``NO_GRANT`` where unmatched) and advances the round-robin
        state by one cycle, like :meth:`schedule`.
        """
        n = self.n
        if cols is None:
            cols = derive_cols(rows, n)
        i0, j0 = self._i, self._j
        full = (1 << n) - 1
        col_free = full
        free_in = full
        schedule = [NO_GRANT] * n
        record = self.record_trace
        if record:
            self.last_trace = []

        if self.coverage is RRCoverage.DIAGONAL_FIRST:
            for res in range(n):
                row = i0 + res
                if row >= n:
                    row -= n
                col = j0 + res
                if col >= n:
                    col -= n
                if free_in >> row & 1 and rows[row] >> col & 1:
                    schedule[row] = col
                    col_free &= ~(1 << col)
                    free_in &= ~(1 << row)

        # NRQ after any pre-grants: remaining choices per free input.
        nrq = [
            (rows[i] & col_free).bit_count() if free_in >> i & 1 else 0
            for i in range(n)
        ]

        diagonal = self.coverage is RRCoverage.DIAGONAL
        single = self.coverage is RRCoverage.SINGLE
        for res in range(n):
            col = j0 + res
            if col >= n:
                col -= n
            col_bit = 1 << col
            if not col_free & col_bit:
                continue
            rr_row = i0 + res
            if rr_row >= n:
                rr_row -= n

            grant = NO_GRANT
            rr_won = False
            if (
                (diagonal or (single and res == 0))
                and free_in >> rr_row & 1
                and rows[rr_row] & col_bit
            ):
                grant = rr_row
                rr_won = True
            else:
                cand = cols[col] & free_in
                if cand:
                    # Rotate so the chain starts at rr_row: scanning the
                    # rotated mask LSB-first visits candidates in tie
                    # order, so the first strict minimum wins.
                    rotated = (cand >> rr_row) | (
                        (cand << (n - rr_row)) & full
                    )
                    best_nrq = n + 1
                    while rotated:
                        low = rotated & -rotated
                        i = rr_row + low.bit_length() - 1
                        if i >= n:
                            i -= n
                        count = nrq[i]
                        if count < best_nrq:
                            best_nrq = count
                            grant = i
                            if count == 1:
                                break  # a live candidate's NRQ floor
                        rotated ^= low

            if record:
                self.last_trace.append(
                    StepTrace(
                        col,
                        rr_row,
                        np.array(nrq, dtype=np.int64),
                        grant,
                        rr_won,
                    )
                )
            if grant != NO_GRANT:
                schedule[grant] = col
                col_free &= ~col_bit
                # Figure 2: every remaining requester of the taken
                # column loses one choice.
                losers = cols[col] & free_in
                while losers:
                    low = losers & -losers
                    nrq[low.bit_length() - 1] -= 1
                    losers ^= low
                free_in &= ~(1 << grant)
                nrq[grant] = 0

        self._advance()
        return schedule


class FastLCFCentral(FastLCFCentralVariant):
    """Bitset twin of :class:`repro.core.lcf_central.LCFCentral`."""

    name = "lcf_central"

    def __init__(self, n: int):
        super().__init__(n, coverage=RRCoverage.NONE)


class FastLCFCentralRR(FastLCFCentralVariant):
    """Bitset twin of :class:`repro.core.lcf_central.LCFCentralRR`."""

    name = "lcf_central_rr"

    def __init__(self, n: int):
        super().__init__(n, coverage=RRCoverage.DIAGONAL)
