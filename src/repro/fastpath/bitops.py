"""Bitmask primitives for the fastpath kernels.

Layout convention: a request matrix row is packed LSB-first, so input
``i``'s mask has bit ``j`` set iff ``R[i, j]`` is True — ``mask >> j & 1``
reads one crosspoint. For ``n <= 64`` every row is one machine word
(a single Python int), and the single-word kernels operate on those
ints directly.

Beyond 64 ports a row becomes a **word tuple**: a list of
``word_count(n)`` ints of :data:`WORD_BITS` bits each, LSB-first within
and across words, so bit ``j`` lives at ``words[j >> 6] >> (j & 63) & 1``.
Every single-word helper has a ``*_words`` twin operating on that
layout; the multi-word kernels scan word-by-word instead of rotating
one huge int, which keeps every arithmetic operation on a machine-sized
value (CPython's small-int fast path) and never materialises an
``n``-bit rotated mask.

The helpers here are deliberately tiny: the kernels inline the
bit-extraction loops (``m & -m`` / ``bit_length``) on their hot paths
and only call into this module off the hot path (packing, tests,
trace reconstruction).
"""

from __future__ import annotations

import numpy as np

#: Bits per word of the multi-word (``n > 64``) mask layout.
WORD_BITS = 64

# One power of two per column; a boolean row dotted with this vector IS
# the row's bitmask, and uint64 wraparound is unreachable for n <= 64.
_POW2 = 1 << np.arange(64, dtype=np.uint64)


def pack_rows(matrix: np.ndarray) -> list[int]:
    """Per-input bitmasks of a boolean request matrix (LSB = output 0)."""
    n = matrix.shape[1]
    if n <= 64:
        # Hot path: one integer dot product packs every row at once.
        return np.ascontiguousarray(matrix, np.uint64).dot(_POW2[:n]).tolist()
    arr = np.ascontiguousarray(matrix, dtype=np.uint8)
    packed = np.packbits(arr, axis=1, bitorder="little")
    width = packed.shape[1]
    data = packed.tobytes()
    return [
        int.from_bytes(data[i * width : (i + 1) * width], "little")
        for i in range(arr.shape[0])
    ]


def pack_cols(matrix: np.ndarray) -> list[int]:
    """Per-output bitmasks (LSB = input 0) — ``pack_rows`` of the transpose."""
    n = matrix.shape[0]
    if n <= 64:
        return _POW2[:n].dot(np.ascontiguousarray(matrix, np.uint64)).tolist()
    return pack_rows(np.ascontiguousarray(matrix).T)


def unpack_rows(rows: list[int], n: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: bitmasks back to a boolean matrix."""
    matrix = np.zeros((len(rows), n), dtype=bool)
    for i, mask in enumerate(rows):
        while mask:
            bit = mask & -mask
            matrix[i, bit.bit_length() - 1] = True
            mask ^= bit
    return matrix


def derive_cols(rows: list[int], n: int) -> list[int]:
    """Column masks from row masks — the bit-transpose fallback used
    when a caller has only the per-input view."""
    cols = [0] * n
    for i, mask in enumerate(rows):
        bit = 1 << i
        while mask:
            low = mask & -mask
            cols[low.bit_length() - 1] |= bit
            mask ^= low
    return cols


def next_at_or_after(mask: int, start: int, n: int) -> int:
    """First set bit of ``mask`` in cyclic order from ``start``.

    The bitset form of the round-robin pointer walk (iSLIP's grant and
    accept selection): rotate the mask so ``start`` lands on bit 0, take
    the lowest set bit, rotate back. ``mask`` must be non-zero.
    """
    if not mask:
        raise ValueError("no candidate set")
    rotated = (mask >> start) | ((mask << (n - start)) & ((1 << n) - 1))
    index = start + ((rotated & -rotated).bit_length() - 1)
    return index - n if index >= n else index


def select_kth_bit(mask: int, k: int) -> int:
    """Index of the ``k``-th set bit of ``mask`` in ascending order.

    This is how the fast PIM kernel realises ``rng.choice(flatnonzero)``
    without materialising the index array: draw ``k`` uniformly over the
    popcount, then walk to the ``k``-th requester.
    """
    for _ in range(k):
        mask &= mask - 1
    if not mask:
        raise IndexError("k out of range for mask")
    return (mask & -mask).bit_length() - 1


# -- multi-word (n > 64) layout ---------------------------------------


def word_count(n: int) -> int:
    """Words needed for an ``n``-bit mask in the multi-word layout."""
    return (n + WORD_BITS - 1) >> 6


def full_words(n: int) -> list[int]:
    """All-ones ``n``-bit mask as a word tuple (partial last word)."""
    words = [(1 << WORD_BITS) - 1] * word_count(n)
    tail = n & (WORD_BITS - 1)
    if tail:
        words[-1] = (1 << tail) - 1
    return words


def int_to_words(mask: int, n: int) -> list[int]:
    """Split an ``n``-bit Python-int mask into the word-tuple layout."""
    low = (1 << WORD_BITS) - 1
    return [(mask >> (w << 6)) & low for w in range(word_count(n))]


def words_to_int(words: list[int]) -> int:
    """Join a word tuple back into one Python-int mask."""
    mask = 0
    for w, word in enumerate(words):
        mask |= word << (w << 6)
    return mask


def pack_rows_words(matrix: np.ndarray) -> list[list[int]]:
    """Per-input word tuples of a boolean request matrix.

    Multi-word twin of :func:`pack_rows`: row ``i`` of the result is
    ``int_to_words(pack_rows(matrix)[i], n)``, produced in one
    ``packbits``-and-view pass over the whole matrix.
    """
    arr = np.ascontiguousarray(matrix, dtype=np.uint8)
    rows, n = arr.shape
    words = word_count(n)
    packed = np.packbits(arr, axis=1, bitorder="little")
    pad = words * 8 - packed.shape[1]
    if pad:
        packed = np.pad(packed, ((0, 0), (0, pad)))
    return (
        np.frombuffer(packed.tobytes(), dtype="<u8").reshape(rows, words).tolist()
    )


def pack_cols_words(matrix: np.ndarray) -> list[list[int]]:
    """Per-output word tuples — ``pack_rows_words`` of the transpose."""
    return pack_rows_words(np.ascontiguousarray(matrix).T)


def unpack_rows_words(rows: list[list[int]], n: int) -> np.ndarray:
    """Inverse of :func:`pack_rows_words`: word tuples back to a matrix."""
    matrix = np.zeros((len(rows), n), dtype=bool)
    for i, words in enumerate(rows):
        for w, word in enumerate(words):
            base = w << 6
            while word:
                bit = word & -word
                matrix[i, base + bit.bit_length() - 1] = True
                word ^= bit
    return matrix


def derive_cols_words(rows: list[list[int]], n: int) -> list[list[int]]:
    """Column word tuples from row word tuples (bit transpose)."""
    words = word_count(len(rows))
    cols = [[0] * words for _ in range(n)]
    for i, row in enumerate(rows):
        iw, ibit = i >> 6, 1 << (i & 63)
        for w, word in enumerate(row):
            base = w << 6
            while word:
                low = word & -word
                cols[base + low.bit_length() - 1][iw] |= ibit
                word ^= low
    return cols


def popcount_words(words: list[int]) -> int:
    """Total set bits of a word tuple — the multi-word popcount."""
    return sum(map(int.bit_count, words))


def next_at_or_after_words(words: list[int], start: int, n: int) -> int:
    """First set bit of a word tuple in cyclic order from ``start``.

    Multi-word twin of :func:`next_at_or_after`. Instead of rotating an
    ``n``-bit int, the scan starts in ``start``'s word (high bits), walks
    the following words cyclically, and finishes with the low bits of
    the start word — every operation stays on one machine word.
    """
    count = len(words)
    w0, b0 = start >> 6, start & 63
    high = words[w0] >> b0
    if high:
        return start + (high & -high).bit_length() - 1
    for step in range(1, count + 1):
        w = w0 + step
        if w >= count:
            w -= count
        word = words[w]
        if step == count:
            word &= (1 << b0) - 1  # wrapped: low bits of the start word
        if word:
            return (w << 6) + (word & -word).bit_length() - 1
    raise ValueError("no candidate set")


def select_kth_bit_words(words: list[int], k: int) -> int:
    """Index of the ``k``-th set bit of a word tuple in ascending order."""
    for w, word in enumerate(words):
        count = word.bit_count()
        if k < count:
            for _ in range(k):
                word &= word - 1
            return (w << 6) + (word & -word).bit_length() - 1
        k -= count
    raise IndexError("k out of range for mask")


def rotating_argmin_words(
    keys: list[int], candidates: list[int], start: int, n: int
) -> int:
    """Minimum-``keys`` candidate, ties broken by the rotating chain
    from ``start`` — the word-tuple form of
    :func:`repro.core.base.rotating_argmin`.

    Scans the candidate word tuple in cyclic bit order from ``start``
    (never materialising a rotated mask), keeping the first strict
    minimum seen, with an early exit at key 1 — the floor for a live
    candidate in every kernel that calls this (an LCF candidate's
    choice count and a granting output's request count are both >= 1).
    Candidate keys must lie in ``[1, n]`` — they are choice/request
    counts, and the scan's not-yet-seen sentinel is ``n + 1``.
    Returns -1 when no candidate bit is set.
    """
    count = len(candidates)
    w0, b0 = start >> 6, start & 63
    best = n + 1
    winner = -1
    for step in range(count + 1):
        w = w0 + step
        if w >= count:
            w -= count
        word = candidates[w]
        if step == 0:
            word >>= b0
            base = start
        else:
            base = w << 6
            if step == count:
                word &= (1 << b0) - 1  # wrapped: low bits of start word
        while word:
            low = word & -word
            word ^= low
            index = base + low.bit_length() - 1
            key = keys[index]
            if key < best:
                best = key
                winner = index
                if key == 1:
                    return winner
    return winner
