"""Bitmask primitives for the fastpath kernels.

Layout convention: a request matrix row is packed LSB-first, so input
``i``'s mask has bit ``j`` set iff ``R[i, j]`` is True — ``mask >> j & 1``
reads one crosspoint. For ``n <= 64`` every row is one machine word;
Python ints keep the same code correct (just slower) beyond that.

The helpers here are deliberately tiny: the kernels inline the
bit-extraction loops (``m & -m`` / ``bit_length``) on their hot paths
and only call into this module off the hot path (packing, tests,
trace reconstruction).
"""

from __future__ import annotations

import numpy as np

# One power of two per column; a boolean row dotted with this vector IS
# the row's bitmask, and uint64 wraparound is unreachable for n <= 64.
_POW2 = 1 << np.arange(64, dtype=np.uint64)


def pack_rows(matrix: np.ndarray) -> list[int]:
    """Per-input bitmasks of a boolean request matrix (LSB = output 0)."""
    n = matrix.shape[1]
    if n <= 64:
        # Hot path: one integer dot product packs every row at once.
        return np.ascontiguousarray(matrix, np.uint64).dot(_POW2[:n]).tolist()
    arr = np.ascontiguousarray(matrix, dtype=np.uint8)
    packed = np.packbits(arr, axis=1, bitorder="little")
    width = packed.shape[1]
    data = packed.tobytes()
    return [
        int.from_bytes(data[i * width : (i + 1) * width], "little")
        for i in range(arr.shape[0])
    ]


def pack_cols(matrix: np.ndarray) -> list[int]:
    """Per-output bitmasks (LSB = input 0) — ``pack_rows`` of the transpose."""
    n = matrix.shape[0]
    if n <= 64:
        return _POW2[:n].dot(np.ascontiguousarray(matrix, np.uint64)).tolist()
    return pack_rows(np.ascontiguousarray(matrix).T)


def unpack_rows(rows: list[int], n: int) -> np.ndarray:
    """Inverse of :func:`pack_rows`: bitmasks back to a boolean matrix."""
    matrix = np.zeros((len(rows), n), dtype=bool)
    for i, mask in enumerate(rows):
        while mask:
            bit = mask & -mask
            matrix[i, bit.bit_length() - 1] = True
            mask ^= bit
    return matrix


def derive_cols(rows: list[int], n: int) -> list[int]:
    """Column masks from row masks — the bit-transpose fallback used
    when a caller has only the per-input view."""
    cols = [0] * n
    for i, mask in enumerate(rows):
        bit = 1 << i
        while mask:
            low = mask & -mask
            cols[low.bit_length() - 1] |= bit
            mask ^= low
    return cols


def next_at_or_after(mask: int, start: int, n: int) -> int:
    """First set bit of ``mask`` in cyclic order from ``start``.

    The bitset form of the round-robin pointer walk (iSLIP's grant and
    accept selection): rotate the mask so ``start`` lands on bit 0, take
    the lowest set bit, rotate back. ``mask`` must be non-zero.
    """
    if not mask:
        raise ValueError("no candidate set")
    rotated = (mask >> start) | ((mask << (n - start)) & ((1 << n) - 1))
    index = start + ((rotated & -rotated).bit_length() - 1)
    return index - n if index >= n else index


def select_kth_bit(mask: int, k: int) -> int:
    """Index of the ``k``-th set bit of ``mask`` in ascending order.

    This is how the fast PIM kernel realises ``rng.choice(flatnonzero)``
    without materialising the index array: draw ``k`` uniformly over the
    popcount, then walk to the ``k``-th requester.
    """
    for _ in range(k):
        mask &= mask - 1
    if not mask:
        raise IndexError("k out of range for mask")
    return (mask & -mask).bit_length() - 1
