"""Shared numpy entry point for the bitset kernels.

The reference :meth:`repro.core.base.Scheduler.schedule` copies the
request matrix before handing it to ``_schedule`` because reference
kernels mutate their working copy. Bitset kernels never mutate the
caller's data — they pack it into immutable Python ints — so the mixin
overrides the public entry point to validate, pack and dispatch without
the defensive copy. Semantics are unchanged: the caller's matrix is
left untouched either way.

Dispatch is width-dependent: up to :data:`~repro.fastpath.bitops.WORD_BITS`
ports a row fits one machine word and ``schedule_masks`` (one Python int
per row) runs; wider switches pack each row into a word tuple and run
``schedule_words``. Kernels implement the single-word path and may
override :meth:`BitmaskKernelMixin.schedule_words` with a first-class
multi-word kernel; the mixin's default joins the word tuples back into
Python ints and reuses ``schedule_masks``, which is correct at any
width (Python ints are arbitrary precision) just not word-tuned.
"""

from __future__ import annotations

import numpy as np

from repro.fastpath.bitops import (
    WORD_BITS,
    pack_cols,
    pack_cols_words,
    pack_rows,
    pack_rows_words,
    words_to_int,
)
from repro.types import RequestMatrix, Schedule, as_request_matrix


class BitmaskKernelMixin:
    """Mixin for schedulers whose core is ``schedule_masks(rows, cols)``
    (single word per row) and ``schedule_words(rows, cols)`` (word
    tuples, ``n > 64``)."""

    def schedule(self, requests: RequestMatrix) -> Schedule:
        """Compute a conflict-free schedule for one time slot.

        Same contract as :meth:`repro.core.base.Scheduler.schedule`;
        the input matrix is only read, never mutated.
        """
        matrix = as_request_matrix(requests)
        if matrix.shape[0] != self.n:
            raise ValueError(
                f"{self.name} is configured for n={self.n}, got a "
                f"{matrix.shape[0]}-port request matrix"
            )
        if self.n <= WORD_BITS:
            grants = self.schedule_masks(pack_rows(matrix), pack_cols(matrix))
        else:
            grants = self.schedule_words(
                pack_rows_words(matrix), pack_cols_words(matrix)
            )
        return np.array(grants, dtype=np.int64)

    def schedule_words(
        self, rows: list[list[int]], cols: list[list[int]] | None = None
    ) -> list[int]:
        """Multi-word fallback: join word tuples and run the single-word
        kernel on big Python ints. Kernels override this with a
        word-tuned implementation; the fallback keeps any kernel correct
        at every width."""
        return self.schedule_masks(
            [words_to_int(row) for row in rows],
            None if cols is None else [words_to_int(col) for col in cols],
        )

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        # Reached only if someone bypasses the public entry point.
        return self.schedule(requests)
