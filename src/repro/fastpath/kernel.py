"""Shared numpy entry point for the bitset kernels.

The reference :meth:`repro.core.base.Scheduler.schedule` copies the
request matrix before handing it to ``_schedule`` because reference
kernels mutate their working copy. Bitset kernels never mutate the
caller's data — they pack it into immutable Python ints — so the mixin
overrides the public entry point to validate, pack and dispatch without
the defensive copy. Semantics are unchanged: the caller's matrix is
left untouched either way.
"""

from __future__ import annotations

import numpy as np

from repro.fastpath.bitops import pack_cols, pack_rows
from repro.types import RequestMatrix, Schedule, as_request_matrix


class BitmaskKernelMixin:
    """Mixin for schedulers whose core is ``schedule_masks(rows, cols)``."""

    def schedule(self, requests: RequestMatrix) -> Schedule:
        """Compute a conflict-free schedule for one time slot.

        Same contract as :meth:`repro.core.base.Scheduler.schedule`;
        the input matrix is only read, never mutated.
        """
        matrix = as_request_matrix(requests)
        if matrix.shape[0] != self.n:
            raise ValueError(
                f"{self.name} is configured for n={self.n}, got a "
                f"{matrix.shape[0]}-port request matrix"
            )
        grants = self.schedule_masks(pack_rows(matrix), pack_cols(matrix))
        return np.array(grants, dtype=np.int64)

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        # Reached only if someone bypasses the public entry point.
        grants = self.schedule_masks(pack_rows(requests), pack_cols(requests))
        return np.array(grants, dtype=np.int64)
