"""Bitset kernels for the distributed LCF scheduler family.

Drop-in twins of :class:`repro.core.lcf_dist.LCFDistributed` and its
round-robin variant. The Section 5 request/grant/accept exchange is the
same per-word mask algebra as the central kernel:

* the per-iteration *live* subgraph (unmatched initiators x unmatched
  targets) is ``rows[i] & out_free`` per input — one AND per row;
* ``nrq`` (choices an initiator sends with its requests) is a popcount
  of that live row; ``ngt`` (requests a target received, sent with its
  grant) is a popcount of the live column;
* grant and accept are both rotating-minimum scans over a candidate
  mask — the exact bit idiom of the central kernel's tie-break chain,
  with the same early exit at the key floor of 1.

State handling (per-port grant/accept pointers, the RR overlay walk,
``reset``, trace recording) is inherited from the reference classes, so
the implementations cannot drift apart structurally; bit-identical
behaviour — schedules, :class:`IterationTrace` streams, pointer
evolution — is enforced by ``tests/fastpath/``.

Both kernels carry a first-class multi-word path (``schedule_words``)
for ``n > 64`` switches: masks become word tuples and every scan walks
machine-sized words (see :mod:`repro.fastpath.bitops`).
"""

from __future__ import annotations

import numpy as np

from repro.core.lcf_dist import IterationTrace, LCFDistributed, LCFDistributedRR
from repro.fastpath.bitops import (
    derive_cols,
    derive_cols_words,
    full_words,
    next_at_or_after_words,
    rotating_argmin_words,
    unpack_rows,
    unpack_rows_words,
)
from repro.fastpath.kernel import BitmaskKernelMixin
from repro.types import NO_GRANT


class FastLCFDistributed(BitmaskKernelMixin, LCFDistributed):
    """Bitset twin of :class:`repro.core.lcf_dist.LCFDistributed`."""

    name = "lcf_dist"

    def __init__(
        self, n: int, iterations: int = LCFDistributed.DEFAULT_ITERATIONS
    ):
        super().__init__(n, iterations)
        # Pointer state in plain lists (int indexing on the hot path);
        # the reference-shaped numpy views come from ``pointers``.
        self._grant_ptr = [0] * n
        self._accept_ptr = [0] * n

    def reset(self) -> None:
        self._grant_ptr = [0] * self.n
        self._accept_ptr = [0] * self.n
        self.last_trace = []

    @property
    def pointers(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the (grant, accept) pointer arrays, for inspection."""
        return (
            np.array(self._grant_ptr, dtype=np.int64),
            np.array(self._accept_ptr, dtype=np.int64),
        )

    # -- single-word kernel (n <= 64) ----------------------------------

    def schedule_masks(
        self, rows: list[int], cols: list[int] | None = None
    ) -> list[int]:
        """One scheduling cycle over request bitmasks (see
        :meth:`repro.fastpath.lcf.FastLCFCentralVariant.schedule_masks`
        for the mask convention; neither list is mutated)."""
        n = self.n
        if cols is None:
            cols = derive_cols(rows, n)
        full = (1 << n) - 1
        schedule = [NO_GRANT] * n
        if self.record_trace:
            self.last_trace = []
        in_free, out_free = self._pre_masks(rows, schedule, full, full)
        for _ in range(self.iterations):
            made, in_free, out_free = self._iterate_masks(
                rows, cols, schedule, in_free, out_free, full
            )
            if not made:
                break  # converged: no new matches are possible
        self._cycle_done()
        return schedule

    def _pre_masks(
        self, rows: list[int], schedule: list[int], in_free: int, out_free: int
    ) -> tuple[int, int]:
        """Hook for the round-robin overlay (no-op in the pure scheduler)."""
        return in_free, out_free

    def _cycle_done(self) -> None:
        """Hook for end-of-cycle state advance (the RR position walk)."""

    def _iterate_masks(
        self,
        rows: list[int],
        cols: list[int],
        schedule: list[int],
        in_free: int,
        out_free: int,
        full: int,
    ) -> tuple[bool, int, int]:
        n = self.n

        # Request step: live row = requests to still-unmatched targets;
        # nrq is its popcount (matched initiators keep nrq 0, exactly
        # the reference's masked row sums). The live inputs are also
        # grouped into per-nrq-value bucket masks: every output needs
        # the minimum nrq over its candidate mask, and probing buckets
        # in ascending value order costs one AND per bucket instead of
        # one key lookup per candidate bit — equivalent ordering to
        # ``rotating_argmin``'s composite key (value first, chain second).
        nrq = [0] * n
        buckets: dict[int, int] = {}
        remaining = in_free
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            i = low.bit_length() - 1
            count = (rows[i] & out_free).bit_count()
            nrq[i] = count
            if count:
                buckets[count] = buckets.get(count, 0) | low
        values = sorted(buckets)

        # Grant step: each live target grants its least-choice requester
        # (rotating chain from the per-output pointer breaks ties).
        grant_ptr = self._grant_ptr
        record = self.record_trace
        trace_grants = [] if record else None
        offers = [0] * n  # per-input masks of granting outputs
        ngt = [0] * n
        granted_inputs = 0
        remaining = out_free
        while remaining:
            out_bit = remaining & -remaining
            remaining ^= out_bit
            j = out_bit.bit_length() - 1
            cand = cols[j] & in_free
            if not cand:
                continue
            ngt[j] = cand.bit_count()
            for value in values:
                tied = cand & buckets[value]
                if tied:
                    start = grant_ptr[j]
                    rotated = (tied >> start) | ((tied << (n - start)) & full)
                    winner = start + (rotated & -rotated).bit_length() - 1
                    if winner >= n:
                        winner -= n
                    break
            offers[winner] |= out_bit
            granted_inputs |= 1 << winner
            if trace_grants is not None:
                trace_grants.append((winner, j))

        trace = self._make_trace(rows, in_free, out_free, nrq, ngt, trace_grants) \
            if record else None

        # Accept step: each granted initiator takes the grant from the
        # target with the fewest received requests.
        accept_ptr = self._accept_ptr
        made = False
        remaining = granted_inputs
        while remaining:
            in_bit = remaining & -remaining
            remaining ^= in_bit
            i = in_bit.bit_length() - 1
            mask = offers[i]
            start = accept_ptr[i]
            rotated = (mask >> start) | ((mask << (n - start)) & full)
            best = n + 1
            j = -1
            while rotated:
                low = rotated & -rotated
                out = start + low.bit_length() - 1
                if out >= n:
                    out -= n
                count = ngt[out]
                if count < best:
                    best = count
                    j = out
                    if count == 1:
                        break  # a granting target's ngt floor
                rotated ^= low
            schedule[i] = j
            in_free &= ~in_bit
            out_free &= ~(1 << j)
            made = True
            grant_ptr[j] = i + 1 if i + 1 < n else 0
            accept_ptr[i] = j + 1 if j + 1 < n else 0
            if trace is not None:
                trace.accepts.append((i, j))
        if trace is not None:
            self.last_trace.append(trace)
        return made, in_free, out_free

    def _make_trace(self, rows, in_free, out_free, nrq, ngt, grant_pairs):
        """Materialise the reference-shaped :class:`IterationTrace`
        (numpy matrices) from the mask state — trace mode only."""
        n = self.n
        live_rows = [
            rows[i] & out_free if in_free >> i & 1 else 0 for i in range(n)
        ]
        grants = np.zeros((n, n), dtype=bool)
        for i, j in grant_pairs:
            grants[i, j] = True
        return IterationTrace(
            unpack_rows(live_rows, n),
            np.array(nrq, dtype=np.int64),
            grants,
            np.array(ngt, dtype=np.int64),
        )

    # -- multi-word kernel (n > 64) ------------------------------------

    def schedule_words(
        self, rows: list[list[int]], cols: list[list[int]] | None = None
    ) -> list[int]:
        """Multi-word twin of :meth:`schedule_masks` (word tuples per
        row/column; neither outer list nor any word tuple is mutated)."""
        n = self.n
        if cols is None:
            cols = derive_cols_words(rows, n)
        schedule = [NO_GRANT] * n
        if self.record_trace:
            self.last_trace = []
        in_free = full_words(n)
        out_free = full_words(n)
        self._pre_words(rows, schedule, in_free, out_free)
        for _ in range(self.iterations):
            if not self._iterate_words(rows, cols, schedule, in_free, out_free):
                break
        self._cycle_done()
        return schedule

    def _pre_words(
        self,
        rows: list[list[int]],
        schedule: list[int],
        in_free: list[int],
        out_free: list[int],
    ) -> None:
        """Hook for the round-robin overlay (mutates the free masks)."""

    def _iterate_words(
        self,
        rows: list[list[int]],
        cols: list[list[int]],
        schedule: list[int],
        in_free: list[int],
        out_free: list[int],
    ) -> bool:
        n = self.n
        words = len(in_free)

        # Request step, plus nrq-value buckets for the grant scan: every
        # output needs the minimum nrq over its candidate mask, so group
        # the live inputs by nrq value once and let each output walk the
        # values in ascending order — one word-AND per bucket probed
        # instead of one key lookup per candidate bit. Equivalent to
        # ``rotating_argmin``'s composite key (value first, chain second).
        nrq = [0] * n
        buckets: dict[int, list[int]] = {}
        for w in range(words):
            remaining = in_free[w]
            base = w << 6
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                i = base + low.bit_length() - 1
                row = rows[i]
                count = sum(
                    (row[k] & out_free[k]).bit_count() for k in range(words)
                )
                nrq[i] = count
                if count:
                    bucket = buckets.get(count)
                    if bucket is None:
                        bucket = buckets[count] = [0] * words
                    bucket[w] |= low
        values = sorted(buckets)

        grant_ptr = self._grant_ptr
        record = self.record_trace
        trace_grants = [] if record else None
        offers: list[list[int] | None] = [None] * n
        ngt = [0] * n
        granted = [0] * words
        for jw in range(words):
            remaining = out_free[jw]
            while remaining:
                out_low = remaining & -remaining
                remaining ^= out_low
                j = (jw << 6) + out_low.bit_length() - 1
                col = cols[j]
                cand = [col[k] & in_free[k] for k in range(words)]
                received = sum(map(int.bit_count, cand))
                if not received:
                    continue
                ngt[j] = received
                for value in values:
                    bucket = buckets[value]
                    tied = [cand[k] & bucket[k] for k in range(words)]
                    if any(tied):
                        winner = next_at_or_after_words(tied, grant_ptr[j], n)
                        break
                offer = offers[winner]
                if offer is None:
                    offer = offers[winner] = [0] * words
                offer[jw] |= out_low
                granted[winner >> 6] |= 1 << (winner & 63)
                if trace_grants is not None:
                    trace_grants.append((winner, j))

        trace = self._make_trace_words(
            rows, in_free, out_free, nrq, ngt, trace_grants
        ) if record else None

        accept_ptr = self._accept_ptr
        made = False
        for iw in range(words):
            remaining = granted[iw]
            while remaining:
                in_low = remaining & -remaining
                remaining ^= in_low
                i = (iw << 6) + in_low.bit_length() - 1
                j = rotating_argmin_words(ngt, offers[i], accept_ptr[i], n)
                schedule[i] = j
                in_free[iw] &= ~in_low
                out_free[j >> 6] &= ~(1 << (j & 63))
                made = True
                grant_ptr[j] = i + 1 if i + 1 < n else 0
                accept_ptr[i] = j + 1 if j + 1 < n else 0
                if trace is not None:
                    trace.accepts.append((i, j))
        if trace is not None:
            self.last_trace.append(trace)
        return made

    def _make_trace_words(self, rows, in_free, out_free, nrq, ngt, grant_pairs):
        n = self.n
        words = len(in_free)
        zero = [0] * words
        live_rows = [
            [rows[i][k] & out_free[k] for k in range(words)]
            if in_free[i >> 6] >> (i & 63) & 1
            else zero
            for i in range(n)
        ]
        grants = np.zeros((n, n), dtype=bool)
        for i, j in grant_pairs:
            grants[i, j] = True
        return IterationTrace(
            unpack_rows_words(live_rows, n),
            np.array(nrq, dtype=np.int64),
            grants,
            np.array(ngt, dtype=np.int64),
        )


class FastLCFDistributedRR(FastLCFDistributed, LCFDistributedRR):
    """Bitset twin of :class:`repro.core.lcf_dist.LCFDistributedRR`.

    The Section 5 fairness overlay (one rotating request-matrix element
    pre-matched per cycle) and its position walk are realised in the
    mask hooks; the walk state itself (``rr_position`` and friends) is
    inherited from the reference class.
    """

    name = "lcf_dist_rr"

    def reset(self) -> None:
        super().reset()
        self._rr_i = 0
        self._rr_j = 0

    def _pre_masks(self, rows, schedule, in_free, out_free):
        i, j = self._rr_i, self._rr_j
        if rows[i] >> j & 1:
            schedule[i] = j
            in_free &= ~(1 << i)
            out_free &= ~(1 << j)
        return in_free, out_free

    def _pre_words(self, rows, schedule, in_free, out_free):
        i, j = self._rr_i, self._rr_j
        if rows[i][j >> 6] >> (j & 63) & 1:
            schedule[i] = j
            in_free[i >> 6] &= ~(1 << (i & 63))
            out_free[j >> 6] &= ~(1 << (j & 63))

    def _cycle_done(self) -> None:
        self._rr_i = (self._rr_i + 1) % self.n
        if self._rr_i == 0:
            self._rr_j = (self._rr_j + 1) % self.n
