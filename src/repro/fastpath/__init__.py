"""Hot-path performance layer: bitset scheduler kernels.

The paper's central argument (Section 4, Figure 6) is that LCF is
*cheap hardware*: the whole scheduler is ``O(n)`` priority logic over
register words. This package is the software analogue — request
matrices are represented as per-input Python-int bitmasks (one machine
word per row for ``n <= 64``), and the scheduling kernels run on
word-level operations (popcount for NRQ recomputation, bit rotation
for the rotating tie-break chain) instead of per-cycle numpy
allocations.

Every fast kernel is a *drop-in twin* of its reference implementation:
same registry name, same state machine, same decision trace — and
bit-identical schedules, statistics and traces, enforced by the
hypothesis equivalence suite in ``tests/fastpath/``. Select the layer
with ``build_switch(fast=True)`` / ``run_simulation(fast=True)`` or
the ``--fast`` flag on the ``lcf-sweep`` / ``lcf-trace`` /
``lcf-faults`` / ``lcf-adapt`` CLIs; names without a fast kernel fall
back to the reference implementation, so ``fast=True`` is always safe.

See ``docs/PERFORMANCE.md`` for the design, the bitmask layout, and
the ``BENCH_speed.json`` perf-regression workflow.
"""

from repro.fastpath.bitops import (
    WORD_BITS,
    derive_cols,
    derive_cols_words,
    full_words,
    int_to_words,
    next_at_or_after,
    next_at_or_after_words,
    pack_cols,
    pack_cols_words,
    pack_rows,
    pack_rows_words,
    popcount_words,
    rotating_argmin_words,
    select_kth_bit,
    select_kth_bit_words,
    unpack_rows,
    unpack_rows_words,
    word_count,
    words_to_int,
)
from repro.fastpath.islip import FastISLIP
from repro.fastpath.lcf import FastLCFCentral, FastLCFCentralRR, FastLCFCentralVariant
from repro.fastpath.lcf_dist import FastLCFDistributed, FastLCFDistributedRR
from repro.fastpath.pim import FastPIM
from repro.fastpath.registry import (
    FAST_SCHEDULER_NAMES,
    fast_schedulers,
    has_fast_kernel,
    make_fast_scheduler,
)

__all__ = [
    "FAST_SCHEDULER_NAMES",
    "FastISLIP",
    "FastLCFCentral",
    "FastLCFCentralRR",
    "FastLCFCentralVariant",
    "FastLCFDistributed",
    "FastLCFDistributedRR",
    "FastPIM",
    "WORD_BITS",
    "derive_cols",
    "derive_cols_words",
    "fast_schedulers",
    "full_words",
    "has_fast_kernel",
    "int_to_words",
    "make_fast_scheduler",
    "next_at_or_after",
    "next_at_or_after_words",
    "pack_cols",
    "pack_cols_words",
    "pack_rows",
    "pack_rows_words",
    "popcount_words",
    "rotating_argmin_words",
    "select_kth_bit",
    "select_kth_bit_words",
    "unpack_rows",
    "unpack_rows_words",
    "word_count",
    "words_to_int",
]
