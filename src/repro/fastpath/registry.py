"""Fastpath scheduler registry.

Mirrors :mod:`repro.baselines.registry` for the names that have a
bitset kernel; :func:`make_fast_scheduler` is the ``fast=True``
counterpart of :func:`~repro.baselines.registry.make_scheduler` and
falls back to the reference implementation for every other name, so
callers can request the fast layer unconditionally.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines.registry import make_scheduler
from repro.core.base import Scheduler
from repro.fastpath.islip import FastISLIP
from repro.fastpath.lcf import FastLCFCentral, FastLCFCentralRR
from repro.fastpath.lcf_dist import FastLCFDistributed, FastLCFDistributedRR
from repro.fastpath.pim import FastPIM

_FAST_FACTORIES: dict[str, Callable[..., Scheduler]] = {
    "lcf_central": lambda n, **kw: FastLCFCentral(n),
    "lcf_central_rr": lambda n, **kw: FastLCFCentralRR(n),
    "lcf_dist": lambda n, iterations=4, **kw: FastLCFDistributed(n, iterations),
    "lcf_dist_rr": lambda n, iterations=4, **kw: FastLCFDistributedRR(
        n, iterations
    ),
    "islip": lambda n, iterations=4, **kw: FastISLIP(n, iterations),
    "pim": lambda n, iterations=4, seed=0, **kw: FastPIM(n, iterations, seed),
}

#: Registry names with a bitset kernel (everything else falls back).
FAST_SCHEDULER_NAMES = frozenset(_FAST_FACTORIES)


def fast_schedulers() -> tuple[str, ...]:
    """Sorted registry names that resolve to a bitset kernel."""
    return tuple(sorted(_FAST_FACTORIES))


def has_fast_kernel(name: str) -> bool:
    """Whether ``make_fast_scheduler(name, ...)`` returns a bitset kernel."""
    return name in _FAST_FACTORIES


def make_fast_scheduler(name: str, n: int, **kwargs) -> Scheduler:
    """Construct the fast twin of a registry scheduler.

    Accepts the same names and keywords as
    :func:`~repro.baselines.registry.make_scheduler`; names without a
    fast kernel return the reference implementation, so the fast layer
    never changes which schedulers are available — only how fast the
    covered ones run. Either way the result is bit-identical to the
    reference (property-tested in ``tests/fastpath/``).
    """
    factory = _FAST_FACTORIES.get(name)
    if factory is None:
        return make_scheduler(name, n, **kwargs)
    return factory(n, **kwargs)
