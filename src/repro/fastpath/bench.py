"""Scheduler-speed measurement and the perf-regression report format.

The paper's Table 2 compares hardware scheduling times; our software
equivalent is ``schedule()`` calls per second, and the quantity this
module is built to defend is the *speedup ratio* of each fastpath
kernel over its reference twin. Ratios are what regression checking
compares — absolute slots/sec shift with the host machine, but fast
and reference kernels run on the same interpreter on the same box, so
their ratio is stable enough to gate on.

Methodology (shared by ``benchmarks/bench_scheduler_speed.py`` and the
CI perf-smoke job):

* a fixed pool of seeded ~50%-density request matrices, cycled so no
  call sees a cached matrix object twice in a row;
* explicit warmup cycles before any timing (first calls pay numpy
  and bytecode warmup);
* median of ``repeats`` independent timing windows — robust against
  one-off scheduler hiccups on a loaded machine.

The report is plain JSON (``BENCH_speed.json`` at the repo root is the
committed baseline); ``compare_reports`` + ``check_min_speedups`` are
the library behind ``tools/check_bench_regression.py``.
"""

from __future__ import annotations

import json
import platform
import statistics
import time
from pathlib import Path

import numpy as np

from repro.baselines.registry import make_scheduler
from repro.fastpath.registry import fast_schedulers, make_fast_scheduler

#: Report schema version (bump on incompatible shape changes).
REPORT_VERSION = 1

#: Switch widths the standard suite measures. 64 and beyond exercise
#: the multi-word (``n > 64``) kernel layouts and the word-boundary
#: case; 256 is the four-word layout the scaling guide extrapolates to.
DEFAULT_SIZES = (4, 16, 32, 64, 128, 256)

#: Width at and below which cells run the caller's full cycle count;
#: wider cells scale cycles down inversely (see :func:`scaled_cycles`).
CYCLE_ANCHOR = 16

#: Request density of the benchmark matrices (the paper's ~50% load).
DEFAULT_DENSITY = 0.5

#: Matrices in the cycled pool (power of two so ``k & 63`` cycles it).
POOL_SIZE = 64


def _platform_fields() -> dict:
    """Host fields every report carries (shared by the columnar suite)."""
    return {
        "python": platform.python_version(),
        "machine": platform.machine(),
    }


def request_pool(
    n: int, density: float = DEFAULT_DENSITY, seed: int = 42
) -> list[np.ndarray]:
    """The seeded pool of boolean request matrices every measurement uses."""
    rng = np.random.default_rng(seed)
    return [rng.random((n, n)) < density for _ in range(POOL_SIZE)]


def scaled_cycles(cycles: int, n: int, anchor: int = CYCLE_ANCHOR, floor: int = 48) -> int:
    """Per-cell cycle count: full up to ``anchor`` ports, then inverse
    with width so a 128-port cell costs about what a 16-port cell does
    (one schedule() call is roughly linear in ``n`` for both layers).
    ``floor`` keeps wide cells statistically meaningful."""
    if n <= anchor:
        return cycles
    return max(floor, cycles * anchor // n)


def measure_rate(
    scheduler,
    matrices: list[np.ndarray],
    cycles: int = 2000,
    repeats: int = 5,
    warmup_cycles: int = 200,
) -> float:
    """Median schedule() calls per second over ``repeats`` timing windows."""
    pool = len(matrices)
    schedule = scheduler.schedule
    for k in range(warmup_cycles):
        schedule(matrices[k % pool])
    rates = []
    for _ in range(repeats):
        start = time.perf_counter()
        for k in range(cycles):
            schedule(matrices[k % pool])
        rates.append(cycles / (time.perf_counter() - start))
    return statistics.median(rates)


def measure_pair(
    name: str,
    n: int,
    cycles: int = 2000,
    repeats: int = 5,
    warmup_cycles: int = 200,
    density: float = DEFAULT_DENSITY,
) -> dict[str, float]:
    """Reference vs fastpath rates and their ratio for one (name, n)."""
    matrices = request_pool(n, density)
    reference = measure_rate(
        make_scheduler(name, n), matrices, cycles, repeats, warmup_cycles
    )
    fast = measure_rate(
        make_fast_scheduler(name, n), matrices, cycles, repeats, warmup_cycles
    )
    return {
        "reference_slots_per_sec": round(reference, 1),
        "fast_slots_per_sec": round(fast, 1),
        "speedup": round(fast / reference, 3),
    }


def run_speed_suite(
    names: tuple[str, ...] | None = None,
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    cycles: int = 2000,
    repeats: int = 5,
    warmup_cycles: int = 200,
    progress=None,
) -> dict:
    """Measure every (scheduler, n) cell and package the report dict.

    ``cycles``/``warmup_cycles`` are the budgets at the anchor width;
    wider cells run :func:`scaled_cycles` of them so the suite's wall
    time stays flat per cell instead of quadratic in width. Speedup
    ratios are unaffected — both layers of a pair always run the same
    cycle count.
    """
    if names is None:
        names = fast_schedulers()
    report: dict = {
        "version": REPORT_VERSION,
        "density": DEFAULT_DENSITY,
        "cycles": cycles,
        "repeats": repeats,
        "warmup_cycles": warmup_cycles,
        **_platform_fields(),
        "schedulers": {},
    }
    for name in names:
        cells = report["schedulers"].setdefault(name, {})
        for n in sizes:
            cells[str(n)] = cell = measure_pair(
                name,
                n,
                cycles=scaled_cycles(cycles, n),
                repeats=repeats,
                warmup_cycles=scaled_cycles(warmup_cycles, n, floor=10),
            )
            if progress is not None:
                progress(
                    f"{name:<16} n={n:<3} "
                    f"ref {cell['reference_slots_per_sec']:>10.0f}/s  "
                    f"fast {cell['fast_slots_per_sec']:>10.0f}/s  "
                    f"{cell['speedup']:.2f}x"
                )
    return report


def write_report(report: dict, path: str | Path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def load_report(path: str | Path) -> dict:
    report = json.loads(Path(path).read_text())
    version = report.get("version")
    if version != REPORT_VERSION:
        raise ValueError(
            f"{path}: report version {version!r}, expected {REPORT_VERSION}"
        )
    return report


def iter_cells(report: dict):
    """Yield ``(name, n, cell)`` for every measured cell of a report."""
    for name, cells in sorted(report.get("schedulers", {}).items()):
        for n_text, cell in sorted(cells.items(), key=lambda item: int(item[0])):
            yield name, int(n_text), cell


def compare_reports(
    baseline: dict, current: dict, tolerance: float = 0.30
) -> list[str]:
    """Speedup-ratio regressions of ``current`` against ``baseline``.

    A cell regresses when its current speedup falls more than
    ``tolerance`` (fractionally) below the baseline speedup. Cells
    missing from ``current`` are regressions too — silently dropping a
    kernel from the suite must not pass. Extra cells are fine.
    """
    failures = []
    current_cells = {
        (name, n): cell for name, n, cell in iter_cells(current)
    }
    for name, n, base_cell in iter_cells(baseline):
        cell = current_cells.get((name, n))
        if cell is None:
            failures.append(f"{name} n={n}: missing from current report")
            continue
        floor = base_cell["speedup"] * (1.0 - tolerance)
        if cell["speedup"] < floor:
            failures.append(
                f"{name} n={n}: speedup {cell['speedup']:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_cell['speedup']:.2f}x "
                f"- {tolerance:.0%} tolerance)"
            )
    return failures


def check_min_speedups(
    report: dict, floors: dict[tuple[str, int], float]
) -> list[str]:
    """Absolute speedup floors (e.g. the >= 3x lcf_central_rr@16 claim)."""
    cells = {(name, n): cell for name, n, cell in iter_cells(report)}
    failures = []
    for (name, n), floor in sorted(floors.items()):
        cell = cells.get((name, n))
        if cell is None:
            failures.append(f"{name} n={n}: not measured, floor {floor:g}x unchecked")
        elif cell["speedup"] < floor:
            failures.append(
                f"{name} n={n}: speedup {cell['speedup']:.2f}x below the "
                f"required {floor:g}x floor"
            )
    return failures
