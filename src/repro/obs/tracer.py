"""Tracer backends: where emitted events go.

The contract is two attributes: ``enabled`` (checked once, at
attachment time — see :func:`effective_tracer`) and ``emit(event)``.
Instrumented components resolve the tracer to ``None`` when it is
absent or disabled, so the disabled path costs a single ``is not None``
check and never builds an event dict.

Backends:

* :class:`NullTracer` — permanently disabled; attach it anywhere with
  zero effect (the property-tested guarantee).
* :class:`RingTracer` — keeps the last ``capacity`` events in memory;
  the default for interactive use and tests.
* :class:`JsonlTracer` — appends one JSON object per line to a file;
  the on-disk format validated by ``tools/check_trace_schema.py`` and
  convertible to a Chrome/Perfetto trace with
  :func:`repro.obs.chrome.to_chrome_trace`.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import IO, Iterable, Iterator


class Tracer:
    """Base tracer: enabled, events discarded. Subclasses store them."""

    #: Whether instrumented components should emit to this tracer at all.
    enabled: bool = True

    def emit(self, event: dict) -> None:  # pragma: no cover - overridden
        """Record one event (a JSON-serialisable dict)."""

    def close(self) -> None:
        """Release any underlying resource (idempotent)."""

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class NullTracer(Tracer):
    """The disabled tracer: nothing is recorded, nothing is paid.

    Attaching a ``NullTracer`` resolves to the no-tracer fast path at
    construction time (:func:`effective_tracer`), so a simulation run
    with one is *bit-identical* to a run with no tracer at all.
    """

    enabled = False

    def emit(self, event: dict) -> None:
        pass


class RingTracer(Tracer):
    """In-memory ring buffer of the most recent ``capacity`` events."""

    def __init__(self, capacity: int = 1 << 16):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[dict] = deque(maxlen=capacity)
        self.emitted = 0

    def emit(self, event: dict) -> None:
        self.emitted += 1
        self._events.append(event)

    @property
    def events(self) -> list[dict]:
        """The retained events, oldest first."""
        return list(self._events)

    def of_type(self, kind: str) -> list[dict]:
        """Retained events of one type, oldest first.

        ``kind`` must be a schema event type — a typo'd kind raises
        instead of silently returning an empty list.
        """
        from repro.obs.events import EVENT_TYPES

        if kind not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {kind!r}; known: {', '.join(sorted(EVENT_TYPES))}"
            )
        return [event for event in self._events if event["type"] == kind]

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class JsonlTracer(Tracer):
    """Streams events to a file, one compact JSON object per line."""

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle: IO[str] | None = self.path.open("w")
        self.emitted = 0

    def emit(self, event: dict) -> None:
        if self._handle is None:
            raise ValueError(f"JsonlTracer({self.path}) is closed")
        self._handle.write(json.dumps(event, separators=(",", ":")))
        self._handle.write("\n")
        self.emitted += 1

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def effective_tracer(tracer: Tracer | None) -> Tracer | None:
    """Resolve a tracer argument to the hot-path handle.

    Returns ``None`` for ``None`` or any tracer with ``enabled`` False,
    so instrumented code guards every emission with one ``is not None``
    check and a disabled tracer costs exactly as much as no tracer.
    """
    if tracer is None or not tracer.enabled:
        return None
    return tracer


def events_from_jsonl(path: str | Path) -> Iterator[dict]:
    """Parse a :class:`JsonlTracer` file back into event dicts."""
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def write_jsonl(events: Iterable[dict], path: str | Path) -> int:
    """Write events to a JSONL file; returns the number written."""
    count = 0
    with Path(path).open("w") as handle:
        for event in events:
            handle.write(json.dumps(event, separators=(",", ":")))
            handle.write("\n")
            count += 1
    return count
