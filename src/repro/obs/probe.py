"""Matching-quality probe: measure achieved versus maximum matching.

The paper's throughput argument is that LCF's fewest-choices-first order
produces *larger matchings* than PIM/iSLIP. The probe makes that claim
a per-run number: it wraps any request-matrix scheduler, computes the
maximum matching size (Hopcroft–Karp, from :mod:`repro.matching`) on
every request matrix *before* delegating, and accumulates both totals.
``efficiency`` is then achieved/maximum over the run — 1.0 means the
scheduler found a maximum matching every single slot.

The probe is transparent: the inner scheduler computes exactly the
schedule it would have computed unwrapped, and decision-trace recording
(``record_trace`` / ``last_trace``) passes through so switch-level
telemetry keeps working.

Hopcroft–Karp results are memoised per unique request matrix (keyed on
the :func:`repro.fastpath.pack_rows` bitmask tuple): a steady-state
switch revisits the same request pattern for many consecutive slots, so
the cache turns the dominant per-slot cost of a probed run into a dict
lookup. ``cache_hits`` / ``cache_misses`` expose the effectiveness; the
cache is bounded by ``max_cache_entries`` and cleared wholesale on
overflow (matrices seen after a clear are simply recomputed).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Scheduler
from repro.fastpath.bitops import pack_rows
from repro.matching.hopcroft_karp import maximum_matching_size
from repro.types import NO_GRANT, RequestMatrix, Schedule, as_request_matrix


class MatchingQualityProbe(Scheduler):
    """Wrap a scheduler and score every matching against the maximum."""

    #: Default bound on distinct request matrices memoised at once.
    DEFAULT_MAX_CACHE_ENTRIES = 1 << 16

    def __init__(
        self, inner: Scheduler, max_cache_entries: int = DEFAULT_MAX_CACHE_ENTRIES
    ):
        if getattr(inner, "weight_kind", None) is not None:
            raise ValueError(
                f"{inner.name} schedules on weights, not request matrices; "
                "the matching probe only wraps request-matrix schedulers"
            )
        if max_cache_entries < 1:
            raise ValueError(
                f"max_cache_entries must be >= 1, got {max_cache_entries}"
            )
        super().__init__(inner.n)
        self.inner = inner
        self.name = inner.name
        self.slots = 0
        self.achieved_total = 0
        self.maximum_total = 0
        self.max_cache_entries = max_cache_entries
        self.cache_hits = 0
        self.cache_misses = 0
        self._hk_cache: dict[tuple[int, ...], int] = {}

    def _maximum(self, matrix: np.ndarray) -> int:
        key = tuple(pack_rows(matrix))
        cached = self._hk_cache.get(key)
        if cached is not None:
            self.cache_hits += 1
            return cached
        self.cache_misses += 1
        size = maximum_matching_size(matrix)
        if len(self._hk_cache) >= self.max_cache_entries:
            self._hk_cache.clear()
        self._hk_cache[key] = size
        return size

    # -- delegation ----------------------------------------------------

    def schedule(self, requests: RequestMatrix) -> Schedule:
        matrix = as_request_matrix(requests)
        self.maximum_total += self._maximum(matrix)
        schedule = self.inner.schedule(matrix)
        self.achieved_total += int(np.count_nonzero(schedule != NO_GRANT))
        self.slots += 1
        return schedule

    def _schedule(self, requests: RequestMatrix) -> Schedule:  # pragma: no cover
        # ``schedule`` is fully overridden; the abstract hook only exists
        # to satisfy the base class.
        return self.inner._schedule(requests)

    def reset(self) -> None:
        self.inner.reset()
        self.slots = 0
        self.achieved_total = 0
        self.maximum_total = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._hk_cache.clear()

    # Decision-trace recording passes through to the wrapped scheduler.

    @property
    def record_trace(self) -> bool:
        return getattr(self.inner, "record_trace", False)

    @record_trace.setter
    def record_trace(self, value: bool) -> None:
        if hasattr(self.inner, "record_trace"):
            self.inner.record_trace = value

    @property
    def last_trace(self) -> list:
        return getattr(self.inner, "last_trace", [])

    @property
    def rr_position(self) -> tuple[int, int] | None:
        """The distributed RR overlay position, when the inner scheduler
        has one (``None`` otherwise) — the switch telemetry reads it."""
        return getattr(self.inner, "rr_position", None)

    # -- scores --------------------------------------------------------

    @property
    def mean_matching(self) -> float:
        """Mean achieved matching size per scheduled slot."""
        return self.achieved_total / self.slots if self.slots else float("nan")

    @property
    def mean_maximum(self) -> float:
        """Mean maximum-matching size per scheduled slot."""
        return self.maximum_total / self.slots if self.slots else float("nan")

    @property
    def efficiency(self) -> float:
        """Achieved over maximum matching, pooled over the run (<= 1.0)."""
        return (
            self.achieved_total / self.maximum_total
            if self.maximum_total
            else float("nan")
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"MatchingQualityProbe({self.inner!r})"
