"""``repro.obs`` — the instrumentation layer.

Zero-overhead-when-disabled tracing and metrics for the simulator,
schedulers, and sweep engine:

* :mod:`repro.obs.events` — the typed per-slot event vocabulary and its
  schema (validated in CI by ``tools/check_trace_schema.py``);
* :mod:`repro.obs.tracer` — event sinks (:class:`NullTracer`,
  :class:`RingTracer`, :class:`JsonlTracer`);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and fixed-bucket histograms;
* :mod:`repro.obs.chrome` — Chrome trace-event / Perfetto export;
* :mod:`repro.obs.probe` — :class:`MatchingQualityProbe`, achieved
  versus maximum matching size;
* :mod:`repro.obs.cli` — the ``lcf-trace`` command.

See ``docs/OBSERVABILITY.md`` for the end-to-end walkthrough.
"""

from repro.obs.chrome import to_chrome_trace, write_chrome_trace
from repro.obs.events import EVENT_SCHEMA, EVENT_TYPES, validate_event
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.probe import MatchingQualityProbe
from repro.obs.tracer import (
    JsonlTracer,
    NullTracer,
    RingTracer,
    Tracer,
    effective_tracer,
    events_from_jsonl,
    write_jsonl,
)

__all__ = [
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "validate_event",
    "Tracer",
    "NullTracer",
    "RingTracer",
    "JsonlTracer",
    "effective_tracer",
    "events_from_jsonl",
    "write_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MatchingQualityProbe",
    "to_chrome_trace",
    "write_chrome_trace",
]
