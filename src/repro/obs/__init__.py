"""``repro.obs`` — the instrumentation layer.

Zero-overhead-when-disabled tracing and metrics for the simulator,
schedulers, and sweep engine:

* :mod:`repro.obs.events` — the typed per-slot event vocabulary and its
  schema (validated in CI by ``tools/check_trace_schema.py``);
* :mod:`repro.obs.tracer` — event sinks (:class:`NullTracer`,
  :class:`RingTracer`, :class:`JsonlTracer`);
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` with counters,
  gauges, and fixed-bucket histograms;
* :mod:`repro.obs.chrome` — Chrome trace-event / Perfetto export;
* :mod:`repro.obs.probe` — :class:`MatchingQualityProbe`, achieved
  versus maximum matching size;
* :mod:`repro.obs.estimators` — online :class:`RateEstimator` (per-pair
  EWMA) and :class:`P2Quantile` / :class:`StreamingQuantiles` (live
  delay percentiles without sample storage);
* :mod:`repro.obs.serve` — :class:`MetricsSnapshot` OpenMetrics/JSON
  rendering, the periodic :class:`SnapshotExporter`, and the HTTP
  :class:`ScrapeEndpoint`;
* :mod:`repro.obs.analytics` — paper-check probes
  (:class:`MessageAccountingProbe`, :class:`FairnessProbe`) and the
  matching-efficiency dashboard behind ``lcf-report --dashboard``;
* :mod:`repro.obs.cli` — the ``lcf-trace`` command.

See ``docs/OBSERVABILITY.md`` for the end-to-end walkthrough.
"""

from repro.obs.analytics import (
    FairnessProbe,
    FairnessReport,
    MessageAccountingProbe,
    MessageAccountingReport,
)
from repro.obs.chrome import to_chrome_trace, write_chrome_trace
from repro.obs.estimators import P2Quantile, RateEstimator, StreamingQuantiles
from repro.obs.events import EVENT_SCHEMA, EVENT_TYPES, validate_event
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.probe import MatchingQualityProbe
from repro.obs.serve import (
    MetricsSnapshot,
    ScrapeEndpoint,
    SnapshotExporter,
    effective_exporter,
    render_json,
    render_openmetrics,
)
from repro.obs.tracer import (
    JsonlTracer,
    NullTracer,
    RingTracer,
    Tracer,
    effective_tracer,
    events_from_jsonl,
    write_jsonl,
)

__all__ = [
    "EVENT_SCHEMA",
    "EVENT_TYPES",
    "validate_event",
    "Tracer",
    "NullTracer",
    "RingTracer",
    "JsonlTracer",
    "effective_tracer",
    "events_from_jsonl",
    "write_jsonl",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MatchingQualityProbe",
    "RateEstimator",
    "P2Quantile",
    "StreamingQuantiles",
    "MetricsSnapshot",
    "SnapshotExporter",
    "ScrapeEndpoint",
    "effective_exporter",
    "render_openmetrics",
    "render_json",
    "MessageAccountingProbe",
    "MessageAccountingReport",
    "FairnessProbe",
    "FairnessReport",
    "to_chrome_trace",
    "write_chrome_trace",
]
