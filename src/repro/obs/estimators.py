"""Online estimators: per-pair EWMA rates and P² streaming quantiles.

The serving layer (:mod:`repro.obs.serve`) exposes *live* values while a
simulation is still running, which rules out anything that stores
samples. Two estimators cover what an operator watching a long soak run
actually needs:

* :class:`RateEstimator` — an exponentially weighted moving average of
  the per-slot service rate for every (input, output) pair, the online
  counterpart of the post-hoc :class:`~repro.sim.metrics.ServiceMatrix`.
  Updates are *lazy*: a pair's value decays only when it is touched or
  read, so a slot's cost is O(forwards), never O(n²). During a port
  outage the affected row/column visibly decays toward zero and climbs
  back as the switch heals — the signal the ROADMAP's "watch a faulted
  switch heal" item asks for.
* :class:`P2Quantile` — the Jain–Chlamtac P² algorithm: one quantile
  estimate from five markers, O(1) per observation, no sample storage.
  :class:`StreamingQuantiles` bundles the standard p50/p90/p99 delay
  set. Accuracy against exact percentiles is property-tested in
  ``tests/obs/test_estimators.py``.

Both are pure Python/numpy state machines with no export opinion; the
switch wires them into its :class:`~repro.obs.metrics.MetricsRegistry`
as collector-refreshed gauges (see ``docs/OBSERVABILITY.md``).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["RateEstimator", "P2Quantile", "StreamingQuantiles"]


class RateEstimator:
    """Per-(input, output) EWMA of events per slot, with lazy decay.

    The underlying recurrence is the standard per-slot EWMA

        ``r[t] = (1 - alpha) * r[t-1] + alpha * x[t]``

    where ``x[t]`` is the number of events the pair saw in slot ``t``
    (0 or 1 for crossbar forwards). Slots with no events only multiply
    by ``(1 - alpha)``, so they are applied in one power at the next
    touch or read instead of one at a time — ``observe`` and ``rate``
    are O(1) and a full :meth:`matrix` read is one vectorised
    expression. The estimate converges to the pair's true service rate
    (events/slot) with time constant ``~1/alpha`` slots.
    """

    def __init__(self, n: int, alpha: float = 0.02):
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.n = n
        self.alpha = alpha
        self._value = np.zeros((n, n), dtype=np.float64)
        self._slot = np.zeros((n, n), dtype=np.int64)
        self.events = 0

    def reset(self) -> None:
        self._value[:] = 0.0
        self._slot[:] = 0
        self.events = 0

    def observe(self, input: int, output: int, slot: int) -> None:
        """Record one event for a pair at ``slot`` (non-decreasing)."""
        decay = (1.0 - self.alpha) ** (slot - self._slot[input, output])
        self._value[input, output] = (
            self._value[input, output] * decay + self.alpha
        )
        self._slot[input, output] = slot
        self.events += 1

    def rate(self, input: int, output: int, at_slot: int) -> float:
        """The pair's estimated events/slot as of ``at_slot``."""
        decay = (1.0 - self.alpha) ** (at_slot - self._slot[input, output])
        return float(self._value[input, output] * decay)

    def matrix(self, at_slot: int) -> np.ndarray:
        """The full ``(n, n)`` rate matrix decayed to ``at_slot``."""
        return self._value * (1.0 - self.alpha) ** (at_slot - self._slot)

    def input_rates(self, at_slot: int) -> np.ndarray:
        """Per-input total service rate (row sums) at ``at_slot``."""
        return self.matrix(at_slot).sum(axis=1)

    def output_rates(self, at_slot: int) -> np.ndarray:
        """Per-output total service rate (column sums) at ``at_slot``."""
        return self.matrix(at_slot).sum(axis=0)

    def total_rate(self, at_slot: int) -> float:
        """Estimated switch-wide forwards per slot at ``at_slot``."""
        return float(self.matrix(at_slot).sum())

    def top_pairs(self, at_slot: int, k: int = 3) -> list[tuple[int, int, float]]:
        """The ``k`` hottest (input, output, rate) pairs, hottest first."""
        matrix = self.matrix(at_slot)
        flat = np.argsort(matrix, axis=None)[::-1][:k]
        return [
            (int(index // self.n), int(index % self.n), float(matrix.flat[index]))
            for index in flat
            if matrix.flat[index] > 0.0
        ]


class P2Quantile:
    """One streaming quantile via the P² algorithm (Jain & Chlamtac '85).

    Five markers track the minimum, the q/2, q, and (1+q)/2 quantiles,
    and the maximum; marker heights move by parabolic (falling back to
    linear) interpolation as observations stream in. Until five samples
    have arrived the estimate is read off the sorted warm-up buffer, so
    :attr:`value` is always defined once anything was observed.
    """

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self.count = 0
        self._heights: list[float] = []
        # Marker positions (1-based, per the paper) and desired positions.
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    def reset(self) -> None:
        self.count = 0
        self._heights = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * self.q, 1.0 + 4.0 * self.q,
                         3.0 + 2.0 * self.q, 5.0]

    def add(self, x: float) -> None:
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(float(x))
            heights.sort()
            return

        # Find the cell k such that heights[k] <= x < heights[k+1],
        # stretching the extreme markers when x falls outside them.
        if x < heights[0]:
            heights[0] = float(x)
            k = 0
        elif x >= heights[4]:
            heights[4] = float(x)
            k = 3
        else:
            k = 0
            while k < 3 and not (heights[k] <= x < heights[k + 1]):
                k += 1

        positions = self._positions
        for index in range(k + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]

        # Adjust the three interior markers toward their desired spots.
        for index in (1, 2, 3):
            delta = self._desired[index] - positions[index]
            below = positions[index] - positions[index - 1]
            above = positions[index + 1] - positions[index]
            if (delta >= 1.0 and above > 1.0) or (delta <= -1.0 and below > 1.0):
                step = 1.0 if delta >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, step)
                positions[index] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, p = self._heights, self._positions
        return h[i] + d / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + d) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - d) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, p = self._heights, self._positions
        step = int(d)
        return h[i] + d * (h[i + step] - h[i]) / (p[i + step] - p[i])

    @property
    def value(self) -> float:
        """The current quantile estimate (NaN before any observation)."""
        if self.count == 0:
            return math.nan
        if self.count <= 5:
            # Exact quantile of the warm-up buffer (nearest-rank blend).
            rank = self.q * (len(self._heights) - 1)
            low = int(rank)
            high = min(low + 1, len(self._heights) - 1)
            frac = rank - low
            return self._heights[low] * (1.0 - frac) + self._heights[high] * frac
        return self._heights[2]


class StreamingQuantiles:
    """A bank of :class:`P2Quantile` cells fed from one stream.

    The default quantile set is the delay dashboard's p50/p90/p99.
    """

    DEFAULT_QS = (0.5, 0.9, 0.99)

    def __init__(self, qs: tuple[float, ...] = DEFAULT_QS):
        if not qs:
            raise ValueError("need at least one quantile")
        self.cells = {q: P2Quantile(q) for q in qs}
        self.count = 0

    def add(self, x: float) -> None:
        self.count += 1
        for cell in self.cells.values():
            cell.add(x)

    def reset(self) -> None:
        self.count = 0
        for cell in self.cells.values():
            cell.reset()

    def values(self) -> dict[float, float]:
        """``{quantile: estimate}`` for every tracked quantile."""
        return {q: cell.value for q, cell in self.cells.items()}

    def summary(self) -> str:
        parts = [
            f"p{q * 100:g}={cell.value:.2f}" for q, cell in sorted(self.cells.items())
        ]
        return "  ".join(parts)
