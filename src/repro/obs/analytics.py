"""Paper-check analytics over the trace/metrics firehose.

Three analyses the PR-2 tracer unlocked, now actually computed:

* :class:`MessageAccountingProbe` — empirical message-bit accounting
  from ``iteration`` events versus the Section 6.2 analytic model
  :func:`repro.hw.comm.distributed_bits`. The model charges every
  executed iteration ``n² · (2·log2 n + 3)`` bits (all pair wires drive
  their Figure 10b fields every round); the probe re-derives that
  per-iteration charge independently from the
  :func:`~repro.hw.comm.distributed_messages` field widths and counts
  iterations off the event stream, so the two totals cross-check the
  closed form against the protocol as traced. It also reports what the
  fixed-``i`` model *overcharges* (the scheduler stops iterating once
  converged) and the live-bit utilisation (only live request pairs
  carry payload).
* :class:`FairnessProbe` — per-pair service counts at load ≈ 1.0
  correlated with ``rr_override`` events, checking the paper's Section
  5 claim that the round-robin overlay visits every matrix position
  once per ``n²`` cycles: every pair with backlog is served at least
  ``b/n²`` of the time (``b`` = 1 guaranteed slot per RR sweep).
* :func:`run_matching_dashboard` — matching efficiency (achieved /
  Hopcroft–Karp maximum, via
  :class:`~repro.obs.probe.MatchingQualityProbe`) versus load per
  scheduler across the Figure 12 grid, joined with the cached sweep's
  latency/throughput columns. ``lcf-report --dashboard`` renders it as
  CSV plus a plot (matplotlib when installed, ASCII otherwise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.hw.comm import distributed_bits, distributed_messages
from repro.ioutil import atomic_write_text
from repro.obs import events as ev
from repro.obs.probe import MatchingQualityProbe

__all__ = [
    "MessageAccountingProbe",
    "MessageAccountingReport",
    "FairnessProbe",
    "FairnessReport",
    "DashboardRow",
    "run_matching_dashboard",
    "write_dashboard_csv",
    "write_dashboard_plot",
]


# ---------------------------------------------------------------------------
# Section 6.2: empirical message accounting vs distributed_bits(n, i)
# ---------------------------------------------------------------------------


@dataclass
class MessageAccountingReport:
    """Empirical-vs-analytic communication bits for one traced run."""

    scheduler: str
    n: int
    #: Iterations the protocol was configured to run per cycle.
    configured_iterations: int
    #: Scheduling cycles (slots) observed in the trace.
    slots: int
    #: Iteration rounds actually executed across all slots.
    iterations: int
    #: Bits counted from the event stream via Figure 10b field widths.
    empirical_bits: int
    #: Analytic model evaluated at the *observed* iteration counts.
    analytic_bits: int
    #: Analytic model at the configured fixed iteration count.
    configured_bits: int
    #: Bits that actually carried live payload (req/gnt/acc asserted).
    live_bits: int

    @property
    def mean_iterations(self) -> float:
        """Observed iteration rounds per scheduling cycle."""
        return self.iterations / self.slots if self.slots else math.nan

    @property
    def error(self) -> float:
        """Relative empirical-vs-analytic error (the consistency check)."""
        if not self.analytic_bits:
            return math.nan
        return abs(self.empirical_bits - self.analytic_bits) / self.analytic_bits

    @property
    def convergence_savings(self) -> float:
        """Fraction of the fixed-``i`` budget early convergence saved."""
        if not self.configured_bits:
            return math.nan
        return 1.0 - self.empirical_bits / self.configured_bits

    @property
    def live_utilization(self) -> float:
        """Fraction of driven wire bits carrying live payload."""
        return self.live_bits / self.empirical_bits if self.empirical_bits else math.nan

    def summary(self) -> str:
        return (
            f"message accounting [{self.scheduler} n={self.n}]: "
            f"{self.slots} cycles, {self.mean_iterations:.2f} iterations/cycle "
            f"(configured {self.configured_iterations})\n"
            f"  empirical {self.empirical_bits} bits vs analytic "
            f"{self.analytic_bits} bits -> error {self.error:.4%}\n"
            f"  fixed-i model charges {self.configured_bits} bits "
            f"({self.convergence_savings:.1%} saved by convergence); "
            f"live payload {self.live_utilization:.1%} of driven bits"
        )


class MessageAccountingProbe:
    """Accumulate Section 6.2 message bits from ``iteration`` events.

    Feed it a trace (event dicts, a :class:`~repro.obs.tracer.RingTracer`
    contents list, or a JSONL read-back) with :meth:`consume`, then
    :meth:`report`. Per executed iteration the hardware drives all
    ``n²`` pair wires with the Figure 10b fields — ``req + nrq`` toward
    the target, ``gnt + ngt + acc`` back — so the empirical charge per
    iteration is the field-width sum over ``n²`` pairs, computed from
    :func:`~repro.hw.comm.distributed_messages` (independent of the
    :func:`~repro.hw.comm.distributed_bits` closed form it is checked
    against). Live bits additionally weigh the ``requests`` / ``grants``
    / ``accepts`` counts each event carries.
    """

    def __init__(self, n: int, configured_iterations: int = 4):
        if configured_iterations < 1:
            raise ValueError(
                f"iterations must be >= 1, got {configured_iterations}"
            )
        self.n = n
        self.configured_iterations = configured_iterations
        fields = distributed_messages(n)
        #: Bits one pair wire drives per iteration, both directions.
        self.pair_bits = sum(message.bits for message in fields.values())
        self._request_bits = fields["request"].bits
        self._grant_bits = fields["grant"].bits
        self._accept_bits = fields["accept"].bits
        self._iterations_per_slot: dict[int, int] = {}
        self.iterations = 0
        self.live_bits = 0

    def consume(self, events: Iterable[dict]) -> "MessageAccountingProbe":
        """Fold a stream of trace events into the accounting."""
        for event in events:
            if event.get("type") != ev.ITERATION:
                continue
            slot = event["slot"]
            self._iterations_per_slot[slot] = self._iterations_per_slot.get(slot, 0) + 1
            self.iterations += 1
            self.live_bits += (
                event.get("requests", 0) * self._request_bits
                + event["grants"] * self._grant_bits
                + event["accepts"] * self._accept_bits
            )
        return self

    @property
    def slots(self) -> int:
        return len(self._iterations_per_slot)

    def report(self, scheduler: str = "lcf_dist") -> MessageAccountingReport:
        # Empirical: every executed iteration drives all n² pair wires.
        empirical = self.iterations * self.n * self.n * self.pair_bits
        analytic = sum(
            distributed_bits(self.n, k)
            for k in self._iterations_per_slot.values()
            if k >= 1
        )
        configured = self.slots * distributed_bits(self.n, self.configured_iterations)
        return MessageAccountingReport(
            scheduler=scheduler,
            n=self.n,
            configured_iterations=self.configured_iterations,
            slots=self.slots,
            iterations=self.iterations,
            empirical_bits=empirical,
            analytic_bits=analytic,
            configured_bits=configured,
            live_bits=self.live_bits,
        )


# ---------------------------------------------------------------------------
# Section 5 fairness: rr_override events vs per-pair service at load ~ 1.0
# ---------------------------------------------------------------------------


@dataclass
class FairnessReport:
    """RR-overlay fairness check for one saturated run."""

    scheduler: str
    n: int
    #: Measured slots the service counts cover.
    slots: int
    #: Guaranteed service slots per pair per n² cycles (the paper's b).
    b: int
    #: Minimum per-pair service rate across pairs with any demand.
    min_rate: float
    #: The paper's lower bound b/n².
    bound: float
    #: Pairs served strictly less often than the bound allows.
    starved_pairs: list[tuple[int, int]] = field(default_factory=list)
    #: Pearson correlation between per-pair override and service counts.
    override_service_correlation: float = math.nan
    #: Total rr_override events seen in the trace.
    overrides: int = 0
    #: Jain fairness index of the per-pair service rates.
    jain: float = math.nan

    @property
    def bound_holds(self) -> bool:
        """Did every demanded pair meet the b/n² service floor?"""
        return not self.starved_pairs

    def summary(self) -> str:
        status = "holds" if self.bound_holds else (
            f"VIOLATED for {len(self.starved_pairs)} pairs"
        )
        return (
            f"fairness [{self.scheduler} n={self.n}, {self.slots} slots]: "
            f"min pair rate {self.min_rate:.5f} vs bound b/n^2 = "
            f"{self.bound:.5f} -> {status}\n"
            f"  {self.overrides} rr_override events; "
            f"override-service correlation {self.override_service_correlation:+.3f}; "
            f"jain {self.jain:.3f}"
        )


class FairnessProbe:
    """Correlate ``rr_override`` events with per-pair service counts.

    At load ≈ 1.0 every VOQ stays backlogged, so the Section 5 overlay
    guarantee — the round-robin position is matched before LCF
    scheduling and visits each of the ``n²`` positions once per ``n²``
    cycles — lower-bounds every pair's service rate at ``b/n²``. The
    probe checks that bound against the switch's
    :class:`~repro.sim.metrics.ServiceMatrix` counts and reports how
    strongly the overrides explain the service a pair received (for a
    starvation-prone scheduler the overlay *is* the floor, so the
    correlation is the paper's mechanism made visible).
    """

    def __init__(self, n: int, b: int = 1):
        if b < 1:
            raise ValueError(f"b must be >= 1, got {b}")
        self.n = n
        self.b = b
        self.override_counts = np.zeros((n, n), dtype=np.int64)
        self.overrides = 0

    def consume(self, events: Iterable[dict]) -> "FairnessProbe":
        for event in events:
            if event.get("type") != ev.RR_OVERRIDE:
                continue
            self.override_counts[event["input"], event["output"]] += 1
            self.overrides += 1
        return self

    def report(
        self,
        service_counts: np.ndarray,
        slots: int,
        scheduler: str = "lcf_dist_rr",
        demanded: np.ndarray | None = None,
        tolerance: float = 0.5,
    ) -> FairnessReport:
        """Score the bound against measured service counts.

        ``demanded`` masks the pairs that had traffic to send (default:
        every pair, the uniform-load assumption). ``tolerance`` scales
        the bound to absorb warmup truncation — the guarantee is exact
        only over whole ``n²``-cycle sweeps.
        """
        if service_counts.shape != (self.n, self.n):
            raise ValueError(
                f"service counts are {service_counts.shape}, expected "
                f"({self.n}, {self.n})"
            )
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        rates = service_counts / slots
        mask = (
            np.ones_like(rates, dtype=bool) if demanded is None else demanded.astype(bool)
        )
        bound = self.b / (self.n * self.n)
        floor = bound * tolerance
        starved = [
            (int(i), int(j))
            for i, j in zip(*np.nonzero(mask & (rates < floor)))
        ]
        masked_rates = rates[mask]
        correlation = math.nan
        overrides = self.override_counts[mask].astype(np.float64)
        if masked_rates.size > 1 and overrides.std() > 0 and masked_rates.std() > 0:
            correlation = float(np.corrcoef(overrides, masked_rates)[0, 1])
        jain = math.nan
        if masked_rates.size and masked_rates.sum() > 0:
            jain = float(
                masked_rates.sum() ** 2
                / (masked_rates.size * (masked_rates**2).sum())
            )
        return FairnessReport(
            scheduler=scheduler,
            n=self.n,
            slots=slots,
            b=self.b,
            min_rate=float(masked_rates.min()) if masked_rates.size else math.nan,
            bound=bound,
            starved_pairs=starved,
            override_service_correlation=correlation,
            overrides=self.overrides,
            jain=jain,
        )


# ---------------------------------------------------------------------------
# Figure 12 grid: matching efficiency vs load dashboard
# ---------------------------------------------------------------------------


@dataclass
class DashboardRow:
    """One (scheduler, load) cell of the matching-quality dashboard."""

    scheduler: str
    load: float
    efficiency: float
    mean_matching: float
    mean_maximum: float
    mean_latency: float
    throughput: float

    def row(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "load": self.load,
            "efficiency": self.efficiency,
            "mean_matching": self.mean_matching,
            "mean_maximum": self.mean_maximum,
            "mean_latency": self.mean_latency,
            "throughput": self.throughput,
        }


def _probe_efficiency(
    config, scheduler_name: str, load: float, slots: int, fast: bool
) -> tuple[float, float, float]:
    """(efficiency, mean matching, mean maximum) for one probed run.

    ``fifo`` / ``outbuf`` run dedicated switch models with no crossbar
    matching, and the weighted schedulers match on weights rather than
    request matrices — those cells come back NaN rather than refusing
    the whole grid.
    """
    from repro.baselines.registry import SPECIAL_SWITCH_NAMES, make_scheduler
    from repro.fastpath.registry import make_fast_scheduler
    from repro.sim.crossbar import InputQueuedSwitch
    from repro.traffic.base import make_traffic

    if scheduler_name in SPECIAL_SWITCH_NAMES:
        return math.nan, math.nan, math.nan
    factory = make_fast_scheduler if fast else make_scheduler
    scheduler = factory(
        scheduler_name, config.n_ports, iterations=config.iterations, seed=config.seed
    )
    if getattr(scheduler, "weight_kind", None) is not None:
        return math.nan, math.nan, math.nan
    probe = MatchingQualityProbe(scheduler)
    switch = InputQueuedSwitch(config, probe)
    pattern = make_traffic("bernoulli", config.n_ports, load, seed=config.seed)
    for slot in range(slots):
        switch.step(slot, pattern.arrivals())
    return probe.efficiency, probe.mean_matching, probe.mean_maximum


def run_matching_dashboard(
    config,
    schedulers: tuple[str, ...],
    loads: tuple[float, ...],
    cache=None,
    probe_slots: int = 400,
    fast: bool = False,
    progress=False,
):
    """Compute the matching-efficiency-vs-load grid.

    Latency/throughput columns come from the cached Figure 12 sweep
    (:func:`repro.analysis.sweep.run_sweep` through the parallel engine
    — re-runs hit the :class:`~repro.sweep.cache.ResultCache`);
    efficiency comes from dedicated
    :class:`~repro.obs.probe.MatchingQualityProbe` runs of
    ``probe_slots`` slots per cell (the probe wraps the scheduler, so
    it cannot ride inside the sweep workers). Returns
    ``(rows, sweep_report)`` — the rows in grid order plus the sweep
    engine's :class:`~repro.sweep.runner.SweepRunReport`.
    """
    from repro.analysis.sweep import run_sweep
    from repro.sweep.spec import SweepSpec

    sweep = run_sweep(
        SweepSpec(schedulers=schedulers, loads=loads, config=config),
        cache=cache,
        fast=fast,
        progress=progress,
    )
    rows: list[DashboardRow] = []
    for name in schedulers:
        for load in loads:
            efficiency, achieved, maximum = _probe_efficiency(
                config, name, load, probe_slots, fast
            )
            point = sweep.get(name, load)
            rows.append(
                DashboardRow(
                    scheduler=name,
                    load=load,
                    efficiency=efficiency,
                    mean_matching=achieved,
                    mean_maximum=maximum,
                    mean_latency=point.mean_latency,
                    throughput=point.throughput,
                )
            )
    return rows, sweep.report


def write_dashboard_csv(rows: list[DashboardRow], path: str | Path) -> Path:
    """Write the dashboard grid as CSV (atomically)."""
    from repro.analysis.tables import rows_to_csv

    return atomic_write_text(path, rows_to_csv([row.row() for row in rows]))


def dashboard_ascii(rows: list[DashboardRow], width: int = 72, height: int = 20) -> str:
    """ASCII fallback rendering of efficiency vs load (per scheduler)."""
    from repro.analysis.asciiplot import ascii_plot

    series: dict[str, tuple[list[float], list[float]]] = {}
    for row in rows:
        loads, values = series.setdefault(row.scheduler, ([], []))
        loads.append(row.load)
        values.append(row.efficiency)
    return ascii_plot(
        series,
        title="Matching efficiency vs load (achieved / Hopcroft-Karp maximum)",
        x_label="load",
        y_label="efficiency",
        y_min=0.5,
        y_max=1.0,
        width=width,
        height=height,
    )


def write_dashboard_plot(rows: list[DashboardRow], path: str | Path) -> Path | None:
    """Write the efficiency-vs-load plot as PNG via matplotlib.

    Returns ``None`` (after printing nothing, raising nothing) when
    matplotlib is not installed — callers fall back to
    :func:`dashboard_ascii`. The toolchain deliberately has no hard
    plotting dependency.
    """
    try:
        import matplotlib
    except ImportError:
        return None
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    series: dict[str, tuple[list[float], list[float]]] = {}
    for row in rows:
        loads, values = series.setdefault(row.scheduler, ([], []))
        loads.append(row.load)
        values.append(row.efficiency)
    fig, (top, bottom) = plt.subplots(2, 1, figsize=(8, 8), sharex=True)
    for name, (loads, values) in series.items():
        top.plot(loads, values, marker="o", label=name)
    top.set_ylabel("matching efficiency")
    top.set_title("Matching efficiency vs load (Figure 12 grid)")
    top.legend()
    top.grid(True, alpha=0.3)
    latency: dict[str, tuple[list[float], list[float]]] = {}
    for row in rows:
        loads, values = latency.setdefault(row.scheduler, ([], []))
        loads.append(row.load)
        values.append(row.mean_latency)
    for name, (loads, values) in latency.items():
        bottom.plot(loads, values, marker="o", label=name)
    bottom.set_xlabel("load")
    bottom.set_ylabel("mean latency [slots]")
    bottom.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(path, dpi=120)
    plt.close(fig)
    return Path(path)
