"""Typed per-slot trace events and their schema.

Every event is a plain JSON-serialisable dict with at least a ``slot``
(the simulation time slot it happened in) and a ``type`` (one of the
constants below). The constructor functions are the only places events
are built, so the wire format and :data:`EVENT_SCHEMA` cannot drift
apart — ``tools/check_trace_schema.py`` and the CI trace job validate
emitted JSONL against exactly this schema. Events from a multi-switch
fabric (:mod:`repro.fabric.sim`) additionally carry a ``switch`` field
naming the emitting stage switch (see :data:`OPTIONAL_FIELDS`).

Event vocabulary (the Figure 11 slot pipeline plus scheduler decisions):

``arrival``
    A packet entered an input's packet queue (or was dropped — see
    ``drop``).
``drop``
    An arrival found its packet queue full and was discarded.
``admission_drop``
    An arrival was shed by the :class:`repro.sim.admission.
    AdmissionController` before reaching its packet queue: total switch
    occupancy had crossed the high watermark and had not yet drained
    back below the low one. Shed packets never appear as ``arrival`` or
    ``drop`` events.
``enqueue``
    The PQ head crossed the input link into its virtual output queue.
``requests``
    The per-input choice counts (the paper's NRQ vector) the scheduler
    saw this slot, before any grant.
``sched_step``
    One per-output allocation step of the central LCF scheduler: which
    output was scheduled, the round-robin row, who won, whether the RR
    rule pre-empted LCF priority, the winner's choice count, and how
    deep into the rotating tie-break chain the grant landed.
``rr_override``
    The round-robin position pre-empted LCF priority (a subset of
    ``sched_step``, split out so override rates are one grep away).
``iteration``
    One request/grant/accept iteration of a distributed scheduler:
    requests pending going in, grants offered and accepts committed.
    ``requests`` feeds the Section 6.2 message accounting
    (:class:`repro.obs.analytics.MessageAccountingProbe`).
``forward``
    A matched VOQ head traversed the fabric (latency in slots,
    inclusive of the transmission slot).
``slot``
    End-of-slot summary: matching size achieved, total outstanding
    requests, and the per-input VOQ occupancy vector (the Section 6.3
    buffer-leveling signal, exported as Perfetto counter tracks).
``fault``
    A fault-plan port outage began on one side of a port (``side`` is
    ``input``/``output``; injected by :mod:`repro.faults`).
``recovery``
    A previously down port side came back up and — for inputs — worked
    off the backlog accumulated while down (``backlog_slots`` counts
    the slots from port-up until the input's queues shrank back to
    their at-fault level; 0 for outputs and for inputs with no
    backlog).
``suspect``
    The adaptive health estimator (:mod:`repro.adapt`) stopped
    trusting a crosspoint or port side after ``fails`` consecutive
    failed grants. ``scope`` is ``link`` (one crosspoint), ``input``
    (a whole row), or ``output`` (a whole column); port-scope events
    carry ``-1`` for the non-applicable coordinate.
``probe``
    A suspect crosspoint was deliberately re-offered to the scheduler
    to test for recovery (same ``scope`` convention as ``suspect``).
``readmit``
    A suspect crosspoint or port side passed probation and returned to
    service; ``after`` is the slots it spent suspect.
"""

from __future__ import annotations

ARRIVAL = "arrival"
DROP = "drop"
ADMISSION_DROP = "admission_drop"
ENQUEUE = "enqueue"
REQUESTS = "requests"
SCHED_STEP = "sched_step"
RR_OVERRIDE = "rr_override"
ITERATION = "iteration"
FORWARD = "forward"
SLOT = "slot"
FAULT = "fault"
RECOVERY = "recovery"
SUSPECT = "suspect"
PROBE = "probe"
READMIT = "readmit"

#: ``scope`` values adaptive health events may carry.
ADAPT_SCOPES = ("link", "input", "output")

#: Required fields (beyond ``slot`` and ``type``) per event type, with
#: the Python types a valid value may have. ``list`` fields must hold
#: integers.
EVENT_SCHEMA: dict[str, dict[str, tuple[type, ...]]] = {
    ARRIVAL: {"input": (int,), "output": (int,)},
    DROP: {"input": (int,), "output": (int,)},
    ADMISSION_DROP: {"input": (int,), "output": (int,)},
    ENQUEUE: {"input": (int,), "output": (int,)},
    REQUESTS: {"nrq": (list,), "total": (int,)},
    SCHED_STEP: {
        "output": (int,),
        "rr_row": (int,),
        "granted": (int,),
        "rr_won": (bool,),
        "choices": (int,),
        "tie_depth": (int,),
    },
    RR_OVERRIDE: {"input": (int,), "output": (int,)},
    ITERATION: {
        "iteration": (int,),
        "requests": (int,),
        "grants": (int,),
        "accepts": (int,),
    },
    FORWARD: {"input": (int,), "output": (int,), "latency": (int,)},
    SLOT: {"matching_size": (int,), "requests": (int,), "voq": (list,)},
    FAULT: {"port": (int,), "side": (str,)},
    RECOVERY: {"port": (int,), "side": (str,), "backlog_slots": (int,)},
    SUSPECT: {"input": (int,), "output": (int,), "scope": (str,), "fails": (int,)},
    PROBE: {"input": (int,), "output": (int,), "scope": (str,)},
    READMIT: {"input": (int,), "output": (int,), "scope": (str,), "after": (int,)},
}

EVENT_TYPES = frozenset(EVENT_SCHEMA)

#: Optional fields any event may carry in addition to its schema.
#: ``switch`` identifies the emitting stage switch of a multi-switch
#: fabric (``"s<stage>.<index>"``, e.g. ``"s1.3"``); single-switch
#: simulations never set it.
OPTIONAL_FIELDS: dict[str, tuple[type, ...]] = {"switch": (str,)}


def arrival(slot: int, input: int, output: int) -> dict:
    return {"slot": slot, "type": ARRIVAL, "input": input, "output": output}


def drop(slot: int, input: int, output: int) -> dict:
    return {"slot": slot, "type": DROP, "input": input, "output": output}


def admission_drop(slot: int, input: int, output: int) -> dict:
    return {"slot": slot, "type": ADMISSION_DROP, "input": input, "output": output}


def enqueue(slot: int, input: int, output: int) -> dict:
    return {"slot": slot, "type": ENQUEUE, "input": input, "output": output}


def requests(slot: int, nrq: list[int]) -> dict:
    return {"slot": slot, "type": REQUESTS, "nrq": nrq, "total": sum(nrq)}


def sched_step(
    slot: int,
    output: int,
    rr_row: int,
    granted: int,
    rr_won: bool,
    choices: int,
    tie_depth: int,
) -> dict:
    return {
        "slot": slot,
        "type": SCHED_STEP,
        "output": output,
        "rr_row": rr_row,
        "granted": granted,
        "rr_won": rr_won,
        "choices": choices,
        "tie_depth": tie_depth,
    }


def rr_override(slot: int, input: int, output: int) -> dict:
    return {"slot": slot, "type": RR_OVERRIDE, "input": input, "output": output}


def iteration(
    slot: int, index: int, grants: int, accepts: int, requests: int = 0
) -> dict:
    return {
        "slot": slot,
        "type": ITERATION,
        "iteration": index,
        "requests": requests,
        "grants": grants,
        "accepts": accepts,
    }


def forward(slot: int, input: int, output: int, latency: int) -> dict:
    return {
        "slot": slot,
        "type": FORWARD,
        "input": input,
        "output": output,
        "latency": latency,
    }


def slot_summary(
    slot: int, matching_size: int, request_total: int, voq: list[int] | None = None
) -> dict:
    return {
        "slot": slot,
        "type": SLOT,
        "matching_size": matching_size,
        "requests": request_total,
        "voq": voq if voq is not None else [],
    }


def fault(slot: int, port: int, side: str) -> dict:
    return {"slot": slot, "type": FAULT, "port": port, "side": side}


def recovery(slot: int, port: int, side: str, backlog_slots: int = 0) -> dict:
    return {
        "slot": slot,
        "type": RECOVERY,
        "port": port,
        "side": side,
        "backlog_slots": backlog_slots,
    }


def suspect(slot: int, input: int, output: int, scope: str, fails: int) -> dict:
    return {
        "slot": slot,
        "type": SUSPECT,
        "input": input,
        "output": output,
        "scope": scope,
        "fails": fails,
    }


def probe(slot: int, input: int, output: int, scope: str) -> dict:
    return {
        "slot": slot,
        "type": PROBE,
        "input": input,
        "output": output,
        "scope": scope,
    }


def readmit(slot: int, input: int, output: int, scope: str, after: int) -> dict:
    return {
        "slot": slot,
        "type": READMIT,
        "input": input,
        "output": output,
        "scope": scope,
        "after": after,
    }


def validate_event(event: object) -> list[str]:
    """Schema errors for one event (empty list = valid).

    Checks: the event is a dict, carries an integer ``slot`` and a known
    ``type``, has every field the type requires with an allowed value
    type, and no fields beyond schema + slot + type. ``bool`` is not
    accepted where ``int`` is required (bool is an int subclass in
    Python, but not on the wire).
    """
    if not isinstance(event, dict):
        return [f"event is not an object: {event!r}"]
    errors: list[str] = []
    slot = event.get("slot")
    if not isinstance(slot, int) or isinstance(slot, bool) or slot < 0:
        errors.append(f"bad slot: {slot!r}")
    kind = event.get("type")
    if kind not in EVENT_SCHEMA:
        errors.append(f"unknown event type: {kind!r}")
        return errors
    fields = EVENT_SCHEMA[kind]
    for name, allowed in OPTIONAL_FIELDS.items():
        if name in event and not isinstance(event[name], allowed):
            errors.append(
                f"{kind}.{name}: {type(event[name]).__name__} not in {allowed}"
            )
    for name, allowed in fields.items():
        if name not in event:
            errors.append(f"{kind}: missing field {name!r}")
            continue
        value = event[name]
        if bool not in allowed and isinstance(value, bool):
            errors.append(f"{kind}.{name}: bool where {allowed} expected")
        elif not isinstance(value, allowed):
            errors.append(f"{kind}.{name}: {type(value).__name__} not in {allowed}")
        elif isinstance(value, list) and not all(
            isinstance(item, int) and not isinstance(item, bool) for item in value
        ):
            errors.append(f"{kind}.{name}: list items must be ints")
    extras = set(event) - set(fields) - set(OPTIONAL_FIELDS) - {"slot", "type"}
    if extras:
        errors.append(f"{kind}: unexpected fields {sorted(extras)}")
    return errors
