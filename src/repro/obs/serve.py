"""Scrapeable metrics snapshots: render, export, and serve a registry.

Three pieces, layered:

* :class:`MetricsSnapshot` — a point-in-time capture of a
  :class:`~repro.obs.metrics.MetricsRegistry`, renderable as
  Prometheus/OpenMetrics text (:meth:`~MetricsSnapshot.to_openmetrics`)
  or JSON (:meth:`~MetricsSnapshot.to_json`). Histograms render with
  *cumulative* buckets ending in an explicit ``le="+Inf"`` bucket equal
  to ``_count``, which is what makes the output OpenMetrics-conformant
  (validated by ``tools/check_metrics_snapshot.py``).
* :class:`SnapshotExporter` — writes periodic snapshots to disk during
  :func:`~repro.sim.simulator.run_simulation`, atomically via
  :func:`repro.ioutil.atomic_write_text` so a scraper polling the file
  never reads a torn write. Same contract as
  :func:`~repro.obs.tracer.effective_tracer`: a ``None`` or disabled
  exporter resolves to ``None`` (:func:`effective_exporter`) and the
  simulation pays nothing (gated in ``benchmarks/bench_obs_overhead.py``).
* :class:`ScrapeEndpoint` — a stdlib :mod:`http.server` endpoint
  serving ``GET /metrics`` (text format) and ``GET /metrics.json`` from
  a live registry, for watching long soak runs from a browser or a
  Prometheus scrape job. Runs on a daemon thread; no third-party
  dependencies.

Every export path calls :meth:`MetricsRegistry.collect` (through
:meth:`MetricsSnapshot.capture`), so collector-backed gauges — the live
rate matrix, P² delay percentiles, active suspects — are refreshed at
scrape time and never on the hot path.
"""

from __future__ import annotations

import json
import math
import re
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.ioutil import atomic_write_text
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "MetricsSnapshot",
    "SnapshotExporter",
    "ScrapeEndpoint",
    "effective_exporter",
    "render_openmetrics",
    "render_json",
    "sanitize_metric_name",
]

#: Characters legal in a Prometheus metric name, after the first.
_NAME_BODY = re.compile(r"[^a-zA-Z0-9_:]")
#: Content type Prometheus scrapers expect from a text-format endpoint.
TEXT_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def sanitize_metric_name(name: str) -> str:
    """Map a registry name onto the Prometheus name grammar.

    Illegal characters become ``_``; a leading digit gets a ``_``
    prefix. Registry names are already identifier-like, so this is a
    safety net, not a translation layer.
    """
    cleaned = _NAME_BODY.sub("_", name)
    if not cleaned or cleaned[0].isdigit():
        cleaned = f"_{cleaned}"
    return cleaned


def _format_value(value: float) -> str:
    """A sample value in Prometheus text syntax (NaN/Inf spelled out)."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
    return f"{value:g}" if isinstance(value, float) else str(value)


@dataclass
class MetricsSnapshot:
    """Point-in-time capture of a registry, ready to render.

    ``instruments`` maps each (sanitized) metric name to a
    ``(kind, state)`` pair; histogram state keeps the raw per-bucket
    counts so both renderings can derive their own cumulative forms.
    ``slot`` is the simulation slot the capture was taken at (``None``
    outside a run).
    """

    instruments: dict[str, tuple[str, object]] = field(default_factory=dict)
    slot: int | None = None

    @classmethod
    def capture(
        cls, registry: MetricsRegistry, slot: int | None = None
    ) -> "MetricsSnapshot":
        """Capture every instrument's current state (collectors run first)."""
        registry.collect()
        instruments: dict[str, tuple[str, object]] = {}
        for name, instrument in registry.instruments():
            key = sanitize_metric_name(name)
            if isinstance(instrument, Counter):
                instruments[key] = ("counter", instrument.value)
            elif isinstance(instrument, Gauge):
                instruments[key] = ("gauge", instrument.value)
            elif isinstance(instrument, Histogram):
                instruments[key] = (
                    "histogram",
                    {
                        "edges": list(instrument.edges),
                        "counts": list(instrument.counts),
                        "overflow": instrument.overflow,
                        "count": instrument.count,
                        "sum": instrument.total,
                    },
                )
        return cls(instruments=instruments, slot=slot)

    def names(self) -> list[str]:
        return sorted(self.instruments)

    def to_openmetrics(self) -> str:
        """Prometheus/OpenMetrics text rendering.

        One ``# TYPE`` line per metric; histograms expand to cumulative
        ``<name>_bucket{le="..."}`` samples (monotone non-decreasing,
        final bucket ``le="+Inf"`` equal to ``<name>_count``), plus
        ``<name>_sum`` and ``<name>_count``.
        """
        lines: list[str] = []
        if self.slot is not None:
            lines.append("# HELP repro_slot simulation slot of this snapshot")
            lines.append("# TYPE repro_slot gauge")
            lines.append(f"repro_slot {self.slot}")
        for name in self.names():
            kind, state = self.instruments[name]
            lines.append(f"# TYPE {name} {kind}")
            if kind in ("counter", "gauge"):
                lines.append(f"{name} {_format_value(state)}")
                continue
            cumulative = 0
            for edge, count in zip(state["edges"], state["counts"]):
                cumulative += count
                lines.append(f'{name}_bucket{{le="{edge:g}"}} {cumulative}')
            lines.append(f'{name}_bucket{{le="+Inf"}} {state["count"]}')
            lines.append(f"{name}_sum {_format_value(float(state['sum']))}")
            lines.append(f"{name}_count {state['count']}")
        lines.append("# EOF")
        return "\n".join(lines) + "\n"

    def to_dict(self) -> dict:
        """JSON-shaped capture (histograms keep raw bucket counts)."""
        metrics: dict = {}
        for name in self.names():
            kind, state = self.instruments[name]
            if kind == "histogram":
                metrics[name] = {"kind": kind, **state}
            else:
                value = state
                if isinstance(value, float) and not math.isfinite(value):
                    value = None
                metrics[name] = {"kind": kind, "value": value}
        return {"slot": self.slot, "metrics": metrics}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


def render_openmetrics(registry: MetricsRegistry, slot: int | None = None) -> str:
    """One-call capture + OpenMetrics text rendering."""
    return MetricsSnapshot.capture(registry, slot=slot).to_openmetrics()


def render_json(registry: MetricsRegistry, slot: int | None = None) -> str:
    """One-call capture + JSON rendering."""
    return MetricsSnapshot.capture(registry, slot=slot).to_json()


class SnapshotExporter:
    """Periodic atomic snapshot files for a running simulation.

    ``every`` is the snapshot period in slots. The simulation driver
    ticks the exporter at slot-block boundaries (every
    :data:`~repro.sim.simulator._SLOT_BLOCK` slots), so the effective
    period is ``every`` rounded up to the block that crosses it — fine
    for scrape periods, which are orders of magnitude longer. Writes go
    through :func:`repro.ioutil.atomic_write_text`: a polling scraper
    sees either the previous snapshot or the new one, never a torn
    file.

    ``fmt`` is ``"openmetrics"`` (default) or ``"json"``. A disabled
    exporter (``enabled=False``) resolves to ``None`` in
    :func:`effective_exporter` — the same zero-overhead contract as
    :class:`~repro.obs.tracer.NullTracer`.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        path: str | Path,
        every: int = 1000,
        fmt: str = "openmetrics",
        enabled: bool = True,
    ):
        if every < 1:
            raise ValueError(f"every must be >= 1 slot, got {every}")
        if fmt not in ("openmetrics", "json"):
            raise ValueError(f"fmt must be 'openmetrics' or 'json', got {fmt!r}")
        self.registry = registry
        self.path = Path(path)
        self.every = every
        self.fmt = fmt
        self.enabled = enabled
        self.writes = 0
        self._next_due = every

    def _render(self, slot: int) -> str:
        if self.fmt == "json":
            return render_json(self.registry, slot=slot)
        return render_openmetrics(self.registry, slot=slot)

    def tick(self, slot: int) -> bool:
        """Write a snapshot if ``slot`` reached the next due point.

        Returns True when a file was written. Multiple elapsed periods
        collapse into one write — the registry state in between is gone
        either way.
        """
        if slot + 1 < self._next_due:
            return False
        self.write(slot)
        self._next_due = slot + 1 + self.every
        return True

    def write(self, slot: int) -> Path:
        """Write one snapshot unconditionally (used for the final dump)."""
        atomic_write_text(self.path, self._render(slot))
        self.writes += 1
        return self.path


def effective_exporter(exporter: SnapshotExporter | None) -> SnapshotExporter | None:
    """Resolve an exporter argument to the driver-loop handle.

    ``None`` or a disabled exporter resolves to ``None``, so the
    simulation driver guards ticks with one ``is not None`` check and a
    disabled exporter costs exactly as much as none at all.
    """
    if exporter is None or not exporter.enabled:
        return None
    return exporter


class _ScrapeHandler(BaseHTTPRequestHandler):
    """GET-only handler rendering the owning endpoint's registry."""

    server: "_ScrapeServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        endpoint = self.server.endpoint
        path = self.path.split("?", 1)[0]
        if path in ("/metrics", "/"):
            body = render_openmetrics(
                endpoint.registry, slot=endpoint.current_slot
            ).encode()
            content_type = TEXT_CONTENT_TYPE
        elif path == "/metrics.json":
            body = render_json(
                endpoint.registry, slot=endpoint.current_slot
            ).encode()
            content_type = "application/json"
        else:
            self.send_error(404, "unknown path (try /metrics or /metrics.json)")
            return
        endpoint.scrapes += 1
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # pragma: no cover - silence
        pass


class _ScrapeServer(ThreadingHTTPServer):
    daemon_threads = True
    endpoint: "ScrapeEndpoint"


class ScrapeEndpoint:
    """Serve a live registry over HTTP from a daemon thread.

    ``port=0`` (the default) binds an ephemeral port; read it back from
    :attr:`port` / :attr:`url` after :meth:`start`. The handler captures
    a fresh snapshot per request, so a scrape mid-run sees the current
    counters (rendering holds the GIL; the simulation never observes a
    partial update). Usable as a context manager::

        with ScrapeEndpoint(registry) as endpoint:
            print("scrape me at", endpoint.url)
            run_simulation(...)
    """

    def __init__(
        self, registry: MetricsRegistry, host: str = "127.0.0.1", port: int = 0
    ):
        self.registry = registry
        self.host = host
        self._requested_port = port
        self._server: _ScrapeServer | None = None
        self._thread: threading.Thread | None = None
        #: Slot stamp served with each scrape (update from the driver).
        self.current_slot: int | None = None
        self.scrapes = 0

    def start(self) -> "ScrapeEndpoint":
        if self._server is not None:
            return self
        self._server = _ScrapeServer(
            (self.host, self._requested_port), _ScrapeHandler
        )
        self._server.endpoint = self
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="lcf-metrics-scrape", daemon=True
        )
        self._thread.start()
        return self

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("endpoint not started")
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def close(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            self._thread = None

    def __enter__(self) -> "ScrapeEndpoint":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
