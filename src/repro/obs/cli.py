"""``lcf-trace`` — run one traced simulation and explain its decisions.

Runs a configured simulation with the :mod:`repro.obs` instrumentation
attached, writes the per-slot event trace (JSONL and/or a Chrome
trace-event JSON loadable in Perfetto / ``chrome://tracing``), and
prints a scheduler decision summary: RR-override rate, mean matching
size against the maximum-matching yardstick from :mod:`repro.matching`,
and the choice-count / tie-break-depth distributions.

Examples::

    lcf-trace --scheduler lcf_central_rr --load 0.9 --slots 1000 \
        --out trace.jsonl --chrome trace.json
    lcf-trace --scheduler lcf_dist --ports 8 --slots 500
    lcf-trace --scheduler pim --no-max-matching --quiet --out t.jsonl
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines.registry import (
    SPECIAL_SWITCH_NAMES,
    available_schedulers,
    make_scheduler,
)
from repro.fastpath.registry import make_fast_scheduler
from repro.obs.chrome import write_chrome_trace
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.probe import MatchingQualityProbe
from repro.obs.tracer import JsonlTracer, RingTracer, events_from_jsonl
from repro.sim.config import SimConfig
from repro.sim.crossbar import InputQueuedSwitch
from repro.traffic.base import make_traffic


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lcf-trace",
        description="Traced single-run harness: per-slot event trace plus a "
        "scheduler decision summary (LCF reproduction).",
    )
    parser.add_argument("--scheduler", default="lcf_central_rr",
                        help=f"crossbar scheduler ({', '.join(available_schedulers())})")
    parser.add_argument("--load", type=float, default=0.9)
    parser.add_argument("--ports", type=int, default=16)
    parser.add_argument("--slots", type=int, default=1000,
                        help="measured slots (statistics and trace cover these)")
    parser.add_argument("--warmup", type=int, default=0,
                        help="untraced warm-up slots before measurement")
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--traffic", default="bernoulli")
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the JSONL event trace here")
    parser.add_argument("--chrome", metavar="PATH", default=None,
                        help="write a Chrome trace-event JSON (Perfetto-loadable)")
    parser.add_argument("--no-max-matching", action="store_true",
                        help="skip the per-slot Hopcroft-Karp maximum-matching "
                        "yardstick (faster for big runs)")
    parser.add_argument("--fast", action="store_true",
                        help="use the repro.fastpath bitmask kernel for the "
                        "scheduler (bit-identical trace and summary)")
    parser.add_argument("--snapshot", metavar="PATH", default=None,
                        help="dump a final OpenMetrics snapshot of the run's "
                        "metrics registry here (.json suffix switches to JSON)")
    parser.add_argument("--admission", metavar="LOW:HIGH", default=None,
                        help="attach threshold admission control with these "
                        "occupancy watermarks (packets, switch-wide)")
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="checkpoint the run's complete state here "
                        "(switches to the plain run_simulation driver; the "
                        "Hopcroft-Karp probe summary is skipped)")
    parser.add_argument("--checkpoint-every", metavar="N", type=int, default=None,
                        help="checkpoint cadence in slots (with --checkpoint)")
    parser.add_argument("--stop-at", metavar="SLOT", type=int, default=None,
                        help="pause at this slot after writing a final "
                        "checkpoint (with --checkpoint); resume later with "
                        "--resume")
    parser.add_argument("--resume", metavar="PATH", default=None,
                        help="resume a checkpointed run instead of starting "
                        "one; --out captures the remaining slots' events")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress the decision summary")
    return parser


def _rate(num: float, den: float) -> float:
    return num / den if den else float("nan")


def _parse_admission(text: str | None):
    """``LOW:HIGH`` → admission spec dict (None passes through)."""
    if text is None:
        return None
    low, sep, high = text.partition(":")
    if not sep:
        raise ValueError(f"expected LOW:HIGH, got {text!r}")
    return {"low": int(low), "high": int(high)}


def _result_summary(result) -> str:
    """Short statistics block for checkpoint/resume runs."""
    lines = [
        "",
        f"== lcf-trace: {result.scheduler} n={result.config.n_ports} "
        f"load={result.load} seed={result.config.seed} ==",
        f"offered {result.offered}  forwarded {result.forwarded}  "
        f"dropped {result.dropped}  shed {result.shed}",
        f"mean latency {result.mean_latency:.3f} slots  "
        f"throughput {result.throughput:.4f}",
    ]
    return "\n".join(lines)


def _run_checkpointed(args) -> int:
    """--checkpoint / --resume flows: the run_simulation driver."""
    from repro.checkpoint import CheckpointError, resume_simulation
    from repro.sim.simulator import run_simulation

    tracer = JsonlTracer(args.out) if args.out else None
    metrics = MetricsRegistry()
    try:
        if args.resume:
            result = resume_simulation(args.resume, tracer=tracer, metrics=metrics)
        else:
            config = SimConfig(
                n_ports=args.ports,
                warmup_slots=args.warmup,
                measure_slots=args.slots,
                iterations=args.iterations,
                seed=args.seed,
            )
            result = run_simulation(
                config,
                args.scheduler,
                args.load,
                traffic=args.traffic,
                tracer=tracer,
                metrics=metrics,
                fast=args.fast,
                admission=_parse_admission(args.admission),
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                stop_at_slot=args.stop_at,
            )
    except CheckpointError as exc:
        print(f"lcf-trace: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            tracer.close()
    if args.out and not args.quiet:
        print(f"wrote {args.out} ({tracer.emitted} events)")
    if args.chrome:
        events = events_from_jsonl(args.out) if args.out else []
        spans = write_chrome_trace(events, args.chrome)
        if not args.quiet:
            print(f"wrote {args.chrome} ({spans} trace events)")
    if args.snapshot:
        from repro.ioutil import atomic_write_text
        from repro.obs.serve import render_json, render_openmetrics

        render = (
            render_json if args.snapshot.endswith(".json") else render_openmetrics
        )
        atomic_write_text(args.snapshot, render(metrics))
        if not args.quiet:
            print(f"wrote {args.snapshot} ({len(metrics)} metrics)")
    if args.checkpoint and not args.quiet:
        print(f"checkpoint at {args.checkpoint}")
    if not args.quiet:
        print(_result_summary(result))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if (args.checkpoint_every is not None or args.stop_at is not None) and not (
        args.checkpoint or args.resume
    ):
        print("lcf-trace: --checkpoint-every/--stop-at need --checkpoint",
              file=sys.stderr)
        return 2
    if args.resume and args.checkpoint:
        print("lcf-trace: --resume and --checkpoint are mutually exclusive "
              "(a resumed run keeps checkpointing to its own file)",
              file=sys.stderr)
        return 2
    if args.admission is not None:
        try:
            _parse_admission(args.admission)
        except ValueError as exc:
            print(f"lcf-trace: bad --admission: {exc}", file=sys.stderr)
            return 2
    if args.resume:
        return _run_checkpointed(args)
    if args.scheduler in SPECIAL_SWITCH_NAMES:
        print(f"lcf-trace: {args.scheduler!r} uses a dedicated switch model "
              "with no VOQ pipeline to trace", file=sys.stderr)
        return 2
    if args.load <= 0.0 or args.load > 1.0:
        print(f"lcf-trace: load {args.load} outside (0, 1]", file=sys.stderr)
        return 2
    if args.checkpoint:
        return _run_checkpointed(args)

    config = SimConfig(
        n_ports=args.ports,
        warmup_slots=args.warmup,
        measure_slots=args.slots,
        iterations=args.iterations,
        seed=args.seed,
    )
    factory = make_fast_scheduler if args.fast else make_scheduler
    scheduler = factory(
        args.scheduler, args.ports, iterations=args.iterations, seed=args.seed
    )
    probe = None
    if not args.no_max_matching and getattr(scheduler, "weight_kind", None) is None:
        probe = MatchingQualityProbe(scheduler)

    tracer = JsonlTracer(args.out) if args.out else RingTracer(capacity=1 << 20)
    metrics = MetricsRegistry()
    from repro.sim.admission import make_admission

    switch = InputQueuedSwitch(
        config, probe or scheduler, tracer=tracer, metrics=metrics,
        admission=make_admission(_parse_admission(args.admission)),
    )
    pattern = make_traffic(args.traffic, args.ports, args.load, seed=args.seed)

    # `measuring` gates statistics only; the tracer sees every slot,
    # which is what a timeline viewer wants.
    for slot in range(config.total_slots):
        if slot == config.warmup_slots:
            switch.measuring = True
        switch.step(slot, pattern.arrivals())
    tracer.close()

    if args.chrome:
        events = (
            events_from_jsonl(args.out) if args.out else tracer.events
        )
        spans = write_chrome_trace(events, args.chrome)
        if not args.quiet:
            print(f"wrote {args.chrome} ({spans} trace events)")
    if args.out and not args.quiet:
        print(f"wrote {args.out} ({tracer.emitted} events)")
    if args.snapshot:
        from repro.ioutil import atomic_write_text
        from repro.obs.serve import render_json, render_openmetrics

        render = (
            render_json if args.snapshot.endswith(".json") else render_openmetrics
        )
        final_slot = config.total_slots - 1 if config.total_slots else None
        atomic_write_text(args.snapshot, render(metrics, slot=final_slot))
        if not args.quiet:
            print(f"wrote {args.snapshot} ({len(metrics)} metrics)")

    if not args.quiet:
        print(decision_summary(args, switch, metrics, probe))
    return 0


def decision_summary(
    args, switch: InputQueuedSwitch, metrics: MetricsRegistry, probe
) -> str:
    """Render the post-run scheduler decision report."""
    slots = metrics.counter("slots").value
    grants = metrics.counter("grants").value
    overrides = metrics.counter("rr_overrides").value
    matching = metrics.get("matching_size")
    lines = [
        "",
        f"== lcf-trace: {args.scheduler} n={args.ports} load={args.load} "
        f"slots={slots} seed={args.seed} ==",
        f"offered {switch.offered}  forwarded {switch.forwarded}  "
        f"dropped {switch.dropped}",
        f"mean matching size      {matching.mean:8.3f}  (max observed "
        f"{matching.max:g})" if isinstance(matching, Histogram) else "",
    ]
    if probe is not None and probe.slots:
        lines.append(
            f"mean maximum matching   {probe.mean_maximum:8.3f}  "
            f"(Hopcroft-Karp yardstick)"
        )
        lines.append(
            f"matching efficiency     {probe.efficiency:8.3f}  "
            f"(achieved / maximum, pooled)"
        )
    lines.append(
        f"RR-override rate        {_rate(overrides, slots):8.3f} per slot  "
        f"({_rate(overrides, grants):.4f} of grants)"
    )
    quantiles = switch.delay_quantiles
    if quantiles is not None and quantiles.count:
        lines.append(
            f"live delay percentiles  {quantiles.summary()}  "
            f"(P2 streaming, {quantiles.count} samples)"
        )
    estimator = switch.rate_estimator
    if estimator is not None and estimator.events:
        at = switch._live_slot
        lines.append(
            f"live service rate       {estimator.total_rate(at):8.3f} "
            f"forwards/slot (EWMA alpha={estimator.alpha:g})"
        )
        hottest = ", ".join(
            f"{i}->{j} {rate:.3f}" for i, j, rate in estimator.top_pairs(at)
        )
        if hottest:
            lines.append(f"hottest pairs           {hottest}")
    choices = metrics.get("choice_count")
    if isinstance(choices, Histogram) and choices.count:
        lines.append(f"granted-input choice count (mean {choices.mean:.2f}):")
        lines.append(choices.render())
    depth = metrics.get("tie_break_depth")
    if isinstance(depth, Histogram) and depth.count:
        lines.append(f"tie-break chain depth (mean {depth.mean:.2f}):")
        lines.append(depth.render())
    return "\n".join(line for line in lines if line)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
