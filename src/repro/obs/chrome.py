"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

Converts a stream of :mod:`repro.obs.events` dicts into the Trace Event
Format JSON that Perfetto and Chrome's tracing UI load directly. The
mapping makes the switch's slot pipeline visible on a timeline:

* ``forward`` → a complete ("X") span on the *input port's* track,
  starting at the packet's generation slot and lasting its latency —
  queueing delay is literally the bar length;
* ``drop`` and ``rr_override`` → instant ("I") markers;
* ``slot`` → counter ("C") tracks for matching size and outstanding
  requests, so the matching-quality claim is a graph; when the event
  carries the per-input VOQ occupancy vector, each input also gets a
  ``voq in<i>`` counter track — Section 6.3 buffer leveling (and
  fault-induced queue buildup) as a timeline graph;
* ``fault`` / ``recovery`` → instant ("I") markers on the switch
  process, so outages line up visually with the queue-depth counters;
* ``suspect`` / ``probe`` / ``readmit`` → instant ("I") markers in an
  ``adapt`` category, so the health estimator's reactions line up with
  the faults that caused them;
* ``iteration`` → short spans on the scheduler track (one per
  request/grant/accept round).

One simulation slot maps to ``slot_us`` microseconds of trace time
(default 1000, i.e. one slot = 1ms on the UI's scale).
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from pathlib import Path

from repro.obs import events as ev

#: Synthetic process ids for the trace UI's track grouping.
PID_SWITCH = 1
PID_SCHEDULER = 2

#: Default trace-time microseconds per simulation slot.
SLOT_US = 1000.0


def to_chrome_trace(events: Iterable[dict], slot_us: float = SLOT_US) -> dict:
    """Build a Trace Event Format document from emitted events."""
    trace: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": PID_SWITCH,
            "tid": 0,
            "args": {"name": "switch (per-input tracks)"},
        },
        {
            "ph": "M",
            "name": "process_name",
            "pid": PID_SCHEDULER,
            "tid": 0,
            "args": {"name": "scheduler"},
        },
    ]
    for event in events:
        kind = event["type"]
        ts = event["slot"] * slot_us
        if kind == ev.FORWARD:
            latency = event["latency"]
            trace.append(
                {
                    "ph": "X",
                    "name": f"pkt {event['input']}->{event['output']}",
                    "cat": "forward",
                    "pid": PID_SWITCH,
                    "tid": event["input"],
                    # The span covers the packet's life: generation slot
                    # through the slot it crossed the fabric.
                    "ts": (event["slot"] - latency + 1) * slot_us,
                    "dur": latency * slot_us,
                    "args": {"latency_slots": latency},
                }
            )
        elif kind == ev.DROP:
            trace.append(
                {
                    "ph": "I",
                    "s": "t",
                    "name": f"drop ->{event['output']}",
                    "cat": "drop",
                    "pid": PID_SWITCH,
                    "tid": event["input"],
                    "ts": ts,
                }
            )
        elif kind == ev.RR_OVERRIDE:
            trace.append(
                {
                    "ph": "I",
                    "s": "t",
                    "name": f"rr override ({event['input']},{event['output']})",
                    "cat": "scheduler",
                    "pid": PID_SCHEDULER,
                    "tid": 0,
                    "ts": ts,
                }
            )
        elif kind == ev.ITERATION:
            index = event["iteration"]
            span = slot_us / 8.0
            trace.append(
                {
                    "ph": "X",
                    "name": f"iter {index}",
                    "cat": "scheduler",
                    "pid": PID_SCHEDULER,
                    "tid": 1,
                    "ts": ts + index * span,
                    "dur": span,
                    "args": {
                        "grants": event["grants"],
                        "accepts": event["accepts"],
                    },
                }
            )
        elif kind == ev.SLOT:
            trace.append(
                {
                    "ph": "C",
                    "name": "matching",
                    "pid": PID_SCHEDULER,
                    "tid": 0,
                    "ts": ts,
                    "args": {
                        "matching_size": event["matching_size"],
                        "outstanding_requests": event["requests"],
                    },
                }
            )
            # One counter track per input keeps the series separately
            # zoomable; a single multi-series counter would stack them.
            for port, depth in enumerate(event.get("voq", ())):
                trace.append(
                    {
                        "ph": "C",
                        "name": f"voq in{port}",
                        "pid": PID_SWITCH,
                        "tid": port,
                        "ts": ts,
                        "args": {"queued": depth},
                    }
                )
        elif kind in (ev.FAULT, ev.RECOVERY):
            label = "down" if kind == ev.FAULT else "up"
            trace.append(
                {
                    "ph": "I",
                    "s": "p",
                    "name": f"port {event['port']} {event['side']} {label}",
                    "cat": "fault",
                    "pid": PID_SWITCH,
                    "tid": event["port"],
                    "ts": ts,
                    "args": (
                        {"backlog_slots": event["backlog_slots"]}
                        if kind == ev.RECOVERY
                        else {}
                    ),
                }
            )
        elif kind in (ev.SUSPECT, ev.PROBE, ev.READMIT):
            input, output = event["input"], event["output"]
            where = (
                f"({input},{output})"
                if event["scope"] == "link"
                else f"{event['scope']} {max(input, output)}"
            )
            args = {}
            if kind == ev.SUSPECT:
                args = {"fails": event["fails"]}
            elif kind == ev.READMIT:
                args = {"after": event["after"]}
            trace.append(
                {
                    "ph": "I",
                    "s": "p",
                    "name": f"{kind} {where}",
                    "cat": "adapt",
                    "pid": PID_SWITCH,
                    "tid": max(input, 0),
                    "ts": ts,
                    "args": args,
                }
            )
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Iterable[dict], path: str | Path, slot_us: float = SLOT_US
) -> int:
    """Write the Chrome trace JSON for ``events``; returns event count."""
    document = to_chrome_trace(events, slot_us=slot_us)
    Path(path).write_text(json.dumps(document))
    return len(document["traceEvents"])
