"""Lightweight in-process metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a named bag of instruments the simulator
and schedulers record into — matching size per slot, the choice-count
distribution, tie-break depth — without touching any ``SimResult``
field. Instruments are create-on-first-use, so recording code does not
need to know what was registered:

    >>> registry = MetricsRegistry()
    >>> registry.counter("grants").inc()
    >>> registry.histogram("matching_size", buckets=range(1, 5)).observe(3)
    >>> registry.counter("grants").value
    1

Everything is plain Python — no background threads, no export protocol.
``snapshot()`` flattens the registry to a JSON-serialisable dict for
reports and tests; the scrapeable OpenMetrics/JSON rendering lives in
:mod:`repro.obs.serve`.

Derived values that are too expensive to maintain per slot — the live
rate matrix, delay percentiles, the active-suspect count — are exported
through *collectors*: callbacks registered with :meth:`~MetricsRegistry.
add_collector` that refresh gauges on demand. :meth:`~MetricsRegistry.
collect` runs them, and every export path (``snapshot()``, the
OpenMetrics/JSON renderers, the scrape endpoint) calls it first, so a
scrape always sees current values while the hot loop pays nothing.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Iterable, Iterator
from typing import Callable


class Counter:
    """Monotonically increasing integer count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """Last-write-wins scalar (e.g. current queue depth)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = math.nan

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with streaming count/sum/min/max.

    ``buckets`` are upper-inclusive bucket edges; a sample lands in the
    first bucket whose edge is >= the value, or in the overflow bucket
    beyond the last edge. Edges are fixed at construction — observation
    is O(log buckets) and merge-free, which is what keeps per-slot
    recording cheap.
    """

    __slots__ = ("edges", "counts", "overflow", "count", "total", "min", "max")

    def __init__(self, buckets: Iterable[float]):
        self.edges = tuple(sorted(buckets))
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.counts = [0] * len(self.edges)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        index = bisect.bisect_left(self.edges, value)
        if index == len(self.edges):
            self.overflow += 1
        else:
            self.counts[index] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.count else math.nan,
            "max": self.max if self.count else math.nan,
            "buckets": {str(edge): n for edge, n in zip(self.edges, self.counts)},
            "overflow": self.overflow,
        }

    def render(self, width: int = 40) -> str:
        """One-line-per-bucket ASCII rendering (for CLI summaries)."""
        peak = max(max(self.counts, default=0), self.overflow, 1)
        lines = []
        for edge, n in zip(self.edges, self.counts):
            bar = "#" * round(n / peak * width)
            lines.append(f"  <= {edge:g}: {n:>8} {bar}")
        if self.overflow:
            bar = "#" * round(self.overflow / peak * width)
            lines.append(f"   > {self.edges[-1]:g}: {self.overflow:>8} {bar}")
        return "\n".join(lines)


class MetricsRegistry:
    """Create-on-first-use registry of named instruments.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind (or a histogram with
    different buckets) is a programming error and raises.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: dict[str, Callable[[], None]] = {}

    def _get(self, name: str, kind: type, factory):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory()
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, Gauge)

    def histogram(self, name: str, buckets: Iterable[float]) -> Histogram:
        edges = tuple(sorted(buckets))
        histogram = self._get(name, Histogram, lambda: Histogram(edges))
        if histogram.edges != edges:
            raise ValueError(
                f"histogram {name!r} already registered with buckets "
                f"{histogram.edges}, asked for {edges}"
            )
        return histogram

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        """The instrument registered under ``name``, if any."""
        return self._instruments.get(name)

    def names(self) -> list[str]:
        return sorted(self._instruments)

    def kind(self, name: str) -> str | None:
        """``"counter"`` / ``"gauge"`` / ``"histogram"`` for a registered
        name, ``None`` for an unknown one."""
        instrument = self._instruments.get(name)
        if instrument is None:
            return None
        return type(instrument).__name__.lower()

    def instruments(self) -> Iterator[tuple[str, Counter | Gauge | Histogram]]:
        """Iterate ``(name, instrument)`` pairs in sorted-name order."""
        for name in self.names():
            yield name, self._instruments[name]

    def add_collector(self, key: str, fn: Callable[[], None]) -> None:
        """Register an on-demand refresher for derived gauges.

        ``key`` deduplicates: registering the same key again replaces
        the callback (so a re-``attach`` cannot stack stale closures).
        Collectors run in registration order via :meth:`collect`.
        """
        self._collectors[key] = fn

    def collect(self) -> None:
        """Run every registered collector (refresh derived gauges)."""
        for fn in self._collectors.values():
            fn()

    def snapshot(self) -> dict:
        """JSON-serialisable dump of every instrument's current state.

        Runs :meth:`collect` first, so derived gauges are current.
        """
        self.collect()
        out: dict = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Histogram):
                out[name] = instrument.snapshot()
            else:
                out[name] = instrument.value
        return out

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __len__(self) -> int:
        return len(self._instruments)
