"""Clint host adapter.

Each host keeps bulk virtual output queues and a quick-channel queue,
emits one configuration packet per scheduling slot, and reacts to grant
packets by launching the corresponding bulk request in the transfer
stage. Acknowledgments are generated for every received bulk request
(the request-acknowledgment protocol of Section 4.1) and travel on the
quick channel.
"""

from __future__ import annotations

from collections import deque
from itertools import count

from repro.clint.packets import (
    BulkAck,
    BulkRequest,
    ConfigPacket,
    GrantPacket,
    QuickPacket,
    VECTOR_BITS,
    vector_to_mask,
)


class ClintHost:
    """One host on the Clint star network."""

    def __init__(self, node_id: int, n_nodes: int, voq_capacity: int = 256):
        if not 0 <= node_id < n_nodes <= VECTOR_BITS:
            raise ValueError(
                f"node_id {node_id} / n_nodes {n_nodes} out of range (max {VECTOR_BITS})"
            )
        self.node_id = node_id
        self.n_nodes = n_nodes
        self.voq_capacity = voq_capacity
        #: Bulk VOQs: per-target queue of (t_generated, payload_id).
        self.voqs: list[deque[tuple[int, int]]] = [deque() for _ in range(n_nodes)]
        self.quick_queue: deque[QuickPacket] = deque()
        #: Pending precalculated-schedule request (target mask), consumed
        #: by the next configuration packet.
        self.pending_precalc: int = 0
        #: Multicast payloads keyed by the precalc mask they were
        #: scheduled with.
        self._precalc_payload: tuple[int, int] | None = None
        self.ben = (1 << VECTOR_BITS) - 1
        self.qen = (1 << VECTOR_BITS) - 1
        self._payload_ids = count()

        # Statistics.
        self.bulk_sent = 0
        self.bulk_received = 0
        self.bulk_dropped = 0  # VOQ overflow
        self.acks_received = 0
        self.quick_sent = 0
        self.quick_received = 0
        self.received_latencies: list[int] = []
        self.grant_errors = 0  # grants flagged linkErr/CRCErr

    # -- traffic injection ------------------------------------------------

    def enqueue_bulk(self, dst: int, slot: int) -> bool:
        """Queue a bulk packet for ``dst``; False if the VOQ is full."""
        if len(self.voqs[dst]) >= self.voq_capacity:
            self.bulk_dropped += 1
            return False
        self.voqs[dst].append((slot, next(self._payload_ids)))
        return True

    def enqueue_quick(self, dst: int, slot: int) -> None:
        """Queue a best-effort quick packet."""
        self.quick_queue.append(
            QuickPacket(self.node_id, dst, slot, next(self._payload_ids))
        )

    def request_multicast(self, targets: list[int], slot: int) -> None:
        """Pre-schedule a multicast to ``targets`` via the precalculated
        schedule (Section 4.3). Sent with the next configuration packet."""
        self.pending_precalc = vector_to_mask(
            [t in targets for t in range(VECTOR_BITS)]
        )
        self._precalc_payload = (slot, next(self._payload_ids))

    # -- scheduling-stage protocol ----------------------------------------

    def make_config(self) -> ConfigPacket:
        """Build this slot's configuration packet from VOQ occupancy."""
        req = vector_to_mask(
            [bool(self.voqs[t]) for t in range(self.n_nodes)]
            + [False] * (VECTOR_BITS - self.n_nodes)
        )
        packet = ConfigPacket(
            req=req, pre=self.pending_precalc, ben=self.ben, qen=self.qen
        )
        return packet

    def handle_grant(
        self, grant: GrantPacket, multicast_targets: list[int] | None = None
    ) -> list[BulkRequest]:
        """React to the switch's grant: emit the bulk request(s) to send
        in the transfer stage.

        ``multicast_targets`` is the set of outputs the switch actually
        connected for this host's precalculated schedule (empty/None if
        none survived the integrity check).
        """
        if grant.link_err or grant.crc_err:
            self.grant_errors += 1
        requests: list[BulkRequest] = []

        if multicast_targets:
            slot, payload_id = self._precalc_payload or (0, next(self._payload_ids))
            for dst in multicast_targets:
                requests.append(BulkRequest(self.node_id, dst, slot, payload_id))
            self.pending_precalc = 0
            self._precalc_payload = None
        elif grant.gnt_val:
            dst = grant.gnt
            if self.voqs[dst]:
                t_generated, payload_id = self.voqs[dst].popleft()
                requests.append(
                    BulkRequest(self.node_id, dst, t_generated, payload_id)
                )
        self.bulk_sent += len(requests)
        return requests

    # -- receive side -------------------------------------------------------

    def receive_bulk(self, request: BulkRequest, slot: int) -> BulkAck:
        """Accept a bulk request and produce its acknowledgment."""
        self.bulk_received += 1
        self.received_latencies.append(slot - request.t_generated + 1)
        return BulkAck(self.node_id, request.src, request.payload_id)

    def receive_ack(self, ack: BulkAck) -> None:
        self.acks_received += 1

    def receive_quick(self, packet: QuickPacket, slot: int) -> None:
        self.quick_received += 1

    def has_bulk_backlog(self) -> bool:
        return any(self.voqs)
