"""CRC-16 for the Clint packet formats.

The configuration and grant packets both end in ``CRC[15..0]``
(Section 4.1), used to detect transmission errors on the quick channel;
a failed check raises the ``CRCErr`` flag in the next grant packet. We
use CRC-16-CCITT (polynomial ``x^16 + x^12 + x^5 + 1``, init 0xFFFF) —
the standard choice for serial link framing of this era.

Both a bit-serial reference implementation (how the hardware computes
it, one bit per clock) and a table-driven fast path are provided; they
are property-tested against each other.
"""

from __future__ import annotations

POLY = 0x1021
INIT = 0xFFFF


def crc16_bitwise(data: bytes, init: int = INIT) -> int:
    """Bit-serial CRC-16-CCITT — the hardware shift-register formulation."""
    crc = init
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc


def _build_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return tuple(table)


_TABLE = _build_table()


def crc16(data: bytes, init: int = INIT) -> int:
    """Table-driven CRC-16-CCITT (identical results to
    :func:`crc16_bitwise`)."""
    crc = init
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


def check(data: bytes, expected: int) -> bool:
    """Verify ``data`` against a received CRC value."""
    return crc16(data) == (expected & 0xFFFF)
