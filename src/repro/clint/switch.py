"""The Clint switch: LCF-scheduled bulk channel + best-effort quick channel.

The bulk scheduler is the central LCF scheduler with the round-robin
diagonal and the Section 4.3 precalculated-schedule stage — the exact
configuration of the Clint FPGA. Configuration packets are CRC-checked;
a corrupt or missing packet zeroes that host's requests for the cycle
and raises ``CRCErr`` in the next grant (Section 4.1).

The quick switch "takes a best-effort approach and packets are sent
whenever they are available. If they collide in the switch, one packet
wins and is forwarded while the other packets are dropped." Collision
winners rotate so no input is structurally favoured.
"""

from __future__ import annotations

import numpy as np

from repro.clint.packets import (
    ConfigPacket,
    GrantPacket,
    QuickPacket,
    mask_to_vector,
)
from repro.core.precalc import PrecalcResult, PrecalcScheduler
from repro.types import NO_GRANT


class ClintSwitch:
    """Bulk (scheduled) and quick (best-effort) crossbars of one Clint node."""

    def __init__(self, n_nodes: int):
        self.n = n_nodes
        self.bulk_scheduler = PrecalcScheduler(n_nodes)
        self._crc_err = np.zeros(n_nodes, dtype=bool)
        self._link_err = np.zeros(n_nodes, dtype=bool)
        #: Quick-channel enables, ANDed from the hosts' qen fields each
        #: scheduling cycle; a host vetoed here has its quick packets
        #: discarded at the switch.
        self._quick_enabled = np.ones(n_nodes, dtype=bool)
        self._quick_rr = 0
        self.quick_drops = 0
        self.quick_fenced = 0
        self.cfg_crc_errors = 0

    # -- bulk channel scheduling stage -------------------------------------

    def schedule_bulk(
        self, raw_configs: list[bytes | None]
    ) -> tuple[list[GrantPacket], PrecalcResult]:
        """One scheduling stage: decode configuration packets, run the
        two-stage LCF scheduler, emit grant packets.

        ``raw_configs[i]`` is host ``i``'s packed configuration packet or
        None if it was lost on the link.
        """
        n = self.n
        requests = np.zeros((n, n), dtype=bool)
        precalc = np.zeros((n, n), dtype=bool)
        ben = np.ones(n, dtype=bool)
        qen = np.ones(n, dtype=bool)

        for i, raw in enumerate(raw_configs):
            if raw is None:
                self._crc_err[i] = True
                self.cfg_crc_errors += 1
                continue
            try:
                config = ConfigPacket.unpack(raw)
            except ValueError:
                self._crc_err[i] = True
                self.cfg_crc_errors += 1
                continue
            requests[i] = mask_to_vector(config.req, n)
            precalc[i] = mask_to_vector(config.pre, n)
            # A host vetoed by any peer's ben/qen mask is fenced off
            # ("hosts use these fields to disable malfunctioning hosts").
            ben &= np.array(mask_to_vector(config.ben, n))
            qen &= np.array(mask_to_vector(config.qen, n))
        self._quick_enabled = qen

        requests &= ben[:, np.newaxis]
        precalc &= ben[:, np.newaxis]

        result = self.bulk_scheduler.schedule(requests, precalc)

        # Input-side view for the grant packets (unicast grants only; the
        # multicast connections are communicated out of band by
        # ClintNetwork, as the hardware does through the crossbar setup).
        grants: list[GrantPacket] = []
        for i in range(n):
            j = result.lcf_schedule[i]
            grants.append(
                GrantPacket(
                    node_id=i,
                    gnt=int(j) if j != NO_GRANT else 0,
                    gnt_val=j != NO_GRANT,
                    link_err=bool(self._link_err[i]),
                    crc_err=bool(self._crc_err[i]),
                )
            )
        self._crc_err[:] = False
        self._link_err[:] = False
        return grants, result

    def note_link_error(self, node_id: int) -> None:
        """Record a link error to be reported in the next grant packet."""
        self._link_err[node_id] = True

    # -- quick channel -------------------------------------------------------

    def forward_quick(
        self, packets: list[QuickPacket]
    ) -> tuple[list[QuickPacket], list[QuickPacket]]:
        """Best-effort forwarding: per output, one winner per slot.

        Returns ``(delivered, dropped)``. The collision winner is the
        contender whose source is first at or after a rotating offset.
        Packets from hosts fenced off via the qen masks are discarded
        before arbitration.
        """
        by_output: dict[int, list[QuickPacket]] = {}
        fenced: list[QuickPacket] = []
        for packet in packets:
            if not self._quick_enabled[packet.src]:
                fenced.append(packet)
                continue
            by_output.setdefault(packet.dst, []).append(packet)
        self.quick_fenced += len(fenced)

        delivered: list[QuickPacket] = []
        dropped: list[QuickPacket] = list(fenced)
        for contenders in by_output.values():
            if len(contenders) == 1:
                delivered.append(contenders[0])
                continue
            contenders.sort(key=lambda p: (p.src - self._quick_rr) % self.n)
            delivered.append(contenders[0])
            dropped.extend(contenders[1:])
        self.quick_drops += len(dropped)
        self._quick_rr = (self._quick_rr + 1) % self.n
        return delivered, dropped
