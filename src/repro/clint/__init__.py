"""The Clint cluster interconnect substrate (paper Section 4).

Clint is the system the LCF scheduler was built for: a 16-host star
network with a *segregated* architecture — a bulk channel whose slots
are allocated by the central LCF scheduler before packets are sent, and
a best-effort quick channel where colliding packets are dropped. The
bulk channel is a three-stage pipeline (Figure 5): scheduling, transfer,
acknowledgment.

This package models the protocol end to end:

* :mod:`repro.clint.crc` — CRC-16 used by the packet formats;
* :mod:`repro.clint.packets` — the Section 4.1 configuration and grant
  packet formats, bit-exact field layout with CRC protection;
* :mod:`repro.clint.host` — host adapters: VOQs, configuration packet
  generation, grant handling, acknowledgment generation;
* :mod:`repro.clint.switch` — the switch: LCF bulk scheduler (with the
  Section 4.3 precalculated schedule) and the collision-dropping quick
  crossbar;
* :mod:`repro.clint.network` — the full star network with the
  three-stage bulk pipeline and link-error injection.
"""

from repro.clint.crc import crc16
from repro.clint.host import ClintHost
from repro.clint.network import ClintNetwork, NetworkStats
from repro.clint.packets import ConfigPacket, GrantPacket
from repro.clint.switch import ClintSwitch

__all__ = [
    "crc16",
    "ConfigPacket",
    "GrantPacket",
    "ClintHost",
    "ClintSwitch",
    "ClintNetwork",
    "NetworkStats",
]
