"""Clint packet formats (paper Section 4.1), bit-exact with CRC.

Configuration packet (host -> switch, on the quick channel)::

    {type=cfg | req[15..0] | pre[15..0] | ben[15..0] | qen[15..0] | CRC[15..0]}

``req`` — requested targets; ``pre`` — the precalculated schedule
(Section 4.3); ``ben``/``qen`` — bulk/quick initiator enables, used by
the hosts to fence off malfunctioning hosts; ``CRC`` — checksum.

Grant packet (switch -> host)::

    {type=gnt | nodeId[3..0] | gnt[3..0] | gntVal | linkErr | CRCErr | CRC[15..0]}

``nodeId`` assigns host ids at initialisation; ``gnt`` is the encoded
granted target, valid iff ``gntVal``; ``linkErr`` reports a link error
since the last grant; ``CRCErr`` reports that the last configuration
packet was corrupt or missing.

The 4-bit id/grant fields pin the maximum network size at 16 hosts —
exactly the Clint prototype ("a star topology using a single switch
that supports up to 16 host computers").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clint.crc import crc16

#: Packet type codes (one byte on the wire).
TYPE_CFG = 0x01
TYPE_GNT = 0x02

#: Field width of the request/precalc/enable vectors — fixed at 16 by
#: the packet format, hence the 16-host limit.
VECTOR_BITS = 16
MAX_NODES = 16


def _check_vector(name: str, value: int) -> int:
    if not 0 <= value < (1 << VECTOR_BITS):
        raise ValueError(f"{name} must fit in {VECTOR_BITS} bits, got {value:#x}")
    return value


def vector_to_mask(bits) -> int:
    """Pack an iterable of booleans (index = target) into a field mask."""
    mask = 0
    for index, bit in enumerate(bits):
        if index >= VECTOR_BITS:
            raise ValueError(f"vector longer than {VECTOR_BITS} bits")
        if bit:
            mask |= 1 << index
    return mask


def mask_to_vector(mask: int, n: int = VECTOR_BITS) -> list[bool]:
    """Unpack a field mask into a boolean list of length ``n``."""
    return [bool(mask >> i & 1) for i in range(n)]


@dataclass(frozen=True)
class ConfigPacket:
    """Host-to-switch configuration packet."""

    req: int
    pre: int = 0
    ben: int = (1 << VECTOR_BITS) - 1
    qen: int = (1 << VECTOR_BITS) - 1

    def __post_init__(self) -> None:
        for name in ("req", "pre", "ben", "qen"):
            _check_vector(name, getattr(self, name))

    def body(self) -> bytes:
        """Wire encoding without the trailing CRC."""
        out = bytes([TYPE_CFG])
        for field_value in (self.req, self.pre, self.ben, self.qen):
            out += field_value.to_bytes(2, "big")
        return out

    def pack(self) -> bytes:
        """Full wire encoding, CRC appended."""
        body = self.body()
        return body + crc16(body).to_bytes(2, "big")

    @classmethod
    def unpack(cls, data: bytes) -> "ConfigPacket":
        """Decode and CRC-check a received packet.

        Raises ``ValueError`` on bad length, type, or checksum — the
        caller maps that to the ``CRCErr`` protocol flag.
        """
        if len(data) != 11:
            raise ValueError(f"config packet must be 11 bytes, got {len(data)}")
        if data[0] != TYPE_CFG:
            raise ValueError(f"not a config packet (type byte {data[0]:#x})")
        body, received_crc = data[:-2], int.from_bytes(data[-2:], "big")
        if crc16(body) != received_crc:
            raise ValueError("config packet CRC mismatch")
        fields = [int.from_bytes(data[1 + 2 * k : 3 + 2 * k], "big") for k in range(4)]
        return cls(*fields)


@dataclass(frozen=True)
class GrantPacket:
    """Switch-to-host grant packet."""

    node_id: int
    gnt: int = 0
    gnt_val: bool = False
    link_err: bool = False
    crc_err: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.node_id < MAX_NODES:
            raise ValueError(f"node_id must be 0..{MAX_NODES - 1}, got {self.node_id}")
        if not 0 <= self.gnt < MAX_NODES:
            raise ValueError(f"gnt must be 0..{MAX_NODES - 1}, got {self.gnt}")

    def body(self) -> bytes:
        flags = (
            (int(self.gnt_val) << 2) | (int(self.link_err) << 1) | int(self.crc_err)
        )
        return bytes([TYPE_GNT, (self.node_id << 4) | self.gnt, flags])

    def pack(self) -> bytes:
        body = self.body()
        return body + crc16(body).to_bytes(2, "big")

    @classmethod
    def unpack(cls, data: bytes) -> "GrantPacket":
        if len(data) != 5:
            raise ValueError(f"grant packet must be 5 bytes, got {len(data)}")
        if data[0] != TYPE_GNT:
            raise ValueError(f"not a grant packet (type byte {data[0]:#x})")
        body, received_crc = data[:-2], int.from_bytes(data[-2:], "big")
        if crc16(body) != received_crc:
            raise ValueError("grant packet CRC mismatch")
        return cls(
            node_id=data[1] >> 4,
            gnt=data[1] & 0x0F,
            gnt_val=bool(data[2] >> 2 & 1),
            link_err=bool(data[2] >> 1 & 1),
            crc_err=bool(data[2] & 1),
        )


@dataclass(frozen=True)
class BulkRequest:
    """Bulk-channel data packet (``breq`` in Figure 5). The payload
    carries the data; an acknowledgment is returned for every request."""

    src: int
    dst: int
    t_generated: int
    payload_id: int


@dataclass(frozen=True)
class BulkAck:
    """Bulk acknowledgment (``back``), returned on the quick channel."""

    src: int  # the acknowledging target
    dst: int  # the original initiator
    payload_id: int


@dataclass(frozen=True)
class QuickPacket:
    """Best-effort quick-channel packet; dropped on collision."""

    src: int
    dst: int
    t_generated: int
    payload_id: int
