"""Small filesystem helpers shared by the CLI entry points.

Artifact files (CSV/JSON reports) are written atomically — content goes
to a same-directory temp file that is then renamed over the target — so
an interrupted or failing run never leaves a partially written artifact
behind for a later tool to misread. This is the same discipline
:mod:`repro.sweep.cache` applies to cache entries.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically; returns the final path.

    The temp file lives next to the target (rename is only atomic
    within a filesystem) and is removed if the write itself fails.
    """
    path = Path(path)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(text)
        tmp.replace(path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return path
