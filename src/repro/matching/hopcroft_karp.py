"""Maximum-size bipartite matching (Hopcroft & Karp).

This is the paper's reference [7]: an ``O(E * sqrt(V))`` algorithm that
finds the largest possible matching. The paper uses maximum-size
matching as the throughput-optimal-but-unfair extreme: it maximises the
per-slot matching size yet "leads to starvation" and is "too slow for
applications in high-speed networking" (Section 1). We implement it from
scratch — it serves as

* the optimality yardstick for the LCF schedulers' matching sizes, and
* the adversary in the starvation demonstration
  (``examples/starvation_demo.py``).

The implementation is the standard BFS-layering + DFS-augmentation
formulation on an adjacency-list view of the request matrix.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.types import NO_GRANT, RequestMatrix, Schedule, empty_schedule

_INF = float("inf")


def hopcroft_karp(requests: RequestMatrix) -> Schedule:
    """Return a maximum-size matching for ``requests`` as a schedule array.

    The result is deterministic for a given matrix (adjacency is scanned
    in index order), conflict free, and of maximum cardinality.
    """
    requests = np.asarray(requests, dtype=bool)
    n = requests.shape[0]
    adj: list[list[int]] = [np.flatnonzero(requests[i]).tolist() for i in range(n)]

    match_in = [NO_GRANT] * n  # input  i -> output
    match_out = [NO_GRANT] * n  # output j -> input
    dist = [0.0] * n

    def bfs() -> bool:
        queue: deque[int] = deque()
        for i in range(n):
            if match_in[i] == NO_GRANT:
                dist[i] = 0.0
                queue.append(i)
            else:
                dist[i] = _INF
        found_augmenting = False
        while queue:
            i = queue.popleft()
            for j in adj[i]:
                owner = match_out[j]
                if owner == NO_GRANT:
                    found_augmenting = True
                elif dist[owner] == _INF:
                    dist[owner] = dist[i] + 1
                    queue.append(owner)
        return found_augmenting

    def dfs(i: int) -> bool:
        for j in adj[i]:
            owner = match_out[j]
            if owner == NO_GRANT or (dist[owner] == dist[i] + 1 and dfs(owner)):
                match_in[i] = j
                match_out[j] = i
                return True
        dist[i] = _INF
        return False

    while bfs():
        for i in range(n):
            if match_in[i] == NO_GRANT:
                dfs(i)

    schedule = empty_schedule(n)
    schedule[:] = match_in
    return schedule


def maximum_matching_size(requests: RequestMatrix) -> int:
    """Cardinality of a maximum matching of ``requests``."""
    schedule = hopcroft_karp(requests)
    return int(np.count_nonzero(schedule != NO_GRANT))
