"""Bipartite-matching substrate.

Switch scheduling is bipartite matching between input and output ports
(paper, Section 1). This subpackage provides:

* :mod:`repro.matching.verify` — validity / maximality checkers used by the
  schedulers' tests and by the simulator's debug mode;
* :mod:`repro.matching.hopcroft_karp` — a from-scratch maximum-size matcher
  (Hopcroft & Karp, the paper's reference [7]) used as an optimality
  yardstick and to demonstrate that pure maximum-size matching starves;
* :mod:`repro.matching.properties` — structural properties (matching size
  bounds, augmenting paths) used by property-based tests.
"""

from repro.matching.hopcroft_karp import hopcroft_karp, maximum_matching_size
from repro.matching.verify import (
    is_conflict_free,
    is_maximal,
    is_valid_schedule,
    matching_size,
    schedule_to_matrix,
    schedule_to_pairs,
)

__all__ = [
    "hopcroft_karp",
    "maximum_matching_size",
    "is_conflict_free",
    "is_maximal",
    "is_valid_schedule",
    "matching_size",
    "schedule_to_matrix",
    "schedule_to_pairs",
]
