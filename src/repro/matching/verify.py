"""Schedule validity and maximality checks.

These are the invariants every scheduler in the package must satisfy:
a schedule is *valid* if it only grants requested pairs and is
*conflict free* if no output is granted to two inputs. The LCF family
additionally produces *maximal* matchings (no grantable pair left
unmatched); PIM/iSLIP only converge to maximal after enough iterations.
"""

from __future__ import annotations

import numpy as np

from repro.types import NO_GRANT, RequestMatrix, Schedule


def is_conflict_free(schedule: Schedule) -> bool:
    """True iff no output port is granted to more than one input."""
    granted = schedule[schedule != NO_GRANT]
    return len(np.unique(granted)) == len(granted)


def is_valid_schedule(requests: RequestMatrix, schedule: Schedule) -> bool:
    """True iff ``schedule`` is conflict free and only grants requested pairs."""
    n = requests.shape[0]
    if schedule.shape != (n,):
        return False
    if not is_conflict_free(schedule):
        return False
    for i, j in enumerate(schedule):
        if j == NO_GRANT:
            continue
        if not (0 <= j < n) or not requests[i, j]:
            return False
    return True


def is_maximal(requests: RequestMatrix, schedule: Schedule) -> bool:
    """True iff no unmatched (input, output) pair with a request remains.

    A maximal matching cannot be grown by adding a single edge; it is the
    weakest optimality property a work-conserving crossbar scheduler
    should provide.
    """
    n = requests.shape[0]
    free_inputs = schedule == NO_GRANT
    granted_outputs = schedule[schedule != NO_GRANT]
    free_outputs = np.ones(n, dtype=bool)
    free_outputs[granted_outputs] = False
    # An augmenting single edge exists iff some free input requests a free output.
    return not np.any(requests[free_inputs][:, free_outputs])


def matching_size(schedule: Schedule) -> int:
    """Number of granted (input, output) pairs in the schedule."""
    return int(np.count_nonzero(schedule != NO_GRANT))


def schedule_to_pairs(schedule: Schedule) -> list[tuple[int, int]]:
    """Return the granted pairs as a sorted list of ``(input, output)``."""
    return [(int(i), int(j)) for i, j in enumerate(schedule) if j != NO_GRANT]


def schedule_to_matrix(schedule: Schedule, n: int | None = None) -> np.ndarray:
    """Expand a schedule into a boolean permutation-submatrix ``G``.

    ``G[i, j]`` is True iff input ``i`` was granted output ``j``.
    """
    if n is None:
        n = len(schedule)
    grant = np.zeros((len(schedule), n), dtype=bool)
    for i, j in enumerate(schedule):
        if j != NO_GRANT:
            grant[i, j] = True
    return grant


def output_view(schedule: Schedule, n: int | None = None) -> np.ndarray:
    """Transpose a schedule to the output side: ``T[j] = i`` or ``NO_GRANT``."""
    if n is None:
        n = len(schedule)
    out = np.full(n, NO_GRANT, dtype=np.int64)
    for i, j in enumerate(schedule):
        if j != NO_GRANT:
            out[j] = i
    return out
