"""Structural matching properties used by tests and analysis.

The headline fact motivating LCF (Section 3) is that any *maximal*
matching has at least half the size of a *maximum* matching, and that
granting low-degree (few-choice) inputs first tends to close the gap.
These helpers quantify that gap and locate the structures (augmenting
paths, Hall violators) behind it.
"""

from __future__ import annotations

from itertools import combinations

import numpy as np

from repro.matching.hopcroft_karp import maximum_matching_size
from repro.matching.verify import matching_size
from repro.types import NO_GRANT, RequestMatrix, Schedule


def matching_efficiency(requests: RequestMatrix, schedule: Schedule) -> float:
    """Ratio of the schedule's size to the maximum matching size (1.0 = optimal).

    Returns 1.0 for an empty request matrix (nothing to match).
    """
    best = maximum_matching_size(requests)
    if best == 0:
        return 1.0
    return matching_size(schedule) / best


def has_augmenting_path(requests: RequestMatrix, schedule: Schedule) -> bool:
    """True iff the schedule admits an alternating augmenting path.

    By Berge's lemma this is equivalent to the schedule not being of
    maximum size.
    """
    return matching_size(schedule) < maximum_matching_size(requests)


def deficiency(requests: RequestMatrix) -> int:
    """Number of inputs with requests that cannot all be matched simultaneously.

    ``deficiency = (#inputs with >=1 request) - maximum matching size``;
    it is positive exactly when some set of inputs violates Hall's
    condition.
    """
    active = int(np.count_nonzero(requests.any(axis=1)))
    return active - maximum_matching_size(requests)


def hall_violator(requests: RequestMatrix) -> tuple[int, ...] | None:
    """Return a smallest set of inputs whose joint neighbourhood is smaller
    than the set, or None if Hall's condition holds.

    Exponential search — intended for the small matrices used in tests
    and worked examples, not for production scheduling.
    """
    n = requests.shape[0]
    active = [i for i in range(n) if requests[i].any()]
    for size in range(1, len(active) + 1):
        for subset in combinations(active, size):
            neighbourhood = np.zeros(n, dtype=bool)
            for i in subset:
                neighbourhood |= requests[i]
            if int(neighbourhood.sum()) < size:
                return subset
    return None


def request_degrees(requests: RequestMatrix) -> np.ndarray:
    """Per-input request counts (the paper's NRQ column of Figure 3)."""
    return requests.sum(axis=1).astype(np.int64)


def choice_histogram(requests: RequestMatrix) -> dict[int, int]:
    """Histogram of request degrees: ``{degree: #inputs}``.

    LCF's premise is that the left tail of this histogram (inputs with
    few choices) should be served first.
    """
    degrees = request_degrees(requests)
    values, counts = np.unique(degrees, return_counts=True)
    return {int(v): int(c) for v, c in zip(values, counts)}


def greedy_matching_lower_bound(requests: RequestMatrix) -> float:
    """Lower bound on any maximal matching: half the maximum size.

    Classic result: a maximal matching M and a maximum matching M* satisfy
    ``|M| >= |M*| / 2`` because each edge of M can block at most two edges
    of M*.
    """
    return maximum_matching_size(requests) / 2.0
