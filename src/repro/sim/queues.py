"""Queue structures of the Figure 11 model.

For speed the queues store bare generation timestamps (ints) — latency
is all the statistics need — with destinations implied by queue identity
(VOQs) or stored alongside (PQ, FIFO). Occupancy counters are maintained
incrementally so the request matrix is O(n^2) to read, not O(packets).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.fastpath.bitops import WORD_BITS, word_count


class PacketQueue:
    """Per-input FIFO of ``(dst, t_generated)`` pairs with finite capacity.

    Models the initiator-side packet queue (PQ, 1000 entries in the
    paper). Arrivals beyond capacity are dropped and counted.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: deque[tuple[int, int]] = deque()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def full(self) -> bool:
        return len(self._queue) >= self.capacity

    def push(self, dst: int, t_generated: int) -> bool:
        """Enqueue a packet; returns False (and counts a drop) if full."""
        if self.full:
            self.dropped += 1
            return False
        self._queue.append((dst, t_generated))
        return True

    def head(self) -> tuple[int, int] | None:
        """Peek at the head packet without removing it."""
        return self._queue[0] if self._queue else None

    def pop(self) -> tuple[int, int]:
        """Remove and return the head packet."""
        return self._queue.popleft()

    def clear(self) -> None:
        """Empty the queue and zero the drop counter — back to the
        as-constructed state (for run-to-run switch reuse)."""
        self._queue.clear()
        self.dropped = 0


class VOQSet:
    """The ``n x n`` virtual output queues of one switch.

    ``voq[i][j]`` holds generation timestamps of input ``i``'s packets
    for output ``j``. Each VOQ has finite capacity (256 in the paper).
    """

    def __init__(self, n: int, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.n = n
        self.capacity = capacity
        self._queues: list[list[deque[int]]] = [
            [deque() for _ in range(n)] for _ in range(n)
        ]
        self._occupancy = np.zeros((n, n), dtype=np.int64)
        #: Per-input request bitmasks (bit j set iff VOQ (i, j) is
        #: non-empty) and the per-output transpose — maintained on every
        #: 0 <-> 1 occupancy transition so the fastpath kernels can read
        #: the request state without building a matrix.
        self.row_masks: list[int] = [0] * n
        self.col_masks: list[int] = [0] * n
        #: Word-tuple twins of the masks for ``n > 64`` switches (the
        #: multi-word kernel layout of :mod:`repro.fastpath.bitops`);
        #: ``None`` when a row fits one machine word.
        self.row_words: list[list[int]] | None = None
        self.col_words: list[list[int]] | None = None
        if n > WORD_BITS:
            words = word_count(n)
            self.row_words = [[0] * words for _ in range(n)]
            self.col_words = [[0] * words for _ in range(n)]

    @property
    def occupancy(self) -> np.ndarray:
        """Read-only view of per-VOQ packet counts."""
        return self._occupancy

    def total_queued(self) -> int:
        return int(self._occupancy.sum())

    def has_space(self, i: int, j: int) -> bool:
        return len(self._queues[i][j]) < self.capacity

    def push(self, i: int, j: int, t_generated: int) -> None:
        """Enqueue into VOQ (i, j); caller must have checked space."""
        queue = self._queues[i][j]
        if len(queue) >= self.capacity:
            raise OverflowError(f"VOQ[{i}][{j}] is full (capacity {self.capacity})")
        queue.append(t_generated)
        self._occupancy[i, j] += 1
        if len(queue) == 1:
            self.row_masks[i] |= 1 << j
            self.col_masks[j] |= 1 << i
            if self.row_words is not None:
                self.row_words[i][j >> 6] |= 1 << (j & 63)
                self.col_words[j][i >> 6] |= 1 << (i & 63)

    def pop(self, i: int, j: int) -> int:
        """Dequeue the head packet of VOQ (i, j); returns its timestamp."""
        self._occupancy[i, j] -= 1
        queue = self._queues[i][j]
        t_generated = queue.popleft()
        if not queue:
            self.row_masks[i] &= ~(1 << j)
            self.col_masks[j] &= ~(1 << i)
            if self.row_words is not None:
                self.row_words[i][j >> 6] &= ~(1 << (j & 63))
                self.col_words[j][i >> 6] &= ~(1 << (i & 63))
        return t_generated

    def clear(self) -> None:
        """Empty every VOQ and reset the occupancy counters and request
        masks — back to the as-constructed state (for run-to-run switch
        reuse)."""
        for row in self._queues:
            for queue in row:
                queue.clear()
        self._occupancy[:] = 0
        # Mutate the mask containers in place: the crossbar's fast loop
        # holds direct references to them.
        self.row_masks[:] = [0] * self.n
        self.col_masks[:] = [0] * self.n
        if self.row_words is not None:
            for words in self.row_words:
                words[:] = [0] * len(words)
            for words in self.col_words:
                words[:] = [0] * len(words)

    def request_matrix(self) -> np.ndarray:
        """Boolean matrix of non-empty VOQs — what the scheduler sees."""
        return self._occupancy > 0

    def head_timestamps(self) -> np.ndarray:
        """Generation timestamps of the head packets (-1 where empty) —
        what an oldest-cell-first scheduler needs."""
        heads = np.full((self.n, self.n), -1, dtype=np.int64)
        for i in range(self.n):
            row = self._queues[i]
            for j in range(self.n):
                if row[j]:
                    heads[i, j] = row[j][0]
        return heads


class OutputQueue:
    """Per-output FIFO of generation timestamps with finite capacity —
    the building block of the output-buffered reference switch."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: deque[int] = deque()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._queue)

    def push(self, t_generated: int) -> bool:
        if len(self._queue) >= self.capacity:
            self.dropped += 1
            return False
        self._queue.append(t_generated)
        return True

    def pop(self) -> int | None:
        """Serve one packet (None if empty)."""
        return self._queue.popleft() if self._queue else None
