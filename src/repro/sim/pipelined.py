"""Pipelined-scheduler switch model (paper Section 1, Section 4.1).

"Timing requirements can be relaxed with the help of pipelining
techniques. By pipelining the scheduler and overlapping scheduling and
packet forwarding, packet throughput is optimized. Note that these
techniques do not reduce latency and that the scheduling latency adds
to the overall switch forwarding latency."

This model makes that claim measurable: the scheduler sees the VOQ
state of slot ``t`` but its matching is applied in slot
``t + pipeline_depth``. The Clint bulk channel is exactly this switch
with depth 1 (configuration/grant in slot ``c``, transfer in ``c+1``).

The interesting subtlety is *stale grants*: a matching computed on
slot-``t`` state is applied to slot-``t+d`` queues. Packets granted at
``t`` are reserved (removed from the schedulable pool) so they are not
granted twice while in flight through the pipeline — mirroring how real
pipelined arbiters mask in-flight VOQs from the request vector.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.base import Scheduler
from repro.sim.config import SimConfig
from repro.sim.metrics import OnlineStats
from repro.sim.queues import PacketQueue, VOQSet
from repro.traffic.base import NO_ARRIVAL
from repro.types import NO_GRANT


class PipelinedSwitch:
    """VOQ crossbar whose schedule lags the request snapshot by
    ``pipeline_depth`` slots (depth 0 = the plain crossbar timing)."""

    def __init__(self, config: SimConfig, scheduler: Scheduler, pipeline_depth: int = 1):
        if scheduler.n != config.n_ports:
            raise ValueError(
                f"scheduler is for n={scheduler.n}, config has {config.n_ports} ports"
            )
        if pipeline_depth < 0:
            raise ValueError(f"pipeline depth must be >= 0, got {pipeline_depth}")
        self.config = config
        self.scheduler = scheduler
        self.pipeline_depth = pipeline_depth
        n = config.n_ports
        self.pqs = [PacketQueue(config.pq_capacity) for _ in range(n)]
        self.voqs = VOQSet(n, config.voq_capacity)
        #: Packets already granted by an in-flight schedule, per VOQ —
        #: excluded from subsequent request snapshots.
        self._reserved = np.zeros((n, n), dtype=np.int64)
        #: Schedules in flight; the left end applies this slot.
        self._in_flight: deque[np.ndarray] = deque(
            [np.full(n, NO_GRANT, dtype=np.int64) for _ in range(pipeline_depth)]
        )

        self.latency = OnlineStats()
        self.offered = 0
        self.forwarded = 0
        self.measuring = False

    @property
    def n(self) -> int:
        return self.config.n_ports

    def total_queued(self) -> int:
        return sum(len(pq) for pq in self.pqs) + self.voqs.total_queued()

    @property
    def dropped(self) -> int:
        return sum(pq.dropped for pq in self.pqs)

    def step(self, slot: int, arrivals: np.ndarray) -> np.ndarray:
        n = self.n
        # 1. Generation into PQs.
        for i in range(n):
            dst = arrivals[i]
            if dst != NO_ARRIVAL:
                if self.measuring:
                    self.offered += 1
                self.pqs[i].push(int(dst), slot)

        # 2. Injection (one per input link per slot).
        for i, pq in enumerate(self.pqs):
            head = pq.head()
            if head is not None and self.voqs.has_space(i, head[0]):
                dst, t_generated = pq.pop()
                self.voqs.push(i, dst, t_generated)

        # 3. Launch a new schedule into the pipeline, computed on the
        #    *schedulable* occupancy (queued minus already reserved).
        schedulable = (self.voqs.occupancy - self._reserved) > 0
        new_schedule = self.scheduler.schedule(schedulable)
        for i in range(n):
            j = new_schedule[i]
            if j != NO_GRANT:
                self._reserved[i, j] += 1
        self._in_flight.append(new_schedule)

        # 4. Apply the schedule that has cleared the pipeline.
        applied = self._in_flight.popleft()
        for i in range(n):
            j = applied[i]
            if j == NO_GRANT:
                continue
            t_generated = self.voqs.pop(i, int(j))
            self._reserved[i, j] -= 1
            if self.measuring:
                self.forwarded += 1
                self.latency.add(slot - t_generated + 1)
        return applied
