"""The VOQ input-queued crossbar switch (Figure 11 / Figure 1).

Per-slot event order:

1. **Generation** — the traffic pattern's arrivals enter the per-input
   packet queues (PQ); a full PQ drops the packet.
2. **Injection** — each input link carries at most one packet per slot
   from the PQ head into its VOQ; a full VOQ blocks the PQ head (the
   PQ is FIFO, so this is deliberate head-of-line blocking *upstream*
   of the VOQs, exactly the Figure 11 structure).
3. **Scheduling** — the scheduler computes a matching over the
   occupied-VOQ request matrix.
4. **Forwarding** — matched VOQ heads traverse the fabric and depart;
   with no output buffering, departure is in the same slot.

Latency of a packet = departure slot − generation slot + 1.

Observability: pass a :class:`repro.obs.Tracer` and/or a
:class:`repro.obs.MetricsRegistry` to record per-slot events (arrival,
enqueue, request vector, scheduler decision steps, RR override,
forward, drop) and decision metrics (matching size, choice-count and
tie-break-depth distributions). With neither attached — or with a
:class:`~repro.obs.tracer.NullTracer` — the step loop pays one
``is not None`` check per stage and nothing else; results are
bit-identical to an uninstrumented run (property-tested).

Fault stances: with an ``injector`` alone the switch is *informed* —
requests over faulted crosspoints are masked out before the scheduler
sees them (an oracle tells it the fault state). Attaching an
``adapter`` (:mod:`repro.adapt`) makes the switch *fault-blind*: the
scheduler sees whatever the adapter returns, never the injector mask;
the fabric gate silently drops grants over faulted crosspoints
(counted in ``masked_grants``), and the adapter observes which
proposed grants survived — the feedback loop reactive scheduling
learns from.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Scheduler
from repro.core.lcf_central import StepTrace
from repro.core.lcf_dist import IterationTrace
from repro.faults.injector import FaultInjector
from repro.obs import events as ev
from repro.obs.estimators import RateEstimator, StreamingQuantiles
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer, effective_tracer
from repro.sim.config import SimConfig
from repro.sim.metrics import OnlineStats, ServiceMatrix
from repro.sim.queues import PacketQueue, VOQSet
from repro.traffic.base import NO_ARRIVAL
from repro.types import NO_GRANT


class InputQueuedSwitch:
    """VOQ crossbar switch driven by any :class:`Scheduler`."""

    def __init__(
        self,
        config: SimConfig,
        scheduler: Scheduler,
        collect_service: bool = False,
        collect_latencies: bool = False,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        injector: FaultInjector | None = None,
        adapter=None,
        output_gate=None,
        forward_sink=None,
        admission=None,
    ):
        if scheduler.n != config.n_ports:
            raise ValueError(
                f"scheduler is for n={scheduler.n}, config has {config.n_ports} ports"
            )
        self.config = config
        self.scheduler = scheduler
        n = config.n_ports
        self.pqs = [PacketQueue(config.pq_capacity) for _ in range(n)]
        self.voqs = VOQSet(n, config.voq_capacity)

        self.latency = OnlineStats()
        self.offered = 0  # packets generated during measurement
        self.forwarded = 0  # packets departed during measurement
        self.measuring = False
        self.service = ServiceMatrix(n) if collect_service else None
        self.latency_samples: list[int] | None = [] if collect_latencies else None

        # A disabled tracer resolves to None here, so the hot loop's only
        # disabled-path cost is the `is not None` guards below.
        self.tracer = effective_tracer(tracer)
        self.metrics = metrics
        self._observing = self.tracer is not None or metrics is not None
        if self._observing and hasattr(scheduler, "record_trace"):
            # Reuse the schedulers' built-in decision recorders
            # (StepTrace / IterationTrace) as the telemetry source.
            scheduler.record_trace = True
        if metrics is not None:
            self._m_matching = metrics.histogram("matching_size", range(n + 1))
            self._m_choices = metrics.histogram("choice_count", range(n + 1))
            self._m_tie_depth = metrics.histogram("tie_break_depth", range(n))
            self._m_rr = metrics.counter("rr_overrides")
            self._m_grants = metrics.counter("grants")
            self._m_slots = metrics.counter("slots")
            self._m_forwarded = metrics.counter("forwarded")
            self._m_dropped = metrics.counter("dropped")
            self._m_arrivals = metrics.counter("arrivals")
            # Live estimators: cheap O(1) updates in _record_forward;
            # everything derived from them (rate gauges, delay
            # percentiles, queue depths) is refreshed lazily by the
            # collector below, so only scrapes/snapshots pay for it.
            self.rate_estimator = RateEstimator(n)
            self.delay_quantiles = StreamingQuantiles()
            self._live_slot = 0
            metrics.add_collector("switch-live", self._collect_live)
        else:
            self.rate_estimator = None
            self.delay_quantiles = None
        #: (i, j) when the distributed RR overlay will pre-match this slot.
        self._pending_rr: tuple[int, int] | None = None

        # A plan with no topology faults resolves to no injector here —
        # the switch only consumes port/link outages (message faults live
        # in the repro.faults.channel scheduler wrappers), so a null or
        # message-only plan is bit-identical to running uninstrumented.
        if injector is not None and not injector.plan.has_topology_faults:
            injector = None
        self.injector = injector
        #: Backpressure hook (the multi-stage fabric's credit gate):
        #: ``output_gate(slot) -> bool[n]`` marks outputs whose
        #: downstream boundary queue cannot accept a packet this slot.
        #: Blocked outputs are masked out of the request matrix the
        #: scheduler sees, and any grant that lands on one anyway is
        #: dropped *before* the adapter observes outcomes — backpressure
        #: must never teach the health estimator that a link is dead.
        self.output_gate = output_gate
        #: Per-forward hook: ``forward_sink(slot, input, output, payload)``
        #: receives each departing packet's queued payload (normally the
        #: generation timestamp; the fabric stores packet tags instead)
        #: and returns the latency to record for it. With a sink attached
        #: the switch no longer interprets the payload itself.
        self.forward_sink = forward_sink
        self.blocked_grants = 0
        #: Fault-reaction layer (repro.adapt). When attached, the switch
        #: runs fault-blind: see the module docstring.
        self.adapter = adapter
        if adapter is not None:
            adapter.bind(n, tracer=self.tracer, metrics=metrics)
        #: Ingress load shedder (:mod:`repro.sim.admission`): when
        #: attached, arrivals are discarded while total occupancy sits
        #: above its hysteresis band — before they can enter a PQ.
        self.admission = admission
        if admission is not None:
            admission.bind(tracer=self.tracer, metrics=metrics)
        #: Fault accounting (kept even without a MetricsRegistry so the
        #: resilience harness can read degradation off the switch).
        self.fault_events = 0
        self.recovery_events = 0
        self.degraded_slots = 0
        self.masked_grants = 0
        # Uninstrumented slots with a bitmask-kernel scheduler take the
        # branch-free fast loop: requests come straight from the VOQ
        # bitmasks, so no request matrix, no defensive copy and no numpy
        # scratch is ever allocated. Results are bit-identical to the
        # instrumented loop (property-tested in tests/fastpath/).
        # The capability probe is type-level on purpose: wrappers like
        # RequestLossFilter forward unknown attributes to their inner
        # scheduler, and a forwarded schedule_masks would bypass the
        # wrapper's own filtering. Beyond 64 ports the VOQ masks are
        # word tuples, so the probe requires the multi-word entry point
        # (``schedule_words``) instead.
        self._fast_slot = self._probe_fast_slot()
        if injector is not None:
            self._down_in_prev = np.zeros(n, dtype=bool)
            self._down_out_prev = np.zeros(n, dtype=bool)
            # Input-side recovery clock: backlog level when the port
            # failed, and the port-up slot the drain is measured from.
            self._backlog_at_fault = np.zeros(n, dtype=np.int64)
            self._recovering_since = np.full(n, -1, dtype=np.int64)
            if metrics is not None:
                self._m_faults = metrics.counter("fault_events")
                self._m_recoveries = metrics.counter("recovery_events")
                self._m_degraded = metrics.counter("degraded_slots")
                self._m_masked = metrics.counter("masked_grants")
                self._m_recovery_time = metrics.histogram(
                    "recovery_time", (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
                )

    def _probe_fast_slot(self) -> bool:
        """Whether the current scheduler/instrumentation combination can
        take the branch-free bitmask loop (see the comment in
        ``__init__``)."""
        kernel_entry = (
            "schedule_masks" if self.voqs.row_words is None else "schedule_words"
        )
        return (
            not self._observing
            and self.injector is None
            and self.adapter is None
            and self.output_gate is None
            and self.forward_sink is None
            and self.admission is None
            and getattr(self.scheduler, "weight_kind", None) is None
            and callable(getattr(type(self.scheduler), kernel_entry, None))
        )

    def reset_run(self, scheduler: Scheduler | None = None) -> None:
        """Re-arm the switch for a fresh run without rebuilding it.

        Empties every queue, zeroes the statistics and drop counters,
        and (optionally) swaps in a new scheduler — after this the
        switch is indistinguishable from a freshly constructed one with
        the same configuration and collection flags. The multi-replicate
        runners use this to amortise the ``n^2`` queue-structure build
        across the replicates of a sweep cell.

        Only the plain statistics-collecting switch supports reuse:
        instrumented switches (tracer/metrics/injector/adapter/gate/
        sink/admission) hold run-scoped external state this method
        cannot safely rewind, so it refuses rather than silently carry
        state over.
        """
        if (
            self._observing
            or self.injector is not None
            or self.adapter is not None
            or self.output_gate is not None
            or self.forward_sink is not None
            or self.admission is not None
        ):
            raise ValueError("reset_run requires an uninstrumented switch")
        if scheduler is not None:
            if scheduler.n != self.config.n_ports:
                raise ValueError(
                    f"scheduler is for n={scheduler.n}, "
                    f"config has {self.config.n_ports} ports"
                )
            self.scheduler = scheduler
            self._fast_slot = self._probe_fast_slot()
        else:
            self.scheduler.reset()
        for pq in self.pqs:
            pq.clear()
        self.voqs.clear()
        self.latency = OnlineStats()
        self.offered = 0
        self.forwarded = 0
        self.measuring = False
        if self.service is not None:
            self.service = ServiceMatrix(self.n)
        if self.latency_samples is not None:
            self.latency_samples = []

    @property
    def n(self) -> int:
        return self.config.n_ports

    def total_queued(self) -> int:
        """Packets currently buffered anywhere in the switch."""
        return sum(len(pq) for pq in self.pqs) + self.voqs.total_queued()

    @property
    def dropped(self) -> int:
        """Packets dropped at full PQs since construction."""
        return sum(pq.dropped for pq in self.pqs)

    def step(self, slot: int, arrivals: np.ndarray) -> np.ndarray:
        """Advance one time slot; returns the schedule that was applied."""
        if self._fast_slot:
            return self._step_fast(slot, arrivals)
        observing = self._observing
        injector = self.injector
        if injector is not None:
            down_in = injector.down_inputs(slot)
            self._track_faults(slot, down_in, injector.down_outputs(slot))
            if injector.degraded(slot):
                self.degraded_slots += 1
                if self.metrics is not None:
                    self._m_degraded.inc()

        # 1. Generation into PQs. Hosts keep sending while their ingress
        #    is down — the backlog builds in the PQ, which is exactly the
        #    queue buildup the recovery-time metric measures. Admission
        #    control evaluates once per slot, before generation, and a
        #    shedding switch discards arrivals here — upstream of the
        #    PQs, so no queue state is consumed by a shed packet.
        admission = self.admission
        if admission is not None:
            admission.update(self.total_queued())
        for i in range(self.n):
            dst = arrivals[i]
            if dst != NO_ARRIVAL:
                if self.measuring:
                    self.offered += 1
                if admission is not None and admission.shedding:
                    admission.shed(slot, i, int(dst))
                    continue
                accepted = self.pqs[i].push(int(dst), slot)
                if observing:
                    self._record_arrival(slot, i, int(dst), accepted)

        # 2. Injection: one packet per input link per slot, head blocking.
        #    A down input's link carries nothing.
        for i, pq in enumerate(self.pqs):
            if injector is not None and down_in[i]:
                continue
            head = pq.head()
            if head is not None and self.voqs.has_space(i, head[0]):
                dst, t_generated = pq.pop()
                self.voqs.push(i, dst, t_generated)
                if observing and self.tracer is not None:
                    self.tracer.emit(ev.enqueue(slot, i, dst))

        # 3. Scheduling. Weight-based schedulers (LQF/OCF) receive the
        #    state their priority rule ranks by; everyone else sees the
        #    boolean request matrix. ``seen`` is the effective request
        #    matrix the scheduler works from: injector-masked in the
        #    informed stance (no adapter), adapter-filtered in the
        #    blind stance, ``None`` (= raw requests) otherwise.
        mask = injector.request_mask(slot) if injector is not None else None
        adapter = self.adapter
        if adapter is not None:
            seen = adapter.filter_requests(slot, self.voqs.request_matrix())
        elif mask is not None:
            seen = self.voqs.request_matrix() & mask
        else:
            seen = None
        blocked = self.output_gate(slot) if self.output_gate is not None else None
        if blocked is not None:
            if seen is None:
                seen = self.voqs.request_matrix() & ~blocked
            else:
                seen = seen & ~blocked
        if observing:
            request_total = self._record_requests(slot, seen)
        weight_kind = getattr(self.scheduler, "weight_kind", None)
        if weight_kind == "occupancy":
            weights = self.voqs.occupancy
            if seen is not None:
                weights = np.where(seen, weights, 0)
            schedule = self.scheduler.schedule_weighted(weights)
        elif weight_kind == "hol_age":
            heads = self.voqs.head_timestamps()
            ages = np.where(heads >= 0, slot - heads + 1, 0)
            if seen is not None:
                ages = np.where(seen, ages, 0)
            schedule = self.scheduler.schedule_weighted(ages)
        else:
            matrix = seen if seen is not None else self.voqs.request_matrix()
            schedule = self.scheduler.schedule(matrix)
        if blocked is not None:
            # Credit gate: no grant crosses into a full boundary queue.
            # This runs *before* ``proposed`` is taken so the adapter
            # never observes a backpressure drop as a failed grant.
            for i in range(self.n):
                j = schedule[i]
                if j != NO_GRANT and blocked[j]:
                    schedule[i] = NO_GRANT
                    self.blocked_grants += 1
        proposed = schedule
        if mask is not None:
            # Defensive fabric gate: whatever the scheduler emitted, no
            # grant crosses a faulted crosspoint. In the informed stance
            # this should never fire for a well-behaved scheduler, but
            # it is the invariant the resilience property tests rely on;
            # in the blind stance it is the fault model itself — every
            # grant it drops is a wasted slot the adapter learns from.
            if adapter is not None:
                proposed = schedule.copy()
            for i in range(self.n):
                j = schedule[i]
                if j != NO_GRANT and not mask[i, j]:
                    schedule[i] = NO_GRANT
                    self.masked_grants += 1
                    if self.metrics is not None:
                        self._m_masked.inc()
        if adapter is not None:
            if mask is not None:
                adapter.note_truth(slot, mask)
            adapter.observe(slot, proposed, schedule)
        if observing:
            self._record_decisions(slot, schedule, request_total)

        # 4. Forwarding.
        sink = self.forward_sink
        for i in range(self.n):
            j = schedule[i]
            if j == NO_GRANT:
                continue
            t_generated = self.voqs.pop(i, int(j))
            if sink is not None:
                delay = sink(slot, i, int(j), t_generated)
            else:
                delay = slot - t_generated + 1
            if self.measuring:
                self.forwarded += 1
                self.latency.add(delay)
                if self.latency_samples is not None:
                    self.latency_samples.append(delay)
            if observing:
                self._record_forward(slot, i, int(j), delay)
        if self.measuring and self.service is not None:
            self.service.record(schedule)
        return schedule

    def _step_fast(self, slot: int, arrivals: np.ndarray) -> np.ndarray:
        """The uninstrumented slot loop over VOQ bitmasks.

        Same four stages in the same order as :meth:`step`, but the
        scheduler is fed the incrementally-maintained request bitmasks
        (``VOQSet.row_masks`` / ``col_masks``) instead of a freshly
        built boolean matrix, and all bookkeeping stays in plain Python
        ints. Statistics are bit-identical to the general loop.
        """
        measuring = self.measuring
        pqs = self.pqs
        voqs = self.voqs

        # 1. Generation into PQs.
        for i, dst in enumerate(arrivals.tolist()):
            if dst != NO_ARRIVAL:
                if measuring:
                    self.offered += 1
                pqs[i].push(dst, slot)

        # 2. Injection: one packet per input link per slot, head blocking.
        for i, pq in enumerate(pqs):
            head = pq.head()
            if head is not None and voqs.has_space(i, head[0]):
                dst, t_generated = pq.pop()
                voqs.push(i, dst, t_generated)

        # 3. Scheduling straight off the maintained bitmasks (the kernel
        #    only reads them; forwarding below updates them via pop).
        if voqs.row_words is None:
            grants = self.scheduler.schedule_masks(voqs.row_masks, voqs.col_masks)
        else:
            grants = self.scheduler.schedule_words(voqs.row_words, voqs.col_words)

        # 4. Forwarding.
        for i, j in enumerate(grants):
            if j == NO_GRANT:
                continue
            delay = slot - voqs.pop(i, j) + 1
            if measuring:
                self.forwarded += 1
                self.latency.add(delay)
                if self.latency_samples is not None:
                    self.latency_samples.append(delay)
        schedule = np.array(grants, dtype=np.int64)
        if measuring and self.service is not None:
            self.service.record(schedule)
        return schedule

    def run_slots(self, first_slot: int, arrivals_block: list[np.ndarray]) -> None:
        """Advance one consecutive block of slots.

        Equivalent to calling :meth:`step` once per entry of
        ``arrivals_block`` with slots ``first_slot, first_slot+1, ...``,
        but on the fast path the per-slot dispatch overhead is paid once
        per *block*: attribute lookups are hoisted out of the loop, the
        destination vectors are converted to plain ints in one pass, and
        no numpy schedule array is materialised unless service counts
        are being collected. Statistics stay bit-identical to per-slot
        stepping (property-tested in ``tests/fastpath/``).

        ``measuring`` must not change mid-block — the simulation driver
        splits its blocks at the warmup boundary.
        """
        if not self._fast_slot:
            slot = first_slot
            for arrivals in arrivals_block:
                self.step(slot, arrivals)
                slot += 1
            return

        measuring = self.measuring
        pqs = self.pqs
        voqs = self.voqs
        has_space = voqs.has_space
        voq_push = voqs.push
        voq_pop = voqs.pop
        if voqs.row_words is None:
            kernel = self.scheduler.schedule_masks
            rows, cols = voqs.row_masks, voqs.col_masks
        else:
            kernel = self.scheduler.schedule_words
            rows, cols = voqs.row_words, voqs.col_words
        latency_add = self.latency.add
        samples = self.latency_samples
        service = self.service if measuring else None
        offered = forwarded = 0

        slot = first_slot
        for arrivals in arrivals_block:
            # 1. Generation into PQs.
            for i, dst in enumerate(arrivals.tolist()):
                if dst != NO_ARRIVAL:
                    if measuring:
                        offered += 1
                    pqs[i].push(dst, slot)

            # 2. Injection: one packet per input link per slot.
            for i, pq in enumerate(pqs):
                head = pq.head()
                if head is not None and has_space(i, head[0]):
                    dst, t_generated = pq.pop()
                    voq_push(i, dst, t_generated)

            # 3. Scheduling straight off the maintained bitmasks.
            grants = kernel(rows, cols)

            # 4. Forwarding.
            for i, j in enumerate(grants):
                if j == NO_GRANT:
                    continue
                delay = slot - voq_pop(i, j) + 1
                if measuring:
                    forwarded += 1
                    latency_add(delay)
                    if samples is not None:
                        samples.append(delay)
            if service is not None:
                service.record(np.array(grants, dtype=np.int64))
            slot += 1

        self.offered += offered
        self.forwarded += forwarded

    # -- fault tracking (only reached with an injector attached) --

    def _input_backlog(self, port: int) -> int:
        """Packets queued anywhere behind one input (PQ + its VOQs)."""
        return len(self.pqs[port]) + int(self.voqs.occupancy[port].sum())

    def _track_faults(
        self, slot: int, down_in: np.ndarray, down_out: np.ndarray
    ) -> None:
        """Emit fault/recovery events on port state transitions.

        An output side recovers the moment it comes back up. An input
        side recovers once its backlog has drained to the level it had
        when the fault hit — ``backlog_slots`` on the recovery event
        (and the ``recovery_time`` histogram) is how long that took.
        """
        tracer, metrics = self.tracer, self.metrics
        for port in range(self.n):
            for side, now, prev in (
                ("input", down_in, self._down_in_prev),
                ("output", down_out, self._down_out_prev),
            ):
                if now[port] and not prev[port]:
                    self.fault_events += 1
                    if metrics is not None:
                        self._m_faults.inc()
                    if tracer is not None:
                        tracer.emit(ev.fault(slot, port, side))
                    if side == "input":
                        self._backlog_at_fault[port] = self._input_backlog(port)
                        self._recovering_since[port] = -1
                elif prev[port] and not now[port]:
                    if side == "output":
                        self.recovery_events += 1
                        if metrics is not None:
                            self._m_recoveries.inc()
                            self._m_recovery_time.observe(0)
                        if tracer is not None:
                            tracer.emit(ev.recovery(slot, port, side, 0))
                    else:
                        self._recovering_since[port] = slot
        self._down_in_prev = down_in.copy()
        self._down_out_prev = down_out.copy()
        for port in np.flatnonzero(self._recovering_since >= 0):
            if self._input_backlog(port) <= self._backlog_at_fault[port]:
                backlog_slots = slot - int(self._recovering_since[port])
                self._recovering_since[port] = -1
                self.recovery_events += 1
                if metrics is not None:
                    self._m_recoveries.inc()
                    self._m_recovery_time.observe(backlog_slots)
                if tracer is not None:
                    tracer.emit(ev.recovery(slot, int(port), "input", backlog_slots))

    # -- observability (only reached with a tracer or metrics attached) --

    def _record_arrival(self, slot: int, input: int, output: int, accepted: bool) -> None:
        if self.tracer is not None:
            self.tracer.emit(ev.arrival(slot, input, output))
            if not accepted:
                self.tracer.emit(ev.drop(slot, input, output))
        if self.metrics is not None:
            self._m_arrivals.inc()
            if not accepted:
                self._m_dropped.inc()

    def _record_requests(self, slot: int, seen: np.ndarray | None = None) -> int:
        """Emit the NRQ (choice-count) vector; returns total requests.

        ``seen`` is the effective request matrix the scheduler will
        work from (injector-masked or adapter-filtered); ``None`` means
        the raw occupancy-derived requests.
        """
        matrix = seen if seen is not None else self.voqs.request_matrix()
        nrq = matrix.sum(axis=1)
        if self.tracer is not None:
            self.tracer.emit(ev.requests(slot, [int(x) for x in nrq]))
        # The distributed RR overlay (lcf_dist_rr) pre-matches its
        # position before the iterations run; note it now, because the
        # iteration trace never sees that grant.
        rr_pos = getattr(self.scheduler, "rr_position", None)
        self._pending_rr = (
            rr_pos if rr_pos is not None and matrix[rr_pos] else None
        )
        return int(nrq.sum())

    def _record_decisions(
        self, slot: int, schedule: np.ndarray, request_total: int
    ) -> None:
        """Translate the scheduler's decision recorder into events/metrics."""
        tracer, metrics = self.tracer, self.metrics
        trace = getattr(self.scheduler, "last_trace", None)
        if trace and isinstance(trace[0], StepTrace):
            # Central LCF: one record per per-output allocation step.
            for step in trace:
                granted = step.granted
                if granted != NO_GRANT:
                    choices = int(step.nrq_before[granted])
                    tie_depth = (granted - step.rr_row) % self.n
                else:
                    choices = tie_depth = -1
                if tracer is not None:
                    tracer.emit(
                        ev.sched_step(
                            slot, step.output, step.rr_row, granted,
                            step.rr_won, choices, tie_depth,
                        )
                    )
                    if step.rr_won:
                        tracer.emit(ev.rr_override(slot, granted, step.output))
                if metrics is not None and granted != NO_GRANT:
                    self._m_choices.observe(choices)
                    self._m_tie_depth.observe(tie_depth)
                    if step.rr_won:
                        self._m_rr.inc()
        elif trace and isinstance(trace[0], IterationTrace):
            # Distributed LCF: one record per request/grant/accept round.
            for index, it in enumerate(trace):
                if tracer is not None:
                    tracer.emit(
                        ev.iteration(
                            slot,
                            index,
                            int(it.grants.sum()),
                            len(it.accepts),
                            requests=int(it.requests.sum()),
                        )
                    )
                if metrics is not None:
                    for i, _ in it.accepts:
                        self._m_choices.observe(int(it.nrq[i]))
            if self._pending_rr is not None:
                rr_i, rr_j = self._pending_rr
                if tracer is not None:
                    tracer.emit(ev.rr_override(slot, rr_i, rr_j))
                if metrics is not None:
                    self._m_rr.inc()

        matching_size = int(np.count_nonzero(schedule != NO_GRANT))
        if tracer is not None:
            voq = [int(x) for x in self.voqs.occupancy.sum(axis=1)]
            tracer.emit(ev.slot_summary(slot, matching_size, request_total, voq))
        if metrics is not None:
            self._m_slots.inc()
            self._m_grants.inc(matching_size)
            self._m_matching.observe(matching_size)

    def _record_forward(self, slot: int, input: int, output: int, delay: int) -> None:
        if self.tracer is not None:
            self.tracer.emit(ev.forward(slot, input, output, delay))
        if self.metrics is not None:
            self._m_forwarded.inc()
            self.rate_estimator.observe(input, output, slot)
            self.delay_quantiles.add(delay)
            self._live_slot = slot

    def _collect_live(self) -> None:
        """Refresh the derived live-telemetry gauges (collector hook).

        Runs on every export — ``MetricsRegistry.snapshot()``, the
        OpenMetrics/JSON renderers, the scrape endpoint — never on the
        per-slot path.
        """
        metrics = self.metrics
        at = self._live_slot
        gauge = metrics.gauge
        estimator = self.rate_estimator
        matrix = estimator.matrix(at)
        for i in range(self.n):
            for j in range(self.n):
                gauge(f"rate_in{i}_out{j}").set(float(matrix[i, j]))
        rows = matrix.sum(axis=1)
        cols = matrix.sum(axis=0)
        for i in range(self.n):
            gauge(f"rate_input_{i}").set(float(rows[i]))
            gauge(f"rate_output_{i}").set(float(cols[i]))
        gauge("rate_total").set(float(matrix.sum()))
        for q, value in self.delay_quantiles.values().items():
            gauge(f"delay_p{q * 100:g}".replace(".", "_")).set(value)
        gauge("queued_total").set(self.total_queued())
        if self.injector is not None:
            gauge("ports_down_input").set(int(self._down_in_prev.sum()))
            gauge("ports_down_output").set(int(self._down_out_prev.sum()))
