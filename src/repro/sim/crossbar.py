"""The VOQ input-queued crossbar switch (Figure 11 / Figure 1).

Per-slot event order:

1. **Generation** — the traffic pattern's arrivals enter the per-input
   packet queues (PQ); a full PQ drops the packet.
2. **Injection** — each input link carries at most one packet per slot
   from the PQ head into its VOQ; a full VOQ blocks the PQ head (the
   PQ is FIFO, so this is deliberate head-of-line blocking *upstream*
   of the VOQs, exactly the Figure 11 structure).
3. **Scheduling** — the scheduler computes a matching over the
   occupied-VOQ request matrix.
4. **Forwarding** — matched VOQ heads traverse the fabric and depart;
   with no output buffering, departure is in the same slot.

Latency of a packet = departure slot − generation slot + 1.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Scheduler
from repro.sim.config import SimConfig
from repro.sim.metrics import OnlineStats, ServiceMatrix
from repro.sim.queues import PacketQueue, VOQSet
from repro.traffic.base import NO_ARRIVAL
from repro.types import NO_GRANT


class InputQueuedSwitch:
    """VOQ crossbar switch driven by any :class:`Scheduler`."""

    def __init__(
        self,
        config: SimConfig,
        scheduler: Scheduler,
        collect_service: bool = False,
        collect_latencies: bool = False,
    ):
        if scheduler.n != config.n_ports:
            raise ValueError(
                f"scheduler is for n={scheduler.n}, config has {config.n_ports} ports"
            )
        self.config = config
        self.scheduler = scheduler
        n = config.n_ports
        self.pqs = [PacketQueue(config.pq_capacity) for _ in range(n)]
        self.voqs = VOQSet(n, config.voq_capacity)

        self.latency = OnlineStats()
        self.offered = 0  # packets generated during measurement
        self.forwarded = 0  # packets departed during measurement
        self.measuring = False
        self.service = ServiceMatrix(n) if collect_service else None
        self.latency_samples: list[int] | None = [] if collect_latencies else None

    @property
    def n(self) -> int:
        return self.config.n_ports

    def total_queued(self) -> int:
        """Packets currently buffered anywhere in the switch."""
        return sum(len(pq) for pq in self.pqs) + self.voqs.total_queued()

    @property
    def dropped(self) -> int:
        """Packets dropped at full PQs since construction."""
        return sum(pq.dropped for pq in self.pqs)

    def step(self, slot: int, arrivals: np.ndarray) -> np.ndarray:
        """Advance one time slot; returns the schedule that was applied."""
        # 1. Generation into PQs.
        for i in range(self.n):
            dst = arrivals[i]
            if dst != NO_ARRIVAL:
                if self.measuring:
                    self.offered += 1
                self.pqs[i].push(int(dst), slot)

        # 2. Injection: one packet per input link per slot, head blocking.
        for i, pq in enumerate(self.pqs):
            head = pq.head()
            if head is not None and self.voqs.has_space(i, head[0]):
                dst, t_generated = pq.pop()
                self.voqs.push(i, dst, t_generated)

        # 3. Scheduling. Weight-based schedulers (LQF/OCF) receive the
        #    state their priority rule ranks by; everyone else sees the
        #    boolean request matrix.
        weight_kind = getattr(self.scheduler, "weight_kind", None)
        if weight_kind == "occupancy":
            schedule = self.scheduler.schedule_weighted(self.voqs.occupancy)
        elif weight_kind == "hol_age":
            heads = self.voqs.head_timestamps()
            ages = np.where(heads >= 0, slot - heads + 1, 0)
            schedule = self.scheduler.schedule_weighted(ages)
        else:
            schedule = self.scheduler.schedule(self.voqs.request_matrix())

        # 4. Forwarding.
        for i in range(self.n):
            j = schedule[i]
            if j == NO_GRANT:
                continue
            t_generated = self.voqs.pop(i, int(j))
            if self.measuring:
                self.forwarded += 1
                delay = slot - t_generated + 1
                self.latency.add(delay)
                if self.latency_samples is not None:
                    self.latency_samples.append(delay)
        if self.measuring and self.service is not None:
            self.service.record(schedule)
        return schedule
