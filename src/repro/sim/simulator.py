"""Simulation driver: builds the right switch for a scheduler name, runs
warmup + measurement, and packages the statistics.

This is the function behind every Figure 12 data point::

    result = run_simulation(SimConfig(), "lcf_central", load=0.8)
    print(result.mean_latency)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.baselines.registry import make_scheduler
from repro.fastpath.registry import make_fast_scheduler
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.sim.admission import make_admission
from repro.sim.config import SimConfig
from repro.sim.crossbar import InputQueuedSwitch
from repro.sim.fifo_switch import FIFOSwitch
from repro.sim.metrics import latency_percentiles
from repro.sim.outbuf import OutputBufferedSwitch
from repro.traffic.base import TrafficPattern, make_traffic

#: Slots per driver block — large enough to amortise per-block overhead,
#: small enough that a block's arrival vectors stay cache-resident.
_SLOT_BLOCK = 64


@dataclass
class SimResult:
    """Statistics for one (scheduler, load) simulation point."""

    scheduler: str
    load: float
    config: SimConfig
    mean_latency: float
    std_latency: float
    min_latency: float
    max_latency: float
    offered: int
    forwarded: int
    dropped: int
    #: Packets forwarded per output per slot over the measurement window.
    throughput: float
    #: Latency percentiles {50: ..., 90: ..., 99: ...} when collected.
    percentiles: dict[float, float] = field(default_factory=dict)
    #: Per-pair grant counts when collected (None otherwise).
    service_counts: np.ndarray | None = None
    #: Arrivals discarded by admission control (0 when none attached).
    shed: int = 0

    @property
    def loss_rate(self) -> float:
        """Fraction of offered packets dropped during measurement."""
        return self.dropped / self.offered if self.offered else 0.0

    def relative_to(self, reference: "SimResult") -> float:
        """Latency relative to a reference result (the Figure 12b transform)."""
        if not reference.mean_latency or math.isnan(reference.mean_latency):
            return math.nan
        return self.mean_latency / reference.mean_latency

    def row(self) -> dict[str, float | str | int]:
        """Flat dict for CSV emission.

        Includes ``loss_rate`` and one ``p<q>`` column per collected
        percentile (e.g. ``p50``/``p90``/``p99``), matching what
        ``docs/API.md`` documents for the Figure 12 exports.
        """
        row: dict[str, float | str | int] = {
            "scheduler": self.scheduler,
            "load": self.load,
            "mean_latency": self.mean_latency,
            "std_latency": self.std_latency,
            "max_latency": self.max_latency,
            "throughput": self.throughput,
            "offered": self.offered,
            "forwarded": self.forwarded,
            "dropped": self.dropped,
            "shed": self.shed,
            "loss_rate": self.loss_rate,
        }
        for percentile in sorted(self.percentiles):
            row[f"p{percentile:g}"] = self.percentiles[percentile]
        return row


def build_switch(
    config: SimConfig,
    scheduler_name: str,
    collect_service: bool = False,
    collect_latencies: bool = False,
    seed: int = 0,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    injector: FaultInjector | None = None,
    adapter=None,
    fast: bool = False,
    admission=None,
):
    """Instantiate the switch model matching a registry scheduler name.

    ``tracer``/``metrics`` instrument the VOQ crossbar; the dedicated
    ``fifo`` and ``outbuf`` switch models have no slot pipeline to
    trace, so instrumentation is ignored for them.

    ``injector`` attaches a fault-injection layer: topology faults are
    enforced by the crossbar, and message-loss faults swap the scheduler
    for its :mod:`repro.faults.channel` degraded-mode counterpart. The
    dedicated switch models have neither a control plane nor per-port
    request paths, so faults there are a configuration error rather than
    a silently perfect run.

    ``adapter`` attaches a fault-reaction layer (:mod:`repro.adapt`
    :class:`~repro.adapt.adapter.SchedulingAdapter`), switching the
    crossbar from the informed stance to fault-blind scheduling; like
    faults it is rejected for the dedicated switch models.

    ``fast=True`` selects the :mod:`repro.fastpath` bitmask kernel for
    the scheduler when one exists (bit-identical results, several times
    the slot rate) and lets the crossbar take its uninstrumented fast
    loop; names without a fast kernel fall back to the reference
    implementation, so the flag is always safe.
    """
    if scheduler_name in ("outbuf", "fifo"):
        if injector is not None:
            raise ValueError(
                f"fault injection is not supported by the dedicated "
                f"{scheduler_name!r} switch model"
            )
        if adapter is not None:
            raise ValueError(
                f"adaptive scheduling is not supported by the dedicated "
                f"{scheduler_name!r} switch model"
            )
        if admission is not None:
            raise ValueError(
                f"admission control is not supported by the dedicated "
                f"{scheduler_name!r} switch model"
            )
        if scheduler_name == "outbuf":
            return OutputBufferedSwitch(config, collect_latencies=collect_latencies)
        return FIFOSwitch(config, collect_latencies=collect_latencies)
    if injector is not None and injector.has_message_faults:
        from repro.faults.channel import make_lossy_scheduler

        scheduler = make_lossy_scheduler(
            scheduler_name,
            config.n_ports,
            injector,
            iterations=config.iterations,
            seed=seed,
            fast=fast,
        )
    elif fast:
        scheduler = make_fast_scheduler(
            scheduler_name, config.n_ports, iterations=config.iterations, seed=seed
        )
    else:
        scheduler = make_scheduler(
            scheduler_name, config.n_ports, iterations=config.iterations, seed=seed
        )
    return InputQueuedSwitch(
        config,
        scheduler,
        collect_service=collect_service,
        collect_latencies=collect_latencies,
        tracer=tracer,
        metrics=metrics,
        injector=injector,
        adapter=adapter,
        admission=admission,
    )


def _drive(
    config: SimConfig,
    switch,
    pattern: TrafficPattern,
    exporter,
    start_slot: int = 0,
    stop_slot: int | None = None,
    checkpoint_hook=None,
    checkpoint_every: int | None = None,
) -> int:
    """Run slots ``start_slot .. stop_slot-1`` through the switch.

    Slots are driven in blocks (split at the warmup boundary so the
    measuring flag is constant within a block): the crossbar's
    ``run_slots`` amortises per-slot Python dispatch the same way
    batched traffic generators amortise arrivals. The arrival vectors
    are still drawn one slot at a time, so the pattern's sample path —
    and therefore every statistic — is identical to per-slot stepping.

    Blocks are additionally capped at ``checkpoint_every`` multiples so
    ``checkpoint_hook(slot)`` always observes a clean slot boundary:
    slots ``0..slot-1`` fully executed, nothing in flight. The hook
    also fires when the drive pauses early at ``stop_slot``; it never
    fires at ``total_slots`` (a finished run has nothing to resume).

    Returns the next slot to execute (== ``stop_slot``).
    """
    run_block = getattr(switch, "run_slots", None)
    stop = config.total_slots if stop_slot is None else stop_slot
    slot = start_slot
    while slot < stop:
        if slot == config.warmup_slots:
            switch.measuring = True
        end = min(slot + _SLOT_BLOCK, stop)
        if slot < config.warmup_slots < end:
            end = config.warmup_slots
        if checkpoint_every is not None:
            boundary = (slot // checkpoint_every + 1) * checkpoint_every
            if slot < boundary < end:
                end = boundary
        block = [pattern.arrivals() for _ in range(end - slot)]
        if run_block is not None:
            run_block(slot, block)
        else:
            # Dedicated switch models (fifo/outbuf) step one slot at a time.
            for offset, arrivals in enumerate(block):
                switch.step(slot + offset, arrivals)
        slot = end
        if exporter is not None:
            exporter.tick(slot - 1)
        if checkpoint_hook is not None and slot < config.total_slots:
            at_cadence = checkpoint_every is not None and slot % checkpoint_every == 0
            if at_cadence or slot == stop:
                checkpoint_hook(slot)
    return slot


def _package_result(
    config: SimConfig,
    scheduler_name: str,
    load: float,
    switch,
    collect_percentiles: bool,
) -> SimResult:
    """Package a driven switch's statistics into a :class:`SimResult`."""
    stats = switch.latency
    percentiles = (
        latency_percentiles(np.asarray(switch.latency_samples))
        if collect_percentiles
        else {}
    )
    service = getattr(switch, "service", None)
    admission = getattr(switch, "admission", None)
    # A warmup-only run (measure_slots=0) measures nothing: throughput
    # is undefined, not a division error.
    port_slots = config.n_ports * config.measure_slots
    return SimResult(
        scheduler=scheduler_name,
        load=load,
        config=config,
        mean_latency=stats.mean,
        std_latency=stats.std,
        min_latency=stats.min if stats.count else math.nan,
        max_latency=stats.max if stats.count else math.nan,
        offered=switch.offered,
        forwarded=switch.forwarded,
        dropped=switch.dropped,
        throughput=switch.forwarded / port_slots if port_slots else math.nan,
        percentiles=percentiles,
        service_counts=service.counts.copy() if service is not None else None,
        shed=admission.shed_packets if admission is not None else 0,
    )


def _drive_and_package(
    *,
    config: SimConfig,
    scheduler_name: str,
    load: float,
    switch,
    pattern: TrafficPattern,
    exporter,
    metrics,
    collect_percentiles: bool,
    start_slot: int,
    run_spec: dict | None,
    checkpoint_path,
    checkpoint_every: int | None,
    stop_at_slot: int | None,
) -> SimResult:
    """Shared back half of :func:`run_simulation` and checkpoint resume.

    Drives the remaining slots (checkpointing along the way when
    enabled), writes the final exporter snapshot only if the run
    actually completed, and packages the statistics. A run paused at
    ``stop_at_slot`` returns its statistics *so far* — the checkpoint
    file, not the partial result, is the authoritative continuation.
    """
    stop = (
        config.total_slots
        if stop_at_slot is None
        else min(int(stop_at_slot), config.total_slots)
    )
    hook = None
    if checkpoint_path is not None:
        from repro.checkpoint.core import capture_payload
        from repro.checkpoint.format import save_checkpoint

        def hook(slot: int) -> None:
            save_checkpoint(
                checkpoint_path,
                capture_payload(run_spec, slot, pattern, switch, metrics, exporter),
            )

    slot = _drive(
        config,
        switch,
        pattern,
        exporter,
        start_slot=start_slot,
        stop_slot=stop,
        checkpoint_hook=hook,
        checkpoint_every=checkpoint_every,
    )
    if exporter is not None and slot >= config.total_slots and config.total_slots:
        exporter.write(config.total_slots - 1)
    return _package_result(config, scheduler_name, load, switch, collect_percentiles)


def run_simulation(
    config: SimConfig,
    scheduler_name: str,
    load: float,
    traffic: str | TrafficPattern = "bernoulli",
    traffic_kwargs: dict | None = None,
    collect_service: bool = False,
    collect_percentiles: bool = False,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    faults: FaultPlan | dict | tuple | None = None,
    adapter=None,
    fast: bool = False,
    exporter=None,
    admission=None,
    checkpoint_path=None,
    checkpoint_every: int | None = None,
    stop_at_slot: int | None = None,
) -> SimResult:
    """Simulate one (scheduler, load) point of the Figure 12 grid.

    ``traffic`` is a registry name (default the paper's uniform
    Bernoulli) or an already-constructed pattern — in the latter case
    ``load`` is informational and the pattern's own state is used.

    ``tracer`` and ``metrics`` attach the :mod:`repro.obs`
    instrumentation to the switch (crossbar schedulers only; see
    :func:`build_switch`). Statistics are unaffected either way — the
    tracer only *observes* the run.

    ``faults`` injects failures: a :class:`repro.faults.FaultPlan`, or
    its ``to_spec()``/dict form as carried by sweep points. The fault
    randomness is keyed by ``config.seed``, so replicates see different
    concrete failures the same way they see different traffic. A plan
    with nothing in it resolves to no injector at all — bit-identical
    to a fault-free run (property-tested).

    ``adapter`` selects the fault stance (:mod:`repro.adapt`): an
    adapter instance, an :class:`~repro.adapt.AdaptConfig`, or the
    dict/spec wire form resolved by
    :func:`~repro.adapt.adapter.make_adapter` (``policy`` key picks
    ``"adaptive"`` or ``"oblivious"``; empty/None means the informed
    default). The adapter is reset before the run so a reused instance
    cannot leak learned state across simulations.

    ``fast`` selects the :mod:`repro.fastpath` layer (see
    :func:`build_switch`). It is an execution detail, not part of the
    experiment definition: results are bit-identical either way, which
    is why sweep cache keys do not include it.

    ``exporter`` attaches a :class:`repro.obs.serve.SnapshotExporter`:
    its ``tick`` runs at driver block boundaries (every ``_SLOT_BLOCK``
    slots at most) and a final snapshot is written when the run ends.
    When no ``metrics`` registry is passed the exporter's own registry
    is attached to the switch, so ``run_simulation(...,
    exporter=SnapshotExporter(MetricsRegistry(), path))`` is all a soak
    run needs. A disabled exporter resolves to ``None`` here — same
    zero-overhead contract as ``effective_tracer``.

    ``admission`` attaches threshold load shedding
    (:mod:`repro.sim.admission`): an
    :class:`~repro.sim.admission.AdmissionController`, a ``(low,
    high)`` watermark pair, or its dict wire form. Crossbar schedulers
    only, like faults and adapters.

    ``checkpoint_path`` enables checkpoint/restore
    (:mod:`repro.checkpoint`): the run's complete state is saved there
    atomically every ``checkpoint_every`` slots, and — when
    ``stop_at_slot`` is set — once more when the run pauses at that
    slot. A paused run returns its statistics so far;
    :func:`repro.checkpoint.resume_simulation` continues it
    bit-identically. Checkpointing requires a registry ``traffic``
    name (an already-built pattern instance cannot be rebuilt from the
    file).
    """
    from repro.obs.serve import effective_exporter

    if checkpoint_path is None and (
        checkpoint_every is not None or stop_at_slot is not None
    ):
        raise ValueError(
            "checkpoint_every/stop_at_slot need a checkpoint_path to save to"
        )
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if stop_at_slot is not None and stop_at_slot < 0:
        raise ValueError(f"stop_at_slot must be >= 0, got {stop_at_slot}")
    if checkpoint_path is not None and isinstance(traffic, TrafficPattern):
        raise ValueError(
            "checkpointing requires a registry traffic name; a pattern "
            "instance cannot be rebuilt from the checkpoint file"
        )

    exporter = effective_exporter(exporter)
    if exporter is not None and metrics is None:
        metrics = exporter.registry

    if isinstance(traffic, TrafficPattern):
        pattern = traffic
    else:
        pattern = make_traffic(
            traffic, config.n_ports, load, seed=config.seed, **(traffic_kwargs or {})
        )

    plan = None
    injector = None
    if faults is not None:
        plan = faults if isinstance(faults, FaultPlan) else FaultPlan.from_spec(faults)
        if not plan.is_null:
            injector = FaultInjector(plan, config.n_ports, seed=config.seed)

    if adapter is not None:
        from repro.adapt.adapter import make_adapter

        adapter = make_adapter(adapter)
        if adapter is not None:
            adapter.reset()

    admission = make_admission(admission)

    switch = build_switch(
        config,
        scheduler_name,
        collect_service=collect_service,
        collect_latencies=collect_percentiles,
        seed=config.seed,
        tracer=tracer,
        metrics=metrics,
        injector=injector,
        adapter=adapter,
        fast=fast,
        admission=admission,
    )

    run_spec = None
    if checkpoint_path is not None:
        from repro.checkpoint.core import make_run_spec

        run_spec = make_run_spec(
            config=config,
            scheduler=scheduler_name,
            load=load,
            traffic=traffic,
            traffic_kwargs=traffic_kwargs,
            collect_service=collect_service,
            collect_percentiles=collect_percentiles,
            fast=fast,
            plan=plan if injector is not None else None,
            adapter=adapter,
            admission=admission,
            has_metrics=metrics is not None,
            checkpoint_every=checkpoint_every,
        )

    return _drive_and_package(
        config=config,
        scheduler_name=scheduler_name,
        load=load,
        switch=switch,
        pattern=pattern,
        exporter=exporter,
        metrics=metrics,
        collect_percentiles=collect_percentiles,
        start_slot=0,
        run_spec=run_spec,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        stop_at_slot=stop_at_slot,
    )
