"""Slot-synchronous multicast switch simulator.

Drives :class:`~repro.core.multicast.MulticastScheduler` with per-input
multicast queues: arrivals carry random fanout sets, the fabric copies
one cell per input to any number of outputs per slot, and a cell's
latency is measured at *completion* — when its last copy departs (the
user-visible metric for multicast).
"""

from __future__ import annotations

import numpy as np

from repro.core.multicast import MulticastCell, MulticastQueue, MulticastScheduler
from repro.sim.metrics import OnlineStats
from repro.types import NO_GRANT


class MulticastTraffic:
    """Bernoulli multicast cell arrivals with uniform random fanout.

    Each slot, each input generates a cell with probability ``load``;
    the fanout is a uniform random subset of the outputs with size drawn
    uniformly from ``[1, max_fanout]``.
    """

    def __init__(self, n: int, load: float, max_fanout: int | None = None, seed: int = 0):
        if not 0.0 <= load <= 1.0:
            raise ValueError(f"load must be in [0, 1], got {load}")
        self.n = n
        self.load = load
        self.max_fanout = max_fanout if max_fanout is not None else max(1, n // 4)
        if not 1 <= self.max_fanout <= n:
            raise ValueError(f"max_fanout must be in [1, {n}]")
        self.rng = np.random.default_rng(seed)

    def arrivals(self, slot: int) -> list[MulticastCell | None]:
        cells: list[MulticastCell | None] = []
        for i in range(self.n):
            if self.rng.random() < self.load:
                size = int(self.rng.integers(1, self.max_fanout + 1))
                fanout = set(
                    int(x) for x in self.rng.choice(self.n, size=size, replace=False)
                )
                cells.append(MulticastCell(i, fanout, slot))
            else:
                cells.append(None)
        return cells


class MulticastSwitch:
    """Input-queued multicast crossbar with fanout splitting."""

    def __init__(
        self,
        n: int,
        policy: str = "lcf",
        queue_capacity: int = 256,
        seed: int = 0,
    ):
        self.n = n
        self.scheduler = MulticastScheduler(n, policy=policy, seed=seed)
        self.queues = [MulticastQueue(queue_capacity) for _ in range(n)]

        self.completion_latency = OnlineStats()
        self.copies_delivered = 0
        self.cells_completed = 0
        self.cells_offered = 0
        self.measuring = False

    def total_queued(self) -> int:
        return sum(len(q) for q in self.queues)

    @property
    def dropped(self) -> int:
        return sum(q.dropped for q in self.queues)

    def step(self, slot: int, arrivals: list[MulticastCell | None]) -> np.ndarray:
        # 1. Arrivals.
        for i, cell in enumerate(arrivals):
            if cell is not None:
                if self.measuring:
                    self.cells_offered += 1
                self.queues[i].push(cell)

        # 2. Scheduling over the head cells.
        heads = [q.head() for q in self.queues]
        assignment = self.scheduler.schedule(heads)

        # 3. Copy delivery (fanout splitting) and completion.
        for j in range(self.n):
            i = assignment[j]
            if i == NO_GRANT:
                continue
            cell = heads[i]
            cell.delivered.add(j)
            if self.measuring:
                self.copies_delivered += 1
        for queue in self.queues:
            done = queue.pop_if_complete()
            if done is not None and self.measuring:
                self.cells_completed += 1
                self.completion_latency.add(slot - done.t_generated + 1)
        return assignment


def run_multicast(
    n: int = 16,
    load: float = 0.3,
    policy: str = "lcf",
    max_fanout: int | None = None,
    warmup_slots: int = 500,
    measure_slots: int = 3000,
    seed: int = 1,
) -> MulticastSwitch:
    """Convenience driver mirroring :func:`repro.sim.simulator.run_simulation`."""
    switch = MulticastSwitch(n, policy=policy, seed=seed)
    traffic = MulticastTraffic(n, load, max_fanout=max_fanout, seed=seed)
    for slot in range(warmup_slots + measure_slots):
        if slot == warmup_slots:
            switch.measuring = True
        switch.step(slot, traffic.arrivals(slot))
    return switch
