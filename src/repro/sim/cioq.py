"""Combined input/output queued (CIOQ) switch with fabric speedup.

A standard extension of the paper's architecture space: run the fabric
(and scheduler) ``s`` times per external slot, buffering at the outputs.
Speedup 1 is the paper's input-queued switch with an extra output FIFO;
as ``s`` grows the behaviour converges to pure output queueing, because
input-side contention is resolved ``s`` times faster than the links
drain. The classic result that speedup 2 suffices to emulate output
queueing motivates the default comparison in
``benchmarks/bench_speedup.py``.

This quantifies the gap Figure 12 shows between ``lcf_central`` and
``outbuf``: it is exactly the gap a modest fabric speedup closes.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Scheduler
from repro.sim.config import SimConfig
from repro.sim.metrics import OnlineStats
from repro.sim.queues import OutputQueue, PacketQueue, VOQSet
from repro.traffic.base import NO_ARRIVAL
from repro.types import NO_GRANT


class CIOQSwitch:
    """Input-queued switch with fabric speedup and output buffers."""

    def __init__(self, config: SimConfig, scheduler: Scheduler, speedup: int = 2):
        if scheduler.n != config.n_ports:
            raise ValueError(
                f"scheduler is for n={scheduler.n}, config has {config.n_ports} ports"
            )
        if speedup < 1:
            raise ValueError(f"speedup must be >= 1, got {speedup}")
        self.config = config
        self.scheduler = scheduler
        self.speedup = speedup
        n = config.n_ports
        self.pqs = [PacketQueue(config.pq_capacity) for _ in range(n)]
        self.voqs = VOQSet(n, config.voq_capacity)
        self.out_queues = [OutputQueue(config.outbuf_capacity) for _ in range(n)]

        self.latency = OnlineStats()
        self.offered = 0
        self.forwarded = 0
        self.measuring = False

    @property
    def n(self) -> int:
        return self.config.n_ports

    def total_queued(self) -> int:
        return (
            sum(len(pq) for pq in self.pqs)
            + self.voqs.total_queued()
            + sum(len(q) for q in self.out_queues)
        )

    @property
    def dropped(self) -> int:
        return sum(pq.dropped for pq in self.pqs) + sum(
            q.dropped for q in self.out_queues
        )

    def step(self, slot: int, arrivals: np.ndarray) -> None:
        n = self.n
        # 1. Generation into PQs (external link rate: one per slot).
        for i in range(n):
            dst = arrivals[i]
            if dst != NO_ARRIVAL:
                if self.measuring:
                    self.offered += 1
                self.pqs[i].push(int(dst), slot)

        # 2. Injection (external link rate).
        for i, pq in enumerate(self.pqs):
            head = pq.head()
            if head is not None and self.voqs.has_space(i, head[0]):
                dst, t_generated = pq.pop()
                self.voqs.push(i, dst, t_generated)

        # 3. Fabric phases: s scheduling + transfer rounds per slot,
        #    inputs and outputs each moving at s packets/slot internally.
        for _ in range(self.speedup):
            requests = self.voqs.request_matrix()
            if not requests.any():
                break
            schedule = self.scheduler.schedule(requests)
            for i in range(n):
                j = schedule[i]
                if j != NO_GRANT:
                    t_generated = self.voqs.pop(i, int(j))
                    self.out_queues[int(j)].push(t_generated)

        # 4. Output links transmit one packet per external slot.
        for queue in self.out_queues:
            t_generated = queue.pop()
            if t_generated is None:
                continue
            if self.measuring:
                self.forwarded += 1
                self.latency.add(slot - t_generated + 1)
