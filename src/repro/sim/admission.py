"""Threshold-based admission control: shed load before queues overflow.

The sfctss exemplar's ``admission_control_threshold_low/high`` knob
pair, applied to the Figure 11 switch: when the *total* number of
packets buffered anywhere in the switch (packet queues plus VOQs)
crosses ``high``, the controller starts shedding — every arrival is
discarded at the ingress, before it can enter a packet queue — and it
keeps shedding until occupancy drains back to ``low``. The hysteresis
band prevents the on/off flapping a single threshold would produce at
a sustained overload.

Why shed at all when the PQs already drop on overflow? Because a PQ
drop happens *after* 1000 packets of queueing delay have accumulated;
Cogill–Lall's maximal-matching analysis bounds queue lengths only in
the stable regime, and the paper's LCF latency results are measured
there. Admission control keeps a soak run inside that regime instead
of grinding through a saturated buffer.

Accounting: shed packets count toward ``offered`` (they were
generated) and toward :attr:`AdmissionController.shed_packets` /
the ``shed_packets`` counter; they are *not* PQ drops, emit
``admission_drop`` trace events rather than ``arrival``/``drop``, and
the ``admission_state`` gauge tracks the shedding flag (1 = shedding).

The controller is deliberately tiny, deterministic state (two bools
and two counters), so it checkpoints through the generic
:mod:`repro.checkpoint.state` capture like every other component.
"""

from __future__ import annotations

from repro.obs import events as ev

__all__ = ["AdmissionController", "make_admission"]


class AdmissionController:
    """Hysteresis load shedder over total switch occupancy.

    ``low``/``high`` are occupancy watermarks in packets (PQ + VOQ,
    switch-wide). Shedding turns on when occupancy reaches ``high``
    and off once it has drained to ``low`` or below.
    """

    def __init__(self, low: int, high: int):
        if low < 0:
            raise ValueError(f"low watermark must be >= 0, got {low}")
        if high < low:
            raise ValueError(
                f"need low <= high, got low={low} high={high}"
            )
        self.low = low
        self.high = high
        #: True while arrivals are being shed.
        self.shedding = False
        #: Arrivals discarded by admission control since construction.
        self.shed_packets = 0
        #: Shedding on/off flips (for hysteresis tests and reports).
        self.transitions = 0
        self.tracer = None
        self._m_shed = None
        self._m_state = None

    def bind(self, tracer=None, metrics=None) -> None:
        """Attach to a switch's resolved instrumentation."""
        self.tracer = tracer
        if metrics is not None:
            self._m_shed = metrics.counter("shed_packets")
            self._m_state = metrics.gauge("admission_state")
            self._m_state.set(int(self.shedding))

    def update(self, occupancy: int) -> None:
        """Re-evaluate the shedding flag against current occupancy.

        The switch calls this once per slot, before generation, so a
        slot's arrivals all see one consistent admission decision.
        """
        if self.shedding:
            if occupancy <= self.low:
                self.shedding = False
                self.transitions += 1
                if self._m_state is not None:
                    self._m_state.set(0)
        elif occupancy >= self.high:
            self.shedding = True
            self.transitions += 1
            if self._m_state is not None:
                self._m_state.set(1)

    def shed(self, slot: int, input: int, output: int) -> None:
        """Record one shed arrival (caller checked :attr:`shedding`)."""
        self.shed_packets += 1
        if self._m_shed is not None:
            self._m_shed.inc()
        if self.tracer is not None:
            self.tracer.emit(ev.admission_drop(slot, input, output))


def make_admission(spec) -> AdmissionController | None:
    """Resolve an admission spec to a controller (or ``None``).

    Accepts ``None`` (no admission control), an existing
    :class:`AdmissionController`, a ``(low, high)`` pair, or a dict
    with ``low``/``high`` keys — the wire form carried by checkpoints
    and CLI flags.
    """
    if spec is None:
        return None
    if isinstance(spec, AdmissionController):
        return spec
    if isinstance(spec, dict):
        return AdmissionController(int(spec["low"]), int(spec["high"]))
    low, high = spec
    return AdmissionController(int(low), int(high))
