"""Output-buffered reference switch — the paper's ``outbuf`` curve.

The performance upper bound of Figure 12: "packets are only delayed due
to contention for output link bandwidth, and not due to contention for
both internal bandwidth as well as output link bandwidth." The fabric
writes up to ``n`` packets into one output buffer per slot (memory write
bandwidth ``n*b``, which is exactly why this architecture does not scale
— Section 2); each output then transmits one packet per slot. Buffers
hold 256 entries (Section 6.3); overflow drops are counted.
"""

from __future__ import annotations

import numpy as np

from repro.sim.config import SimConfig
from repro.sim.metrics import OnlineStats
from repro.sim.queues import OutputQueue
from repro.traffic.base import NO_ARRIVAL


class OutputBufferedSwitch:
    """Ideal output-queued switch with finite output buffers."""

    def __init__(self, config: SimConfig, collect_latencies: bool = False):
        self.config = config
        n = config.n_ports
        self.queues = [OutputQueue(config.outbuf_capacity) for _ in range(n)]

        self.latency = OnlineStats()
        self.offered = 0
        self.forwarded = 0
        self.measuring = False
        self.latency_samples: list[int] | None = [] if collect_latencies else None

    @property
    def n(self) -> int:
        return self.config.n_ports

    def total_queued(self) -> int:
        return sum(len(q) for q in self.queues)

    @property
    def dropped(self) -> int:
        return sum(q.dropped for q in self.queues)

    def step(self, slot: int, arrivals: np.ndarray) -> np.ndarray:
        # 1. Fabric delivery: every arrival lands in its output buffer
        #    immediately (no input-side contention).
        for i in range(self.n):
            dst = arrivals[i]
            if dst != NO_ARRIVAL:
                if self.measuring:
                    self.offered += 1
                self.queues[int(dst)].push(slot)

        # 2. Transmission: each output link serves one packet per slot.
        served = np.full(self.n, -1, dtype=np.int64)
        for j, queue in enumerate(self.queues):
            t_generated = queue.pop()
            if t_generated is None:
                continue
            served[j] = t_generated
            if self.measuring:
                self.forwarded += 1
                delay = slot - t_generated + 1
                self.latency.add(delay)
                if self.latency_samples is not None:
                    self.latency_samples.append(delay)
        return served
