"""Packet representation.

The switch model uses fixed-size packets (Section 2), so a packet is
fully described by its endpoints and timestamps. The hot simulation
paths store bare generation timestamps in the queues for speed; the
:class:`Packet` object is the user-facing form used by traces, the Clint
substrate, and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

_packet_ids = count()


@dataclass(slots=True)
class Packet:
    """A fixed-size packet traversing the switch."""

    src: int
    dst: int
    #: Slot in which the packet was generated (entered the PQ).
    t_generated: int
    #: Slot in which the packet left the switch, or -1 while in flight.
    t_departed: int = -1
    #: Monotonic identifier, unique within a process.
    uid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def latency(self) -> int:
        """Queueing delay in packet time slots, inclusive of the
        transmission slot (a packet forwarded in its arrival slot has
        latency 1). Raises if the packet has not departed."""
        if self.t_departed < 0:
            raise ValueError(f"packet {self.uid} has not departed")
        return self.t_departed - self.t_generated + 1

    def depart(self, slot: int) -> None:
        """Mark the packet as forwarded in ``slot``."""
        if slot < self.t_generated:
            raise ValueError(
                f"departure slot {slot} precedes generation slot {self.t_generated}"
            )
        self.t_departed = slot
