"""Simulation configuration with the paper's Section 6.3 defaults.

"The following parameters were used: the switch has 16 ports; each VOQ
has 256 entries and the PQ has 1000 entries; it takes the iterative
schedulers pim, lcf_dist, lcf_dist_rr four iterations to calculate the
schedule; the output buffers of outbuf each contain 256 entries."
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class SimConfig:
    """Immutable simulation parameters (paper defaults)."""

    #: Switch port count (paper: 16).
    n_ports: int = 16
    #: Virtual-output-queue capacity, packets (paper: 256).
    voq_capacity: int = 256
    #: Packet-queue (initiator buffer) capacity, packets (paper: 1000).
    pq_capacity: int = 1000
    #: Output-buffer capacity for the ``outbuf`` model (paper: 256).
    outbuf_capacity: int = 256
    #: Iterations for pim / lcf_dist / lcf_dist_rr / islip (paper: 4).
    iterations: int = 4
    #: Slots simulated before statistics collection starts.
    warmup_slots: int = 2000
    #: Slots over which latency/throughput are measured. May be 0 for a
    #: warmup-only smoke run; statistics then come back as NaN.
    measure_slots: int = 20000
    #: Traffic RNG seed.
    seed: int = 1

    def __post_init__(self) -> None:
        if self.n_ports < 1:
            raise ValueError(f"n_ports must be >= 1, got {self.n_ports}")
        for field_name in ("voq_capacity", "pq_capacity", "outbuf_capacity"):
            if getattr(self, field_name) < 1:
                raise ValueError(f"{field_name} must be >= 1")
        if self.iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {self.iterations}")
        if self.warmup_slots < 0 or self.measure_slots < 0:
            raise ValueError("warmup_slots and measure_slots must be >= 0")

    @property
    def total_slots(self) -> int:
        """Warmup plus measurement window."""
        return self.warmup_slots + self.measure_slots

    def with_(self, **changes) -> "SimConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)


#: The exact Section 6.3 configuration (long run, for the full Figure 12
#: reproduction; benchmarks use shorter windows via ``with_``).
PAPER_CONFIG = SimConfig()
