"""Statistics collection for the simulator.

Latency is measured in packet time slots, inclusive of the transmission
slot: a packet forwarded in the slot it arrived has latency 1. The
fairness metrics quantify the Section 3 / Section 7 claims — Jain's
index for proportional fairness, and the per-pair service matrix for the
hard ``b/n^2`` lower-bound check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

# Re-exported so simulation code has one metrics namespace: the
# per-run statistics below plus the live instrument registry the
# observability layer records scheduler decisions into.
from repro.obs.metrics import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class OnlineStats:
    """Streaming mean/variance/min/max (Welford's algorithm).

    Numerically stable over millions of samples, mergeable across
    parallel shards — :mod:`repro.sweep` recombines per-replicate
    simulation statistics with :meth:`merge`.

    Examples
    --------
    >>> stats = OnlineStats()
    >>> for value in [2.0, 4.0, 6.0]:
    ...     stats.add(value)
    >>> stats.count, stats.mean, stats.min, stats.max
    (3, 4.0, 2.0, 6.0)
    >>> stats.variance  # sample variance, ddof=1
    4.0

    A fresh accumulator has no samples, so its moments are NaN and its
    extrema are the identity elements of min/max:

    >>> empty = OnlineStats()
    >>> math.isnan(empty.mean) and math.isnan(empty.variance)
    True
    >>> empty.min, empty.max
    (inf, -inf)
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two disjoint sample streams (Chan et al. parallel form).

        Returns a *new* accumulator equivalent to having streamed both
        inputs' samples through one instance (up to floating-point
        rounding in the merge order): counts add, the mean is the
        count-weighted mean, and the second moments combine through the
        pooled form ``m2 = m2_a + m2_b + delta² · n_a · n_b / n``
        with ``delta = mean_b − mean_a``.

        Empty shards are the identity: merging with a fresh
        ``OnlineStats`` changes nothing, and merging two empty shards
        yields an empty result (count 0, NaN mean/variance, ±inf
        extrema) — NaN never leaks from an empty side into a non-empty
        one.

        Examples
        --------
        >>> left, right, whole = OnlineStats(), OnlineStats(), OnlineStats()
        >>> for value in [1.0, 2.0, 3.0]:
        ...     left.add(value)
        >>> for value in [4.0, 5.0]:
        ...     right.add(value)
        >>> for value in [1.0, 2.0, 3.0, 4.0, 5.0]:
        ...     whole.add(value)
        >>> merged = left.merge(right)
        >>> merged.count, merged.mean, merged.min, merged.max
        (5, 3.0, 1.0, 5.0)
        >>> merged.variance == whole.variance
        True

        >>> solo = OnlineStats()
        >>> solo.add(7.5)
        >>> identity = solo.merge(OnlineStats())
        >>> identity.count, identity.mean, identity.min, identity.max
        (1, 7.5, 7.5, 7.5)
        >>> OnlineStats().merge(OnlineStats()).count
        0
        """
        merged = OnlineStats()
        merged.count = self.count + other.count
        if merged.count == 0:
            return merged
        delta = other.mean - self.mean if self.count and other.count else 0.0
        merged._mean = (
            (self._mean * self.count + other._mean * other.count) / merged.count
        )
        merged._m2 = (
            self._m2
            + other._m2
            + delta * delta * self.count * other.count / merged.count
        )
        merged.min = min(self.min, other.min)
        merged.max = max(self.max, other.max)
        return merged

    @property
    def mean(self) -> float:
        return self._mean if self.count else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (ddof=1); NaN with fewer than two samples."""
        return self._m2 / (self.count - 1) if self.count > 1 else math.nan

    @property
    def std(self) -> float:
        variance = self.variance
        return math.sqrt(variance) if variance == variance else math.nan

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"OnlineStats(count={self.count}, mean={self.mean:.4g})"


def jain_index(allocations: np.ndarray) -> float:
    """Jain's fairness index: 1.0 = perfectly equal, 1/k = maximally unfair.

    ``allocations`` are non-negative service amounts (e.g. packets
    forwarded per flow).

    Examples
    --------
    >>> jain_index([10, 10, 10, 10])
    1.0
    >>> jain_index([1, 0, 0, 0])
    0.25
    """
    x = np.asarray(allocations, dtype=float).ravel()
    if x.size == 0:
        return 1.0
    total = x.sum()
    if total == 0:
        return 1.0
    return float(total * total / (x.size * (x * x).sum()))


@dataclass
class ServiceMatrix:
    """Per-(input, output) grant counter over the measurement window.

    Feeds the fairness analysis: the LCF-RR schedulers must serve every
    continuously backlogged pair at least once per ``n^2`` cycles.
    """

    n: int
    counts: np.ndarray = field(default=None)  # type: ignore[assignment]
    slots: int = 0

    def __post_init__(self) -> None:
        if self.counts is None:
            self.counts = np.zeros((self.n, self.n), dtype=np.int64)

    def record(self, schedule: np.ndarray) -> None:
        """Count one slot's grants (``schedule[i] = j`` or -1)."""
        self.slots += 1
        for i, j in enumerate(schedule):
            if j >= 0:
                self.counts[i, j] += 1

    def rates(self) -> np.ndarray:
        """Per-pair service rate in grants per slot."""
        return self.counts / self.slots if self.slots else self.counts.astype(float)

    def min_pair_rate(self, active: np.ndarray | None = None) -> float:
        """Minimum service rate over (optionally masked) pairs."""
        rates = self.rates()
        if active is not None:
            rates = np.where(active, rates, np.inf)
        return float(rates.min())


def latency_percentiles(
    latencies: np.ndarray, percentiles: tuple[float, ...] = (50.0, 90.0, 99.0)
) -> dict[float, float]:
    """Percentiles of a latency sample array (empty -> NaNs)."""
    if len(latencies) == 0:
        return {p: math.nan for p in percentiles}
    values = np.percentile(latencies, percentiles)
    return {p: float(v) for p, v in zip(percentiles, values)}
