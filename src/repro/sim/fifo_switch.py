"""Single-FIFO input-queued switch — the paper's ``fifo`` configuration.

"This scheduler uses a single FIFO queue per input port (replacing
multiple VOQs)." The input buffer keeps the VOQ capacity (256) but loses
the per-output sorting, so a blocked head-of-line packet stalls
everything behind it — the Karol/Hluchyj/Morgan pathology the VOQ
architecture exists to avoid. The upstream PQ (1000 entries) is
unchanged from Figure 11.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.baselines.fifo import FIFOScheduler
from repro.sim.config import SimConfig
from repro.sim.metrics import OnlineStats
from repro.sim.queues import PacketQueue
from repro.traffic.base import NO_ARRIVAL
from repro.types import NO_GRANT


class FIFOSwitch:
    """Input-queued switch with one FIFO per input and RR arbitration."""

    def __init__(self, config: SimConfig, collect_latencies: bool = False):
        self.config = config
        n = config.n_ports
        self.scheduler = FIFOScheduler(n)
        self.pqs = [PacketQueue(config.pq_capacity) for _ in range(n)]
        self.fifos: list[deque[tuple[int, int]]] = [deque() for _ in range(n)]
        self.fifo_capacity = config.voq_capacity

        self.latency = OnlineStats()
        self.offered = 0
        self.forwarded = 0
        self.measuring = False
        self.latency_samples: list[int] | None = [] if collect_latencies else None

    @property
    def n(self) -> int:
        return self.config.n_ports

    def total_queued(self) -> int:
        return sum(len(pq) for pq in self.pqs) + sum(len(f) for f in self.fifos)

    @property
    def dropped(self) -> int:
        return sum(pq.dropped for pq in self.pqs)

    def step(self, slot: int, arrivals: np.ndarray) -> np.ndarray:
        n = self.n
        # 1. Generation into PQs.
        for i in range(n):
            dst = arrivals[i]
            if dst != NO_ARRIVAL:
                if self.measuring:
                    self.offered += 1
                self.pqs[i].push(int(dst), slot)

        # 2. Injection: one packet per slot from PQ into the input FIFO.
        for i, pq in enumerate(self.pqs):
            if pq.head() is not None and len(self.fifos[i]) < self.fifo_capacity:
                self.fifos[i].append(pq.pop())

        # 3. Head-of-line arbitration.
        hol = np.full(n, NO_GRANT, dtype=np.int64)
        for i, fifo in enumerate(self.fifos):
            if fifo:
                hol[i] = fifo[0][0]
        schedule = self.scheduler.schedule_hol(hol)

        # 4. Forwarding.
        for i in range(n):
            if schedule[i] == NO_GRANT:
                continue
            _, t_generated = self.fifos[i].popleft()
            if self.measuring:
                self.forwarded += 1
                delay = slot - t_generated + 1
                self.latency.add(delay)
                if self.latency_samples is not None:
                    self.latency_samples.append(delay)
        return schedule
