"""Version of the LCF reproduction package."""

__version__ = "1.0.0"
