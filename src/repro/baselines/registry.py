"""Name-based scheduler registry.

Maps the scheduler names used throughout the paper's evaluation
(Figure 12 legend) to factories, so the simulator, the sweep harness,
and the CLI can be driven by strings. ``fifo`` and ``outbuf`` are listed
for completeness but are *switch architectures* as much as schedulers:
the simulator dispatches them to the dedicated switch models.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.baselines.fifo import FIFOScheduler
from repro.baselines.islip import ISLIP
from repro.baselines.maximal_greedy import GreedyMaximal
from repro.baselines.pim import PIM
from repro.baselines.random_sched import RandomMaximal
from repro.baselines.wavefront import WrappedWaveFront
from repro.baselines.weighted import LQF, OCF
from repro.core.base import Scheduler
from repro.core.lcf_central import LCFCentral, LCFCentralRR
from repro.core.lcf_dist import LCFDistributed, LCFDistributedRR

#: The iterative schedulers honour the ``iterations`` keyword.
ITERATIVE_NAMES = frozenset({"pim", "lcf_dist", "lcf_dist_rr", "islip"})

#: Names that require a dedicated switch model rather than a VOQ crossbar.
SPECIAL_SWITCH_NAMES = frozenset({"fifo", "outbuf"})

_FACTORIES: dict[str, Callable[..., Scheduler]] = {
    "lcf_central": lambda n, **kw: LCFCentral(n),
    "lcf_central_rr": lambda n, **kw: LCFCentralRR(n),
    "lcf_dist": lambda n, iterations=4, **kw: LCFDistributed(n, iterations),
    "lcf_dist_rr": lambda n, iterations=4, **kw: LCFDistributedRR(n, iterations),
    "pim": lambda n, iterations=4, seed=0, **kw: PIM(n, iterations, seed),
    "islip": lambda n, iterations=4, **kw: ISLIP(n, iterations),
    "wfront": lambda n, **kw: WrappedWaveFront(n),
    "fifo": lambda n, **kw: FIFOScheduler(n),
    "greedy": lambda n, **kw: GreedyMaximal(n),
    "lqf": lambda n, **kw: LQF(n),
    "ocf": lambda n, **kw: OCF(n),
    "random": lambda n, seed=0, **kw: RandomMaximal(n, seed),
}

#: Figure 12 legend order, used by the reproduction harness.
PAPER_SCHEDULERS = (
    "lcf_central",
    "lcf_central_rr",
    "lcf_dist_rr",
    "lcf_dist",
    "pim",
    "islip",
    "wfront",
    "fifo",
    "outbuf",
)


def available_schedulers() -> tuple[str, ...]:
    """All registered crossbar scheduler names (excluding ``outbuf``)."""
    return tuple(sorted(_FACTORIES))


def make_scheduler(name: str, n: int, **kwargs) -> Scheduler:
    """Construct a scheduler by registry name.

    ``iterations`` and ``seed`` keywords are forwarded where meaningful
    and ignored otherwise, so sweep code can pass one kwargs dict for
    every scheduler.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {', '.join(available_schedulers())}"
        ) from None
    return factory(n, **kwargs)
