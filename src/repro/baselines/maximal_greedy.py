"""Greedy maximal matcher — a non-paper yardstick baseline.

Scans inputs in rotating order and greedily grants each input its first
(rotating) available requested output. Always produces a maximal
matching in one pass, with no priority intelligence at all. Useful in
ablations to isolate how much of LCF's advantage comes from the
least-choice rule versus mere maximality.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Scheduler
from repro.types import RequestMatrix, Schedule, empty_schedule


class GreedyMaximal(Scheduler):
    """Rotating greedy maximal matching."""

    name = "greedy"

    def __init__(self, n: int):
        super().__init__(n)
        self._offset = 0

    def reset(self) -> None:
        self._offset = 0

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        n = self.n
        schedule = empty_schedule(n)
        out_free = np.ones(n, dtype=bool)
        for k in range(n):
            i = (self._offset + k) % n
            available = requests[i] & out_free
            if available.any():
                # first available output in cyclic order from the offset
                order = (np.arange(n) - self._offset) % n
                j = int(np.argmin(np.where(available, order, n)))
                schedule[i] = j
                out_free[j] = False
        self._offset = (self._offset + 1) % n
        return schedule
