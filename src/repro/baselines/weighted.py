"""Weight-based schedulers: LQF and OCF (survey references [5][9]).

The LCF priority (fewest *choices* first) is one point in a family of
priority rules the input-queued switching literature explored. The two
classic alternatives — both appear in McKeown's thesis, the paper's
reference [9] — use per-VOQ weights instead of per-input choice counts:

* **LQF** (longest queue first): grant the requester whose VOQ for this
  output holds the most packets. Approximates the stability-optimal
  maximum-weight matching; queue lengths must be communicated, not just
  request bits.
* **OCF** (oldest cell first): grant the requester whose head-of-line
  packet for this output has waited longest. Bounds delay tails; needs
  timestamps.

Both are implemented in the same sequential rotating-output skeleton as
the central LCF scheduler, so the comparison isolates the priority rule
itself. They extend the :class:`~repro.core.base.Scheduler` API with
:meth:`WeightedScheduler.schedule_weighted`; the plain boolean
``schedule`` degrades to greedy maximal matching (all weights equal),
and the simulator feeds real weights when the scheduler asks for them
via :attr:`WeightedScheduler.weight_kind`.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Scheduler
from repro.types import NO_GRANT, RequestMatrix, Schedule, empty_schedule


class WeightedScheduler(Scheduler):
    """Base for schedulers that rank requests by a weight matrix.

    ``weight_kind`` declares what the weights mean, so the switch model
    knows what to supply: ``"occupancy"`` (VOQ lengths, for LQF) or
    ``"hol_age"`` (head-of-line packet ages, for OCF).
    """

    weight_kind: str = "occupancy"

    def __init__(self, n: int):
        super().__init__(n)
        # Independent row/column offsets, advanced like the central LCF
        # scheduler's (I, J) pair: with a single offset the tie-break
        # chain start would be constant per column (offset + step ≡
        # column mod n) and ties would never rotate.
        self._row_offset = 0
        self._col_offset = 0

    def reset(self) -> None:
        self._row_offset = 0
        self._col_offset = 0

    def schedule_weighted(self, weights: np.ndarray) -> Schedule:
        """Compute a schedule from a non-negative weight matrix.

        ``weights[i, j] > 0`` means input ``i`` requests output ``j``
        with the given priority weight; higher weights win. Outputs are
        allocated sequentially in rotating order, ties broken by the
        rotating chain — the same skeleton as the central LCF scheduler
        with ``argmax(weight)`` in place of ``argmin(nrq)``.
        """
        weights = np.asarray(weights)
        if weights.shape != (self.n, self.n):
            raise ValueError(
                f"weight matrix must be {self.n}x{self.n}, got {weights.shape}"
            )
        if (weights < 0).any():
            raise ValueError("weights must be non-negative")
        n = self.n
        schedule = empty_schedule(n)
        taken_input = np.zeros(n, dtype=bool)
        for step in range(n):
            col = (self._col_offset + step) % n
            contenders = (weights[:, col] > 0) & ~taken_input
            if not contenders.any():
                continue
            chain = (np.arange(n) - (self._row_offset + step)) % n
            # Highest weight first, earliest chain position on ties.
            key = np.where(contenders, weights[:, col] * n - chain, -1)
            winner = int(np.argmax(key))
            schedule[winner] = col
            taken_input[winner] = True
        self._row_offset = (self._row_offset + 1) % n
        if self._row_offset == 0:
            self._col_offset = (self._col_offset + 1) % n
        return schedule

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        """Boolean fallback: all requests weigh 1 (greedy maximal)."""
        return self.schedule_weighted(requests.astype(np.int64))


class LQF(WeightedScheduler):
    """Longest queue first — weights are VOQ occupancies."""

    name = "lqf"
    weight_kind = "occupancy"


class OCF(WeightedScheduler):
    """Oldest cell first — weights are head-of-line packet ages + 1
    (the +1 keeps a zero-age request distinguishable from no request)."""

    name = "ocf"
    weight_kind = "hol_age"
