"""Parallel Iterative Matching (Anderson, Owicki, Saxe, Thacker — the
paper's reference [1]).

The original DEC AN2 scheduler and the direct ancestor of the
distributed LCF scheduler: the iteration structure (request, grant,
accept over unmatched ports only) is identical, but *both* the grant and
the accept selections are uniformly random instead of least-choice
prioritised. Expected convergence to a maximal matching takes
``O(log n)`` iterations; the paper (and we) run 4 iterations for the
16-port simulations.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import IterativeScheduler
from repro.types import NO_GRANT, RequestMatrix, Schedule, empty_schedule


class PIM(IterativeScheduler):
    """Parallel iterative matcher with seeded, reproducible randomness."""

    name = "pim"

    def __init__(
        self,
        n: int,
        iterations: int = IterativeScheduler.DEFAULT_ITERATIONS,
        seed: int = 0,
    ):
        super().__init__(n, iterations)
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        """Rewind the random stream to the construction-time seed."""
        self._rng = np.random.default_rng(self.seed)

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        n = self.n
        schedule = empty_schedule(n)
        out_matched = np.zeros(n, dtype=bool)

        for _ in range(self.iterations):
            in_unmatched = schedule == NO_GRANT
            live = requests & in_unmatched[:, np.newaxis] & ~out_matched[np.newaxis, :]
            if not live.any():
                break

            # Grant step: each unmatched output picks uniformly among its
            # requesters.
            grants = np.zeros((n, n), dtype=bool)
            for j in np.flatnonzero(live.any(axis=0)):
                requesters = np.flatnonzero(live[:, j])
                grants[self._rng.choice(requesters), j] = True

            # Accept step: each input with grants picks uniformly.
            for i in np.flatnonzero(grants.any(axis=1)):
                offered = np.flatnonzero(grants[i])
                j = int(self._rng.choice(offered))
                schedule[i] = j
                out_matched[j] = True
        return schedule
