"""Random maximal matcher — a non-paper yardstick baseline.

Grants inputs in a fresh uniformly random order each cycle, each taking
a uniformly random available requested output. Equivalent to PIM run to
convergence with per-cycle randomisation; isolates the value of *any*
deterministic priority structure over pure chance.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Scheduler
from repro.types import RequestMatrix, Schedule, empty_schedule


class RandomMaximal(Scheduler):
    """Uniformly random maximal matching with seeded randomness."""

    name = "random"

    def __init__(self, n: int, seed: int = 0):
        super().__init__(n)
        self.seed = seed
        self._rng = np.random.default_rng(seed)

    def reset(self) -> None:
        self._rng = np.random.default_rng(self.seed)

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        n = self.n
        schedule = empty_schedule(n)
        out_free = np.ones(n, dtype=bool)
        for i in self._rng.permutation(n):
            available = np.flatnonzero(requests[i] & out_free)
            if available.size:
                j = int(self._rng.choice(available))
                schedule[i] = j
                out_free[j] = False
        return schedule
