"""The wrapped wave front arbiter (Tamir & Chi — the paper's reference [14]).

The arbiter is a regular ``n x n`` array of cells matching the crosspoint
structure of the switch. Scheduling sweeps ``n`` *wrapped diagonals*
(wavefronts) across the array: all cells on a diagonal have pairwise
distinct rows and columns, so they can decide simultaneously — a cell
grants iff its crosspoint is requested and neither its row (input) nor
its column (output) has been granted by an earlier wavefront.

Fairness comes from rotating which diagonal goes first: we advance the
starting diagonal by one every scheduling cycle, so every request matrix
position is on the highest-priority wavefront once every ``n`` cycles.
The result is always a maximal matching (every request has its cell
examined exactly once per cycle).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Scheduler
from repro.types import RequestMatrix, Schedule, empty_schedule


class WrappedWaveFront(Scheduler):
    """Wrapped wave front arbiter (``wfront`` in Figure 12)."""

    name = "wfront"

    def __init__(self, n: int):
        super().__init__(n)
        self._offset = 0  # index of the highest-priority diagonal

    def reset(self) -> None:
        self._offset = 0

    @property
    def offset(self) -> int:
        """Diagonal that sweeps first in the next scheduling cycle."""
        return self._offset

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        n = self.n
        schedule = empty_schedule(n)
        row_free = np.ones(n, dtype=bool)
        col_free = np.ones(n, dtype=bool)

        rows = np.arange(n)
        for wave in range(n):
            diag = (self._offset + wave) % n
            cols = (diag - rows) % n  # cells with (i + j) mod n == diag
            grant = requests[rows, cols] & row_free & col_free[cols]
            granted_rows = rows[grant]
            schedule[granted_rows] = cols[grant]
            row_free[granted_rows] = False
            col_free[cols[grant]] = False

        self._offset = (self._offset + 1) % n
        return schedule
