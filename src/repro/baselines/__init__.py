"""Baseline schedulers the paper evaluates against (Section 6.3).

* :class:`~repro.baselines.pim.PIM` — parallel iterative matching
  (Anderson et al. [1]); random grant/accept selections.
* :class:`~repro.baselines.islip.ISLIP` — iSLIP (McKeown [10]);
  rotating grant/accept pointers updated on first-iteration accepts.
* :class:`~repro.baselines.wavefront.WrappedWaveFront` — the wrapped
  wave front arbiter (Tamir & Chi [14]).
* :class:`~repro.baselines.fifo.FIFOScheduler` — single FIFO per input
  (head-of-line blocking reference).
* :class:`~repro.baselines.maximal_greedy.GreedyMaximal` and
  :class:`~repro.baselines.random_sched.RandomMaximal` — simple maximal
  matchers used as yardsticks in tests and ablations (not in the paper).

``outbuf`` — the output-buffered switch — is not a crossbar scheduler
and lives in :mod:`repro.sim.outbuf`.
"""

from repro.baselines.fifo import FIFOScheduler
from repro.baselines.islip import ISLIP
from repro.baselines.maximal_greedy import GreedyMaximal
from repro.baselines.pim import PIM
from repro.baselines.random_sched import RandomMaximal
from repro.baselines.registry import available_schedulers, make_scheduler
from repro.baselines.wavefront import WrappedWaveFront
from repro.baselines.weighted import LQF, OCF, WeightedScheduler

__all__ = [
    "PIM",
    "ISLIP",
    "WrappedWaveFront",
    "FIFOScheduler",
    "GreedyMaximal",
    "LQF",
    "OCF",
    "WeightedScheduler",
    "RandomMaximal",
    "available_schedulers",
    "make_scheduler",
]
