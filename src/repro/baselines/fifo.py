"""FIFO input-queue scheduler (the paper's ``fifo`` baseline).

"This scheduler uses a single FIFO queue per input port (replacing
multiple VOQs). The scheduler serves the FIFO queues in a round-robin
fashion." (Section 6.3.)

Only the *head-of-line* packet of each input is eligible, so the
scheduler sees a HOL destination vector, not a full request matrix: when
several heads contend for the same output, one wins and the others are
blocked even if packets behind them target idle outputs — the classic
head-of-line blocking that caps throughput at ``2 - sqrt(2) ≈ 0.586``
for large ``n`` (Karol, Hluchyj & Morgan, reference [8]).

Round-robin service is implemented with a rotating input offset: each
output grants the contending input that comes first at or after the
offset, and the offset advances every scheduling cycle.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import Scheduler
from repro.types import NO_GRANT, RequestMatrix, Schedule, empty_schedule


class FIFOScheduler(Scheduler):
    """Round-robin arbitration among head-of-line packets."""

    name = "fifo"

    def __init__(self, n: int):
        super().__init__(n)
        self._offset = 0

    def reset(self) -> None:
        self._offset = 0

    def schedule_hol(self, hol: np.ndarray) -> Schedule:
        """Schedule from a head-of-line vector.

        ``hol[i]`` is the output requested by input ``i``'s head packet,
        or ``NO_GRANT`` if the input queue is empty.
        """
        hol = np.asarray(hol, dtype=np.int64)
        if hol.shape != (self.n,):
            raise ValueError(f"HOL vector must have shape ({self.n},), got {hol.shape}")
        n = self.n
        schedule = empty_schedule(n)
        # Rank inputs by cyclic distance from the round-robin offset; the
        # closest contender for each output wins.
        rank = (np.arange(n) - self._offset) % n
        order = np.argsort(rank)
        out_taken = np.zeros(n, dtype=bool)
        for i in order:
            j = hol[i]
            if j != NO_GRANT and not out_taken[j]:
                schedule[i] = j
                out_taken[j] = True
        self._offset = (self._offset + 1) % n
        return schedule

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        """Request-matrix API: rows must have at most one set bit (the HOL
        destination). Provided so the FIFO scheduler fits the common
        :class:`Scheduler` interface used by the registry and tests."""
        counts = requests.sum(axis=1)
        if np.any(counts > 1):
            raise ValueError(
                "fifo scheduler models a single FIFO per input: each row of "
                "the request matrix may contain at most one request"
            )
        hol = np.where(counts == 1, np.argmax(requests, axis=1), NO_GRANT)
        return self.schedule_hol(hol.astype(np.int64))
