"""The iSLIP scheduler (McKeown — the paper's reference [10]).

Iterative round-robin matching with "slip": per-output grant pointers
``g[j]`` and per-input accept pointers ``a[i]``.

Each iteration over the unmatched ports:

1. **Request** — unmatched inputs request all unmatched outputs they
   have packets for.
2. **Grant** — an output grants the requesting input that appears *next
   at or after* its pointer ``g[j]``.
3. **Accept** — an input accepts the granting output next at or after
   its pointer ``a[i]``.

Pointers advance *one beyond* the matched partner, and — the property
that distinguishes iSLIP from simple round-robin matching — **only for
matches made in the first iteration**. This is what desynchronises the
grant pointers and yields 100% throughput under saturated uniform
traffic (verified in ``tests/baselines/test_islip.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.base import IterativeScheduler
from repro.types import NO_GRANT, RequestMatrix, Schedule, empty_schedule


def _next_at_or_after(candidates: np.ndarray, start: int) -> int:
    """First set index of boolean ``candidates`` in cyclic order from ``start``."""
    n = len(candidates)
    order = (np.arange(n) - start) % n
    masked = np.where(candidates, order, n)
    winner = int(np.argmin(masked))
    if not candidates[winner]:
        raise ValueError("no candidate set")
    return winner


class ISLIP(IterativeScheduler):
    """iSLIP with the standard first-iteration pointer-update rule."""

    name = "islip"

    def __init__(self, n: int, iterations: int = IterativeScheduler.DEFAULT_ITERATIONS):
        super().__init__(n, iterations)
        self._grant_ptr = np.zeros(n, dtype=np.int64)
        self._accept_ptr = np.zeros(n, dtype=np.int64)

    def reset(self) -> None:
        self._grant_ptr[:] = 0
        self._accept_ptr[:] = 0

    @property
    def pointers(self) -> tuple[np.ndarray, np.ndarray]:
        """Copies of the (grant, accept) pointer arrays, for inspection."""
        return self._grant_ptr.copy(), self._accept_ptr.copy()

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        n = self.n
        schedule = empty_schedule(n)
        out_matched = np.zeros(n, dtype=bool)

        for iteration in range(self.iterations):
            in_unmatched = schedule == NO_GRANT
            live = requests & in_unmatched[:, np.newaxis] & ~out_matched[np.newaxis, :]
            if not live.any():
                break

            # Grant step.
            grants = np.zeros((n, n), dtype=bool)
            for j in np.flatnonzero(live.any(axis=0)):
                winner = _next_at_or_after(live[:, j], int(self._grant_ptr[j]))
                grants[winner, j] = True

            # Accept step.
            for i in np.flatnonzero(grants.any(axis=1)):
                j = _next_at_or_after(grants[i], int(self._accept_ptr[i]))
                schedule[i] = j
                out_matched[j] = True
                if iteration == 0:
                    # Pointer update only on first-iteration accepts
                    # (McKeown 1999, Section II-C): prevents starvation
                    # and desynchronises the pointers.
                    self._grant_ptr[j] = (i + 1) % n
                    self._accept_ptr[i] = (j + 1) % n
        return schedule
