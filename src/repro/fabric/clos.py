"""Three-stage Clos network (Clos 1953 — the paper's reference [2]).

A ``C(m, k, r)`` Clos network switches ``N = k*r`` ports through three
stages:

* ``r`` ingress switches, each ``k x m`` (one link to every middle
  switch);
* ``m`` middle switches, each ``r x r``;
* ``r`` egress switches, each ``m x k``.

Classic results:

* **rearrangeably non-blocking** iff ``m >= k`` — any (partial)
  permutation of the N ports can be routed, possibly re-assigning
  existing connections (Slepian–Duguid);
* **strictly non-blocking** iff ``m >= 2k - 1`` — new connections never
  require rearrangement (Clos's original theorem);
* crosspoint cost ``2*r*k*m + m*r^2``, which beats the crossbar's
  ``N^2`` for large ``N`` with ``m ~ k ~ sqrt(N)``.

Routing a schedule means assigning each connection a middle switch such
that no two connections from the same ingress switch — or to the same
egress switch — share one. That is edge colouring of the bipartite
ingress/egress demand multigraph with ``m`` colours. We implement the
Slepian–Duguid construction: pad the demand matrix until every row and
column sums to ``k`` (a ``k``-regular bipartite multigraph), then peel
``k`` perfect matchings with Hopcroft–Karp (König's theorem guarantees
they exist), one per middle switch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.matching.hopcroft_karp import hopcroft_karp
from repro.types import NO_GRANT, Schedule


@dataclass(frozen=True)
class ClosRouting:
    """A realised schedule: per-connection middle-stage assignment."""

    #: ``(input_port, output_port, middle_switch)`` per connection.
    assignments: tuple[tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        # middle_of is on the fabric simulator's per-packet path, so the
        # lookup must be O(1), not a scan over every connection.
        object.__setattr__(
            self,
            "_by_pair",
            {(i, j): middle for i, j, middle in self.assignments},
        )

    def middle_of(self, input_port: int, output_port: int) -> int | None:
        return self._by_pair.get((input_port, output_port))


class ClosNetwork:
    """A three-stage ``C(m, k, r)`` Clos network."""

    def __init__(self, m: int, k: int, r: int):
        if min(m, k, r) < 1:
            raise ValueError(f"m, k, r must all be >= 1, got {(m, k, r)}")
        self.m = m
        self.k = k
        self.r = r

    @property
    def n_ports(self) -> int:
        return self.k * self.r

    @property
    def crosspoints(self) -> int:
        """Total crosspoints: 2 r k m (outer stages) + m r^2 (middle)."""
        return 2 * self.r * self.k * self.m + self.m * self.r * self.r

    def is_rearrangeably_nonblocking(self) -> bool:
        return self.m >= self.k

    def is_strictly_nonblocking(self) -> bool:
        return self.m >= 2 * self.k - 1

    def ingress_of(self, port: int) -> int:
        """Which ingress switch a port hangs off."""
        return port // self.k

    def egress_of(self, port: int) -> int:
        return port // self.k

    # -- routing -----------------------------------------------------------

    def route(self, schedule: Schedule) -> ClosRouting:
        """Assign a middle switch to every connection of a schedule.

        Raises ``ValueError`` for conflicting schedules or when the
        network is too thin (``m < k``) to carry a workload that needs
        rearrangeable routing.
        """
        schedule = np.asarray(schedule, dtype=np.int64)
        if schedule.shape != (self.n_ports,):
            raise ValueError(
                f"schedule must have shape ({self.n_ports},), got {schedule.shape}"
            )
        connections = [
            (int(i), int(j)) for i, j in enumerate(schedule) if j != NO_GRANT
        ]
        outputs = [j for _, j in connections]
        if len(set(outputs)) != len(outputs):
            raise ValueError("schedule connects two inputs to one output")

        # Demand multigraph between ingress and egress switches.
        demand = np.zeros((self.r, self.r), dtype=np.int64)
        for i, j in connections:
            demand[self.ingress_of(i), self.egress_of(j)] += 1
        if demand.sum() == 0:
            return ClosRouting(())
        peak = max(int(demand.sum(axis=1).max()), int(demand.sum(axis=0).max()))
        if peak > self.m:
            raise ValueError(
                f"demand needs {peak} middle switches but the network has {self.m} "
                "(m >= k is required for rearrangeable non-blocking routing)"
            )

        colours = self._edge_colour(demand, peak)

        # Hand out the coloured ingress->egress slots to the concrete
        # connections (connections within one (ingress, egress) pair are
        # interchangeable).
        pools: dict[tuple[int, int], list[int]] = {}
        for colour, matching in enumerate(colours):
            for a, b in matching:
                pools.setdefault((a, b), []).append(colour)
        assignments = []
        for i, j in connections:
            middle = pools[(self.ingress_of(i), self.egress_of(j))].pop()
            assignments.append((i, j, middle))
        return ClosRouting(tuple(assignments))

    def _edge_colour(
        self, demand: np.ndarray, colours_needed: int
    ) -> list[list[tuple[int, int]]]:
        """Decompose the demand multigraph into ``colours_needed``
        matchings (Slepian–Duguid via padding + König)."""
        work = demand.copy()
        # Pad to a regular multigraph: every row and column sums to the
        # peak degree. Padding greedily always succeeds because the
        # total deficiency of rows equals that of columns.
        row_slack = colours_needed - work.sum(axis=1)
        col_slack = colours_needed - work.sum(axis=0)
        for a in range(self.r):
            for b in range(self.r):
                add = min(row_slack[a], col_slack[b])
                if add > 0:
                    work[a, b] += add
                    row_slack[a] -= add
                    col_slack[b] -= add
        assert not row_slack.any() and not col_slack.any()

        matchings: list[list[tuple[int, int]]] = []
        for _ in range(colours_needed):
            support = work > 0
            matching_vec = hopcroft_karp(support)
            pairs = [
                (int(a), int(b)) for a, b in enumerate(matching_vec) if b != NO_GRANT
            ]
            if len(pairs) != self.r:  # pragma: no cover - König guarantees this
                raise AssertionError("regular multigraph missing a perfect matching")
            for a, b in pairs:
                work[a, b] -= 1
            # Only the real (unpadded) demand becomes routed connections.
            matchings.append([(a, b) for a, b in pairs if demand[a, b] > 0])
            for a, b in pairs:
                if demand[a, b] > 0:
                    demand[a, b] -= 1
        return matchings

    def validate_routing(self, routing: ClosRouting) -> bool:
        """Check the fundamental Clos constraint: within one middle
        switch, at most one connection per ingress and per egress."""
        used_in: set[tuple[int, int]] = set()
        used_out: set[tuple[int, int]] = set()
        for i, j, middle in routing.assignments:
            key_in = (middle, self.ingress_of(i))
            key_out = (middle, self.egress_of(j))
            if key_in in used_in or key_out in used_out:
                return False
            used_in.add(key_in)
            used_out.add(key_out)
        return True


def square_clos(n_ports: int) -> ClosNetwork:
    """The classic cost-minimising square construction: ``k = r ≈
    sqrt(N)``, ``m = k`` (rearrangeably non-blocking)."""
    k = int(round(n_ports**0.5))
    while n_ports % k:
        k -= 1
    return ClosNetwork(m=k, k=k, r=n_ports // k)
