"""The crossbar fabric (paper Figure 1).

A full crosspoint matrix: any conflict-free schedule is realisable by
closing one crosspoint per granted (input, output) pair. The cost is
``n^2`` crosspoints — the number the Clos construction exists to beat
for large ``n``.
"""

from __future__ import annotations

import numpy as np

from repro.matching.verify import is_conflict_free
from repro.types import NO_GRANT, Schedule


class CrossbarFabric:
    """An ``n x n`` crossbar switch fabric."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"need at least one port, got n={n}")
        self.n = n

    @property
    def crosspoints(self) -> int:
        """Hardware cost in crosspoints."""
        return self.n * self.n

    def is_nonblocking(self) -> bool:
        """A crossbar is strictly non-blocking by construction."""
        return True

    def configure(self, schedule: Schedule) -> np.ndarray:
        """Close the crosspoints for a schedule.

        Returns the boolean crosspoint matrix; raises on conflicting or
        out-of-range schedules (the fabric cannot merge two inputs onto
        one output).
        """
        if schedule.shape != (self.n,):
            raise ValueError(
                f"schedule must have shape ({self.n},), got {schedule.shape}"
            )
        if not is_conflict_free(schedule):
            raise ValueError("schedule connects two inputs to one output")
        state = np.zeros((self.n, self.n), dtype=bool)
        for i, j in enumerate(schedule):
            if j == NO_GRANT:
                continue
            if not 0 <= j < self.n:
                raise ValueError(f"output {j} out of range")
            state[i, j] = True
        return state
