"""Fabric checkpoint/resume: per-shard snapshots at barrier slots.

The sharded engine advances in ``link_delay``-slot blocks, exchanging
boundary messages at each barrier — which makes the barrier the natural
(and only) checkpoint site: every shard's calendars are settled and the
complete in-flight state is exactly the per-shard snapshots plus the
undelivered boundary messages. A fabric checkpoint therefore captures

* one :meth:`~repro.fabric.sim.FabricShard.snapshot` per shard
  (switches, queues, RNG streams, routers, statistics, buffered trace
  events), and
* the inter-shard messages collected at the barrier but not yet fed
  into the receiving shards' calendars.

Same envelope, checksum, and bit-identity contract as simulation
checkpoints (`docs/CHECKPOINT.md`); the payload ``kind`` is
``"fabric"``. Checkpointing runs on the inline engines (``shards=1``
included); the process backend and live metrics/exporters are not
supported with checkpointing.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path

from repro.checkpoint.format import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.checkpoint.state import decode_value, encode_value
from repro.fabric.spec import FabricSpec
from repro.sim.config import SimConfig

__all__ = ["make_fabric_run_spec", "capture_fabric_payload", "resume_fabric"]


def _deep_tuple(value):
    if isinstance(value, list):
        return tuple(_deep_tuple(item) for item in value)
    return value


def _spec_to_wire(spec: FabricSpec) -> dict:
    return dataclasses.asdict(spec)


def _spec_from_wire(wire: dict) -> FabricSpec:
    wire = dict(wire)
    config = SimConfig(**wire.pop("config"))
    return FabricSpec(
        config=config,
        **{name: _deep_tuple(value) for name, value in wire.items()},
    )


def make_fabric_run_spec(
    *,
    spec: FabricSpec,
    shards: int,
    collect_percentiles: bool,
    collect_flows: bool,
    tracing: bool,
    fast: bool,
    checkpoint_every: int | None,
) -> dict:
    """The JSON recipe a fabric resume rebuilds its engines from."""
    return {
        "spec": _spec_to_wire(spec),
        "shards": shards,
        "collect_percentiles": collect_percentiles,
        "collect_flows": collect_flows,
        "tracing": tracing,
        "fast": fast,
        "checkpoint_every": checkpoint_every,
    }


def capture_fabric_payload(
    run_spec: dict,
    slot: int,
    engines: list,
    inbound_deliveries: list[list[tuple]],
    inbound_credits: list[list[tuple]],
) -> dict:
    """One barrier-slot capture of the whole fabric."""
    return {
        "kind": "fabric",
        "slot": slot,
        "run": run_spec,
        "state": {
            "shards": [engine.snapshot() for engine in engines],
            "inbound_deliveries": encode_value(inbound_deliveries),
            "inbound_credits": encode_value(inbound_credits),
        },
    }


def resume_fabric(
    path: str | Path,
    *,
    tracer=None,
    checkpoint_path: str | Path | None = None,
    checkpoint_every: int | None = None,
    stop_at_slot: int | None = None,
):
    """Rebuild a checkpointed fabric run and drive it to completion.

    Returns the same :class:`~repro.fabric.sim.FabricResult` the
    uninterrupted run would have produced. ``tracer`` receives the
    *full* merged trace — the buffered events of the checkpointed
    prefix plus everything after the resume — when the original run
    was traced. By default the resumed run keeps checkpointing to
    ``path`` at the stored cadence.
    """
    from repro.fabric.sim import FabricShard, _drive_blocks, _merge_harvests

    payload = load_checkpoint(path)
    if payload.get("kind") != "fabric":
        raise CheckpointError(
            f"checkpoint {path} holds kind {payload.get('kind')!r}, "
            "expected 'fabric'"
        )
    run = payload["run"]
    spec = _spec_from_wire(run["spec"])
    shards = run["shards"]
    engines = [
        FabricShard(
            spec,
            shard_id,
            shards,
            collect_percentiles=run["collect_percentiles"],
            collect_flows=run["collect_flows"],
            tracing=run["tracing"],
            fast=run["fast"],
        )
        for shard_id in range(shards)
    ]
    state = payload["state"]
    for engine, snapshot in zip(engines, state["shards"]):
        engine.restore(snapshot)
    inbound_d = decode_value(state["inbound_deliveries"])
    inbound_c = decode_value(state["inbound_credits"])

    if checkpoint_path is None:
        checkpoint_path = str(path)
        if checkpoint_every is None:
            checkpoint_every = run["checkpoint_every"]
    run_spec = dict(run, checkpoint_every=checkpoint_every)

    harvests = _drive_blocks(
        spec,
        engines,
        start_slot=payload["slot"],
        inbound_d=inbound_d,
        inbound_c=inbound_c,
        run_spec=run_spec,
        checkpoint_path=checkpoint_path,
        checkpoint_every=checkpoint_every,
        stop_at_slot=stop_at_slot,
    )
    return _merge_harvests(spec, harvests, tracer, run["collect_percentiles"])


def write_fabric_checkpoint(
    path: str | Path,
    run_spec: dict,
    slot: int,
    engines: list,
    inbound_deliveries,
    inbound_credits,
) -> None:
    save_checkpoint(
        path,
        capture_fabric_payload(
            run_spec, slot, engines, inbound_deliveries, inbound_credits
        ),
    )
