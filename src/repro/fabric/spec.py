"""Declarative description of a multi-stage fabric experiment.

A :class:`FabricSpec` pins everything that defines a fabric simulation
point: the Clos topology ``C(m, k, r)``, the per-stage scheduler names,
the offered traffic, the flow-routing policy, the inter-stage boundary
buffers, and any per-switch fault or adaptation plans. Like
:class:`~repro.sweep.spec.SweepPoint` it round-trips through a flat
spec form (:meth:`to_spec` / :meth:`from_spec`) so sweep caches and CLI
artifacts can key it content-addressably (:meth:`key`).

Two shapes exist:

* ``stages=3`` — the real thing: ``r`` ingress switches (``k x m``),
  ``m`` middle switches (``r x r``), ``r`` egress switches (``m x k``),
  ``N = k*r`` external ports.
* ``stages=1`` — the degenerate fabric: one ``N``-port crossbar with no
  inter-stage links. Its statistics are bit-identical to plain
  :func:`repro.sim.simulator.run_simulation` (property-tested), which
  pins the composition layer to the single-switch semantics.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.baselines.registry import available_schedulers
from repro.sim.config import SimConfig

__all__ = ["FabricSpec", "ROUTING_POLICIES", "UNSUPPORTED_FABRIC_SCHEDULERS"]

#: Flow-routing policies understood by the fabric engine.
ROUTING_POLICIES = ("hash", "least_loaded", "offline")

#: Registry names a stage switch cannot run. ``fifo``/``outbuf`` are
#: dedicated switch models without a VOQ pipeline; ``ocf`` ranks by
#: head-of-line *age*, which the fabric cannot supply (VOQ timestamps
#: carry end-to-end packet tags, not per-hop generation slots).
UNSUPPORTED_FABRIC_SCHEDULERS = frozenset({"fifo", "outbuf", "ocf"})

#: Per-stage switch counts of a three-stage fabric, as (stage -> count).
_STAGE_NAMES = ("ingress", "middle", "egress")


def _freeze_kwargs(kwargs) -> tuple[tuple[str, object], ...]:
    """Normalise a kwargs mapping to sorted hashable pairs."""
    if kwargs is None:
        return ()
    pairs = dict(kwargs)
    return tuple(sorted(pairs.items()))


@dataclass(frozen=True)
class FabricSpec:
    """One fabric simulation point, hashable and cache-keyable."""

    #: Middle switches (``m``), ports per outer switch (``k``), outer
    #: switches per side (``r``). External ports ``N = k * r``.
    m: int
    k: int
    r: int
    #: Registry scheduler names: one entry (all stages) or one per stage.
    schedulers: tuple[str, ...] = ("lcf_central_rr",)
    #: ``3`` for the Clos, ``1`` for the degenerate single crossbar.
    stages: int = 3
    #: Queue capacities / iterations / warmup / measure / seed. The
    #: config's ``n_ports`` must equal ``k * r``.
    config: SimConfig = field(default_factory=SimConfig)
    load: float = 0.8
    traffic: str = "bernoulli"
    traffic_kwargs: tuple[tuple[str, object], ...] = ()
    #: Middle-stage selection policy (see :mod:`repro.fabric.routing`).
    routing: str = "hash"
    #: Capacity of each inter-stage boundary queue (the downstream
    #: switch's packet queue). Backpressure credits are issued against
    #: this bound, so it is also the per-link in-flight window.
    boundary_capacity: int = 64
    #: Slots a packet (or returning credit) spends on an inter-stage
    #: link. This is the conservative-parallel lookahead: shards run
    #: ``link_delay``-slot blocks between boundary exchanges.
    link_delay: int = 1
    #: Per-switch fault plans: ``(stage, index, FaultPlan spec pairs)``.
    stage_faults: tuple[tuple[int, int, tuple], ...] = ()
    #: Per-switch adaptation configs: ``(stage, index, spec pairs)``.
    stage_adapt: tuple[tuple[int, int, tuple], ...] = ()

    def __post_init__(self) -> None:
        if self.stages not in (1, 3):
            raise ValueError(f"stages must be 1 or 3, got {self.stages}")
        if min(self.m, self.k, self.r) < 1:
            raise ValueError(
                f"m, k, r must all be >= 1, got {(self.m, self.k, self.r)}"
            )
        if self.config.n_ports != self.n_ports:
            raise ValueError(
                f"config.n_ports ({self.config.n_ports}) must equal "
                f"k*r ({self.n_ports})"
            )
        if len(self.schedulers) not in (1, self.stages):
            raise ValueError(
                f"schedulers must name 1 or {self.stages} schedulers, "
                f"got {self.schedulers!r}"
            )
        known = set(available_schedulers()) - UNSUPPORTED_FABRIC_SCHEDULERS
        for name in self.schedulers:
            if name not in known:
                raise ValueError(
                    f"scheduler {name!r} cannot drive a fabric stage "
                    f"(choose from {sorted(known)})"
                )
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"routing must be one of {ROUTING_POLICIES}, got {self.routing!r}"
            )
        if self.boundary_capacity < 1:
            raise ValueError(
                f"boundary_capacity must be >= 1, got {self.boundary_capacity}"
            )
        if self.link_delay < 1:
            raise ValueError(f"link_delay must be >= 1, got {self.link_delay}")
        if not 0.0 < self.load <= 1.0:
            raise ValueError(f"load must be in (0, 1], got {self.load}")
        counts = self.stage_counts
        for what, entries in (
            ("stage_faults", self.stage_faults),
            ("stage_adapt", self.stage_adapt),
        ):
            for stage, index, _ in entries:
                if not 0 <= stage < self.stages:
                    raise ValueError(
                        f"{what} names stage {stage} of a "
                        f"{self.stages}-stage fabric"
                    )
                if not 0 <= index < counts[stage]:
                    raise ValueError(
                        f"{what} names switch {index} of stage {stage}, "
                        f"which has {counts[stage]} switches"
                    )

    # -- derived topology ---------------------------------------------------

    @property
    def n_ports(self) -> int:
        """External (NIC-facing) ports."""
        return self.k * self.r

    @property
    def stage_counts(self) -> tuple[int, ...]:
        """Switches per stage: ``(r, m, r)`` or ``(1,)``."""
        if self.stages == 1:
            return (1,)
        return (self.r, self.m, self.r)

    @property
    def stage_sizes(self) -> tuple[int, ...]:
        """Square crossbar size per stage. Rectangular stage switches
        (``k x m`` ingress, ``m x k`` egress) are embedded in the
        smallest square crossbar that fits; the unused rows/columns
        never see a request."""
        if self.stages == 1:
            return (self.n_ports,)
        outer = max(self.k, self.m)
        return (outer, self.r, outer)

    @property
    def n_switches(self) -> int:
        return sum(self.stage_counts)

    @property
    def stage_schedulers(self) -> tuple[str, ...]:
        """Scheduler name per stage (broadcast if one was given)."""
        if len(self.schedulers) == self.stages:
            return self.schedulers
        return self.schedulers * self.stages

    def switch_label(self, stage: int, index: int) -> str:
        """Canonical name of one stage switch (the trace ``switch`` tag)."""
        return f"s{stage}.{index}"

    def describe(self) -> str:
        """One-line human description."""
        if self.stages == 1:
            return (
                f"single {self.n_ports}-port {self.stage_schedulers[0]} crossbar"
            )
        mix = ",".join(self.stage_schedulers)
        return (
            f"C({self.m},{self.k},{self.r}) {self.n_ports}-port Clos "
            f"[{mix}] routing={self.routing} "
            f"boundary={self.boundary_capacity} delay={self.link_delay}"
        )

    # -- spec form ----------------------------------------------------------

    _CONFIG_DEFAULTS = SimConfig()

    def to_spec(self) -> tuple[tuple[str, object], ...]:
        """Flat, JSON-serialisable ``(key, value)`` pairs.

        Defaults are omitted (like :meth:`repro.faults.plan.FaultPlan.
        to_spec`), so adding a field with a default later cannot change
        the key of existing cached points.
        """
        pairs: list[tuple[str, object]] = [
            ("m", self.m),
            ("k", self.k),
            ("r", self.r),
            ("schedulers", list(self.schedulers)),
            ("load", self.load),
        ]
        if self.stages != 3:
            pairs.append(("stages", self.stages))
        config = [
            [name, getattr(self.config, name)]
            for name in (
                "n_ports", "voq_capacity", "pq_capacity", "outbuf_capacity",
                "iterations", "warmup_slots", "measure_slots", "seed",
            )
            if getattr(self.config, name) != getattr(self._CONFIG_DEFAULTS, name)
        ]
        if config:
            pairs.append(("config", config))
        if self.traffic != "bernoulli":
            pairs.append(("traffic", self.traffic))
        if self.traffic_kwargs:
            pairs.append(("traffic_kwargs", [list(p) for p in self.traffic_kwargs]))
        if self.routing != "hash":
            pairs.append(("routing", self.routing))
        if self.boundary_capacity != 64:
            pairs.append(("boundary_capacity", self.boundary_capacity))
        if self.link_delay != 1:
            pairs.append(("link_delay", self.link_delay))
        if self.stage_faults:
            pairs.append(
                ("stage_faults",
                 [[s, i, [list(p) for p in plan]] for s, i, plan in self.stage_faults])
            )
        if self.stage_adapt:
            pairs.append(
                ("stage_adapt",
                 [[s, i, [list(p) for p in cfg]] for s, i, cfg in self.stage_adapt])
            )
        return tuple(sorted(pairs))

    @classmethod
    def from_spec(cls, spec) -> "FabricSpec":
        """Rebuild from :meth:`to_spec` output (or an equivalent dict)."""
        pairs = dict(spec)
        config = cls._CONFIG_DEFAULTS
        if "config" in pairs:
            config = replace(config, **{name: value for name, value in pairs["config"]})
        m, k, r = int(pairs["m"]), int(pairs["k"]), int(pairs["r"])
        if config.n_ports != k * r:
            config = config.with_(n_ports=k * r)
        return cls(
            m=m,
            k=k,
            r=r,
            schedulers=tuple(pairs["schedulers"]),
            stages=int(pairs.get("stages", 3)),
            config=config,
            load=float(pairs["load"]),
            traffic=pairs.get("traffic", "bernoulli"),
            traffic_kwargs=tuple(
                (name, value) for name, value in pairs.get("traffic_kwargs", ())
            ),
            routing=pairs.get("routing", "hash"),
            boundary_capacity=int(pairs.get("boundary_capacity", 64)),
            link_delay=int(pairs.get("link_delay", 1)),
            stage_faults=tuple(
                (int(s), int(i), tuple(tuple(p) for p in plan))
                for s, i, plan in pairs.get("stage_faults", ())
            ),
            stage_adapt=tuple(
                (int(s), int(i), tuple(tuple(p) for p in cfg))
                for s, i, cfg in pairs.get("stage_adapt", ())
            ),
        )

    def key(self) -> str:
        """Content-addressed cache key (SHA-256 over the canonical spec)."""
        payload = json.dumps(self.to_spec(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- convenience constructors -------------------------------------------

    @classmethod
    def single(cls, n_ports: int, scheduler: str = "lcf_central_rr",
               **changes) -> "FabricSpec":
        """The degenerate one-switch fabric over ``n_ports`` ports."""
        config = changes.pop("config", None)
        if config is None:
            config = SimConfig(n_ports=n_ports)
        elif config.n_ports != n_ports:
            config = config.with_(n_ports=n_ports)
        return cls(
            m=1, k=n_ports, r=1, schedulers=(scheduler,), stages=1,
            config=config, **changes,
        )

    @classmethod
    def square(cls, n_ports: int, scheduler: str = "lcf_central_rr",
               **changes) -> "FabricSpec":
        """A square ``C(k, k, N/k)`` Clos over ``n_ports`` ports (the
        cost-minimising ``k ≈ sqrt(N)`` construction)."""
        k = int(round(n_ports**0.5))
        while n_ports % k:
            k -= 1
        config = changes.pop("config", None)
        if config is None:
            config = SimConfig(n_ports=n_ports)
        elif config.n_ports != n_ports:
            config = config.with_(n_ports=n_ports)
        return cls(
            m=k, k=k, r=n_ports // k, schedulers=(scheduler,), stages=3,
            config=config, **changes,
        )
