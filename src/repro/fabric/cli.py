"""``lcf-fabric`` — multi-switch Clos fabric simulation runs.

Two modes:

* **Single run** (default): simulate one fabric point, print the
  end-to-end summary (source-NIC-to-sink-NIC latency, throughput, loss,
  backpressure activity, per-stage forward counts), optionally writing
  the JSONL event trace and a JSON artifact.
* **Load grid** (``--load-grid``): one fabric run per offered load,
  with CSV/JSON artifacts — the fabric counterpart of the single-switch
  load sweeps.

Examples::

    lcf-fabric --topology 4,4,4 --schedulers lcf_central_rr --load 0.9
    lcf-fabric --square 64 --schedulers islip,lcf_central_rr,islip \
        --routing least_loaded --shards 4 --trace-out fabric.jsonl
    lcf-fabric --topology 8,8,8 --load-grid 0.5,0.7,0.9,1.0 \
        --csv fabric.csv --json fabric.json
    lcf-fabric --single 16 --load 0.8   # degenerate one-switch fabric
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.fabric.spec import ROUTING_POLICIES, FabricSpec
from repro.ioutil import atomic_write_text
from repro.obs.tracer import JsonlTracer, RingTracer
from repro.sim.config import SimConfig


def _parse_topology(text: str) -> tuple[int, int, int]:
    """``m,k,r`` — the Clos C(m, k, r) dimensions."""
    parts = text.split(",")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(f"expected m,k,r got {text!r}")
    try:
        m, k, r = (int(part) for part in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(f"non-integer field in {text!r}") from None
    if min(m, k, r) < 1:
        raise argparse.ArgumentTypeError(f"m, k, r must be >= 1, got {text!r}")
    return m, k, r


def _parse_stage_fault(text: str) -> tuple[int, int, tuple]:
    """``stage.index:port:start:end[:side]`` — a per-switch port outage."""
    head, _, rest = text.partition(":")
    stage_index = head.split(".")
    parts = rest.split(":") if rest else []
    if len(stage_index) != 2 or len(parts) not in (3, 4):
        raise argparse.ArgumentTypeError(
            f"expected stage.index:port:start:end[:side], got {text!r}"
        )
    try:
        stage, index = (int(p) for p in stage_index)
        port, start, end = (int(p) for p in parts[:3])
    except ValueError:
        raise argparse.ArgumentTypeError(f"non-integer field in {text!r}") from None
    side = parts[3] if len(parts) == 4 else "both"
    if side not in ("input", "output", "both"):
        raise argparse.ArgumentTypeError(
            f"side must be input/output/both, got {side!r}"
        )
    return (stage, index, (("port_down", ((port, start, end, side),)),))


def _parse_grid(text: str) -> tuple[float, ...]:
    try:
        return tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad float grid {text!r}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lcf-fabric",
        description="Multi-stage Clos fabric simulation (LCF reproduction).",
    )
    # Topology: exactly one of --topology / --square / --single.
    parser.add_argument("--topology", type=_parse_topology, default=None,
                        metavar="M,K,R",
                        help="explicit Clos C(m,k,r) dimensions")
    parser.add_argument("--square", type=int, default=None, metavar="N",
                        help="square C(k,k,N/k) Clos over N ports")
    parser.add_argument("--single", type=int, default=None, metavar="N",
                        help="degenerate one-switch fabric over N ports")
    parser.add_argument("--schedulers", default="lcf_central_rr",
                        help="comma list: one name (all stages) or one per stage")
    parser.add_argument("--routing", default="hash", choices=ROUTING_POLICIES)
    parser.add_argument("--boundary", type=int, default=64,
                        help="inter-stage boundary queue capacity")
    parser.add_argument("--link-delay", type=int, default=1,
                        help="slots per inter-stage link traversal")
    parser.add_argument("--load", type=float, default=0.8)
    parser.add_argument("--slots", type=int, default=2000,
                        help="measured slots")
    parser.add_argument("--warmup", type=int, default=200)
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--traffic", default="bernoulli")
    parser.add_argument("--fault", action="append", default=[],
                        type=_parse_stage_fault,
                        metavar="S.I:PORT:START:END[:SIDE]",
                        help="port outage on one stage switch (repeatable)")
    # Execution.
    parser.add_argument("--shards", type=int, default=1,
                        help="fabric shards (1 = serial reference engine)")
    parser.add_argument("--backend", default="inline",
                        choices=("inline", "process"),
                        help="shard execution backend (shards > 1)")
    parser.add_argument("--fast", action="store_true",
                        help="run stage schedulers on their repro.fastpath "
                        "kernels where available (bit-identical results)")
    parser.add_argument("--percentiles", action="store_true",
                        help="collect per-packet latency percentiles")
    # Grid mode.
    parser.add_argument("--load-grid", type=_parse_grid, default=None,
                        metavar="L0,L1,...",
                        help="one fabric run per offered load")
    # Artifacts.
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="single-run mode: write the JSONL event trace")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="write result rows as CSV")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the run report as JSON")
    parser.add_argument("--quiet", action="store_true")
    return parser


def validate_args(args: argparse.Namespace, prog: str) -> str | None:
    """CLI sanity checks; returns an error message or ``None``.

    argparse types catch malformed values; this catches well-formed
    nonsense (conflicting topology flags, zero shards, empty grids)
    *before* any simulation runs or artifact file is opened, so a bad
    invocation exits non-zero without side effects.
    """
    chosen = [
        flag for flag, value in (
            ("--topology", args.topology),
            ("--square", args.square),
            ("--single", args.single),
        ) if value is not None
    ]
    if len(chosen) > 1:
        return f"{prog}: choose one of {', '.join(chosen)}"
    for flag, value in (("--square", args.square), ("--single", args.single)):
        if value is not None and value < 1:
            return f"{prog}: {flag} must be >= 1, got {value}"
    if args.slots < 0:
        return f"{prog}: --slots must be >= 0, got {args.slots}"
    if args.warmup < 0:
        return f"{prog}: --warmup must be >= 0, got {args.warmup}"
    if args.seed < 0:
        return f"{prog}: --seed must be >= 0, got {args.seed}"
    if not 0.0 < args.load <= 1.0:
        return f"{prog}: --load must be in (0, 1], got {args.load}"
    if args.boundary < 1:
        return f"{prog}: --boundary must be >= 1, got {args.boundary}"
    if args.link_delay < 1:
        return f"{prog}: --link-delay must be >= 1, got {args.link_delay}"
    if args.shards < 1:
        return f"{prog}: --shards must be >= 1, got {args.shards}"
    if args.load_grid is not None:
        if len(args.load_grid) == 0:
            return f"{prog}: --load-grid was given but contains no values"
        bad = [load for load in args.load_grid if not 0.0 < load <= 1.0]
        if bad:
            return f"{prog}: --load-grid values must be in (0, 1], got {bad}"
    if not args.schedulers.strip(","):
        return f"{prog}: --schedulers must name at least one scheduler"
    return None


def build_spec(args: argparse.Namespace, load: float) -> FabricSpec:
    """Assemble the :class:`FabricSpec` one invocation describes.

    Raises ``ValueError`` for semantic errors the spec validates
    (unknown scheduler, fault coordinates off the topology, wrong
    scheduler count) — the caller maps that to exit code 2.
    """
    schedulers = tuple(
        name.strip() for name in args.schedulers.split(",") if name.strip()
    )
    config_changes = dict(
        iterations=args.iterations,
        warmup_slots=args.warmup,
        measure_slots=args.slots,
        seed=args.seed,
    )
    common = dict(
        load=load,
        traffic=args.traffic,
        routing=args.routing,
        boundary_capacity=args.boundary,
        link_delay=args.link_delay,
        stage_faults=tuple(args.fault),
    )
    if args.single is not None:
        if len(schedulers) != 1:
            raise ValueError(
                f"--single takes exactly one scheduler, got {schedulers!r}"
            )
        return FabricSpec.single(
            args.single, schedulers[0],
            config=SimConfig(n_ports=args.single, **config_changes), **common,
        )
    if args.topology is not None:
        m, k, r = args.topology
        return FabricSpec(
            m=m, k=k, r=r, schedulers=schedulers,
            config=SimConfig(n_ports=k * r, **config_changes), **common,
        )
    n_ports = args.square if args.square is not None else 16
    spec = FabricSpec.square(
        n_ports, schedulers[0],
        config=SimConfig(n_ports=n_ports, **config_changes), **common,
    )
    if len(schedulers) > 1:
        spec = FabricSpec.from_spec(
            dict(spec.to_spec()) | {"schedulers": list(schedulers)}
        )
    return spec


def _print_summary(result) -> None:
    spec = result.spec
    print(spec.describe())
    print(
        f"load={spec.load:g}: throughput {result.throughput:.3f}, "
        f"mean latency {result.mean_latency:.2f}, "
        f"p99-ish max {result.max_latency:g}, "
        f"offered {result.offered}, forwarded {result.forwarded}, "
        f"dropped {result.dropped} (loss {result.loss_rate:.4f})"
    )
    print(
        f"conservation: generated {result.generated}, "
        f"delivered {result.delivered}, "
        f"in flight {result.generated - result.delivered - result.dropped}; "
        f"stage forwards {list(result.stage_forwards)}; "
        f"backpressure slots {result.backpressure_slots}"
    )
    if result.fault_events:
        print(
            f"faults: {result.fault_events} down, "
            f"{result.recovery_events} recovered, "
            f"{result.degraded_slots} degraded slot(s), "
            f"{result.masked_grants} masked grant(s)"
        )
    for percentile in sorted(result.percentiles):
        print(f"  p{percentile:g} latency: {result.percentiles[percentile]:.2f}")


def _csv_cell(value: object) -> str:
    text = str(value)
    if "," in text or '"' in text or "\n" in text:
        return '"' + text.replace('"', '""') + '"'
    return text


def _rows_to_csv(rows: list[dict]) -> str:
    header = list(rows[0])
    lines = [",".join(header)]
    for row in rows:
        lines.append(",".join(_csv_cell(row.get(name, "")) for name in header))
    return "\n".join(lines) + "\n"


def _single_run(args: argparse.Namespace, spec: FabricSpec) -> int:
    from repro.fabric.sim import run_fabric

    tracer = (
        JsonlTracer(args.trace_out) if args.trace_out else RingTracer(1 << 16)
    )
    with tracer:
        result = run_fabric(
            spec,
            shards=args.shards,
            backend=args.backend,
            tracer=tracer,
            collect_percentiles=args.percentiles,
            fast=args.fast,
        )
    if not args.quiet:
        _print_summary(result)
        if args.trace_out:
            print(f"trace written to {args.trace_out}")
    if args.csv:
        atomic_write_text(args.csv, _rows_to_csv([result.row()]))
        if not args.quiet:
            print(f"result row written to {args.csv}")
    if args.json:
        atomic_write_text(
            args.json,
            json.dumps(
                {
                    "mode": "single",
                    "spec": [list(pair) for pair in spec.to_spec()],
                    "key": spec.key(),
                    "shards": args.shards,
                    "row": result.row(),
                },
                indent=2,
            ),
        )
        if not args.quiet:
            print(f"report written to {args.json}")
    return 0


def _load_grid(args: argparse.Namespace) -> int:
    from repro.fabric.sim import run_fabric

    rows = []
    for load in args.load_grid:
        spec = build_spec(args, load)
        result = run_fabric(
            spec,
            shards=args.shards,
            backend=args.backend,
            collect_percentiles=args.percentiles,
            fast=args.fast,
        )
        rows.append(result.row())
        if not args.quiet:
            print(
                f"load {load:g}: throughput {result.throughput:.3f}, "
                f"mean latency {result.mean_latency:.2f}, "
                f"loss {result.loss_rate:.4f}, "
                f"backpressure slots {result.backpressure_slots}"
            )
    if args.csv:
        atomic_write_text(args.csv, _rows_to_csv(rows))
        if not args.quiet:
            print(f"grid rows written to {args.csv}")
    if args.json:
        spec = build_spec(args, args.load_grid[0])
        atomic_write_text(
            args.json,
            json.dumps(
                {
                    "mode": "load-grid",
                    "spec": [list(pair) for pair in spec.to_spec()],
                    "loads": list(args.load_grid),
                    "shards": args.shards,
                    "rows": rows,
                },
                indent=2,
            ),
        )
        if not args.quiet:
            print(f"grid report written to {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    error = validate_args(args, "lcf-fabric")
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    try:
        spec = build_spec(
            args, args.load_grid[0] if args.load_grid else args.load
        )
    except ValueError as exc:
        print(f"lcf-fabric: {exc}", file=sys.stderr)
        return 2
    if args.load_grid is not None:
        return _load_grid(args)
    return _single_run(args, spec)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
