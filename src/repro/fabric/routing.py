"""Flow-level routing across the Clos middle stage.

The only routing freedom in a three-stage Clos is *which middle switch
carries each packet*: the ingress switch of a packet is fixed by its
source port and the egress switch by its destination port. Three
policies ship, all deterministic so the simulation stays a pure
function of its spec:

``hash``
    Stateless ECMP: the middle switch is a splitmix64 hash of
    ``(seed, src, dst)`` modulo ``m``. Every packet of one flow takes
    the same path (no reordering within a flow) and flows spread
    uniformly — the datacenter default.

``least_loaded``
    Adaptive spreading: pick the middle link whose VOQ column at the
    ingress switch is shallowest, scanning from a per-flow hash offset
    so ties do not polarise onto middle switch 0. The decision reads
    only the packet's own ingress switch, which is what keeps it legal
    under sharding (the owning shard always has the state it needs).

``offline``
    The Slepian–Duguid stance: a precomputed
    :class:`~repro.fabric.clos.ClosRouting` (edge-coloured middle
    assignment for a known permutation) answers first via its O(1)
    ``middle_of`` table; pairs outside the routed schedule fall back to
    a Latin-square spreading ``(ingress + egress) % m`` — the classic
    static round-robin layout.
"""

from __future__ import annotations

from repro.fabric.clos import ClosRouting
from repro.faults.injector import hash_u64

__all__ = ["FlowRouter", "HashRouter", "LeastLoadedRouter", "OfflineRouter",
           "make_router"]

#: Hash-domain salt separating routing draws from fault/seeding draws.
_SALT_ROUTE = 0xB0


class FlowRouter:
    """Base router: maps ``(src, dst)`` to a middle-switch index."""

    name = "router"

    def __init__(self, m: int, k: int, seed: int):
        self.m = m
        self.k = k
        self.seed = seed

    def middle_for(self, src: int, dst: int, ingress_switch) -> int:
        """Middle switch for one packet. ``ingress_switch`` is the
        packet's own :class:`~repro.sim.crossbar.InputQueuedSwitch`
        (adaptive policies may read its queue state)."""
        raise NotImplementedError


class HashRouter(FlowRouter):
    """Stateless per-flow ECMP hashing."""

    name = "hash"

    def middle_for(self, src: int, dst: int, ingress_switch) -> int:
        return hash_u64(self.seed, _SALT_ROUTE, src, dst) % self.m


class LeastLoadedRouter(FlowRouter):
    """Shallowest ingress VOQ column, hash-offset tie-breaking."""

    name = "least_loaded"

    def middle_for(self, src: int, dst: int, ingress_switch) -> int:
        m = self.m
        # Total backlog queued toward each middle link at this ingress.
        depth = ingress_switch.voqs.occupancy[:, :m].sum(axis=0)
        offset = hash_u64(self.seed, _SALT_ROUTE, src, dst) % m
        best = offset
        best_depth = depth[offset]
        for step in range(1, m):
            j = offset + step
            if j >= m:
                j -= m
            if depth[j] < best_depth:
                best, best_depth = j, depth[j]
        return int(best)


class OfflineRouter(FlowRouter):
    """Slepian–Duguid table first, Latin-square spreading as fallback."""

    name = "offline"

    def __init__(self, m: int, k: int, seed: int,
                 routing: ClosRouting | None = None):
        super().__init__(m, k, seed)
        self.routing = routing

    def middle_for(self, src: int, dst: int, ingress_switch) -> int:
        if self.routing is not None:
            middle = self.routing.middle_of(src, dst)
            if middle is not None:
                return middle
        return (src // self.k + dst // self.k) % self.m


def make_router(policy: str, m: int, k: int, seed: int,
                offline_routing: ClosRouting | None = None) -> FlowRouter:
    """Instantiate the router for a :class:`~repro.fabric.spec.FabricSpec`
    routing policy name."""
    if policy == "hash":
        return HashRouter(m, k, seed)
    if policy == "least_loaded":
        return LeastLoadedRouter(m, k, seed)
    if policy == "offline":
        return OfflineRouter(m, k, seed, routing=offline_routing)
    raise ValueError(f"unknown routing policy {policy!r}")
