"""Non-blocking switch fabrics.

The paper's switch model assumes "a non-blocking switch fabric such as
the crossbar switch of Figure 1. Other non-blocking fabrics such as
Clos networks are also possible [2]" (Section 2). This subpackage
provides both:

* :class:`~repro.fabric.crossbar.CrossbarFabric` — the n x n crossbar:
  trivially non-blocking, ``n^2`` crosspoints;
* :class:`~repro.fabric.clos.ClosNetwork` — the three-stage Clos
  fabric: rearrangeably non-blocking for ``m >= k``, strictly
  non-blocking for ``m >= 2k-1``, with the Slepian–Duguid route
  assignment implemented via repeated bipartite matching.

Any conflict-free schedule produced by the schedulers in
:mod:`repro.core` / :mod:`repro.baselines` can be realised on either
fabric; the Clos router returns the explicit middle-stage assignment.

Beyond the static fabrics, :mod:`repro.fabric.sim` simulates a *live*
three-stage Clos in which every stage switch is a full
:class:`~repro.sim.crossbar.InputQueuedSwitch` running a registry
scheduler, with flow routing, credit-based backpressure between
stages, end-to-end latency tagging, and shard-parallel execution that
is bit-identical to the serial engine (see ``docs/FABRIC.md``).
"""

from repro.fabric.checkpoint import resume_fabric
from repro.fabric.clos import ClosNetwork, ClosRouting
from repro.fabric.crossbar import CrossbarFabric
from repro.fabric.routing import (
    FlowRouter,
    HashRouter,
    LeastLoadedRouter,
    OfflineRouter,
    make_router,
)
from repro.fabric.sim import FabricResult, FabricShard, run_fabric
from repro.fabric.spec import ROUTING_POLICIES, FabricSpec

__all__ = [
    "CrossbarFabric",
    "ClosNetwork",
    "ClosRouting",
    # live fabric simulation
    "FabricSpec",
    "FabricResult",
    "FabricShard",
    "run_fabric",
    "resume_fabric",
    "ROUTING_POLICIES",
    # flow routing
    "FlowRouter",
    "HashRouter",
    "LeastLoadedRouter",
    "OfflineRouter",
    "make_router",
]
