"""Discrete-slot simulation of a multi-stage Clos fabric.

Every stage switch is a real :class:`~repro.sim.crossbar.InputQueuedSwitch`
running a registry scheduler, composed into a fabric by three
mechanisms:

**Flow routing.** A packet entering source NIC ``src`` bound for
destination NIC ``dst`` crosses ingress switch ``src // k``, one middle
switch chosen by the spec's routing policy
(:mod:`repro.fabric.routing`), and egress switch ``dst // k``. The VOQ
destination at each hop is the *local* output port: the middle-switch
index at ingress, the egress-switch index at the middle, and
``dst % k`` at egress.

**Boundary queues + credit backpressure.** The downstream switch's
packet queues double as the inter-stage boundary buffers
(``boundary_capacity`` deep). Each upstream output holds one credit per
buffer slot: forwarding consumes a credit, and a credit returns —
``link_delay`` slots later — when the downstream queue hands the packet
to its VOQs. An output with no credits is masked out of the request
matrix via the crossbar's ``output_gate``, so a full boundary queue
backpressures the upstream scheduler instead of dropping packets:
boundary queues never overflow by construction, and all loss happens at
the source NIC queues.

**End-to-end tagging.** VOQ payload slots carry indices into a packet
store (``(src, dst, generation slot)``) instead of raw timestamps; the
``forward_sink`` hook resolves each departure against the store, so
delay and loss are measured source NIC to sink NIC, never per hop.
Stage switches run with ``measuring`` off — the engine owns all
statistics, accumulated per egress switch and merged in canonical
switch order.

**Sharding.** :class:`FabricShard` is *both* the serial reference and
the unit of parallel execution: ``shards=1`` is a single shard owning
every switch, ``shards=W`` partitions the canonical switch list across
``W`` shards that run ``link_delay``-slot blocks between boundary
exchanges. Because a packet forwarded at slot ``t`` cannot arrive
before ``t + link_delay``, every cross-switch message created inside a
block is due after the block ends — the exchange at the block barrier
is exact, not approximate, and shard-count invariance (bit-identical
statistics *and* traces for any ``W``) holds by construction. The
hypothesis suite in ``tests/fabric/`` enforces it anyway.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.adapt.adapter import make_adapter
from repro.baselines.registry import make_scheduler
from repro.fabric.routing import make_router
from repro.fabric.spec import FabricSpec
from repro.fastpath.registry import make_fast_scheduler
from repro.faults.injector import FaultInjector, hash_u64
from repro.faults.plan import FaultPlan
from repro.obs import events as ev
from repro.obs.tracer import Tracer, effective_tracer
from repro.sim.crossbar import InputQueuedSwitch
from repro.sim.metrics import OnlineStats, latency_percentiles
from repro.traffic.base import NO_ARRIVAL, make_traffic

__all__ = ["FabricResult", "FabricShard", "run_fabric"]

#: Exporter tick cadence (slots), matching the single-switch driver.
_SLOT_BLOCK = 64

#: Hash-domain salts for per-switch seed derivation.
_SALT_SCHED = 0x5C
_SALT_FAULT = 0xFA


@dataclass
class FabricResult:
    """End-to-end statistics of one fabric run.

    The latency fields describe source-NIC-to-sink-NIC packet delay over
    the measurement window; ``offered``/``forwarded``/``dropped`` follow
    the :class:`~repro.sim.simulator.SimResult` conventions (drops are
    counted over the whole run, offered/forwarded over the window), so a
    degenerate one-stage fabric reproduces ``run_simulation`` exactly.
    """

    spec: FabricSpec
    mean_latency: float
    std_latency: float
    min_latency: float
    max_latency: float
    offered: int
    forwarded: int
    dropped: int
    #: Packets forwarded per NIC per slot over the measurement window.
    throughput: float
    #: Packets created / delivered over the *whole* run (warmup included)
    #: — the conservation check's ledger.
    generated: int = 0
    delivered: int = 0
    #: Grants suppressed by boundary-queue backpressure (whole run).
    #: Stays 0 for well-behaved schedulers — the credit gate masks
    #: blocked outputs out of the request matrix before scheduling.
    blocked_grants: int = 0
    #: Switch-slots in which at least one output was credit-blocked —
    #: the visible backpressure activity signal.
    backpressure_slots: int = 0
    #: Grants dropped by per-switch fault gates (whole run).
    masked_grants: int = 0
    fault_events: int = 0
    recovery_events: int = 0
    degraded_slots: int = 0
    #: Packets forwarded per stage over the whole run.
    stage_forwards: tuple[int, ...] = ()
    percentiles: dict[float, float] = field(default_factory=dict)
    #: Per-(src, dst) delivered counts / delay sums over the window,
    #: when ``collect_flows`` was requested (None otherwise).
    flow_counts: np.ndarray | None = None
    flow_delay: np.ndarray | None = None

    @property
    def load(self) -> float:
        return self.spec.load

    @property
    def schedulers(self) -> tuple[str, ...]:
        return self.spec.stage_schedulers

    @property
    def loss_rate(self) -> float:
        """Fraction of offered packets dropped during measurement."""
        return self.dropped / self.offered if self.offered else 0.0

    def flow_mean_delay(self) -> np.ndarray | None:
        """Per-(src, dst) mean delay (NaN where no packet was delivered)."""
        if self.flow_counts is None:
            return None
        with np.errstate(invalid="ignore"):
            return np.where(
                self.flow_counts > 0,
                self.flow_delay / np.maximum(self.flow_counts, 1),
                math.nan,
            )

    def row(self) -> dict[str, float | str | int]:
        """Flat dict for CSV emission."""
        row: dict[str, float | str | int] = {
            "topology": self.spec.describe(),
            "schedulers": ",".join(self.schedulers),
            "routing": self.spec.routing,
            "load": self.load,
            "mean_latency": self.mean_latency,
            "std_latency": self.std_latency,
            "max_latency": self.max_latency,
            "throughput": self.throughput,
            "offered": self.offered,
            "forwarded": self.forwarded,
            "dropped": self.dropped,
            "loss_rate": self.loss_rate,
            "backpressure_slots": self.backpressure_slots,
            "fault_events": self.fault_events,
            "recovery_events": self.recovery_events,
            "degraded_slots": self.degraded_slots,
        }
        for percentile in sorted(self.percentiles):
            row[f"p{percentile:g}"] = self.percentiles[percentile]
        return row


class _PacketStore:
    """Append-only table of live packets: tag -> (src, dst, t_generated).

    VOQ payload ints are indices into this table. Each shard keeps its
    own store and re-tags packets on boundary delivery — tag *values*
    are shard-local, but nothing observable depends on them (schedulers
    see occupancy only, delays are computed from the stored
    generation slot), which is what keeps shard counts interchangeable.
    """

    __slots__ = ("src", "dst", "gen")

    def __init__(self) -> None:
        self.src: list[int] = []
        self.dst: list[int] = []
        self.gen: list[int] = []

    def append(self, src: int, dst: int, gen: int) -> int:
        tag = len(self.gen)
        self.src.append(src)
        self.dst.append(dst)
        self.gen.append(gen)
        return tag

    def __len__(self) -> int:
        return len(self.gen)


class _BufferTracer(Tracer):
    """Per-switch event buffer; stamps every event with its switch label.

    The fabric merges buffers into the user's tracer in canonical
    ``(slot, stage, index, emission order)`` order after the run — the
    same order however many shards emitted them.
    """

    def __init__(self, label: str):
        super().__init__()
        self.label = label
        self.events: list[dict] = []

    @property
    def enabled(self) -> bool:
        return True

    def emit(self, event: dict) -> None:
        event["switch"] = self.label
        self.events.append(event)


class FabricShard:
    """One partition of the fabric: its switches, queues and credits.

    ``shard_id``/``n_shards`` slice the canonical switch list
    contiguously; ``(0, 1)`` owns everything and is the serial engine.
    All cross-switch traffic (packet deliveries and credit returns) is
    expressed as *messages with a due slot*; messages to owned switches
    go straight into the local calendars, messages to foreign switches
    accumulate in the outbound buffers that :meth:`run_block` returns
    at each ``link_delay``-slot barrier.
    """

    def __init__(
        self,
        spec: FabricSpec,
        shard_id: int = 0,
        n_shards: int = 1,
        *,
        collect_percentiles: bool = False,
        collect_flows: bool = False,
        tracing: bool = False,
        fast: bool = False,
        offline_routing=None,
    ):
        self.spec = spec
        self.shard_id = shard_id
        self.n_shards = n_shards
        self.collect_percentiles = collect_percentiles
        self.collect_flows = collect_flows
        self.tracing = tracing

        counts = spec.stage_counts
        self.last_stage = spec.stages - 1
        self._warmup = spec.config.warmup_slots
        self._k = spec.k
        self._delay = spec.link_delay

        #: Canonical switch list and this shard's contiguous slice of it.
        self.all_coords = [
            (stage, index)
            for stage in range(spec.stages)
            for index in range(counts[stage])
        ]
        total = len(self.all_coords)
        lo = shard_id * total // n_shards
        hi = (shard_id + 1) * total // n_shards
        self.owned = self.all_coords[lo:hi]
        self._owned_set = frozenset(self.owned)

        self._store = _PacketStore()
        self._pattern = make_traffic(
            spec.traffic,
            spec.n_ports,
            spec.load,
            seed=spec.config.seed,
            **dict(spec.traffic_kwargs),
        )
        self._router = (
            make_router(spec.routing, spec.m, spec.k, spec.config.seed,
                        offline_routing=offline_routing)
            if spec.stages == 3
            else None
        )
        #: Ingress switches this shard generates traffic for.
        self._gen_ingress = frozenset(
            index for stage, index in self.owned if stage == 0
        )

        # Message calendars: due slot -> payload list.
        self._deliveries: dict[int, list[tuple]] = {}
        self._credit_returns: dict[int, list[tuple]] = {}
        self._out_deliveries: list[tuple] = []
        self._out_credits: list[tuple] = []

        # Statistics (per egress switch, merged canonically at the end).
        self.offered = 0
        self.forwarded = 0
        self.generated = 0
        self.delivered = 0
        #: Switch-slots in which at least one output was credit-blocked
        #: (the visible backpressure signal; the scheduler sees blocked
        #: outputs as absent requests, so ``blocked_grants`` stays 0 for
        #: well-behaved schedulers).
        self.backpressure_slots = 0
        self.stage_forwards = [0] * spec.stages
        self._egress_stats: dict[int, OnlineStats] = {}
        self._egress_samples: dict[int, list[int]] = {}
        self._flow_counts = (
            np.zeros((spec.n_ports, spec.n_ports), dtype=np.int64)
            if collect_flows
            else None
        )
        self._flow_delay = (
            np.zeros((spec.n_ports, spec.n_ports), dtype=np.int64)
            if collect_flows
            else None
        )

        self.switches: dict[tuple[int, int], InputQueuedSwitch] = {}
        self.tracers: dict[tuple[int, int], _BufferTracer] = {}
        self._credits: dict[tuple[int, int], np.ndarray] = {}
        self._blocked_buf: dict[tuple[int, int], np.ndarray] = {}
        self._empty_arrivals: dict[int, np.ndarray] = {}
        self._real_inputs: dict[tuple[int, int], int] = {}
        fault_plans = {
            (stage, index): FaultPlan.from_spec(plan)
            for stage, index, plan in spec.stage_faults
        }
        adapt_specs = {
            (stage, index): cfg for stage, index, cfg in spec.stage_adapt
        }
        for coord in self.owned:
            self._build_switch(coord, fault_plans.get(coord),
                               adapt_specs.get(coord), fast)
            if coord[0] == self.last_stage:
                self._egress_stats[coord[1]] = OnlineStats()
                if collect_percentiles:
                    self._egress_samples[coord[1]] = []

    # -- construction -------------------------------------------------------

    def _switch_seed(self, salt: int, stage: int, index: int) -> int:
        """Per-switch seed; the degenerate fabric keeps the config seed
        verbatim so it is bit-identical to ``run_simulation``."""
        if self.spec.stages == 1:
            return self.spec.config.seed
        return hash_u64(self.spec.config.seed, salt, stage, index) % (1 << 31)

    def _real_input_count(self, stage: int) -> int:
        """Inputs of a stage switch that have an upstream link."""
        spec = self.spec
        if stage == 0 or spec.stages == 1:
            return spec.k if spec.stages == 3 else spec.n_ports
        return spec.r if stage == 1 else spec.m

    def _downstream_links(self, stage: int) -> int:
        """Outputs of a stage switch wired to a boundary queue."""
        return self.spec.m if stage == 0 else self.spec.r

    def _build_switch(self, coord, plan, adapt_spec, fast: bool) -> None:
        spec = self.spec
        stage, index = coord
        size = spec.stage_sizes[stage]
        pq_capacity = (
            spec.config.pq_capacity
            if stage == 0
            else spec.boundary_capacity
        )
        config = spec.config.with_(n_ports=size, pq_capacity=pq_capacity)

        injector = None
        if plan is not None and not plan.is_null:
            injector = FaultInjector(
                plan, size, seed=self._switch_seed(_SALT_FAULT, stage, index)
            )
        name = spec.stage_schedulers[stage]
        seed = self._switch_seed(_SALT_SCHED, stage, index)
        if injector is not None and injector.has_message_faults:
            from repro.faults.channel import make_lossy_scheduler

            scheduler = make_lossy_scheduler(
                name, size, injector,
                iterations=config.iterations, seed=seed, fast=fast,
            )
        elif fast:
            scheduler = make_fast_scheduler(
                name, size, iterations=config.iterations, seed=seed
            )
        else:
            scheduler = make_scheduler(
                name, size, iterations=config.iterations, seed=seed
            )

        adapter = make_adapter(adapt_spec) if adapt_spec else None
        if adapter is not None:
            adapter.reset()

        tracer = None
        if self.tracing:
            tracer = _BufferTracer(spec.switch_label(stage, index))
            self.tracers[coord] = tracer

        gate = None
        if spec.stages == 3 and stage < self.last_stage:
            credits = np.full(
                self._downstream_links(stage), spec.boundary_capacity,
                dtype=np.int64,
            )
            blocked = np.zeros(size, dtype=bool)
            self._credits[coord] = credits
            self._blocked_buf[coord] = blocked

            def gate(slot, _credits=credits, _blocked=blocked):
                if int(_credits.min()) > 0:
                    return None
                self.backpressure_slots += 1
                _blocked[: len(_credits)] = _credits <= 0
                return _blocked

        def sink(slot, i, j, tag, _stage=stage, _index=index):
            return self._on_forward(_stage, _index, slot, i, j, tag)

        self.switches[coord] = InputQueuedSwitch(
            config,
            scheduler,
            tracer=tracer,
            injector=injector,
            adapter=adapter,
            output_gate=gate,
            forward_sink=sink,
        )
        self._real_inputs[coord] = self._real_input_count(stage)
        if size not in self._empty_arrivals:
            self._empty_arrivals[size] = np.full(size, NO_ARRIVAL, dtype=np.int64)

    # -- the slot pipeline --------------------------------------------------

    def _on_forward(self, stage: int, index: int, slot: int, i: int,
                    j: int, tag: int) -> int:
        """``forward_sink`` for one stage switch: route or retire the
        packet; returns the cumulative delay recorded in traces."""
        store = self._store
        gen = store.gen[tag]
        delay = slot - gen + 1
        self.stage_forwards[stage] += 1
        if stage == self.last_stage:
            self.delivered += 1
            if slot >= self._warmup:
                self.forwarded += 1
                self._egress_stats[index].add(delay)
                samples = self._egress_samples.get(index)
                if samples is not None:
                    samples.append(delay)
                if self._flow_counts is not None:
                    src, dst = store.src[tag], store.dst[tag]
                    self._flow_counts[src, dst] += 1
                    self._flow_delay[src, dst] += delay
            return delay

        self._credits[(stage, index)][j] -= 1
        dst = store.dst[tag]
        if stage == 0:
            target = (1, j)
            next_dst = dst // self._k
        else:
            target = (2, j)
            next_dst = dst % self._k
        message = (
            target[0], target[1], index, next_dst,
            store.src[tag], dst, gen,
        )
        due = slot + self._delay
        if target in self._owned_set:
            self._deliveries.setdefault(due, []).append(message)
        else:
            self._out_deliveries.append((due, *message))
        return delay

    def _slot(self, slot: int) -> None:
        spec = self.spec
        measuring = slot >= self._warmup

        # 1a. Credit returns that finished crossing the link.
        for stage, index, output in self._credit_returns.pop(slot, ()):
            self._credits[(stage, index)][output] += 1

        # 1b. Boundary deliveries due this slot, in canonical order.
        #     At most one packet per (switch, input) per slot can be in
        #     flight, so the sort key is unique and the order exact.
        due = self._deliveries.pop(slot, None)
        if due:
            due.sort(key=lambda msg: msg[:3])
            for stage, index, input_, local_dst, src, dst, gen in due:
                switch = self.switches[(stage, index)]
                tag = self._store.append(src, dst, gen)
                accepted = switch.pqs[input_].push(local_dst, tag)
                if not accepted:  # pragma: no cover - credits forbid this
                    raise RuntimeError(
                        f"boundary queue overflow at {(stage, index, input_)}"
                    )
                tracer = self.tracers.get((stage, index))
                if tracer is not None:
                    tracer.emit(ev.arrival(slot, input_, local_dst))

        # 2. Source-NIC generation. Every shard draws the full arrival
        #    vector (identical seeded streams keep the sample path equal
        #    to the serial engine's) but admits only its own ingress
        #    switches' ports.
        arrivals = self._pattern.arrivals()
        k = self._k
        for src in range(spec.n_ports):
            dst = arrivals[src]
            if dst == NO_ARRIVAL:
                continue
            dst = int(dst)
            if spec.stages == 1:
                ingress, local_input, local_dst = 0, src, dst
            else:
                ingress = src // k
                if ingress not in self._gen_ingress:
                    continue
                local_input = src % k
                local_dst = self._router.middle_for(
                    src, dst, self.switches[(0, ingress)]
                )
            if spec.stages == 1 and (0, 0) not in self._owned_set:
                continue  # pragma: no cover - single switch is always owned
            if measuring:
                self.offered += 1
            self.generated += 1
            tag = self._store.append(src, dst, slot)
            accepted = self.switches[(0, ingress)].pqs[local_input].push(
                local_dst, tag
            )
            tracer = self.tracers.get((0, ingress))
            if tracer is not None:
                tracer.emit(ev.arrival(slot, local_input, local_dst))
                if not accepted:
                    tracer.emit(ev.drop(slot, local_input, local_dst))

        # 3. Step every owned switch in canonical order; detect boundary
        #    queue pops afterwards to schedule credit returns.
        for coord in self.owned:
            stage, index = coord
            switch = self.switches[coord]
            if stage > 0:
                real = self._real_inputs[coord]
                before = [len(switch.pqs[i]) for i in range(real)]
            switch.step(slot, self._empty_arrivals[switch.n])
            if stage > 0:
                for i in range(real):
                    if len(switch.pqs[i]) < before[i]:
                        upstream = (
                            (0, i, index) if stage == 1 else (1, i, index)
                        )
                        if upstream[:2] in self._owned_set:
                            self._credit_returns.setdefault(
                                slot + self._delay, []
                            ).append(upstream)
                        else:
                            self._out_credits.append(
                                (slot + self._delay, *upstream)
                            )

    def run_block(
        self,
        first_slot: int,
        n_slots: int,
        inbound_deliveries=(),
        inbound_credits=(),
    ) -> tuple[list[tuple], list[tuple]]:
        """Advance ``n_slots`` consecutive slots; returns the outbound
        (deliveries, credit returns) for foreign shards. ``n_slots``
        must not exceed ``link_delay`` when other shards exist — the
        exchange is only exact at or below the lookahead."""
        for due, *message in inbound_deliveries:
            self._deliveries.setdefault(due, []).append(tuple(message))
        for due, stage, index, output in inbound_credits:
            self._credit_returns.setdefault(due, []).append(
                (stage, index, output)
            )
        for slot in range(first_slot, first_slot + n_slots):
            self._slot(slot)
        out = (self._out_deliveries, self._out_credits)
        self._out_deliveries = []
        self._out_credits = []
        return out

    # -- harvest ------------------------------------------------------------

    def total_queued(self) -> int:
        """Packets currently buffered in owned switches."""
        return sum(sw.total_queued() for sw in self.switches.values())

    def stage_queued(self, stage: int) -> int:
        return sum(
            sw.total_queued()
            for (s, _), sw in self.switches.items()
            if s == stage
        )

    def harvest(self) -> dict:
        """Everything the merge step needs, picklable for the process
        backend."""
        return {
            "egress_stats": dict(self._egress_stats),
            "egress_samples": dict(self._egress_samples),
            "offered": self.offered,
            "forwarded": self.forwarded,
            "generated": self.generated,
            "delivered": self.delivered,
            "dropped": sum(
                sw.dropped
                for (stage, _), sw in self.switches.items()
                if stage == 0
            ),
            "blocked_grants": sum(
                sw.blocked_grants for sw in self.switches.values()
            ),
            "backpressure_slots": self.backpressure_slots,
            "masked_grants": sum(
                sw.masked_grants for sw in self.switches.values()
            ),
            "fault_events": sum(
                sw.fault_events for sw in self.switches.values()
            ),
            "recovery_events": sum(
                sw.recovery_events for sw in self.switches.values()
            ),
            "degraded_slots": sum(
                sw.degraded_slots for sw in self.switches.values()
            ),
            "stage_forwards": list(self.stage_forwards),
            "flow_counts": self._flow_counts,
            "flow_delay": self._flow_delay,
            "traces": {
                coord: tracer.events for coord, tracer in self.tracers.items()
            },
        }

    # -- checkpoint ---------------------------------------------------------

    def snapshot(self) -> dict:
        """Complete shard state as tagged JSON (see `repro.checkpoint`).

        The generic capture skips tracers as wiring, but this shard's
        :class:`_BufferTracer` buffers *are* state — their events feed
        the merged trace at harvest — so they are captured explicitly,
        keyed ``"stage,index"`` to stay JSON-safe.
        """
        from repro.checkpoint import snapshot_state

        state = snapshot_state(self)
        state["tracers"] = {
            f"{stage},{index}": [dict(event) for event in tracer.events]
            for (stage, index), tracer in sorted(self.tracers.items())
        }
        return state

    def restore(self, snapshot: dict) -> None:
        """Restore a :meth:`snapshot` capture onto this freshly built
        shard (same spec, shard_id, n_shards, and flags)."""
        from repro.checkpoint import restore_state

        snapshot = dict(snapshot)
        buffered = snapshot.pop("tracers", {})
        restore_state(self, snapshot)
        for key, events in buffered.items():
            stage, index = (int(part) for part in key.split(","))
            self.tracers[(stage, index)].events = [
                dict(event) for event in events
            ]


def _merge_harvests(
    spec: FabricSpec,
    harvests: list[dict],
    tracer,
    collect_percentiles: bool,
) -> FabricResult:
    """Fold shard harvests into one result, in canonical switch order.

    The fold order is fixed (egress index ascending, events by
    ``(slot, stage, index, emission order)``) and identical whether one
    shard or many produced the pieces — this is where bit-identity
    across shard counts is decided, so nothing here may depend on shard
    boundaries.
    """
    egress_stats: dict[int, OnlineStats] = {}
    egress_samples: dict[int, list[int]] = {}
    for harvest in harvests:
        egress_stats.update(harvest["egress_stats"])
        egress_samples.update(harvest["egress_samples"])

    stats = None
    for index in sorted(egress_stats):
        shard_stats = egress_stats[index]
        stats = shard_stats if stats is None else stats.merge(shard_stats)
    if stats is None:
        stats = OnlineStats()

    percentiles: dict[float, float] = {}
    if collect_percentiles:
        samples: list[int] = []
        for index in sorted(egress_samples):
            samples.extend(egress_samples[index])
        percentiles = latency_percentiles(np.asarray(samples))

    if tracer is not None:
        events: list[tuple[int, int, int, int, dict]] = []
        for harvest in harvests:
            for (stage, index), buffer in harvest["traces"].items():
                events.extend(
                    (event["slot"], stage, index, seq, event)
                    for seq, event in enumerate(buffer)
                )
        events.sort(key=lambda item: item[:4])
        for *_, event in events:
            tracer.emit(event)

    def total(key: str) -> int:
        return sum(harvest[key] for harvest in harvests)

    flow_counts = flow_delay = None
    if any(h["flow_counts"] is not None for h in harvests):
        flow_counts = sum(
            h["flow_counts"] for h in harvests if h["flow_counts"] is not None
        )
        flow_delay = sum(
            h["flow_delay"] for h in harvests if h["flow_delay"] is not None
        )

    stage_forwards = [0] * spec.stages
    for harvest in harvests:
        for stage, count in enumerate(harvest["stage_forwards"]):
            stage_forwards[stage] += count

    forwarded = total("forwarded")
    port_slots = spec.n_ports * spec.config.measure_slots
    return FabricResult(
        spec=spec,
        mean_latency=stats.mean,
        std_latency=stats.std,
        min_latency=stats.min if stats.count else math.nan,
        max_latency=stats.max if stats.count else math.nan,
        offered=total("offered"),
        forwarded=forwarded,
        dropped=total("dropped"),
        throughput=forwarded / port_slots if port_slots else math.nan,
        generated=total("generated"),
        delivered=total("delivered"),
        blocked_grants=total("blocked_grants"),
        backpressure_slots=total("backpressure_slots"),
        masked_grants=total("masked_grants"),
        fault_events=total("fault_events"),
        recovery_events=total("recovery_events"),
        degraded_slots=total("degraded_slots"),
        stage_forwards=tuple(stage_forwards),
        percentiles=percentiles,
        flow_counts=flow_counts,
        flow_delay=flow_delay,
    )


def _drive_blocks(
    spec: FabricSpec,
    engines: list[FabricShard],
    *,
    start_slot: int = 0,
    inbound_d: list[list[tuple]] | None = None,
    inbound_c: list[list[tuple]] | None = None,
    run_spec: dict | None = None,
    checkpoint_path=None,
    checkpoint_every: int | None = None,
    stop_at_slot: int | None = None,
) -> list[dict]:
    """Advance inline engines block by block, checkpointing at barriers.

    The checkpoint-capable drive loop shared by `run_fabric` and
    `repro.fabric.checkpoint.resume_fabric`. Blocks are capped so a
    barrier lands exactly on every ``checkpoint_every`` multiple and on
    ``stop_at_slot``; a checkpoint is written at each cadence barrier
    (and at the stop slot) but never at run completion.
    """
    shards = len(engines)
    owner = {
        coord: shard_id
        for shard_id, engine in enumerate(engines)
        for coord in engine.owned
    }
    if inbound_d is None:
        inbound_d = [[] for _ in range(shards)]
    if inbound_c is None:
        inbound_c = [[] for _ in range(shards)]
    total_slots = spec.config.total_slots
    stop = total_slots if stop_at_slot is None else min(stop_at_slot, total_slots)
    block = spec.link_delay
    next_due = None
    if checkpoint_every is not None:
        next_due = (start_slot // checkpoint_every + 1) * checkpoint_every

    slot = start_slot
    while slot < stop:
        n_slots = min(block, stop - slot)
        if next_due is not None:
            n_slots = min(n_slots, next_due - slot)
        next_d: list[list[tuple]] = [[] for _ in range(shards)]
        next_c: list[list[tuple]] = [[] for _ in range(shards)]
        for shard_id, engine in enumerate(engines):
            out_d, out_c = engine.run_block(
                slot, n_slots, inbound_d[shard_id], inbound_c[shard_id]
            )
            for message in out_d:
                next_d[owner[(message[1], message[2])]].append(message)
            for message in out_c:
                next_c[owner[(message[1], message[2])]].append(message)
        inbound_d, inbound_c = next_d, next_c
        slot += n_slots
        if checkpoint_path is not None and slot < total_slots:
            at_cadence = next_due is not None and slot >= next_due
            if at_cadence or slot == stop_at_slot:
                from repro.fabric.checkpoint import write_fabric_checkpoint

                write_fabric_checkpoint(
                    checkpoint_path, run_spec, slot, engines,
                    inbound_d, inbound_c,
                )
            if next_due is not None:
                while next_due <= slot:
                    next_due += checkpoint_every
    return [engine.harvest() for engine in engines]


def run_fabric(
    spec: FabricSpec,
    *,
    shards: int = 1,
    backend: str = "inline",
    tracer=None,
    metrics=None,
    exporter=None,
    collect_percentiles: bool = False,
    collect_flows: bool = False,
    fast: bool = False,
    offline_routing=None,
    checkpoint_path=None,
    checkpoint_every: int | None = None,
    stop_at_slot: int | None = None,
) -> FabricResult:
    """Simulate one :class:`~repro.fabric.spec.FabricSpec` point.

    ``shards=1`` runs the serial reference engine in-process.
    ``shards=W`` partitions the switches across ``W`` shards advancing
    in ``link_delay``-slot blocks with boundary exchange at each
    barrier; ``backend`` picks ``"inline"`` (same process — the
    invariance-testing harness) or ``"process"`` (one worker process
    per shard via :mod:`repro.fabric.shard`). Results are bit-identical
    across shard counts and backends.

    ``tracer`` collects per-switch events (each stamped with a
    ``switch`` label) merged in canonical order after the run;
    ``metrics``/``exporter`` attach live per-stage gauges and periodic
    OpenMetrics snapshots (single-shard engine only — live telemetry
    has no meaning half-merged). ``fast`` swaps every stage scheduler
    for its :mod:`repro.fastpath` kernel when one exists.

    ``checkpoint_path``/``checkpoint_every``/``stop_at_slot`` write
    per-shard checkpoints at barrier slots so a killed run resumes via
    :func:`repro.fabric.checkpoint.resume_fabric` with bit-identical
    results (inline engines only; not with live metrics/exporters or
    ``offline_routing``). See ``docs/CHECKPOINT.md``.
    """
    from repro.obs.serve import effective_exporter

    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if backend not in ("inline", "process"):
        raise ValueError(f"backend must be 'inline' or 'process', got {backend!r}")
    if checkpoint_path is None and (
        checkpoint_every is not None or stop_at_slot is not None
    ):
        raise ValueError(
            "checkpoint_every/stop_at_slot need a checkpoint_path to write to"
        )
    if checkpoint_path is not None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if stop_at_slot is not None and stop_at_slot < 0:
            raise ValueError(f"stop_at_slot must be >= 0, got {stop_at_slot}")
        if backend == "process":
            raise ValueError(
                "checkpointing needs the inline engines (backend='inline')"
            )
        if metrics is not None or exporter is not None:
            raise ValueError(
                "checkpointing does not support live metrics/exporters"
            )
        if offline_routing is not None:
            raise ValueError(
                "checkpointing cannot serialise an offline_routing table"
            )
    shards = min(shards, spec.n_switches)
    exporter = effective_exporter(exporter)
    if exporter is not None and metrics is None:
        metrics = exporter.registry
    if shards > 1 and metrics is not None:
        raise ValueError(
            "live metrics/exporter require the single-shard engine "
            "(shards=1); pass a tracer for sharded observability"
        )
    tracer = effective_tracer(tracer)
    tracing = tracer is not None

    total_slots = spec.config.total_slots
    shard_kwargs = dict(
        collect_percentiles=collect_percentiles,
        collect_flows=collect_flows,
        tracing=tracing,
        fast=fast,
        offline_routing=offline_routing,
    )

    if checkpoint_path is not None:
        from repro.fabric.checkpoint import make_fabric_run_spec

        engines = [
            FabricShard(spec, shard_id, shards, **shard_kwargs)
            for shard_id in range(shards)
        ]
        run_spec = make_fabric_run_spec(
            spec=spec,
            shards=shards,
            collect_percentiles=collect_percentiles,
            collect_flows=collect_flows,
            tracing=tracing,
            fast=fast,
            checkpoint_every=checkpoint_every,
        )
        harvests = _drive_blocks(
            spec,
            engines,
            run_spec=run_spec,
            checkpoint_path=checkpoint_path,
            checkpoint_every=checkpoint_every,
            stop_at_slot=stop_at_slot,
        )
    elif shards == 1:
        shard = FabricShard(spec, 0, 1, **shard_kwargs)
        if metrics is not None:
            _attach_metrics(metrics, shard)
        for slot in range(total_slots):
            shard._slot(slot)
            if exporter is not None and (slot + 1) % _SLOT_BLOCK == 0:
                exporter.tick(slot)
        if exporter is not None and total_slots:
            exporter.write(total_slots - 1)
        harvests = [shard.harvest()]
    elif backend == "process":
        from repro.fabric.shard import run_sharded_process

        harvests = run_sharded_process(spec, shards, shard_kwargs)
    else:
        harvests = _run_sharded_inline(spec, shards, shard_kwargs)

    return _merge_harvests(spec, harvests, tracer, collect_percentiles)


def _run_sharded_inline(
    spec: FabricSpec, shards: int, shard_kwargs: dict
) -> list[dict]:
    """All shards in one process, exchanging at every block barrier —
    the cheap harness the invariance property tests drive."""
    engines = [
        FabricShard(spec, shard_id, shards, **shard_kwargs)
        for shard_id in range(shards)
    ]
    owner = {
        coord: shard_id
        for shard_id, engine in enumerate(engines)
        for coord in engine.owned
    }
    inbound_d: list[list[tuple]] = [[] for _ in range(shards)]
    inbound_c: list[list[tuple]] = [[] for _ in range(shards)]
    total_slots = spec.config.total_slots
    block = spec.link_delay
    slot = 0
    while slot < total_slots:
        n_slots = min(block, total_slots - slot)
        next_d: list[list[tuple]] = [[] for _ in range(shards)]
        next_c: list[list[tuple]] = [[] for _ in range(shards)]
        for shard_id, engine in enumerate(engines):
            out_d, out_c = engine.run_block(
                slot, n_slots, inbound_d[shard_id], inbound_c[shard_id]
            )
            for message in out_d:
                next_d[owner[(message[1], message[2])]].append(message)
            for message in out_c:
                next_c[owner[(message[1], message[2])]].append(message)
        inbound_d, inbound_c = next_d, next_c
        slot += n_slots
    return [engine.harvest() for engine in engines]


def _attach_metrics(metrics, shard: FabricShard) -> None:
    """Register the per-stage occupancy gauges on a live registry."""
    spec = shard.spec

    def collect() -> None:
        for stage in range(spec.stages):
            metrics.gauge(f"stage{stage}_queued").set(shard.stage_queued(stage))
        metrics.gauge("fabric_generated").set(shard.generated)
        metrics.gauge("fabric_delivered").set(shard.delivered)
        metrics.gauge("fabric_offered").set(shard.offered)
        metrics.gauge("fabric_forwarded").set(shard.forwarded)
        metrics.gauge("fabric_blocked_grants").set(
            sum(sw.blocked_grants for sw in shard.switches.values())
        )
        for stage in range(spec.stages - 1):
            available = sum(
                int(credits.sum())
                for (s, _), credits in shard._credits.items()
                if s == stage
            )
            metrics.gauge(f"stage{stage}_credits").set(available)

    metrics.add_collector("fabric-live", collect)
