"""Process-parallel execution of a sharded fabric.

One worker process per :class:`~repro.fabric.sim.FabricShard`, driven in
lock-step ``link_delay``-slot blocks by the parent, which routes each
block's outbound boundary messages (packet deliveries and credit
returns) to the owning shard before the next block starts. The exchange
protocol and the shard engine are exactly the ones the inline backend
uses, so the process backend is bit-identical to ``shards=1`` and to
the inline coordinator — only the wall-clock changes.

This generalises the sweep layer's worker-pool pattern
(:mod:`repro.sweep.parallel`) from "one simulation point per worker" to
"one fabric shard per worker with boundary-queue exchange at slot-block
barriers": workers hold *state* across messages instead of mapping
independent tasks, so the transport is a dedicated pipe per worker, not
a shared task queue.

The barrier per block costs one pipe round-trip per shard; with the
paper-scale fabrics (tens of switches, ``link_delay`` of a few slots)
that overhead is only worth paying when the per-block compute is large
— benchmark before preferring ``backend="process"`` over ``"inline"``.
Workers fork where the platform supports it (like
:class:`repro.sweep.runner.SweepRunner`'s pool) and fall back to spawn
elsewhere; the worker entry point is module-level either way.
"""

from __future__ import annotations

import multiprocessing

from repro.fabric.spec import FabricSpec

__all__ = ["run_sharded_process"]


def _shard_worker(
    spec: FabricSpec,
    shard_id: int,
    n_shards: int,
    shard_kwargs: dict,
    conn,
) -> None:
    """Worker loop: run blocks on request, send the harvest at the end.

    Protocol (parent -> worker): ``(first_slot, n_slots, deliveries,
    credits)`` tuples, then ``None`` to finish. Worker -> parent: the
    block's outbound ``(deliveries, credits)`` per block, then the
    shard harvest.
    """
    from repro.fabric.sim import FabricShard

    engine = FabricShard(spec, shard_id, n_shards, **shard_kwargs)
    while True:
        message = conn.recv()
        if message is None:
            break
        first_slot, n_slots, deliveries, credits = message
        conn.send(engine.run_block(first_slot, n_slots, deliveries, credits))
    conn.send(engine.harvest())
    conn.close()


def run_sharded_process(
    spec: FabricSpec, shards: int, shard_kwargs: dict
) -> list[dict]:
    """Run ``shards`` worker processes to completion; returns their
    harvests in shard order (the merge step's canonical input)."""
    method = (
        "fork"
        if "fork" in multiprocessing.get_all_start_methods()
        else "spawn"
    )
    context = multiprocessing.get_context(method)
    workers = []
    pipes = []
    try:
        for shard_id in range(shards):
            parent_conn, child_conn = context.Pipe()
            worker = context.Process(
                target=_shard_worker,
                args=(spec, shard_id, shards, shard_kwargs, child_conn),
                daemon=True,
            )
            worker.start()
            child_conn.close()
            workers.append(worker)
            pipes.append(parent_conn)

        # The same owner map the shards derive for themselves.
        coords = [
            (stage, index)
            for stage in range(spec.stages)
            for index in range(spec.stage_counts[stage])
        ]
        total = len(coords)
        owner = {}
        for shard_id in range(shards):
            lo = shard_id * total // shards
            hi = (shard_id + 1) * total // shards
            for coord in coords[lo:hi]:
                owner[coord] = shard_id

        inbound_d: list[list[tuple]] = [[] for _ in range(shards)]
        inbound_c: list[list[tuple]] = [[] for _ in range(shards)]
        total_slots = spec.config.total_slots
        block = spec.link_delay
        slot = 0
        while slot < total_slots:
            n_slots = min(block, total_slots - slot)
            for shard_id, pipe in enumerate(pipes):
                pipe.send(
                    (slot, n_slots, inbound_d[shard_id], inbound_c[shard_id])
                )
            next_d: list[list[tuple]] = [[] for _ in range(shards)]
            next_c: list[list[tuple]] = [[] for _ in range(shards)]
            for pipe in pipes:
                out_d, out_c = pipe.recv()
                for message in out_d:
                    next_d[owner[(message[1], message[2])]].append(message)
                for message in out_c:
                    next_c[owner[(message[1], message[2])]].append(message)
            inbound_d, inbound_c = next_d, next_c
            slot += n_slots

        for pipe in pipes:
            pipe.send(None)
        return [pipe.recv() for pipe in pipes]
    finally:
        for pipe in pipes:
            pipe.close()
        for worker in workers:
            worker.join(timeout=60)
            if worker.is_alive():  # pragma: no cover - hung worker cleanup
                worker.terminate()
