"""A minimal discrete-event simulation kernel.

Classic calendar-queue design: a binary heap of timestamped events,
FIFO-stable for simultaneous events (a monotone sequence number breaks
timestamp ties), with ``schedule_at`` / ``schedule_after`` and bounded
or exhaustive ``run``. Event handlers are plain callables; handlers may
schedule further events, including at the current time.

Deliberately small — the point is an auditable substrate for the timing
models, not a framework.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Callable


class EventScheduler:
    """Timestamp-ordered event executor."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._queue: list[tuple[float, int, Callable[..., Any], tuple]] = []
        self._sequence = count()
        self.events_executed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    def __len__(self) -> int:
        return len(self._queue)

    def schedule_at(self, time: float, handler: Callable[..., Any], *args) -> None:
        """Schedule ``handler(*args)`` at absolute ``time``.

        Scheduling into the past is an error — it would silently reorder
        causality.
        """
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time}: simulation time is already {self._now}"
            )
        heapq.heappush(self._queue, (float(time), next(self._sequence), handler, args))

    def schedule_after(self, delay: float, handler: Callable[..., Any], *args) -> None:
        """Schedule ``handler(*args)`` after a non-negative ``delay``."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        self.schedule_at(self._now + delay, handler, *args)

    def step(self) -> bool:
        """Execute the earliest event; False if the queue is empty."""
        if not self._queue:
            return False
        time, _, handler, args = heapq.heappop(self._queue)
        self._now = time
        self.events_executed += 1
        handler(*args)
        return True

    def run_until(self, end_time: float) -> None:
        """Execute every event with timestamp <= ``end_time`` and leave
        the clock at ``end_time``."""
        while self._queue and self._queue[0][0] <= end_time:
            self.step()
        self._now = max(self._now, float(end_time))

    def run(self, max_events: int | None = None) -> int:
        """Run to quiescence (or ``max_events``); returns events executed."""
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        return executed
