"""Discrete-event simulation kernel and sub-slot timing models.

The slot-synchronous simulator in :mod:`repro.sim` is the right tool
for Figure 12; this package models *within-slot* timing: the paper's
Section 1 reports that the Clint prototype "is re-scheduled every
8.5 µs and the actual scheduling time is 1.3 µs", and Figure 5 lays out
how configuration, grant, transfer, and acknowledgment packets overlap
across the pipeline. :mod:`repro.des.clint_timing` reproduces those
numbers event by event on the generic kernel in
:mod:`repro.des.kernel`.
"""

from repro.des.kernel import EventScheduler
from repro.des.clint_timing import BulkChannelTiming, ClintTimingParams

__all__ = ["EventScheduler", "BulkChannelTiming", "ClintTimingParams"]
