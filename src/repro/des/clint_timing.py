"""Sub-slot timing model of the Clint bulk channel (Figure 5 at
nanosecond granularity).

Published numbers this model is built from:

* "The LCF scheduler is used to schedule a 16-port crossbar switch with
  an aggregate throughput of 32 Gbit/s" — 2 Gbit/s per port;
* "The switch is re-scheduled every 8.5 µs and the actual scheduling
  time is 1.3 µs" (Section 1);
* Table 2: checking the precalculated schedule takes 500 ns, the LCF
  calculation 758 ns — 1258 ns total at 66 MHz, which *is* the 1.3 µs;
* a bulk slot of 8.5 µs at 2 Gbit/s carries 17 000 bits ≈ 2.1 kB of
  payload per packet.

The event chain per scheduling cycle (one bulk slot):

    slot start -> cfg packets arrive (quick channel, 11 bytes each)
               -> precalc check (500 ns) -> LCF calculation (758 ns)
               -> gnt packets sent (5 bytes) -> [next slot] transfer
               -> [slot after] acknowledgment

The model verifies the paper's headroom claim: scheduling occupies only
~15% of the slot, so the schedule for slot ``c+1`` is comfortably ready
before slot ``c`` ends — the condition that makes the Figure 5 pipeline
work.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.des.kernel import EventScheduler
from repro.hw.timing import cycles_check_precalc, cycles_lcf, cycles_to_ns


@dataclass(frozen=True)
class ClintTimingParams:
    """Published Clint prototype parameters (all times in nanoseconds)."""

    n_ports: int = 16
    #: Bulk slot period: "re-scheduled every 8.5 us".
    slot_ns: float = 8500.0
    #: Scheduler clock (Section 6.1).
    clock_mhz: float = 66.0
    #: Per-port link rate: 32 Gbit/s aggregate over 16 ports.
    link_gbps: float = 2.0
    #: Quick-channel rate carrying cfg/gnt packets (same links).
    quick_gbps: float = 2.0
    #: Wire sizes of the Section 4.1 packet formats.
    cfg_bytes: int = 11
    gnt_bytes: int = 5

    @property
    def precalc_check_ns(self) -> float:
        return cycles_to_ns(cycles_check_precalc(self.n_ports), self.clock_mhz)

    @property
    def lcf_calc_ns(self) -> float:
        return cycles_to_ns(cycles_lcf(self.n_ports), self.clock_mhz)

    @property
    def scheduling_ns(self) -> float:
        """Total scheduling time (the paper's 1.3 us)."""
        return self.precalc_check_ns + self.lcf_calc_ns

    @property
    def cfg_serialisation_ns(self) -> float:
        return self.cfg_bytes * 8 / self.quick_gbps

    @property
    def gnt_serialisation_ns(self) -> float:
        return self.gnt_bytes * 8 / self.quick_gbps

    @property
    def bulk_packet_bits(self) -> float:
        """Payload bits one bulk slot carries at the link rate."""
        return self.slot_ns * self.link_gbps


@dataclass
class CycleRecord:
    """Timestamps of one scheduling cycle's events (ns)."""

    slot_index: int
    slot_start: float
    cfg_received: float = 0.0
    precalc_done: float = 0.0
    schedule_done: float = 0.0
    gnt_delivered: float = 0.0
    transfer_start: float = 0.0
    transfer_end: float = 0.0
    ack_delivered: float = 0.0

    @property
    def scheduling_latency(self) -> float:
        """cfg arrival to grant delivery."""
        return self.gnt_delivered - self.slot_start


class BulkChannelTiming:
    """Event-driven replay of the Figure 5 bulk pipeline."""

    def __init__(self, params: ClintTimingParams | None = None):
        self.params = params if params is not None else ClintTimingParams()
        self.kernel = EventScheduler()
        self.records: list[CycleRecord] = []

    def simulate(self, slots: int) -> list[CycleRecord]:
        """Run ``slots`` scheduling cycles and return their event times."""
        p = self.params
        records = [
            CycleRecord(slot_index=k, slot_start=k * p.slot_ns)
            for k in range(slots)
        ]

        def start_slot(k: int) -> None:
            record = records[k]
            # Configuration packets serialise over the quick channel.
            self.kernel.schedule_after(p.cfg_serialisation_ns, cfg_received, k)
            # The previous slot's schedule goes live now: transfer stage.
            if k > 0:
                prev = records[k - 1]
                prev.transfer_start = self.kernel.now
                prev.transfer_end = self.kernel.now + p.slot_ns
                self.kernel.schedule_after(p.slot_ns, ack_delivered, k - 1)

        def cfg_received(k: int) -> None:
            records[k].cfg_received = self.kernel.now
            self.kernel.schedule_after(p.precalc_check_ns, precalc_done, k)

        def precalc_done(k: int) -> None:
            records[k].precalc_done = self.kernel.now
            self.kernel.schedule_after(p.lcf_calc_ns, schedule_done, k)

        def schedule_done(k: int) -> None:
            records[k].schedule_done = self.kernel.now
            self.kernel.schedule_after(p.gnt_serialisation_ns, gnt_delivered, k)

        def gnt_delivered(k: int) -> None:
            records[k].gnt_delivered = self.kernel.now

        def ack_delivered(k: int) -> None:
            # Acknowledgments return on the quick channel one stage later.
            records[k].ack_delivered = self.kernel.now + p.gnt_serialisation_ns

        for k in range(slots):
            self.kernel.schedule_at(k * p.slot_ns, start_slot, k)
        self.kernel.run()
        self.records = records
        return records

    def scheduler_utilisation(self) -> float:
        """Fraction of the slot the scheduler is busy — the headroom the
        Figure 5 pipeline relies on (paper: 1.3 us of 8.5 us ≈ 15%)."""
        return self.params.scheduling_ns / self.params.slot_ns

    def max_reschedule_rate_mhz(self) -> float:
        """How fast the switch *could* be re-scheduled if the slot were
        shrunk to the scheduling time alone."""
        return 1000.0 / self.params.scheduling_ns
