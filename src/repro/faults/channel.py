"""Lossy control channels for the distributed schedulers.

The Section 5 protocol assumes every request/grant/accept message
arrives. These wrappers play the same protocol over a channel that
drops (and, for the agent system, delays) individual messages, with the
degradation semantics a robust switch must have:

* a lost **request** simply never reaches its target — the target
  grants among the requests it *did* receive;
* a lost **grant** is treated by the initiator as no-grant;
* a lost **accept** aborts the match — neither side commits, pointers
  do not advance, and the initiator retries in the next iteration (on
  the bus interconnect an accept is observed by everyone or by no one,
  so the two sides can never disagree about a match);
* the ``nrq``/``ngt`` counts carried by surviving messages are
  **advisory**: a sender counts the requests it *sent*, which may
  exceed what was delivered. Stale counts skew priorities, never
  correctness.

Under these rules every emitted schedule is still a valid matching over
the offered requests — property-tested across 0–100% loss — and the
scheduler never raises; total loss just yields an empty schedule.

Both wrappers draw each message's fate from the same pure
:class:`~repro.faults.injector.FaultInjector` hash keyed by
``(slot, iteration, kind, src, dst)``, so
:class:`LossyLCFDistributed` (matrix) and
:class:`LossyLCFDistributedAgents` (message objects) remain
*bit-identical* under pure drops, exactly like their perfect-channel
counterparts. Delays exist only in the agent system (a delayed message
is delivered one iteration late; delayed-past-the-last-iteration means
lost), so equivalence is only claimed for ``delay == 0``.

Scheduling cycles are numbered by an internal counter that increments
once per ``schedule()`` call and resets with ``reset()`` — aligned with
the simulation slot when the switch steps from slot 0, which is what
:func:`repro.sim.simulator.run_simulation` does.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import IterativeScheduler, Scheduler, rotating_argmin
from repro.core.lcf_dist import IterationTrace, LCFDistributed, LCFDistributedRR
from repro.fastpath.bitops import derive_cols, unpack_rows
from repro.fastpath.kernel import BitmaskKernelMixin
from repro.fastpath.lcf_dist import FastLCFDistributed, FastLCFDistributedRR
from repro.core.lcf_dist_agents import (
    AcceptMsg,
    GrantMsg,
    LCFDistributedAgents,
    MessageLog,
    RequestMsg,
)
from repro.faults.injector import ACCEPT, GRANT, REQUEST, FaultInjector
from repro.types import NO_GRANT, RequestMatrix, Schedule, empty_schedule

__all__ = [
    "LossyLCFDistributed",
    "LossyLCFDistributedRR",
    "LossyLCFDistributedAgents",
    "FastLossyLCFDistributed",
    "FastLossyLCFDistributedRR",
    "RequestLossFilter",
    "FastRequestLossFilter",
    "make_lossy_scheduler",
    "LOSSY_PROTOCOL_NAMES",
]


class _LossyIterationsMixin:
    """Shared cycle counter + lossy request/grant/accept iteration for
    the matrix-form distributed LCF schedulers."""

    injector: FaultInjector

    def _init_channel(self, injector: FaultInjector) -> None:
        self.injector = injector
        self._cycle = -1
        self._iteration = 0

    def reset(self) -> None:
        super().reset()
        self._cycle = -1
        self._iteration = 0

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        self._cycle += 1
        self._iteration = 0
        return super()._schedule(requests)

    def _iterate(
        self, requests: RequestMatrix, schedule: Schedule, out_matched: np.ndarray
    ) -> bool:
        n = self.n
        slot, iteration = self._cycle, self._iteration
        self._iteration += 1
        injector = self.injector
        in_unmatched = schedule == NO_GRANT

        live = requests & in_unmatched[:, np.newaxis] & ~out_matched[np.newaxis, :]
        if not live.any():
            return False  # genuinely converged: nothing left to request
        # Senders count what they *send* (the advisory nrq); targets
        # count what they *receive* (delivery decides ngt and grants).
        nrq = live.sum(axis=1)
        delivered = live.copy()
        if injector.plan.request_loss > 0.0:
            for i, j in zip(*np.nonzero(live)):
                if not injector.message_survives(
                    slot, iteration, REQUEST, int(i), int(j)
                ):
                    delivered[i, j] = False
        ngt = delivered.sum(axis=0)

        grants = np.zeros((n, n), dtype=bool)
        for j in np.flatnonzero(ngt):
            winner = rotating_argmin(nrq, delivered[:, j], int(self._grant_ptr[j]))
            if injector.message_survives(slot, iteration, GRANT, int(j), winner):
                grants[winner, j] = True

        trace = (
            IterationTrace(delivered.copy(), nrq.copy(), grants.copy(), ngt.copy())
            if self.record_trace
            else None
        )
        for i in range(n):
            offered = grants[i]
            if not offered.any():
                continue
            j = rotating_argmin(ngt, offered, int(self._accept_ptr[i]))
            if not injector.message_survives(slot, iteration, ACCEPT, i, int(j)):
                continue  # lost accept: the match never forms, retry next round
            schedule[i] = j
            out_matched[j] = True
            self._grant_ptr[j] = (i + 1) % n
            self._accept_ptr[i] = (j + 1) % n
            if trace is not None:
                trace.accepts.append((i, int(j)))
        if trace is not None:
            self.last_trace.append(trace)
        # Requests were attempted, so a later iteration may still match
        # even if every message died this round — no early convergence.
        return True


class LossyLCFDistributed(_LossyIterationsMixin, LCFDistributed):
    """``lcf_dist`` over a lossy control channel."""

    name = "lcf_dist"

    def __init__(
        self,
        n: int,
        injector: FaultInjector,
        iterations: int = LCFDistributed.DEFAULT_ITERATIONS,
    ):
        super().__init__(n, iterations)
        self._init_channel(injector)


class LossyLCFDistributedRR(_LossyIterationsMixin, LCFDistributedRR):
    """``lcf_dist_rr`` over a lossy control channel.

    The round-robin position walk is locally derived state (every agent
    advances the same ``(i, j)`` counter), so the overlay pre-match
    itself needs no message and is unaffected by channel loss.
    """

    name = "lcf_dist_rr"

    def __init__(
        self,
        n: int,
        injector: FaultInjector,
        iterations: int = LCFDistributedRR.DEFAULT_ITERATIONS,
    ):
        super().__init__(n, iterations)
        self._init_channel(injector)


class _FastLossyChannelMixin:
    """Bitset twin of :class:`_LossyIterationsMixin`: the same lossy
    request/grant/accept iteration, on the mask hot path of
    :class:`~repro.fastpath.lcf_dist.FastLCFDistributed`.

    The cycle counter lives in ``schedule_masks`` because the bitset
    kernels bypass ``_schedule`` entirely; either entry point advances
    it exactly once per scheduling cycle. Bit-identity with the matrix
    wrappers (schedules, traces, pointer evolution, cycle numbering) is
    property-tested in ``tests/fastpath/``.
    """

    injector: FaultInjector

    def _init_channel(self, injector: FaultInjector) -> None:
        self.injector = injector
        self._cycle = -1
        self._iteration = 0

    def reset(self) -> None:
        super().reset()
        self._cycle = -1
        self._iteration = 0

    def schedule_masks(
        self, rows: list[int], cols: list[int] | None = None
    ) -> list[int]:
        self._cycle += 1
        self._iteration = 0
        return super().schedule_masks(rows, cols)

    # Multi-word entry: join the word tuples and run the single-word
    # lossy iteration on big Python ints (correct at any width; the
    # lossy channel is modelled per message, so there is no word-tuned
    # variant — n > 64 lossy runs are rare and still beat numpy).
    schedule_words = BitmaskKernelMixin.schedule_words

    def _iterate_masks(
        self,
        rows: list[int],
        cols: list[int],
        schedule: list[int],
        in_free: int,
        out_free: int,
        full: int,
    ) -> tuple[bool, int, int]:
        n = self.n
        slot, iteration = self._cycle, self._iteration
        self._iteration += 1
        injector = self.injector

        # Request step: live rows and the sender-side (advisory) nrq,
        # bucketed by value for the grant scan (see the perfect-channel
        # kernel). A candidate's nrq counts what it *sent*, so buckets
        # are built from the pre-thinning live rows.
        nrq = [0] * n
        buckets: dict[int, int] = {}
        live = [0] * n
        total = 0
        remaining = in_free
        while remaining:
            low = remaining & -remaining
            remaining ^= low
            i = low.bit_length() - 1
            mask = rows[i] & out_free
            live[i] = mask
            count = mask.bit_count()
            nrq[i] = count
            total += count
            if count:
                buckets[count] = buckets.get(count, 0) | low
        if not total:
            return False, in_free, out_free  # genuinely converged
        values = sorted(buckets)

        # Channel: thin the delivered requests (delivery decides ngt
        # and grant candidates; nrq stays sender-side).
        delivered = live
        if injector.plan.request_loss > 0.0:
            survives = injector.message_survives
            delivered = live[:]
            remaining = in_free
            while remaining:
                low = remaining & -remaining
                remaining ^= low
                i = low.bit_length() - 1
                mask = delivered[i]
                scan = mask
                while scan:
                    bit = scan & -scan
                    scan ^= bit
                    if not survives(
                        slot, iteration, REQUEST, i, bit.bit_length() - 1
                    ):
                        mask ^= bit
                delivered[i] = mask
        delivered_cols = derive_cols(delivered, n)

        # Grant step over delivered requests; each grant is itself a
        # message that may die in flight (the pointer only advances on
        # a committed match, so a lost grant leaves state untouched).
        grant_ptr = self._grant_ptr
        record = self.record_trace
        trace_grants = [] if record else None
        offers = [0] * n
        ngt = [0] * n
        granted_inputs = 0
        remaining = out_free
        while remaining:
            out_bit = remaining & -remaining
            remaining ^= out_bit
            j = out_bit.bit_length() - 1
            cand = delivered_cols[j]
            if not cand:
                continue
            ngt[j] = cand.bit_count()
            for value in values:
                tied = cand & buckets[value]
                if tied:
                    start = grant_ptr[j]
                    rotated = (tied >> start) | ((tied << (n - start)) & full)
                    winner = start + (rotated & -rotated).bit_length() - 1
                    if winner >= n:
                        winner -= n
                    break
            if injector.message_survives(slot, iteration, GRANT, j, winner):
                offers[winner] |= out_bit
                granted_inputs |= 1 << winner
                if trace_grants is not None:
                    trace_grants.append((winner, j))

        trace = None
        if record:
            grants = np.zeros((n, n), dtype=bool)
            for gi, gj in trace_grants:
                grants[gi, gj] = True
            trace = IterationTrace(
                unpack_rows(delivered, n),
                np.array(nrq, dtype=np.int64),
                grants,
                np.array(ngt, dtype=np.int64),
            )

        # Accept step: a lost accept aborts the match — neither side
        # commits and the pointers stay put.
        accept_ptr = self._accept_ptr
        remaining = granted_inputs
        while remaining:
            in_bit = remaining & -remaining
            remaining ^= in_bit
            i = in_bit.bit_length() - 1
            mask = offers[i]
            start = accept_ptr[i]
            rotated = (mask >> start) | ((mask << (n - start)) & full)
            best = n + 1
            j = -1
            while rotated:
                low = rotated & -rotated
                out = start + low.bit_length() - 1
                if out >= n:
                    out -= n
                count = ngt[out]
                if count < best:
                    best = count
                    j = out
                    if count == 1:
                        break  # a granting target's ngt floor
                rotated ^= low
            if not injector.message_survives(slot, iteration, ACCEPT, i, j):
                continue  # lost accept: retry next round
            schedule[i] = j
            in_free &= ~in_bit
            out_free &= ~(1 << j)
            grant_ptr[j] = i + 1 if i + 1 < n else 0
            accept_ptr[i] = j + 1 if j + 1 < n else 0
            if trace is not None:
                trace.accepts.append((i, j))
        if trace is not None:
            self.last_trace.append(trace)
        # Requests were attempted, so a later iteration may still match
        # even if every message died this round — no early convergence.
        return True, in_free, out_free


class FastLossyLCFDistributed(_FastLossyChannelMixin, FastLCFDistributed):
    """Bitset twin of :class:`LossyLCFDistributed`."""

    name = "lcf_dist"

    def __init__(
        self,
        n: int,
        injector: FaultInjector,
        iterations: int = LCFDistributed.DEFAULT_ITERATIONS,
    ):
        super().__init__(n, iterations)
        self._init_channel(injector)


class FastLossyLCFDistributedRR(_FastLossyChannelMixin, FastLCFDistributedRR):
    """Bitset twin of :class:`LossyLCFDistributedRR` (the overlay
    pre-match is local state, so it needs no channel treatment)."""

    name = "lcf_dist_rr"

    def __init__(
        self,
        n: int,
        injector: FaultInjector,
        iterations: int = LCFDistributedRR.DEFAULT_ITERATIONS,
    ):
        super().__init__(n, iterations)
        self._init_channel(injector)


class LossyLCFDistributedAgents(LCFDistributedAgents):
    """The message-passing agent system over a lossy, delaying channel.

    Message objects are materialised exactly as in the perfect-channel
    implementation (and still accounted in :attr:`last_message_log` —
    the sender pays the wire bits whether or not delivery succeeds);
    the channel then drops or delays each one individually. Delayed
    requests/grants are delivered at the start of the next iteration;
    their carried counts are stale by then — advisory, per the module
    contract. Dropped and expired (delayed past the last iteration)
    messages are counted in :attr:`dropped_messages`.
    """

    name = "lcf_dist_agents"

    def __init__(
        self,
        n: int,
        injector: FaultInjector,
        iterations: int = LCFDistributedAgents.DEFAULT_ITERATIONS,
    ):
        super().__init__(n, iterations)
        self.injector = injector
        self._cycle = -1
        self.dropped_messages = 0
        self.delayed_messages = 0

    def reset(self) -> None:
        super().reset()
        self._cycle = -1
        self.dropped_messages = 0
        self.delayed_messages = 0

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        self._cycle += 1
        slot = self._cycle
        n = self.n
        injector = self.injector
        log = MessageLog()
        for i, agent in enumerate(self.inputs):
            agent.start_cycle(requests[i])
        for agent in self.outputs:
            agent.start_cycle()
        taken_outputs = np.zeros(n, dtype=bool)
        held_requests: list[RequestMsg] = []
        held_grants: list[GrantMsg] = []

        for iteration in range(self.iterations):
            last_round = iteration == self.iterations - 1

            # Request step; late deliveries from the previous round
            # arrive first, stale counts and all.
            inboxes: list[list[RequestMsg]] = [[] for _ in range(n)]
            for message in held_requests:
                inboxes[message.dst].append(message)
            held_requests = []
            attempted = 0
            for agent in self.inputs:
                for message in agent.make_requests(taken_outputs):
                    attempted += 1
                    log.requests += 1
                    log.total_bits += message.bits(n)
                    if not injector.message_survives(
                        slot, iteration, REQUEST, message.src, message.dst
                    ):
                        self.dropped_messages += 1
                        continue
                    if injector.message_delayed(
                        slot, iteration, REQUEST, message.src, message.dst
                    ):
                        self.delayed_messages += 1
                        if last_round:
                            self.dropped_messages += 1  # nothing left to hear it
                        else:
                            held_requests.append(message)
                        continue
                    inboxes[message.dst].append(message)
            if not attempted and not any(inboxes) and not held_grants:
                break

            # Grant step, same channel treatment.
            grant_boxes: list[list[GrantMsg]] = [[] for _ in range(n)]
            for message in held_grants:
                grant_boxes[message.dst].append(message)
            held_grants = []
            for agent in self.outputs:
                grant = agent.choose_grant(inboxes[agent.index])
                if grant is None:
                    continue
                log.grants += 1
                log.total_bits += grant.bits(n)
                if not injector.message_survives(
                    slot, iteration, GRANT, grant.src, grant.dst
                ):
                    self.dropped_messages += 1
                    continue
                if injector.message_delayed(
                    slot, iteration, GRANT, grant.src, grant.dst
                ):
                    self.delayed_messages += 1
                    if last_round:
                        self.dropped_messages += 1
                    else:
                        held_grants.append(grant)
                    continue
                grant_boxes[grant.dst].append(grant)

            # Accept step: an accept is observed by everyone on the bus
            # or by no one — a lost accept means no match anywhere.
            accepts: list[AcceptMsg] = []
            for agent in self.inputs:
                # A late grant may offer an output that was taken in the
                # meantime; the bus makes that visible, so the agent
                # ignores it rather than double-booking the output.
                offers = [
                    g for g in grant_boxes[agent.index] if not taken_outputs[g.src]
                ]
                accept = agent.choose_accept(offers)
                if accept is None:
                    continue
                log.accepts += 1
                log.total_bits += accept.bits(n)
                if not injector.message_survives(
                    slot, iteration, ACCEPT, accept.src, accept.dst
                ):
                    self.dropped_messages += 1
                    continue
                accepts.append(accept)
            for accept in accepts:
                if taken_outputs[accept.dst]:
                    # A delayed grant can coexist with the same output's
                    # fresh grant; if both get accepted this iteration,
                    # the bus order decides and the loser stays
                    # unmatched (it retries next iteration).
                    continue
                taken_outputs[accept.dst] = True
                for agent in self.inputs:
                    agent.observe_accept(accept)
                for agent in self.outputs:
                    agent.observe_accept(accept)

        self.last_message_log = log
        schedule = empty_schedule(n)
        for i, agent in enumerate(self.inputs):
            schedule[i] = agent.matched
        return schedule


class RequestLossFilter(Scheduler):
    """Generic degraded mode for schedulers without an explicit
    message protocol (PIM, iSLIP, wavefront, the central LCF family...).

    Models a lossy request channel: each request-matrix entry is
    independently dropped with ``plan.request_loss`` before the wrapped
    scheduler runs (keyed by the same pure hash as the distributed
    wrappers, iteration 0). Grant/accept loss rates do not apply — a
    centralized scheduler's grants travel with the crossbar setup, and
    per-iteration messages are internal to the matrix computation.
    """

    def __init__(self, scheduler: Scheduler, injector: FaultInjector):
        super().__init__(scheduler.n)
        self.scheduler = scheduler
        self.injector = injector
        self.name = scheduler.name
        self._cycle = -1

    def reset(self) -> None:
        self.scheduler.reset()
        self._cycle = -1

    def __getattr__(self, attribute):
        # Transparent for instrumentation: record_trace, last_trace,
        # rr_position, weight_kind... resolve on the wrapped scheduler.
        if attribute == "scheduler":
            raise AttributeError(attribute)
        return getattr(self.scheduler, attribute)

    def __setattr__(self, attribute, value):
        if attribute == "record_trace" and "scheduler" in self.__dict__:
            setattr(self.scheduler, attribute, value)
            return
        super().__setattr__(attribute, value)

    def _thin(self, matrix: np.ndarray) -> np.ndarray:
        rate = self.injector.plan.request_loss
        if rate <= 0.0:
            return matrix
        slot = self._cycle
        for i, j in zip(*np.nonzero(matrix)):
            if not self.injector.message_survives(slot, 0, REQUEST, int(i), int(j)):
                matrix[i, j] = 0
        return matrix

    def _schedule(self, requests: RequestMatrix) -> Schedule:
        return self.scheduler._schedule(self._thin(requests))

    def schedule(self, requests: RequestMatrix) -> Schedule:
        self._cycle += 1
        return super().schedule(requests)

    def schedule_weighted(self, weights: np.ndarray) -> Schedule:
        self._cycle += 1
        return self.scheduler.schedule_weighted(self._thin(weights.copy()))


class FastRequestLossFilter(RequestLossFilter):
    """:class:`RequestLossFilter` around a bitmask kernel.

    Defines ``schedule_masks`` *on the class* (the crossbar's fastpath
    capability probe is deliberately type-level, so the plain filter's
    attribute forwarding can never bypass the loss model) and thins the
    request bitmasks with the same pure per-crosspoint hash the matrix
    path uses — fast and reference degraded modes stay bit-identical.
    """

    def schedule_masks(
        self, rows: list[int], cols: list[int] | None = None
    ) -> list[int]:
        self._cycle += 1
        rate = self.injector.plan.request_loss
        if rate > 0.0:
            slot = self._cycle
            survives = self.injector.message_survives
            thinned = []
            for i, mask in enumerate(rows):
                remaining = mask
                while remaining:
                    low = remaining & -remaining
                    remaining ^= low
                    if not survives(slot, 0, REQUEST, i, low.bit_length() - 1):
                        mask ^= low
                thinned.append(mask)
            rows = thinned
            cols = None  # stale after thinning; the kernel re-derives
        return self.scheduler.schedule_masks(rows, cols)


#: Scheduler names whose full request/grant/accept protocol is modelled
#: at per-message granularity by a dedicated lossy implementation.
LOSSY_PROTOCOL_NAMES = frozenset({"lcf_dist", "lcf_dist_rr"})


def make_lossy_scheduler(
    name: str,
    n: int,
    injector: FaultInjector,
    iterations: int = IterativeScheduler.DEFAULT_ITERATIONS,
    seed: int = 0,
    fast: bool = False,
) -> Scheduler:
    """Registry-compatible factory for degraded-mode schedulers.

    ``lcf_dist`` / ``lcf_dist_rr`` get the faithful per-message lossy
    protocol; every other crossbar scheduler is wrapped in
    :class:`RequestLossFilter` so the whole registry can be swept along
    a loss axis without crashing or silently ignoring the plan.

    ``fast=True`` selects the bitset twin of the faithful lossy
    protocol for the distributed family, and wraps every other
    :mod:`repro.fastpath` kernel in :class:`FastRequestLossFilter` —
    bit-identical results, bitmask hot path. Names without a fast
    kernel fall back to the reference wrapper, so the flag is always
    safe.
    """
    if name == "lcf_dist":
        if fast:
            return FastLossyLCFDistributed(n, injector, iterations)
        return LossyLCFDistributed(n, injector, iterations)
    if name == "lcf_dist_rr":
        if fast:
            return FastLossyLCFDistributedRR(n, injector, iterations)
        return LossyLCFDistributedRR(n, injector, iterations)
    if fast:
        from repro.fastpath.registry import has_fast_kernel, make_fast_scheduler

        if has_fast_kernel(name):
            return FastRequestLossFilter(
                make_fast_scheduler(name, n, iterations=iterations, seed=seed),
                injector,
            )
    from repro.baselines.registry import make_scheduler

    return RequestLossFilter(
        make_scheduler(name, n, iterations=iterations, seed=seed), injector
    )
