"""Fault injection and resilience analysis (``repro.faults``).

The paper assumes a perfect control plane; this subsystem quantifies
what happens without one. It has four layers:

* :mod:`repro.faults.plan` — declarative :class:`FaultPlan` schedules
  (port outages, link outages, message loss/delay, CRC bursts);
* :mod:`repro.faults.injector` — the pure, seeded
  :class:`FaultInjector` that turns a plan into per-slot decisions;
* :mod:`repro.faults.channel` — lossy-channel wrappers for the
  distributed LCF protocol plus a generic request-loss filter for
  every other registry scheduler;
* :mod:`repro.faults.harness` — degradation-curve sweeps along
  message-loss and port-availability axes via the parallel sweep
  engine (CLI: ``lcf-faults``).
"""

from repro.faults.channel import (
    LOSSY_PROTOCOL_NAMES,
    LossyLCFDistributed,
    LossyLCFDistributedAgents,
    LossyLCFDistributedRR,
    RequestLossFilter,
    make_lossy_scheduler,
)
from repro.faults.injector import ACCEPT, GRANT, REQUEST, FaultInjector, hash01, hash_u64
from repro.faults.plan import (
    CrcBurst,
    FaultPlan,
    LinkOutage,
    PortDownInterval,
    PortDutyCycle,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "PortDownInterval",
    "PortDutyCycle",
    "LinkOutage",
    "CrcBurst",
    "LossyLCFDistributed",
    "LossyLCFDistributedRR",
    "LossyLCFDistributedAgents",
    "RequestLossFilter",
    "make_lossy_scheduler",
    "LOSSY_PROTOCOL_NAMES",
    "REQUEST",
    "GRANT",
    "ACCEPT",
    "hash_u64",
    "hash01",
]
