"""The seeded fault injector: a pure function from (plan, seed, query).

Every decision the injector makes — "is port 3 down in slot 512?",
"does the grant from output 2 to input 7 survive iteration 1 of slot
90?" — is computed by hashing the query coordinates together with the
seed (a splitmix64-style mix). There is **no mutable RNG stream**:

* the same query always returns the same answer, regardless of call
  order or how many other queries were made (replay-safe);
* two components asking about the *same logical message* (the matrix
  scheduler and the agent scheduler, say) get the *same* fate, which is
  what makes their lossy runs bit-identical;
* a simulation under a :class:`~repro.faults.plan.FaultPlan` stays a
  pure function of ``(config, scheduler, load, plan, seed)``, so the
  sweep cache and trace replay remain valid.

Per-slot topology masks are memoised (the switch asks several times per
slot) but the memo is only a cache of a pure function.
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector", "REQUEST", "GRANT", "ACCEPT"]

#: Control-message kinds, as hash-domain constants.
REQUEST, GRANT, ACCEPT = 1, 2, 3

_MASK64 = (1 << 64) - 1
#: Domain-separation salts so e.g. the loss draw and the delay draw of
#: one message are independent.
_SALT_LOSS = 0xA1
_SALT_DELAY = 0xA2
_SALT_CORRUPT = 0xA3


def _mix(x: int) -> int:
    """splitmix64 finalizer: avalanche one 64-bit word."""
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
    x = (x ^ (x >> 27)) * 0x94D049BB133111EB & _MASK64
    return x ^ (x >> 31)


def hash_u64(*parts: int) -> int:
    """Order-sensitive 64-bit hash of a tuple of ints."""
    h = 0x9E3779B97F4A7C15
    for part in parts:
        h = _mix((h + part) & _MASK64)
    return h


def hash01(*parts: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` keyed by the arguments."""
    return hash_u64(*parts) / 2.0**64


class FaultInjector:
    """Turns a :class:`FaultPlan` into concrete per-slot decisions.

    ``n`` is the switch port count (masks are ``n x n``); ``seed``
    separates the fault randomness of replicate runs the same way the
    traffic seed does — the resilience harness passes ``config.seed``.
    """

    def __init__(self, plan: FaultPlan, n: int, seed: int = 0):
        for interval in plan.port_down:
            if interval.port >= n:
                raise ValueError(
                    f"port_down names port {interval.port} on an n={n} switch"
                )
        for duty in plan.port_duty:
            if duty.port >= n:
                raise ValueError(
                    f"port_duty names port {duty.port} on an n={n} switch"
                )
        for outage in plan.link_down:
            if outage.input >= n or outage.output >= n:
                raise ValueError(
                    f"link_down names ({outage.input}, {outage.output}) "
                    f"on an n={n} switch"
                )
        self.plan = plan
        self.n = n
        self.seed = seed & _MASK64
        self._mask_slot = -1
        self._mask: np.ndarray | None = None
        self._down_in: np.ndarray | None = None
        self._down_out: np.ndarray | None = None

    # -- topology faults -----------------------------------------------------

    def _topology(self, slot: int) -> None:
        """Memoise down-port vectors and the request mask for one slot."""
        if slot == self._mask_slot:
            return
        n = self.n
        down_in = np.zeros(n, dtype=bool)
        down_out = np.zeros(n, dtype=bool)
        for interval in self.plan.port_down:
            if interval.active(slot):
                if interval.hits_input:
                    down_in[interval.port] = True
                if interval.hits_output:
                    down_out[interval.port] = True
        for duty in self.plan.port_duty:
            if duty.active(slot):
                if duty.hits_input:
                    down_in[duty.port] = True
                if duty.hits_output:
                    down_out[duty.port] = True
        mask = ~down_in[:, np.newaxis] & ~down_out[np.newaxis, :]
        for outage in self.plan.link_down:
            if outage.active(slot):
                mask[outage.input, outage.output] = False
        self._mask_slot = slot
        self._down_in = down_in
        self._down_out = down_out
        self._mask = mask

    def down_inputs(self, slot: int) -> np.ndarray:
        """Boolean vector of dead input sides this slot."""
        self._topology(slot)
        return self._down_in

    def down_outputs(self, slot: int) -> np.ndarray:
        """Boolean vector of dead output sides this slot."""
        self._topology(slot)
        return self._down_out

    def request_mask(self, slot: int) -> np.ndarray:
        """``(n, n)`` usability mask: True = the crosspoint works.

        Combines down input rows, down output columns, and individual
        link outages. The switch ANDs this into the request matrix
        before scheduling and filters any grant falling outside it.
        """
        self._topology(slot)
        return self._mask

    def degraded(self, slot: int) -> bool:
        """True iff any topology fault is active this slot."""
        self._topology(slot)
        return bool(self._down_in.any() or self._down_out.any()) or not bool(
            self._mask[~self._down_in][:, ~self._down_out].all()
        )

    # -- control-message faults ----------------------------------------------

    def _loss_rate(self, kind: int) -> float:
        if kind == REQUEST:
            return self.plan.request_loss
        if kind == GRANT:
            return self.plan.grant_loss
        return self.plan.accept_loss

    def message_survives(
        self, slot: int, iteration: int, kind: int, src: int, dst: int
    ) -> bool:
        """Fate of one control message, pure in its coordinates."""
        rate = self._loss_rate(kind)
        if rate <= 0.0:
            return True
        return hash01(self.seed, _SALT_LOSS, slot, iteration, kind, src, dst) >= rate

    def message_delayed(
        self, slot: int, iteration: int, kind: int, src: int, dst: int
    ) -> bool:
        """Whether a surviving request/grant arrives one iteration late
        (accepts are bus broadcasts — never delayed, see FaultPlan)."""
        if self.plan.delay <= 0.0 or kind == ACCEPT:
            return False
        return (
            hash01(self.seed, _SALT_DELAY, slot, iteration, kind, src, dst)
            < self.plan.delay
        )

    # -- Clint CRC corruption ------------------------------------------------

    def corrupts(self, slot: int, host: int, channel: str) -> bool:
        """True iff this host's packet on ``channel`` is hit this slot."""
        return any(
            burst.host == host and burst.channel == channel and burst.active(slot)
            for burst in self.plan.crc_bursts
        )

    def corruption_bit(self, slot: int, host: int, length_bytes: int) -> int:
        """Deterministic bit index to flip in a corrupted packet."""
        return hash_u64(self.seed, _SALT_CORRUPT, slot, host) % (length_bytes * 8)

    # -- classification pass-throughs ----------------------------------------

    @property
    def is_null(self) -> bool:
        return self.plan.is_null

    @property
    def has_message_faults(self) -> bool:
        return self.plan.has_message_faults

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultInjector(n={self.n}, seed={self.seed}, {self.plan.describe()})"
