"""``lcf-faults`` — degraded-mode runs and resilience degradation curves.

Two modes:

* **Single run** (default): simulate one scheduler under a fault plan
  assembled from the flags, print the fault/recovery timeline and a
  degradation summary, optionally writing the JSONL event trace.
* **Sweep** (``--loss-grid`` / ``--availability-grid``): degradation
  curves per scheduler through the parallel sweep engine, with ASCII
  plots and CSV/JSON artifacts.

Examples::

    lcf-faults --scheduler lcf_dist_rr --loss 0.1 \
        --port-down 3:200:400 --slots 1000 --trace-out faults.jsonl
    lcf-faults --schedulers lcf_dist,lcf_dist_rr,pim,islip \
        --loss-grid 0,0.05,0.1,0.2,0.3 --load 0.8 --workers 4 \
        --cache-dir .sweep-cache --csv loss.csv --json report.json
    lcf-faults --schedulers lcf_central_rr,islip \
        --availability-grid 1.0,0.95,0.9,0.8 --ports 8
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.baselines.registry import SPECIAL_SWITCH_NAMES, available_schedulers
from repro.faults.harness import (
    DEFAULT_AVAILABILITY_GRID,
    DEFAULT_LOSS_GRID,
    run_availability_sweep,
    run_loss_sweep,
)
from repro.faults.plan import FaultPlan, LinkOutage, PortDownInterval
from repro.ioutil import atomic_write_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import JsonlTracer, RingTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation


def _parse_port_down(text: str) -> PortDownInterval:
    """``port:start:end`` or ``port:start:end:side``."""
    parts = text.split(":")
    if len(parts) not in (3, 4):
        raise argparse.ArgumentTypeError(
            f"expected port:start:end[:side], got {text!r}"
        )
    try:
        port, start, end = (int(p) for p in parts[:3])
    except ValueError:
        raise argparse.ArgumentTypeError(f"non-integer field in {text!r}") from None
    side = parts[3] if len(parts) == 4 else "both"
    try:
        return PortDownInterval(port, start, end, side)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_link_down(text: str) -> LinkOutage:
    """``input:output:start:end``."""
    parts = text.split(":")
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            f"expected input:output:start:end, got {text!r}"
        )
    try:
        return LinkOutage(*(int(p) for p in parts))
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _parse_grid(text: str) -> tuple[float, ...]:
    try:
        return tuple(float(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"bad float grid {text!r}") from None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lcf-faults",
        description="Fault-injection runs and resilience degradation curves "
        "(LCF reproduction).",
    )
    parser.add_argument("--scheduler", default="lcf_dist_rr",
                        help="scheduler for single-run mode "
                        f"({', '.join(available_schedulers())})")
    parser.add_argument("--schedulers", default=None,
                        help="comma list for sweep modes "
                        "(default: lcf_dist,lcf_dist_rr,pim,islip)")
    parser.add_argument("--load", type=float, default=0.8)
    parser.add_argument("--ports", type=int, default=16)
    parser.add_argument("--slots", type=int, default=1000,
                        help="measured slots")
    parser.add_argument("--warmup", type=int, default=200)
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--traffic", default="bernoulli")
    # Fault plan (single-run mode).
    parser.add_argument("--loss", type=float, default=0.0,
                        help="uniform request/grant/accept loss probability")
    parser.add_argument("--delay", type=float, default=0.0,
                        help="probability a request/grant arrives one "
                        "iteration late")
    parser.add_argument("--port-down", action="append", default=[],
                        type=_parse_port_down, metavar="P:START:END[:SIDE]",
                        help="port outage interval (repeatable)")
    parser.add_argument("--link-down", action="append", default=[],
                        type=_parse_link_down, metavar="I:J:START:END",
                        help="single-crosspoint outage (repeatable)")
    parser.add_argument("--availability", type=float, default=None,
                        help="duty-cycled outages averaging this availability")
    # Sweep modes.
    parser.add_argument("--loss-grid", type=_parse_grid, default=None,
                        metavar="R0,R1,...",
                        help="sweep message-loss axis over these rates "
                        f"(e.g. {','.join(str(x) for x in DEFAULT_LOSS_GRID)})")
    parser.add_argument("--availability-grid", type=_parse_grid, default=None,
                        metavar="A0,A1,...",
                        help="sweep availability axis over these values (e.g. "
                        f"{','.join(str(x) for x in DEFAULT_AVAILABILITY_GRID)})")
    parser.add_argument("--replicates", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--fast", action="store_true",
                        help="run on the repro.fastpath bitmask kernels "
                        "(bit-identical results, shared cache entries)")
    parser.add_argument("--metric", default="throughput",
                        choices=("throughput", "mean_latency", "delivery"),
                        help="metric for the ASCII degradation plot")
    # Checkpointing (single-run mode).
    parser.add_argument("--admission", metavar="LOW:HIGH", default=None,
                        help="single-run mode: attach threshold admission "
                        "control with these occupancy watermarks")
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="single-run mode: checkpoint the run's state here")
    parser.add_argument("--checkpoint-every", metavar="N", type=int, default=None,
                        help="checkpoint cadence in slots (with --checkpoint)")
    parser.add_argument("--stop-at", metavar="SLOT", type=int, default=None,
                        help="pause at this slot after a final checkpoint")
    parser.add_argument("--resume", metavar="PATH", default=None,
                        help="resume a checkpointed run (fault plan and "
                        "scheduler come from the checkpoint; plan flags are "
                        "ignored)")
    # Artifacts.
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="single-run mode: write the JSONL event trace")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="write the degradation rows as CSV")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the degradation report as JSON")
    parser.add_argument("--quiet", action="store_true")
    return parser


def validate_common_args(args: argparse.Namespace, prog: str) -> str | None:
    """Shared CLI sanity checks; returns an error message or ``None``.

    argparse types catch malformed values; this catches well-formed
    nonsense (negative seeds, zero ports, empty grids) *before* any
    simulation runs or artifact file is opened, so a bad invocation
    exits non-zero without side effects.
    """
    if args.ports < 1:
        return f"{prog}: --ports must be >= 1, got {args.ports}"
    if args.slots < 0:
        return f"{prog}: --slots must be >= 0, got {args.slots}"
    if args.warmup < 0:
        return f"{prog}: --warmup must be >= 0, got {args.warmup}"
    if args.seed < 0:
        return f"{prog}: --seed must be >= 0, got {args.seed}"
    if not args.load > 0:
        return f"{prog}: --load must be > 0, got {args.load}"
    if getattr(args, "replicates", 1) < 1:
        return f"{prog}: --replicates must be >= 1, got {args.replicates}"
    if getattr(args, "workers", 1) < 1:
        return f"{prog}: --workers must be >= 1, got {args.workers}"
    for flag in ("loss_grid", "availability_grid"):
        grid = getattr(args, flag, None)
        if grid is not None and len(grid) == 0:
            name = flag.replace("_", "-")
            return f"{prog}: --{name} was given but contains no values"
    return None


def _build_plan(args: argparse.Namespace) -> FaultPlan:
    plan = FaultPlan(
        port_down=tuple(args.port_down),
        link_down=tuple(args.link_down),
        request_loss=args.loss,
        grant_loss=args.loss,
        accept_loss=args.loss,
        delay=args.delay,
    )
    if args.availability is not None:
        duty = FaultPlan.availability(args.ports, args.availability)
        plan = FaultPlan(
            port_down=plan.port_down,
            port_duty=duty.port_duty,
            link_down=plan.link_down,
            request_loss=plan.request_loss,
            grant_loss=plan.grant_loss,
            accept_loss=plan.accept_loss,
            delay=plan.delay,
        )
    return plan


def _parse_admission(text: str | None):
    """``LOW:HIGH`` → admission spec dict (None passes through)."""
    if text is None:
        return None
    low, sep, high = text.partition(":")
    if not sep:
        raise ValueError(f"expected LOW:HIGH, got {text!r}")
    return {"low": int(low), "high": int(high)}


def _resume_run(args: argparse.Namespace) -> int:
    from repro.checkpoint import CheckpointError, resume_simulation

    tracer = JsonlTracer(args.trace_out) if args.trace_out else None
    metrics = MetricsRegistry()
    try:
        result = resume_simulation(args.resume, tracer=tracer, metrics=metrics)
    except CheckpointError as exc:
        print(f"lcf-faults: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            tracer.close()
    if not args.quiet:
        print(
            f"{result.scheduler} load={result.load:g} (resumed): "
            f"throughput {result.throughput:.3f}, "
            f"mean latency {result.mean_latency:.2f}, "
            f"offered {result.offered}, forwarded {result.forwarded}, "
            f"dropped {result.dropped}, shed {result.shed}"
        )
    if args.trace_out and not args.quiet:
        print(f"trace written to {args.trace_out}")
    if args.json:
        atomic_write_text(
            args.json,
            json.dumps(
                {"mode": "resume", "scheduler": result.scheduler,
                 "load": result.load, "row": result.row()},
                indent=2,
                allow_nan=True,
            ),
        )
    return 0


def _single_run(args: argparse.Namespace) -> int:
    if args.scheduler in SPECIAL_SWITCH_NAMES:
        print(f"lcf-faults: {args.scheduler!r} uses a dedicated switch model "
              "without fault support", file=sys.stderr)
        return 2
    try:
        plan = _build_plan(args)
    except ValueError as exc:
        print(f"lcf-faults: invalid fault plan: {exc}", file=sys.stderr)
        return 2
    config = SimConfig(
        n_ports=args.ports,
        iterations=args.iterations,
        warmup_slots=args.warmup,
        measure_slots=args.slots,
        seed=args.seed,
    )
    tracer = (
        JsonlTracer(args.trace_out) if args.trace_out else RingTracer(1 << 20)
    )
    metrics = MetricsRegistry()
    from repro.checkpoint import CheckpointError

    try:
        with tracer:
            result = run_simulation(
                config,
                args.scheduler,
                args.load,
                traffic=args.traffic,
                tracer=tracer,
                metrics=metrics,
                faults=plan,
                fast=args.fast,
                admission=_parse_admission(args.admission),
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.checkpoint_every,
                stop_at_slot=args.stop_at,
            )
    except CheckpointError as exc:
        print(f"lcf-faults: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(f"fault plan: {plan.describe()}")
        if args.checkpoint:
            print(f"checkpoint at {args.checkpoint}")
        print(
            f"{args.scheduler} load={args.load:g}: "
            f"throughput {result.throughput:.3f}, "
            f"mean latency {result.mean_latency:.2f}, "
            f"offered {result.offered}, forwarded {result.forwarded}, "
            f"dropped {result.dropped}, shed {result.shed}"
        )
        if "fault_events" in metrics:
            print(
                f"faults: {metrics.counter('fault_events').value} down, "
                f"{metrics.counter('recovery_events').value} recovered, "
                f"{metrics.counter('degraded_slots').value} degraded slot(s), "
                f"{metrics.counter('masked_grants').value} masked grant(s)"
            )
        if isinstance(tracer, RingTracer):
            for event in tracer.of_type("fault") + tracer.of_type("recovery"):
                print(f"  {event}")
    if args.trace_out and not args.quiet:
        print(f"trace written to {args.trace_out}")
    if args.json:
        atomic_write_text(
            args.json,
            json.dumps(
                {
                    "mode": "single",
                    "scheduler": args.scheduler,
                    "load": args.load,
                    "plan": plan.describe(),
                    "row": result.row(),
                },
                indent=2,
            ),
        )
    return 0


def _sweep(args: argparse.Namespace) -> int:
    schedulers = tuple(
        (args.schedulers or "lcf_dist,lcf_dist_rr,pim,islip").split(",")
    )
    bad = [s for s in schedulers if s in SPECIAL_SWITCH_NAMES]
    if bad:
        print(f"lcf-faults: {bad} use dedicated switch models without fault "
              "support", file=sys.stderr)
        return 2
    config = SimConfig(
        n_ports=args.ports,
        iterations=args.iterations,
        warmup_slots=args.warmup,
        measure_slots=args.slots,
        seed=args.seed,
    )
    common = dict(
        load=args.load,
        config=config,
        traffic=args.traffic,
        replicates=args.replicates,
        processes=args.workers,
        cache=args.cache_dir,
        progress=not args.quiet,
        fast=args.fast,
    )
    try:
        if args.loss_grid is not None:
            report = run_loss_sweep(
                schedulers, rates=args.loss_grid, delay=args.delay, **common,
            )
        else:
            report = run_availability_sweep(
                schedulers, availabilities=args.availability_grid, **common,
            )
    except ValueError as exc:
        print(f"lcf-faults: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(report.plot(metric=args.metric))
        print(report.summary())
    if args.csv:
        atomic_write_text(args.csv, report.to_csv())
        if not args.quiet:
            print(f"degradation rows written to {args.csv}")
    if args.json:
        atomic_write_text(
            args.json,
            json.dumps(
                {
                    "mode": report.axis,
                    "load": report.load,
                    "schedulers": list(report.schedulers),
                    "values": list(report.values),
                    "rows": report.rows(),
                },
                indent=2,
                allow_nan=True,
            ),
        )
        if not args.quiet:
            print(f"degradation report written to {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    error = validate_common_args(args, "lcf-faults")
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    if args.loss_grid is not None and args.availability_grid is not None:
        print("lcf-faults: choose one of --loss-grid / --availability-grid",
              file=sys.stderr)
        return 2
    if (args.checkpoint_every is not None or args.stop_at is not None) and not (
        args.checkpoint or args.resume
    ):
        print("lcf-faults: --checkpoint-every/--stop-at need --checkpoint",
              file=sys.stderr)
        return 2
    if args.admission is not None:
        try:
            _parse_admission(args.admission)
        except ValueError as exc:
            print(f"lcf-faults: bad --admission: {exc}", file=sys.stderr)
            return 2
    if args.resume:
        if args.checkpoint:
            print("lcf-faults: --resume and --checkpoint are mutually "
                  "exclusive", file=sys.stderr)
            return 2
        return _resume_run(args)
    if args.loss_grid is not None or args.availability_grid is not None:
        return _sweep(args)
    return _single_run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
