"""Fault schedules: *what* goes wrong, *where*, and *when*.

A :class:`FaultPlan` is a frozen, declarative description of every
failure a run should experience — port outages, per-link request-mask
outages, control-message loss/delay probabilities, and CRC corruption
bursts on the Clint channels. It contains **no randomness**: the plan
says "grant messages are lost with probability 0.1"; the
:class:`~repro.faults.injector.FaultInjector` turns that into concrete,
seed-deterministic per-message decisions.

Plans round-trip through :meth:`FaultPlan.to_spec` /
:meth:`FaultPlan.from_spec` as flat ``(key, value)`` tuples so they can
ride inside a frozen :class:`~repro.sweep.spec.SweepSpec` and be folded
into the sweep cache key — a faulted sweep point caches and resumes
exactly like a fault-free one.

All intervals are half-open ``[start, end)`` in simulation slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = [
    "PortDownInterval",
    "PortDutyCycle",
    "LinkOutage",
    "CrcBurst",
    "FaultPlan",
]


def _check_interval(name: str, start: int, end: int) -> None:
    if start < 0 or end < start:
        raise ValueError(f"{name}: need 0 <= start <= end, got [{start}, {end})")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be a probability in [0, 1], got {value}")


@dataclass(frozen=True)
class PortDownInterval:
    """Port ``port`` is dead for slots ``start <= slot < end``.

    ``side`` selects which half of the port fails: ``"input"`` (the
    ingress line card — no injection, no requests from this input),
    ``"output"`` (the egress — no grants to this output), or ``"both"``.
    """

    port: int
    start: int
    end: int
    side: str = "both"

    def __post_init__(self) -> None:
        if self.port < 0:
            raise ValueError(f"port must be >= 0, got {self.port}")
        _check_interval("PortDownInterval", self.start, self.end)
        if self.side not in ("input", "output", "both"):
            raise ValueError(f"side must be input/output/both, got {self.side!r}")

    def active(self, slot: int) -> bool:
        return self.start <= slot < self.end

    @property
    def hits_input(self) -> bool:
        return self.side in ("input", "both")

    @property
    def hits_output(self) -> bool:
        return self.side in ("output", "both")


@dataclass(frozen=True)
class PortDutyCycle:
    """Periodic port outage: ``port`` is down whenever
    ``(slot - offset) % period < down`` — the primitive behind the
    resilience harness's availability axis (mean availability is
    ``1 - down/period``). A compact alternative to enumerating
    :class:`PortDownInterval` records for long runs."""

    port: int
    period: int
    down: int
    offset: int = 0
    side: str = "both"

    def __post_init__(self) -> None:
        if self.port < 0:
            raise ValueError(f"port must be >= 0, got {self.port}")
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period}")
        if not 0 <= self.down <= self.period:
            raise ValueError(
                f"down must be in [0, period], got {self.down} of {self.period}"
            )
        if self.side not in ("input", "output", "both"):
            raise ValueError(f"side must be input/output/both, got {self.side!r}")

    def active(self, slot: int) -> bool:
        return (slot - self.offset) % self.period < self.down

    @property
    def hits_input(self) -> bool:
        return self.side in ("input", "both")

    @property
    def hits_output(self) -> bool:
        return self.side in ("output", "both")


@dataclass(frozen=True)
class LinkOutage:
    """The single crosspoint ``(input, output)`` is unusable for
    ``start <= slot < end`` — its request-matrix entry is masked while
    every other pair of both ports keeps working."""

    input: int
    output: int
    start: int
    end: int

    def __post_init__(self) -> None:
        if self.input < 0 or self.output < 0:
            raise ValueError(
                f"link endpoints must be >= 0, got ({self.input}, {self.output})"
            )
        _check_interval("LinkOutage", self.start, self.end)

    def active(self, slot: int) -> bool:
        return self.start <= slot < self.end


@dataclass(frozen=True)
class CrcBurst:
    """Clint packets of one host are corrupted in flight (one bit flip
    per packet) for ``start <= slot < end``.

    ``channel`` selects the victim: ``"cfg"`` (host -> switch
    configuration packets) or ``"gnt"`` (switch -> host grant packets).
    The CRC-16 path must detect every corrupted packet — the burst
    exercises the Section 4.1 ``CRCErr`` / ``linkErr`` reporting.
    """

    host: int
    start: int
    end: int
    channel: str = "cfg"

    def __post_init__(self) -> None:
        if self.host < 0:
            raise ValueError(f"host must be >= 0, got {self.host}")
        _check_interval("CrcBurst", self.start, self.end)
        if self.channel not in ("cfg", "gnt"):
            raise ValueError(f"channel must be cfg or gnt, got {self.channel!r}")

    def active(self, slot: int) -> bool:
        return self.start <= slot < self.end


@dataclass(frozen=True)
class FaultPlan:
    """Declarative fault schedule for one run (empty = perfect hardware).

    Message-loss probabilities apply to the distributed schedulers'
    request/grant/accept control plane per *individual message*;
    ``delay`` is the probability a request or grant is delivered one
    iteration late instead of on time (agents channel; accepts are bus
    broadcasts and are lost or delivered, never delayed).
    """

    port_down: tuple[PortDownInterval, ...] = ()
    port_duty: tuple[PortDutyCycle, ...] = ()
    link_down: tuple[LinkOutage, ...] = ()
    #: Per-message loss probability of request messages (carrying nrq).
    request_loss: float = 0.0
    #: Per-message loss probability of grant messages (carrying ngt).
    grant_loss: float = 0.0
    #: Per-message loss probability of accept messages.
    accept_loss: float = 0.0
    #: Probability a request/grant arrives one iteration late.
    delay: float = 0.0
    crc_bursts: tuple[CrcBurst, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Specs deserialised from sweep kwargs arrive as nested tuples.
        object.__setattr__(
            self,
            "port_down",
            tuple(
                p if isinstance(p, PortDownInterval) else PortDownInterval(*p)
                for p in self.port_down
            ),
        )
        object.__setattr__(
            self,
            "port_duty",
            tuple(
                d if isinstance(d, PortDutyCycle) else PortDutyCycle(*d)
                for d in self.port_duty
            ),
        )
        object.__setattr__(
            self,
            "link_down",
            tuple(
                o if isinstance(o, LinkOutage) else LinkOutage(*o)
                for o in self.link_down
            ),
        )
        object.__setattr__(
            self,
            "crc_bursts",
            tuple(
                b if isinstance(b, CrcBurst) else CrcBurst(*b)
                for b in self.crc_bursts
            ),
        )
        for name in ("request_loss", "grant_loss", "accept_loss", "delay"):
            _check_probability(name, getattr(self, name))

    # -- classification ------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """True iff the plan injects nothing at all."""
        return (
            not self.port_down
            and not any(d.down for d in self.port_duty)
            and not self.link_down
            and not self.crc_bursts
            and not self.has_message_faults
        )

    @property
    def has_message_faults(self) -> bool:
        """True iff any control-message probability is non-zero."""
        return bool(
            self.request_loss or self.grant_loss or self.accept_loss or self.delay
        )

    @property
    def has_topology_faults(self) -> bool:
        """True iff any port or link outage is scheduled."""
        return bool(
            self.port_down
            or any(d.down for d in self.port_duty)
            or self.link_down
        )

    # -- construction helpers ------------------------------------------------

    @classmethod
    def message_loss(cls, rate: float, delay: float = 0.0) -> "FaultPlan":
        """Uniform control-plane loss: every message kind at ``rate``."""
        return cls(
            request_loss=rate, grant_loss=rate, accept_loss=rate, delay=delay
        )

    @classmethod
    def availability(
        cls,
        n_ports: int,
        availability: float,
        period: int = 400,
        ports: tuple[int, ...] | None = None,
    ) -> "FaultPlan":
        """Duty-cycled port outages averaging the given availability.

        Each selected port is down for ``round((1 - availability) *
        period)`` slots of every ``period``-slot cycle, with outage
        windows staggered across ports so the fabric never loses every
        port at once (unless availability is 0). Deterministic — the
        resilience harness's availability axis.
        """
        _check_probability("availability", availability)
        if period < 1:
            raise ValueError(f"period must be >= 1, got {period}")
        down = round((1.0 - availability) * period)
        if down == 0:
            return cls()
        victims = tuple(range(n_ports)) if ports is None else ports
        stagger = max(1, period // max(len(victims), 1))
        return cls(
            port_duty=tuple(
                PortDutyCycle(port, period, down, offset=(k * stagger) % period)
                for k, port in enumerate(victims)
            )
        )

    # -- sweep-spec round trip -----------------------------------------------

    def to_spec(self) -> tuple[tuple[str, object], ...]:
        """Flatten to sorted ``(key, value)`` pairs (hashable, reprable)
        suitable for ``SweepSpec.fault_kwargs``; defaults are omitted so
        the empty plan flattens to ``()``."""
        spec: list[tuple[str, object]] = []
        if self.port_down:
            spec.append(
                (
                    "port_down",
                    tuple((p.port, p.start, p.end, p.side) for p in self.port_down),
                )
            )
        if self.port_duty:
            spec.append(
                (
                    "port_duty",
                    tuple(
                        (d.port, d.period, d.down, d.offset, d.side)
                        for d in self.port_duty
                    ),
                )
            )
        if self.link_down:
            spec.append(
                (
                    "link_down",
                    tuple((o.input, o.output, o.start, o.end) for o in self.link_down),
                )
            )
        if self.crc_bursts:
            spec.append(
                (
                    "crc_bursts",
                    tuple((b.host, b.start, b.end, b.channel) for b in self.crc_bursts),
                )
            )
        for name in ("request_loss", "grant_loss", "accept_loss", "delay"):
            value = getattr(self, name)
            if value:
                spec.append((name, value))
        return tuple(sorted(spec))

    @classmethod
    def from_spec(cls, spec) -> "FaultPlan":
        """Inverse of :meth:`to_spec`; also accepts a plain dict."""
        pairs = dict(spec) if not isinstance(spec, dict) else spec
        known = {f.name for f in fields(cls)}
        unknown = set(pairs) - known
        if unknown:
            raise ValueError(f"unknown fault-plan keys: {sorted(unknown)}")
        return cls(**pairs)

    def describe(self) -> str:
        """One-line human summary for CLI banners and progress lines."""
        if self.is_null:
            return "no faults"
        parts = []
        if self.port_down or self.port_duty:
            parts.append(
                f"{len(self.port_down) + len(self.port_duty)} port outage(s)"
            )
        if self.link_down:
            parts.append(f"{len(self.link_down)} link outage(s)")
        if self.has_message_faults:
            parts.append(
                "msg loss req/gnt/acc="
                f"{self.request_loss:g}/{self.grant_loss:g}/{self.accept_loss:g}"
                + (f" delay={self.delay:g}" if self.delay else "")
            )
        if self.crc_bursts:
            parts.append(f"{len(self.crc_bursts)} CRC burst(s)")
        return ", ".join(parts)
