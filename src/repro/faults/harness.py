"""Resilience harness: degradation curves through the sweep engine.

Answers the question the paper never asks: how gracefully does each
scheduler degrade when the control plane or the ports fail? Two axes:

* **message loss** — uniform per-message request/grant/accept loss
  probability (:meth:`repro.faults.FaultPlan.message_loss`), swept from
  0 upward. The distributed LCF schedulers play their lossy protocol;
  every other scheduler degrades through the generic request-loss
  filter, so the whole registry gets a curve.
* **port availability** — duty-cycled port outages averaging a target
  availability (:meth:`repro.faults.FaultPlan.availability`), swept
  from 1.0 downward.

Every (scheduler, axis value) cell runs through
:class:`repro.sweep.runner.ParallelRunner` — parallel workers,
replicate merging, and the content-addressed result cache all apply.
A zero-fault axis point flattens to an *empty* fault spec, so it hashes
to the same cache key as a plain Figure 12 sweep point and reproduces
those numbers exactly (tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.asciiplot import ascii_plot
from repro.analysis.tables import rows_to_csv
from repro.faults.plan import FaultPlan
from repro.sim.config import SimConfig
from repro.sim.simulator import SimResult
from repro.sweep.cache import ResultCache
from repro.sweep.runner import ParallelRunner, SweepRunReport
from repro.sweep.spec import SweepSpec

__all__ = [
    "ResilienceReport",
    "AdaptiveComparisonReport",
    "run_loss_sweep",
    "run_availability_sweep",
    "run_adaptive_sweep",
    "DEFAULT_LOSS_GRID",
    "DEFAULT_AVAILABILITY_GRID",
]

#: Default message-loss probabilities for the loss axis.
DEFAULT_LOSS_GRID = (0.0, 0.05, 0.1, 0.2, 0.3, 0.5)
#: Default port availabilities for the availability axis.
DEFAULT_AVAILABILITY_GRID = (1.0, 0.99, 0.95, 0.9, 0.8)


@dataclass
class ResilienceReport:
    """Per-scheduler degradation curves along one fault axis."""

    #: ``"message_loss"`` or ``"availability"``.
    axis: str
    schedulers: tuple[str, ...]
    #: Axis values, in sweep order.
    values: tuple[float, ...]
    load: float
    #: Merged result per (scheduler, axis value) cell.
    results: dict[tuple[str, float], SimResult]
    #: The fault plan each axis value ran under (spec form).
    plans: dict[float, tuple] = field(default_factory=dict)
    #: One engine report per axis value, in sweep order.
    sweep_reports: list[SweepRunReport] = field(default_factory=list)

    @property
    def baseline_value(self) -> float:
        """The healthy end of the axis (0 loss / availability 1)."""
        return (
            min(self.values) if self.axis == "message_loss" else max(self.values)
        )

    def get(self, scheduler: str, value: float) -> SimResult:
        return self.results[(scheduler, value)]

    def series(
        self, scheduler: str, metric: str = "throughput"
    ) -> tuple[list[float], list[float]]:
        """(axis values, metric values) for one scheduler.

        ``metric``: ``throughput``, ``mean_latency``, or ``delivery``
        (forwarded/offered — the matching-efficiency proxy visible in
        end-to-end statistics). Non-finite points are dropped.
        """
        xs: list[float] = []
        ys: list[float] = []
        for value in self.values:
            result = self.results[(scheduler, value)]
            if metric == "delivery":
                y = result.forwarded / result.offered if result.offered else math.nan
            else:
                y = getattr(result, metric)
            if math.isfinite(y):
                xs.append(value)
                ys.append(y)
        return xs, ys

    def degradation(self, scheduler: str, value: float) -> float:
        """Throughput at ``value`` relative to the healthy baseline."""
        baseline = self.results[(scheduler, self.baseline_value)].throughput
        if not baseline or math.isnan(baseline):
            return math.nan
        return self.results[(scheduler, value)].throughput / baseline

    def rows(self) -> list[dict]:
        """Flat rows (one per cell) for CSV / JSON emission."""
        rows = []
        for name in self.schedulers:
            for value in self.values:
                result = self.results[(name, value)]
                rows.append(
                    result.row()
                    | {
                        self.axis: value,
                        "delivery": (
                            result.forwarded / result.offered
                            if result.offered
                            else math.nan
                        ),
                        "throughput_vs_baseline": self.degradation(name, value),
                    }
                )
        return rows

    def to_csv(self) -> str:
        return rows_to_csv(self.rows())

    def plot(self, metric: str = "throughput", **kwargs) -> str:
        """ASCII degradation curves, one line per scheduler."""
        series = {name: self.series(name, metric) for name in self.schedulers}
        axis_label = (
            "message loss probability"
            if self.axis == "message_loss"
            else "port availability"
        )
        y_max = kwargs.pop("y_max", None)
        if y_max is None:
            peaks = [max(ys) for _, ys in series.values() if ys]
            y_max = 1.05 * max(peaks) if peaks else 1.0
        return ascii_plot(
            series,
            title=f"{metric} vs {axis_label} (load {self.load:g})",
            x_label=axis_label,
            y_label=metric,
            y_min=0.0,
            y_max=y_max,
            **kwargs,
        )

    def summary(self) -> str:
        """Degradation table: worst axis value vs the healthy baseline."""
        worst = (
            max(self.values) if self.axis == "message_loss" else min(self.values)
        )
        lines = [
            f"resilience ({self.axis}, load {self.load:g}): "
            f"baseline {self.axis}={self.baseline_value:g}, "
            f"worst {self.axis}={worst:g}"
        ]
        for name in self.schedulers:
            healthy = self.results[(name, self.baseline_value)]
            hit = self.results[(name, worst)]
            lines.append(
                f"  {name:<16} throughput {healthy.throughput:.3f} -> "
                f"{hit.throughput:.3f} ({self.degradation(name, worst):6.1%}), "
                f"latency {healthy.mean_latency:7.2f} -> {hit.mean_latency:7.2f}"
            )
        return "\n".join(lines)


@dataclass
class AdaptiveComparisonReport:
    """Reactive vs oblivious degradation along the availability axis.

    Both stances are fault-*blind* (see :mod:`repro.adapt`): the
    oblivious baseline keeps wasting grants on dead crosspoints, the
    adaptive stance learns and steers around them. At the healthy end
    of the axis the two are bit-identical to a plain run (no faults →
    nothing to learn → no filtering), which the benchmark asserts.
    """

    schedulers: tuple[str, ...]
    #: Availability values, in sweep order.
    values: tuple[float, ...]
    load: float
    #: Merged result per (scheduler, availability), oblivious stance.
    oblivious: dict[tuple[str, float], SimResult]
    #: Merged result per (scheduler, availability), adaptive stance.
    adaptive: dict[tuple[str, float], SimResult]
    #: The adapter spec the adaptive stance ran under.
    adapt_spec: tuple = ()
    #: The fault plan each axis value ran under (spec form).
    plans: dict[float, tuple] = field(default_factory=dict)
    #: One engine report per (axis value, stance), in sweep order.
    sweep_reports: list[SweepRunReport] = field(default_factory=list)

    @property
    def baseline_value(self) -> float:
        return max(self.values)

    def recovered(self, scheduler: str, value: float) -> float:
        """Fraction of the oblivious throughput loss the adaptive stance
        wins back at one axis point (1.0 = fully recovered to the
        healthy baseline, 0.0 = no better than oblivious, negative =
        worse). NaN when the oblivious stance lost nothing."""
        healthy = self.oblivious[(scheduler, self.baseline_value)].throughput
        blind = self.oblivious[(scheduler, value)].throughput
        adapt = self.adaptive[(scheduler, value)].throughput
        lost = healthy - blind
        if not math.isfinite(lost) or lost <= 0:
            return math.nan
        return (adapt - blind) / lost

    def rows(self) -> list[dict]:
        """Flat rows (one per cell and stance) for CSV / JSON."""
        rows = []
        for name in self.schedulers:
            for value in self.values:
                for stance, results in (
                    ("oblivious", self.oblivious),
                    ("adaptive", self.adaptive),
                ):
                    result = results[(name, value)]
                    rows.append(
                        result.row()
                        | {
                            "availability": value,
                            "stance": stance,
                            "recovered": (
                                self.recovered(name, value)
                                if stance == "adaptive"
                                else math.nan
                            ),
                        }
                    )
        return rows

    def to_csv(self) -> str:
        return rows_to_csv(self.rows())

    def summary(self) -> str:
        """Per-scheduler table: blind vs adaptive at each degraded point."""
        lines = [
            f"adaptive vs oblivious (availability axis, load {self.load:g})"
        ]
        for name in self.schedulers:
            lines.append(f"  {name}")
            for value in self.values:
                blind = self.oblivious[(name, value)]
                adapt = self.adaptive[(name, value)]
                recovered = self.recovered(name, value)
                rec = f"{recovered:6.1%}" if math.isfinite(recovered) else "   n/a"
                lines.append(
                    f"    a={value:<5g} thr {blind.throughput:.3f} -> "
                    f"{adapt.throughput:.3f}  latency {blind.mean_latency:8.2f} -> "
                    f"{adapt.mean_latency:8.2f}  recovered {rec}"
                )
        return "\n".join(lines)


def _sweep_axis(
    axis: str,
    plans: dict[float, FaultPlan],
    schedulers: tuple[str, ...],
    load: float,
    config: SimConfig,
    traffic: str,
    replicates: int,
    processes: int,
    cache: ResultCache | str | Path | None,
    progress: bool,
    fast: bool,
) -> ResilienceReport:
    runner = ParallelRunner(workers=processes, cache=cache, progress=progress, fast=fast)
    results: dict[tuple[str, float], SimResult] = {}
    report = ResilienceReport(
        axis=axis,
        schedulers=tuple(schedulers),
        values=tuple(plans),
        load=load,
        results=results,
    )
    for value, plan in plans.items():
        spec = SweepSpec(
            schedulers=tuple(schedulers),
            loads=(load,),
            config=config,
            traffic=traffic,
            replicates=replicates,
            fault_kwargs=plan.to_spec(),
        )
        run = runner.run(spec)
        for name in schedulers:
            results[(name, value)] = run.merged[(name, load)]
        report.plans[value] = plan.to_spec()
        report.sweep_reports.append(run.report)
    return report


def run_loss_sweep(
    schedulers: tuple[str, ...],
    rates: tuple[float, ...] = DEFAULT_LOSS_GRID,
    load: float = 0.8,
    config: SimConfig | None = None,
    delay: float = 0.0,
    traffic: str = "bernoulli",
    replicates: int = 1,
    processes: int = 1,
    cache: ResultCache | str | Path | None = None,
    progress: bool = False,
    fast: bool = False,
) -> ResilienceReport:
    """Throughput/delay degradation versus control-message loss rate.

    ``fast`` runs the cells on the :mod:`repro.fastpath` kernels —
    bit-identical results, shared cache entries.
    """
    config = config if config is not None else SimConfig()
    plans = {rate: FaultPlan.message_loss(rate, delay=delay) for rate in rates}
    return _sweep_axis(
        "message_loss",
        plans,
        tuple(schedulers),
        load,
        config,
        traffic,
        replicates,
        processes,
        cache,
        progress,
        fast,
    )


def run_availability_sweep(
    schedulers: tuple[str, ...],
    availabilities: tuple[float, ...] = DEFAULT_AVAILABILITY_GRID,
    load: float = 0.8,
    config: SimConfig | None = None,
    period: int = 400,
    traffic: str = "bernoulli",
    replicates: int = 1,
    processes: int = 1,
    cache: ResultCache | str | Path | None = None,
    progress: bool = False,
    fast: bool = False,
) -> ResilienceReport:
    """Throughput/delay degradation versus mean port availability.

    ``fast`` runs the cells on the :mod:`repro.fastpath` kernels —
    bit-identical results, shared cache entries.
    """
    config = config if config is not None else SimConfig()
    plans = {
        availability: FaultPlan.availability(
            config.n_ports, availability, period=period
        )
        for availability in availabilities
    }
    return _sweep_axis(
        "availability",
        plans,
        tuple(schedulers),
        load,
        config,
        traffic,
        replicates,
        processes,
        cache,
        progress,
        fast,
    )


#: The oblivious (fault-blind, non-reactive) stance spec.
OBLIVIOUS_SPEC = (("policy", "oblivious"),)


def run_adaptive_sweep(
    schedulers: tuple[str, ...],
    availabilities: tuple[float, ...] = DEFAULT_AVAILABILITY_GRID,
    load: float = 0.8,
    config: SimConfig | None = None,
    period: int = 400,
    adapt=None,
    traffic: str = "bernoulli",
    replicates: int = 1,
    processes: int = 1,
    cache: ResultCache | str | Path | None = None,
    progress: bool = False,
    fast: bool = False,
) -> AdaptiveComparisonReport:
    """Reactive vs oblivious degradation curves (availability axis).

    Runs every (scheduler, availability) cell twice — once under the
    oblivious fault-blind stance, once under the adaptive stance given
    by ``adapt`` (an :class:`repro.adapt.AdaptConfig`, its spec form,
    or ``None`` for defaults) — all through the cached parallel sweep
    engine, so repeated comparisons are cache reads.

    The adaptive stance only reacts to *topology* faults (dead
    crosspoints it can observe through wasted grants), so the
    availability axis is the meaningful one; message loss degrades the
    control plane inside the schedulers where the fabric gate — the
    adapter's evidence source — never fires.
    """
    from repro.adapt.config import AdaptConfig

    config = config if config is not None else SimConfig()
    if adapt is None:
        adapt_spec = AdaptConfig().to_spec()
    elif isinstance(adapt, AdaptConfig):
        adapt_spec = adapt.to_spec()
    else:
        adapt_spec = tuple(sorted(dict(adapt).items()))
    runner = ParallelRunner(workers=processes, cache=cache, progress=progress, fast=fast)
    report = AdaptiveComparisonReport(
        schedulers=tuple(schedulers),
        values=tuple(availabilities),
        load=load,
        oblivious={},
        adaptive={},
        adapt_spec=adapt_spec,
    )
    for availability in availabilities:
        plan = FaultPlan.availability(config.n_ports, availability, period=period)
        for stance_spec, results in (
            (OBLIVIOUS_SPEC, report.oblivious),
            (adapt_spec, report.adaptive),
        ):
            spec = SweepSpec(
                schedulers=tuple(schedulers),
                loads=(load,),
                config=config,
                traffic=traffic,
                replicates=replicates,
                fault_kwargs=plan.to_spec(),
                adapt_kwargs=stance_spec,
            )
            run = runner.run(spec)
            for name in schedulers:
                results[(name, availability)] = run.merged[(name, load)]
            report.sweep_reports.append(run.report)
        report.plans[availability] = plan.to_spec()
    return report
