"""Implementation-cost model reproducing Table 1 (Section 6.1).

The paper reports, for the 16-port Xilinx XCV600 implementation:

=============  ===========  =======  =====
count          distributed  central  total
=============  ===========  =======  =====
gates          16x450=7200  767      7967
registers      16x86=1376   216      1592
=============  ===========  =======  =====

("distributed" = the 16 replicated requester slices of Figure 6 that can
sit next to the input ports; "central" = the shared sequencing logic; a
gate is a two-input gate.)

We rebuild these numbers from a structural decomposition of the
Figure 6 datapath. Component widths (shift registers, bus drivers,
comparators) scale with the port count ``n``; the fixed control terms
are calibrated so the n=16 totals equal the published counts exactly.
The per-component coefficients are therefore *estimates* — the paper
does not publish a breakdown — but the scaling shape (dominantly linear
in ``n`` per slice, hence quadratic for the whole scheduler) follows
directly from the register widths, and that is what the scalability
benchmarks exercise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _log2_ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(n))) if n > 1 else 1


# -- per-slice registers (Figure 6 datapath state) ----------------------

def slice_register_breakdown(n: int) -> dict[str, int]:
    """Registers in one requester slice.

    ``5n + ceil(log2 n) + 2``: request row, request staging, precalc
    row, NRQ, PRIO (n bits each), the GNT register, and the CP/NGT
    flags. Evaluates to 86 at n=16, matching Table 1.
    """
    return {
        "request row R[i,*]": n,
        "request staging (cfg capture)": n,
        "precalculated-schedule row": n,
        "NRQ unary shift register": n,
        "PRIO unary shift register": n,
        "GNT (encoded resource)": _log2_ceil(n),
        "CP + NGT flags": 2,
    }


def slice_register_count(n: int) -> int:
    """Total registers per slice (paper: 86 at n=16)."""
    return sum(slice_register_breakdown(n).values())


def slice_gate_breakdown(n: int) -> dict[str, int]:
    """Two-input gates in one requester slice.

    Linear-in-``n`` datapath terms plus fixed control, calibrated to the
    450-gate slice of Table 1 at n=16.
    """
    return {
        "request summation into NRQ": 6 * n,
        "NRQ shift/load muxes": 3 * n,
        "PRIO shift/load muxes": 3 * n,
        "bus drivers + comparators (NRQ, PRIO)": 4 * n,
        "precalc integrity check": 4 * n,
        "grant capture + decode": 2 * n + _log2_ceil(n),
        "slice control + flags": 94,
    }


def slice_gate_count(n: int) -> int:
    """Total gates per slice (paper: 450 at n=16)."""
    return sum(slice_gate_breakdown(n).values())


# -- central (shared) logic ---------------------------------------------

def central_register_count(n: int) -> int:
    """Registers in the shared sequencing/packet logic (paper: 216 at n=16).

    ``12n`` packet staging (cfg/gnt serialisers) + ``4 ceil(log2 n)``
    sequencing counters (RES, I, J, iteration) + 8 FSM state bits.
    """
    return 12 * n + 4 * _log2_ceil(n) + 8


def central_gate_count(n: int) -> int:
    """Gates in the shared logic (paper: 767 at n=16).

    ``40n`` packet mux/CRC datapath + ``20 ceil(log2 n)`` counters +
    47 FSM gates.
    """
    return 40 * n + 20 * _log2_ceil(n) + 47


# -- totals and reporting ------------------------------------------------

@dataclass(frozen=True)
class CostReport:
    """Gate/register counts in the shape of Table 1."""

    n: int
    distributed_gates: int
    distributed_registers: int
    central_gates: int
    central_registers: int

    @property
    def total_gates(self) -> int:
        return self.distributed_gates + self.central_gates

    @property
    def total_registers(self) -> int:
        return self.distributed_registers + self.central_registers


def cost_report(n: int) -> CostReport:
    """Cost model evaluated at port count ``n``."""
    return CostReport(
        n=n,
        distributed_gates=n * slice_gate_count(n),
        distributed_registers=n * slice_register_count(n),
        central_gates=central_gate_count(n),
        central_registers=central_register_count(n),
    )


#: XCV600 resources used for the utilisation estimate: the paper states
#: the scheduler logic is "15% of the available FPGA resources". The
#: XCV600 has 6912 slices == 13824 4-input LUTs + 13824 flip-flops; a
#: 4-input LUT absorbs on the order of four two-input gates after
#: technology mapping, which reproduces the paper's ~15% figure.
XCV600_EQUIVALENT_GATES = 4 * 13824
XCV600_FLIP_FLOPS = 13824


def fpga_utilisation(n: int = 16) -> float:
    """Estimated fraction of XCV600 logic used (paper quotes ~15%)."""
    report = cost_report(n)
    gate_util = report.total_gates / XCV600_EQUIVALENT_GATES
    reg_util = report.total_registers / XCV600_FLIP_FLOPS
    return max(gate_util, reg_util)


def table1(n: int = 16) -> list[dict[str, int | str]]:
    """Rows of Table 1 for the given port count (paper layout)."""
    report = cost_report(n)
    return [
        {
            "count": "gates",
            "distributed": report.distributed_gates,
            "central": report.central_gates,
            "total": report.total_gates,
        },
        {
            "count": "registers",
            "distributed": report.distributed_registers,
            "central": report.central_registers,
            "total": report.total_registers,
        },
    ]
