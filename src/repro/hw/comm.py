"""Communication-cost model (Section 6.2, Figure 10).

Message encodings:

* **Central scheduler** — every input sends its request vector
  ``req(n)`` to the scheduler and receives ``gnt(log2 n)`` plus a valid
  bit back: ``n * (n + log2 n + 1)`` bits per scheduling cycle.
* **Distributed scheduler** — per iteration, each of the ``n^2``
  (input, output) pairs may carry ``req(1) + nrq(log2 n)`` towards the
  target and ``gnt(1) + ngt(log2 n)`` plus ``acc(1)`` back:
  ``i * n^2 * (2 log2 n + 3)`` bits for ``i`` iterations.

"Comparing the two schemes the distributed scheduler has significantly
higher communication demands since the priorities have to be explicitly
sent, and, possibly, have to be sent to multiple resources."
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _log2_ceil(n: int) -> int:
    return max(1, math.ceil(math.log2(n))) if n > 1 else 1


@dataclass(frozen=True)
class MessageBreakdown:
    """Per-message field widths for one scheduler style."""

    fields: dict[str, int]

    @property
    def bits(self) -> int:
        return sum(self.fields.values())


def central_messages(n: int) -> dict[str, MessageBreakdown]:
    """Figure 10a field widths: request up, grant down, per input port."""
    return {
        "request": MessageBreakdown({"req": n}),
        "grant": MessageBreakdown({"gnt": _log2_ceil(n), "vld": 1}),
    }


def distributed_messages(n: int) -> dict[str, MessageBreakdown]:
    """Figure 10b field widths, per (input, output) pair per iteration."""
    log2n = _log2_ceil(n)
    return {
        "request": MessageBreakdown({"req": 1, "nrq": log2n}),
        "grant": MessageBreakdown({"gnt": 1, "ngt": log2n}),
        "accept": MessageBreakdown({"acc": 1}),
    }


def central_bits(n: int) -> int:
    """Total bits exchanged per scheduling cycle, central scheduler:
    ``n (n + log2 n + 1)``."""
    return n * (n + _log2_ceil(n) + 1)


def distributed_bits(n: int, iterations: int) -> int:
    """Total bits per scheduling cycle, distributed scheduler:
    ``i n^2 (2 log2 n + 3)``."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    return iterations * n * n * (2 * _log2_ceil(n) + 3)


def comm_ratio(n: int, iterations: int) -> float:
    """Distributed-over-central communication blow-up factor."""
    return distributed_bits(n, iterations) / central_bits(n)


def comm_table(
    port_counts: tuple[int, ...] = (4, 8, 16, 32, 64, 128, 256, 512, 1024),
    iterations: int = 4,
) -> list[dict[str, int | float]]:
    """Section 6.2 comparison over a range of switch widths."""
    return [
        {
            "n": n,
            "central_bits": central_bits(n),
            "distributed_bits": distributed_bits(n, iterations),
            "ratio": round(comm_ratio(n, iterations), 2),
        }
        for n in port_counts
    ]
