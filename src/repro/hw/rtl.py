"""Register-level model of the central LCF scheduler hardware (Figure 6).

Each requester slice holds the registers of the block diagram:

* ``R[i, 0..n-1]`` — the request row;
* ``NRQ`` — the number of outstanding requests, as a unary shift
  register (decrement = shift);
* ``PRIO`` — the requester's position in the rotating priority chain,
  as a unary shift register; together with the open-collector bus the
  PRIO registers form a programmable priority encoder;
* ``GNT`` — the granted resource;
* ``CP`` — "compare" flag: this requester tied for the minimum NRQ;
* ``NGT`` — "not granted yet" flag gating participation.

Scheduling one resource takes two bus phases:

1. requesters with a request for the current resource drive ``NRQ``;
   the wired-AND bus resolves to the minimum; requesters matching the
   bus set ``CP``;
2. requesters with ``CP`` — plus the chain head unconditionally, which
   implements the round-robin position — drive ``PRIO``; the unique
   minimum wins and latches ``RES`` into ``GNT``.

Between resources the NRQ registers shift to retire requests for the
just-scheduled column, the PRIO registers rotate, and RES increments.
One extra PRIO shift per scheduling cycle and one extra RES increment
every ``n`` cycles walk the round-robin diagonal across the whole
matrix, exactly like the behavioural scheduler's ``(I, J)`` offsets.

The model is decision-equivalent to
:class:`~repro.core.lcf_central.LCFCentralRR` (property-tested in
``tests/hw/test_rtl.py``) and its cycle counts match Table 2:
``3n + 2`` for the LCF schedule and ``2n + 1`` for the precalculated-
schedule integrity check.
"""

from __future__ import annotations

import numpy as np

from repro.core.precalc import check_precalc_integrity
from repro.hw.encoding import OpenCollectorBus, unary_decrement, unary_encode
from repro.types import NO_GRANT, OutputSchedule, RequestMatrix, Schedule, empty_schedule


class _RequesterSlice:
    """The per-requester logic block of Figure 6."""

    def __init__(self, index: int, n: int):
        self.index = index
        self.n = n
        self.row = np.zeros(n, dtype=bool)  # request register R[i, *]
        self.nrq = np.zeros(n, dtype=bool)  # unary shift register
        self.prio = np.zeros(n, dtype=bool)  # unary shift register
        self.gnt = NO_GRANT
        self.cp = False
        self.ngt = False

    def load(self, row: np.ndarray, chain_position: int) -> None:
        """Start-of-cycle load: capture requests, sum them into NRQ,
        set NGT, and program the priority chain position."""
        self.row = row.copy()
        self.nrq = unary_encode(int(row.sum()), self.n)
        self.prio = unary_encode(chain_position + 1, self.n)
        self.gnt = NO_GRANT
        self.cp = False
        self.ngt = bool(row.any())

    @property
    def chain_position(self) -> int:
        """0 = chain head (the round-robin position for this resource)."""
        return int(self.prio.sum()) - 1

    def participates(self, column: int) -> bool:
        """Drive the bus this resource? Needs a request and no grant yet."""
        return self.ngt and bool(self.row[column])

    def rotate_prio(self) -> None:
        """Shift the priority chain: everyone moves one step towards the
        head; the head wraps to the tail (all-ones pattern)."""
        if self.chain_position == 0:
            self.prio = unary_encode(self.n, self.n)
        else:
            self.prio = unary_decrement(self.prio)

    def retire_request(self, column: int) -> None:
        """Shift NRQ down when the scheduled column held one of our requests."""
        if self.row[column]:
            self.nrq = unary_decrement(self.nrq)


class LCFSchedulerRTL:
    """Cycle-counted register-level central LCF scheduler.

    Drop-in decision-equivalent to the behavioural
    :class:`~repro.core.lcf_central.LCFCentralRR`; exposes the cycle
    counts of Table 2 via :attr:`last_cycles` / :attr:`total_cycles`.
    """

    name = "lcf_central_rr_rtl"

    #: Clock frequency of the Clint FPGA implementation (Section 6.1).
    CLOCK_MHZ = 66.0

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"need at least one port, got n={n}")
        self.n = n
        self.slices = [_RequesterSlice(i, n) for i in range(n)]
        self.bus = OpenCollectorBus(n)
        self._i = 0  # round-robin requester offset (PRIO chain origin)
        self._j = 0  # round-robin resource offset (initial RES)
        self.last_cycles = 0
        self.total_cycles = 0

    # -- state sync with the behavioural scheduler ----------------------

    @property
    def rr_offsets(self) -> tuple[int, int]:
        return self._i, self._j

    def set_rr_offsets(self, i: int, j: int) -> None:
        self._i = i % self.n
        self._j = j % self.n

    def reset(self) -> None:
        self._i = 0
        self._j = 0
        self.last_cycles = 0
        self.total_cycles = 0

    # -- scheduling ------------------------------------------------------

    def schedule(self, requests: RequestMatrix) -> Schedule:
        """One LCF scheduling cycle (no precalculated schedule)."""
        output = self.schedule_with_precalc(requests, None)
        schedule = empty_schedule(self.n)
        for j, i in enumerate(output):
            if i != NO_GRANT:
                schedule[i] = j
        return schedule

    def schedule_with_precalc(
        self, requests: RequestMatrix, precalc: np.ndarray | None
    ) -> OutputSchedule:
        """Two-stage cycle: precalc integrity check (2n+1 cycles, if a
        precalculated schedule is present) then LCF (3n+2 cycles)."""
        requests = np.asarray(requests, dtype=bool)
        if requests.shape != (self.n, self.n):
            raise ValueError(
                f"request matrix must be {self.n}x{self.n}, got {requests.shape}"
            )
        n = self.n
        cycles = 0
        output = np.full(n, NO_GRANT, dtype=np.int64)
        taken_cols = np.zeros(n, dtype=bool)
        busy_inputs = np.zeros(n, dtype=bool)

        if precalc is not None:
            # Stage 1: one pass over the resources checking the precalc
            # columns for conflicts (2 cycles per resource + 1 setup).
            accepted, _dropped = check_precalc_integrity(precalc)
            for j in range(n):
                owners = np.flatnonzero(accepted[:, j])
                if owners.size:
                    output[j] = owners[0]
                    taken_cols[j] = True
                    busy_inputs[owners[0]] = True
            cycles += 2 * n + 1

        # LCF stage init cycle: load request rows (masked by the precalc
        # stage), sum NRQ, set NGT, program the PRIO chain.
        for i, slice_ in enumerate(self.slices):
            visible = requests[i] & ~taken_cols
            if busy_inputs[i]:
                visible = np.zeros(n, dtype=bool)
            slice_.load(visible, (i - self._i) % n)
        cycles += 1

        for step in range(n):
            column = (self._j + step) % n
            cycles += 3  # NRQ-update/shift cycle + two bus phases
            if not taken_cols[column]:
                winner = self._arbitrate(column)
                if winner is not None:
                    output[column] = winner
                    taken_cols[column] = True
            # Retire requests for the scheduled column and rotate the chain.
            for slice_ in self.slices:
                if slice_.ngt:
                    slice_.retire_request(column)
                slice_.rotate_prio()

        cycles += 1  # final PRIO shift / RES increment cycle
        self._advance()
        self.last_cycles = cycles
        self.total_cycles += cycles
        return output

    def _arbitrate(self, column: int) -> int | None:
        """The two bus phases for one resource; returns the winner index."""
        participants = [s for s in self.slices if s.participates(column)]
        if not participants:
            return None

        # Phase 1: drive NRQ; minimum survives the wired-AND.
        self.bus.release()
        for slice_ in participants:
            self.bus.drive(slice_.nrq)
        level = self.bus.sample()
        for slice_ in self.slices:
            slice_.cp = False
        for slice_ in participants:
            slice_.cp = bool(np.array_equal(slice_.nrq, level))

        # Phase 2: CP holders drive PRIO; the chain head participates
        # regardless of CP — that is the round-robin position's
        # unconditional win.
        self.bus.release()
        contenders = [s for s in participants if s.cp or s.chain_position == 0]
        for slice_ in contenders:
            self.bus.drive(slice_.prio)
        level = self.bus.sample()
        for slice_ in contenders:
            if np.array_equal(slice_.prio, level):
                slice_.gnt = column
                slice_.ngt = False
                return slice_.index
        raise AssertionError("priority bus did not resolve a unique winner")

    def _advance(self) -> None:
        """End-of-cycle diagonal walk, identical to the behavioural
        scheduler: extra PRIO shift advances I; every n cycles the extra
        RES increment advances J."""
        self._i = (self._i + 1) % self.n
        if self._i == 0:
            self._j = (self._j + 1) % self.n
