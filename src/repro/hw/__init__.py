"""Hardware implementation models (paper Sections 4.2, 6.1, 6.2).

The paper's artefact is a Xilinx XCV600 FPGA implementation; we
substitute faithful Python models:

* :mod:`repro.hw.encoding` — inverse-unary number encoding and the
  open-collector priority bus (wired-AND arbitration).
* :mod:`repro.hw.rtl` — a register-level simulation of the Figure 6
  datapath (NRQ/PRIO shift registers, CP/NGT flags, two-phase bus
  arbitration), property-tested to be decision-equivalent to the
  behavioural :class:`~repro.core.lcf_central.LCFCentralRR`.
* :mod:`repro.hw.cost` — the Table 1 gate/register cost model.
* :mod:`repro.hw.timing` — the Table 2 cycle/latency model.
* :mod:`repro.hw.comm` — the Section 6.2 communication-cost model.
"""

from repro.hw.comm import central_bits, distributed_bits
from repro.hw.cost import CostReport, cost_report, table1
from repro.hw.rtl import LCFSchedulerRTL
from repro.hw.timing import TimingReport, table2, timing_report

__all__ = [
    "LCFSchedulerRTL",
    "CostReport",
    "cost_report",
    "table1",
    "TimingReport",
    "timing_report",
    "table2",
    "central_bits",
    "distributed_bits",
]
