"""Scheduling-time model reproducing Table 2 (Section 6.1) and the
Section 6.2 speed comparison.

Table 2 (n = 16 ports, 66 MHz clock):

======================  =============  ============  =======
task                    decomposition  clock cycles  time
======================  =============  ============  =======
check prec. schedule    2n+1           33            500 ns
calculate LCF schedule  3n+2           50            758 ns
total                   5n+3           83            1258 ns
======================  =============  ============  =======

Section 6.2: "The time complexity for the central scheduler is O(n)
since targets are scheduled sequentially... the time complexity for the
distributed scheduler is O(log2 n) assuming it takes one time step for
each iteration."
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Clock frequency of the Clint FPGA prototype.
CLINT_CLOCK_MHZ = 66.0


def cycles_check_precalc(n: int) -> int:
    """Clock cycles of the precalculated-schedule integrity check: 2n+1."""
    return 2 * n + 1


def cycles_lcf(n: int) -> int:
    """Clock cycles of the LCF schedule calculation: 3n+2."""
    return 3 * n + 2


def cycles_total(n: int) -> int:
    """Total scheduling cycles: 5n+3."""
    return 5 * n + 3


def cycles_to_ns(cycles: int, clock_mhz: float = CLINT_CLOCK_MHZ) -> int:
    """Convert a cycle count to nanoseconds, rounded like the paper
    (33 cycles at 66 MHz -> 500 ns)."""
    return round(cycles * 1000.0 / clock_mhz)


@dataclass(frozen=True)
class TimingReport:
    """One row of Table 2."""

    task: str
    decomposition: str
    cycles: int
    time_ns: int


def timing_report(n: int, clock_mhz: float = CLINT_CLOCK_MHZ) -> list[TimingReport]:
    """Table 2 rows for a given port count and clock."""
    rows = [
        ("Check prec. schedule", "2n+1", cycles_check_precalc(n)),
        ("Calculate LCF schedule", "3n+2", cycles_lcf(n)),
        ("Total", "5n+3", cycles_total(n)),
    ]
    return [
        TimingReport(task, decomposition, cycles, cycles_to_ns(cycles, clock_mhz))
        for task, decomposition, cycles in rows
    ]


def table2(n: int = 16) -> list[TimingReport]:
    """Table 2 at the paper's configuration."""
    return timing_report(n)


# -- asymptotic speed comparison (Section 6.2) ---------------------------

def central_time_steps(n: int) -> int:
    """Central scheduler: one time step per sequentially scheduled target."""
    return n


def distributed_time_steps(n: int, iterations: int | None = None) -> int:
    """Distributed scheduler: one time step per iteration; ``O(log2 n)``
    iterations suffice for a near-optimal schedule (the paper's Section
    6.2 assumption, inherited from PIM's convergence analysis)."""
    if iterations is None:
        iterations = max(1, math.ceil(math.log2(n))) if n > 1 else 1
    return iterations


def speedup_distributed_over_central(n: int) -> float:
    """How much faster the distributed scheduler is for ``n`` ports."""
    return central_time_steps(n) / distributed_time_steps(n)
