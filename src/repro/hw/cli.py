"""``lcf-hw`` — hardware model report from the command line.

Prints Table 1 (gate/register counts), Table 2 (cycle counts and
times), and the Section 6.2 communication/speed comparison for any port
count, optionally cross-checking the register-level model.

Examples::

    lcf-hw                      # the paper's n=16 tables
    lcf-hw --ports 64           # the model scaled up
    lcf-hw --verify-rtl         # run the RTL equivalence cross-check
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis.tables import format_table
from repro.hw.comm import comm_table
from repro.hw.cost import fpga_utilisation, table1
from repro.hw.timing import (
    central_time_steps,
    distributed_time_steps,
    timing_report,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lcf-hw",
        description="Cost/timing/communication models of the LCF scheduler "
        "hardware (Tables 1-2 and Section 6.2 of Gura & Eberle).",
    )
    parser.add_argument("--ports", type=int, default=16)
    parser.add_argument("--clock-mhz", type=float, default=66.0)
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--verify-rtl", action="store_true",
                        help="cross-check the register-level model against "
                             "the behavioural scheduler")
    parser.add_argument("--rtl-cycles", type=int, default=100,
                        help="random cycles for --verify-rtl")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    n = args.ports

    print(f"Table 1 — gate/register counts (n={n}):")
    print(format_table(table1(n)))
    if n == 16:
        print(f"estimated XCV600 utilisation: {fpga_utilisation(n):.0%} (paper: 15%)")
    print()

    print(f"Table 2 — scheduling tasks (n={n}, {args.clock_mhz:g} MHz):")
    print(
        format_table(
            [
                {
                    "task": r.task,
                    "decomposition": r.decomposition,
                    "cycles": r.cycles,
                    "time [ns]": r.time_ns,
                }
                for r in timing_report(n, args.clock_mhz)
            ]
        )
    )
    print()

    print(f"Section 6.2 — communication bits per cycle (i={args.iterations}):")
    print(format_table(comm_table(port_counts=(n,), iterations=args.iterations)))
    print(
        f"time steps: central {central_time_steps(n)} (O(n)) vs "
        f"distributed {distributed_time_steps(n)} (O(log2 n))"
    )

    if args.verify_rtl:
        from repro.core.lcf_central import LCFCentralRR
        from repro.hw.rtl import LCFSchedulerRTL

        rtl = LCFSchedulerRTL(n)
        behavioural = LCFCentralRR(n)
        rng = np.random.default_rng(0)
        mismatches = 0
        for _ in range(args.rtl_cycles):
            requests = rng.random((n, n)) < 0.5
            if not (rtl.schedule(requests) == behavioural.schedule(requests)).all():
                mismatches += 1
        print(
            f"\nRTL cross-check over {args.rtl_cycles} random cycles: "
            f"{mismatches} mismatches; {rtl.last_cycles} cycles per schedule "
            f"(3n+2 = {3 * n + 2})"
        )
        if mismatches:
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
