"""Unary encodings and the open-collector priority bus (Section 4.2).

The hardware compares priorities without a comparator tree: each value
is held in a shift register as a *unary* bit pattern, and all
contenders drive their pattern onto a shared open-collector bus. On
such a bus a low (0) level is dominant, so the sampled value is the
bitwise AND of all driven patterns — which, for unary patterns with the
set bits packed at the low end, is exactly the *minimum* of the driven
values: "Higher NRQ values indicating lower priorities are overwritten
with lower NRQ values. If, for example, one requester has three requests
and another has one request, vectors 0...0111 and 0...0001,
respectively, are written to the bus. Sampling the bus, 0...0001 will
be seen."

(The paper also prints the register content as ``1...1000`` — the
active-low register view of the same code; we model the logical view.)

Decrementing a unary value is a single shift — the trick the NRQ
registers use when a scheduled column retires one of an input's
requests.
"""

from __future__ import annotations

import numpy as np


def unary_encode(value: int, width: int) -> np.ndarray:
    """Encode ``value`` as a unary pattern: the ``value`` lowest bits set.

    ``unary_encode(3, 8)`` -> ``00000111`` (printed LSB-last), the bus
    pattern of a requester with three outstanding requests.
    """
    if not 0 <= value <= width:
        raise ValueError(f"value {value} not representable in {width} unary bits")
    bits = np.zeros(width, dtype=bool)
    bits[:value] = True
    return bits


def unary_decode(bits: np.ndarray) -> int:
    """Decode a unary pattern back to its integer value.

    Raises ``ValueError`` on non-contiguous patterns — a corrupted shift
    register.
    """
    bits = np.asarray(bits, dtype=bool)
    value = int(bits.sum())
    if not bits[:value].all():
        raise ValueError(f"non-contiguous unary pattern {bits.astype(int).tolist()}")
    return value


def unary_decrement(bits: np.ndarray) -> np.ndarray:
    """Shift one set bit out — the hardware's decrement-by-shift.

    Decrementing zero stays zero (the hardware masks the shift enable
    with a non-zero detect).
    """
    bits = np.asarray(bits, dtype=bool)
    out = np.zeros_like(bits)
    out[:-1] = bits[1:]
    return out


class OpenCollectorBus:
    """Wired-AND bus: dominant-low open-collector lines.

    Devices ``drive`` patterns during a phase; ``sample`` returns the
    AND of everything driven (all-high when idle, as pulled up).
    ``release`` starts the next phase.
    """

    def __init__(self, width: int):
        if width < 1:
            raise ValueError(f"bus width must be >= 1, got {width}")
        self.width = width
        self._lines = np.ones(width, dtype=bool)
        self._driven = False

    def release(self) -> None:
        """Let the pull-ups restore the idle (all-high) level."""
        self._lines[:] = True
        self._driven = False

    def drive(self, pattern: np.ndarray) -> None:
        """Drive a pattern; zeros pull their lines low (dominant)."""
        pattern = np.asarray(pattern, dtype=bool)
        if pattern.shape != (self.width,):
            raise ValueError(
                f"pattern width {pattern.shape} does not match bus width {self.width}"
            )
        self._lines &= pattern
        self._driven = True

    @property
    def driven(self) -> bool:
        """Whether any device drove the bus this phase."""
        return self._driven

    def sample(self) -> np.ndarray:
        """Read the resolved bus level."""
        return self._lines.copy()
