"""``lcf-adapt`` — reactive scheduling runs and reactive-vs-oblivious curves.

Two modes:

* **Single run** (default): simulate one scheduler under a fault plan
  twice — fault-blind (oblivious) and adaptive — and print the
  side-by-side degradation plus the health estimator's decisions
  (suspects, probes, readmissions, detection latency). ``--trace-out``
  writes the adaptive run's JSONL event trace.
* **Grid** (``--availability-grid``): reactive-vs-oblivious degradation
  curves per scheduler through the cached parallel sweep engine, with
  CSV/JSON artifacts.

Examples::

    lcf-adapt --scheduler lcf_central_rr --availability 0.9 \
        --ports 8 --slots 1000 --trace-out adapt.jsonl
    lcf-adapt --schedulers lcf_central_rr,islip \
        --availability-grid 1.0,0.95,0.9,0.8 --workers 4 \
        --cache-dir .sweep-cache --csv adapt.csv --json adapt.json
    lcf-adapt --scheduler lcf_dist_rr --link-down 2:5:100:400 \
        --mode ewma --probe-interval 8
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.adapt.adapter import AdaptiveLCF, ObliviousAdapter
from repro.adapt.config import AdaptConfig
from repro.baselines.registry import SPECIAL_SWITCH_NAMES, available_schedulers
from repro.faults.cli import (
    _build_plan,
    _parse_grid,
    _parse_link_down,
    _parse_port_down,
    validate_common_args,
)
from repro.faults.harness import DEFAULT_AVAILABILITY_GRID, run_adaptive_sweep
from repro.ioutil import atomic_write_text
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import JsonlTracer, RingTracer
from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lcf-adapt",
        description="Fault-reactive scheduling runs and reactive-vs-oblivious "
        "degradation curves (LCF reproduction).",
    )
    parser.add_argument("--scheduler", default="lcf_central_rr",
                        help="scheduler for single-run mode "
                        f"({', '.join(available_schedulers())})")
    parser.add_argument("--schedulers", default=None,
                        help="comma list for grid mode "
                        "(default: lcf_central_rr,lcf_dist_rr)")
    parser.add_argument("--load", type=float, default=0.8)
    parser.add_argument("--ports", type=int, default=16)
    parser.add_argument("--slots", type=int, default=1000,
                        help="measured slots")
    parser.add_argument("--warmup", type=int, default=200)
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--traffic", default="bernoulli")
    # Fault plan (single-run mode) — same flags as lcf-faults.
    parser.add_argument("--port-down", action="append", default=[],
                        type=_parse_port_down, metavar="P:START:END[:SIDE]",
                        help="port outage interval (repeatable)")
    parser.add_argument("--link-down", action="append", default=[],
                        type=_parse_link_down, metavar="I:J:START:END",
                        help="single-crosspoint outage (repeatable)")
    parser.add_argument("--availability", type=float, default=None,
                        help="duty-cycled outages averaging this availability "
                        "(default 0.9 when no other fault flag is given)")
    # Reaction parameters (see repro.adapt.AdaptConfig).
    parser.add_argument("--mode", default="count", choices=("count", "ewma"),
                        help="evidence accumulator")
    parser.add_argument("--detection-window", type=int, default=None,
                        metavar="N", help="failed grants before suspect")
    parser.add_argument("--probation-window", type=int, default=None,
                        metavar="N", help="probe successes before readmit")
    parser.add_argument("--probe-interval", type=int, default=None,
                        metavar="SLOTS", help="slots between probe grants")
    parser.add_argument("--port-window", type=int, default=None, metavar="N",
                        help="per-port failure window (0 disables)")
    parser.add_argument("--starvation-window", type=int, default=None,
                        metavar="SLOTS",
                        help="ungranted-request strike window (0 disables)")
    parser.add_argument("--ewma-alpha", type=float, default=None)
    parser.add_argument("--suspect-threshold", type=float, default=None)
    parser.add_argument("--readmit-threshold", type=float, default=None)
    # Grid mode.
    parser.add_argument("--availability-grid", type=_parse_grid, default=None,
                        metavar="A0,A1,...",
                        help="compare stances over these availabilities (e.g. "
                        f"{','.join(str(x) for x in DEFAULT_AVAILABILITY_GRID)})")
    parser.add_argument("--replicates", type=int, default=1)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--cache-dir", default=None)
    parser.add_argument("--fast", action="store_true",
                        help="run on the repro.fastpath bitmask kernels "
                        "(bit-identical results, shared cache entries)")
    # Checkpointing (single-run mode; applies to the adaptive run).
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="single-run mode: checkpoint the adaptive run's "
                        "state here (estimator health tables included)")
    parser.add_argument("--checkpoint-every", metavar="N", type=int, default=None,
                        help="checkpoint cadence in slots (with --checkpoint)")
    parser.add_argument("--resume", metavar="PATH", default=None,
                        help="resume a checkpointed adaptive run; the "
                        "oblivious baseline is re-run fresh for comparison")
    # Artifacts.
    parser.add_argument("--trace-out", metavar="PATH", default=None,
                        help="single-run mode: write the adaptive run's "
                        "JSONL event trace")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="write the comparison rows as CSV")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the comparison report as JSON")
    parser.add_argument("--quiet", action="store_true")
    return parser


def _build_config(args: argparse.Namespace) -> AdaptConfig:
    """An :class:`AdaptConfig` from the reaction flags (unset flags keep
    the config defaults)."""
    fields = {
        "mode": args.mode,
        "detection_window": args.detection_window,
        "probation_window": args.probation_window,
        "probe_interval": args.probe_interval,
        "port_detection_window": args.port_window,
        "starvation_window": args.starvation_window,
        "ewma_alpha": args.ewma_alpha,
        "suspect_threshold": args.suspect_threshold,
        "readmit_threshold": args.readmit_threshold,
    }
    return AdaptConfig(**{k: v for k, v in fields.items() if v is not None})


def _single_run(args: argparse.Namespace, adapt: AdaptConfig) -> int:
    if args.scheduler in SPECIAL_SWITCH_NAMES:
        print(f"lcf-adapt: {args.scheduler!r} uses a dedicated switch model "
              "without adaptive support", file=sys.stderr)
        return 2
    if args.availability is None and not args.port_down and not args.link_down:
        args.availability = 0.9  # something must fail, or there is nothing to react to
    args.loss = 0.0
    args.delay = 0.0
    try:
        plan = _build_plan(args)
    except ValueError as exc:
        print(f"lcf-adapt: invalid fault plan: {exc}", file=sys.stderr)
        return 2
    config = SimConfig(
        n_ports=args.ports,
        iterations=args.iterations,
        warmup_slots=args.warmup,
        measure_slots=args.slots,
        seed=args.seed,
    )
    blind = run_simulation(
        config, args.scheduler, args.load, traffic=args.traffic,
        faults=plan, adapter=ObliviousAdapter(), fast=args.fast,
    )
    tracer = (
        JsonlTracer(args.trace_out) if args.trace_out else RingTracer(1 << 20)
    )
    metrics = MetricsRegistry()
    adapter = AdaptiveLCF(adapt)
    with tracer:
        reactive = run_simulation(
            config, args.scheduler, args.load, traffic=args.traffic,
            tracer=tracer, metrics=metrics, faults=plan, adapter=adapter,
            fast=args.fast, checkpoint_path=args.checkpoint,
            checkpoint_every=args.checkpoint_every,
        )
    if args.checkpoint and not args.quiet:
        print(f"checkpoint at {args.checkpoint}")
    if not args.quiet:
        print(f"fault plan: {plan.describe()}")
        print(f"reaction:   {adapt.describe()}")
        for stance, result in (("oblivious", blind), ("adaptive", reactive)):
            print(
                f"{args.scheduler} [{stance:9s}] load={args.load:g}: "
                f"throughput {result.throughput:.3f}, "
                f"mean latency {result.mean_latency:.2f}, "
                f"forwarded {result.forwarded}"
            )
        print(adapter.summary())
        if "detection_latency" in metrics:
            hist = metrics.histogram(
                "detection_latency",
                (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
            )
            if hist.count:
                print(f"detection latency: mean {hist.mean:.1f} slot(s) "
                      f"over {hist.count} detection(s)")
    if args.trace_out and not args.quiet:
        print(f"trace written to {args.trace_out}")
    if args.json:
        atomic_write_text(
            args.json,
            json.dumps(
                {
                    "mode": "single",
                    "scheduler": args.scheduler,
                    "load": args.load,
                    "plan": plan.describe(),
                    "adapt": dict(adapt.to_spec()),
                    "oblivious": blind.row(),
                    "adaptive": reactive.row(),
                },
                indent=2,
            ),
        )
    return 0


def _resume(args: argparse.Namespace) -> int:
    """Resume the adaptive half of a checkpointed comparison.

    The checkpoint's stored run spec rebuilds the oblivious baseline
    from scratch (it is cheap and deterministic), while the adaptive
    run — estimator health tables and all — continues from the file.
    """
    from repro.checkpoint import CheckpointError, load_checkpoint, resume_simulation

    tracer = JsonlTracer(args.trace_out) if args.trace_out else None
    metrics = MetricsRegistry()
    try:
        run = load_checkpoint(args.resume)["run"]
        reactive = resume_simulation(args.resume, tracer=tracer, metrics=metrics)
    except CheckpointError as exc:
        print(f"lcf-adapt: {exc}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            tracer.close()
    blind = run_simulation(
        SimConfig(**run["config"]), run["scheduler"], run["load"],
        traffic=run["traffic"], traffic_kwargs=run["traffic_kwargs"],
        faults=run["faults"], adapter=ObliviousAdapter(), fast=run["fast"],
    )
    if not args.quiet:
        for stance, result in (("oblivious", blind), ("adaptive", reactive)):
            print(
                f"{run['scheduler']} [{stance:9s}] load={run['load']:g}: "
                f"throughput {result.throughput:.3f}, "
                f"mean latency {result.mean_latency:.2f}, "
                f"forwarded {result.forwarded}"
            )
    if args.trace_out and not args.quiet:
        print(f"trace written to {args.trace_out}")
    if args.json:
        atomic_write_text(
            args.json,
            json.dumps(
                {
                    "mode": "resume",
                    "scheduler": run["scheduler"],
                    "load": run["load"],
                    "adapt": dict(pair for pair in (run["adapt"] or [])),
                    "oblivious": blind.row(),
                    "adaptive": reactive.row(),
                },
                indent=2,
                allow_nan=True,
            ),
        )
    return 0


def _grid(args: argparse.Namespace, adapt: AdaptConfig) -> int:
    schedulers = tuple(
        (args.schedulers or "lcf_central_rr,lcf_dist_rr").split(",")
    )
    bad = [s for s in schedulers if s in SPECIAL_SWITCH_NAMES]
    if bad:
        print(f"lcf-adapt: {bad} use dedicated switch models without "
              "adaptive support", file=sys.stderr)
        return 2
    config = SimConfig(
        n_ports=args.ports,
        iterations=args.iterations,
        warmup_slots=args.warmup,
        measure_slots=args.slots,
        seed=args.seed,
    )
    try:
        report = run_adaptive_sweep(
            schedulers,
            availabilities=args.availability_grid,
            load=args.load,
            config=config,
            adapt=adapt,
            traffic=args.traffic,
            replicates=args.replicates,
            processes=args.workers,
            cache=args.cache_dir,
            progress=not args.quiet,
            fast=args.fast,
        )
    except ValueError as exc:
        print(f"lcf-adapt: {exc}", file=sys.stderr)
        return 2
    if not args.quiet:
        print(report.summary())
    if args.csv:
        atomic_write_text(args.csv, report.to_csv())
        if not args.quiet:
            print(f"comparison rows written to {args.csv}")
    if args.json:
        atomic_write_text(
            args.json,
            json.dumps(
                {
                    "mode": "availability",
                    "load": report.load,
                    "schedulers": list(report.schedulers),
                    "values": list(report.values),
                    "adapt": dict(report.adapt_spec),
                    "rows": report.rows(),
                },
                indent=2,
                allow_nan=True,
            ),
        )
        if not args.quiet:
            print(f"comparison report written to {args.json}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    error = validate_common_args(args, "lcf-adapt")
    if error is not None:
        print(error, file=sys.stderr)
        return 2
    try:
        adapt = _build_config(args)
    except ValueError as exc:
        print(f"lcf-adapt: invalid reaction config: {exc}", file=sys.stderr)
        return 2
    if args.checkpoint_every is not None and not args.checkpoint:
        print("lcf-adapt: --checkpoint-every needs --checkpoint", file=sys.stderr)
        return 2
    if args.resume:
        if args.checkpoint:
            print("lcf-adapt: --resume and --checkpoint are mutually "
                  "exclusive", file=sys.stderr)
            return 2
        return _resume(args)
    if args.availability_grid is not None:
        return _grid(args, adapt)
    return _single_run(args, adapt)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
