"""Scheduler-agnostic adapters wiring health inference into the switch.

An adapter changes the switch's *stance* toward faults. Without one,
:class:`~repro.sim.crossbar.InputQueuedSwitch` pre-masks faulted
crosspoints out of the request matrix — the informed stance, where an
oracle tells the scheduler the exact fault state. With an adapter
attached the switch goes fault-blind: the scheduler sees whatever the
adapter's :meth:`~SchedulingAdapter.filter_requests` returns, grants
over dead crosspoints are silently dropped by the fabric gate, and the
adapter's :meth:`~SchedulingAdapter.observe` sees which proposed grants
survived.

Two stances ship:

* :class:`ObliviousAdapter` — the degraded baseline: requests pass
  through untouched, outcomes are ignored. The scheduler keeps wasting
  grants on dead crosspoints for as long as they stay dead.
* :class:`AdaptiveLCF` — the reactive stance: a
  :class:`~repro.adapt.estimator.HealthEstimator` learns dead
  crosspoints from the wasted grants and filters them out of the
  request matrix. For an LCF scheduler this *is* the choice-count
  correction: the NRQ vector is computed from the filtered matrix, so
  suspected-dead crosspoints no longer count as choices and LCF
  priority reflects usable choices only. The wrapper is
  scheduler-agnostic — iSLIP, PIM, or weighted matching baselines react
  the same way.

Adapters work with any registry scheduler because they act on the
request matrix and the grant outcomes, never on scheduler internals.
"""

from __future__ import annotations

import numpy as np

from repro.adapt.config import AdaptConfig
from repro.adapt.estimator import HealthEstimator
from repro.adapt.policy import BackupPortPolicy

__all__ = ["SchedulingAdapter", "ObliviousAdapter", "AdaptiveLCF", "make_adapter"]


class SchedulingAdapter:
    """Base adapter: the fault-blind pass-through contract.

    The switch drives one instance through four hooks each slot:
    :meth:`filter_requests` before scheduling, :meth:`note_truth` with
    the injector's ground-truth mask (metrics only — never decisions),
    and :meth:`observe` with the proposed and fabric-applied schedules
    after the gate. :meth:`bind` is called once when the switch is
    built, with the port count and the resolved tracer/metrics.
    """

    #: Spec name (the ``policy`` key understood by :func:`make_adapter`).
    name = "oblivious"

    def __init__(self) -> None:
        self.n: int | None = None

    def bind(self, n: int, tracer=None, metrics=None) -> None:
        """Attach to a switch: fix the port count and instrumentation."""
        self.n = n

    def reset(self) -> None:
        """Forget all learned state (fresh simulation run)."""

    def filter_requests(self, slot: int, matrix: np.ndarray) -> np.ndarray:
        """The request matrix the scheduler should see this slot."""
        return matrix

    def note_truth(self, slot: int, mask: np.ndarray) -> None:
        """Ground-truth crosspoint usability, when an injector exists."""

    def observe(self, slot: int, proposed: np.ndarray, applied: np.ndarray) -> None:
        """Per-slot outcomes: the schedule as proposed by the scheduler
        and as applied after the fabric gate."""

    def to_spec(self) -> tuple[tuple[str, object], ...]:
        """Flat ``(key, value)`` pairs for sweep specs / cache keys."""
        return (("policy", self.name),)

    def summary(self) -> str:
        """One-line state description for CLI reports."""
        return f"{self.name}: no reaction (fault-blind baseline)"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"


class ObliviousAdapter(SchedulingAdapter):
    """The fault-blind baseline stance — inherits every pass-through."""


class AdaptiveLCF(SchedulingAdapter):
    """Reactive wrapper: learn dead crosspoints, steer grants around
    them, probe for recovery.

    Construct with an :class:`~repro.adapt.config.AdaptConfig` (or
    keyword fields for one) and optionally a custom
    :class:`~repro.adapt.policy.BackupPortPolicy`. The
    :class:`~repro.adapt.estimator.HealthEstimator` is created at
    :meth:`bind` time, when the port count is known; ``estimator`` is
    ``None`` before that.
    """

    name = "adaptive"

    def __init__(
        self,
        config: AdaptConfig | None = None,
        policy: BackupPortPolicy | None = None,
        **kwargs,
    ) -> None:
        super().__init__()
        if config is not None and kwargs:
            raise ValueError("pass either a config object or keyword fields, not both")
        self.config = config if config is not None else AdaptConfig(**kwargs)
        self.policy = policy if policy is not None else BackupPortPolicy()
        self.estimator: HealthEstimator | None = None

    def bind(self, n: int, tracer=None, metrics=None) -> None:
        super().bind(n, tracer, metrics)
        if self.estimator is None or self.estimator.n != n:
            self.estimator = HealthEstimator(
                n, self.config, self.policy, tracer=tracer, metrics=metrics
            )
        else:
            self.estimator.attach(tracer, metrics)

    def reset(self) -> None:
        if self.estimator is not None:
            self.estimator.reset()

    def filter_requests(self, slot: int, matrix: np.ndarray) -> np.ndarray:
        if self.estimator is None:
            raise RuntimeError("AdaptiveLCF.bind(n) must run before filtering")
        return self.estimator.usable(slot, matrix)

    def note_truth(self, slot: int, mask: np.ndarray) -> None:
        if self.estimator is not None:
            self.estimator.note_truth(slot, mask)

    def observe(self, slot: int, proposed: np.ndarray, applied: np.ndarray) -> None:
        if self.estimator is None:
            raise RuntimeError("AdaptiveLCF.bind(n) must run before observing")
        self.estimator.observe(slot, proposed, applied)

    def to_spec(self) -> tuple[tuple[str, object], ...]:
        return self.config.to_spec()

    def summary(self) -> str:
        if self.estimator is None:
            return f"adaptive (unbound): {self.config.describe()}"
        return self.estimator.summary()


def make_adapter(spec) -> SchedulingAdapter | None:
    """Resolve an adapter spec to an instance (or ``None``).

    Accepts, in order of convenience:

    * ``None`` or an empty spec — no adapter (the informed default);
    * an existing :class:`SchedulingAdapter` — returned as-is;
    * an :class:`~repro.adapt.config.AdaptConfig` — wrapped in
      :class:`AdaptiveLCF`;
    * a dict or ``(key, value)`` pair tuple — the wire form. The
      ``policy`` key picks the stance (``"oblivious"`` or
      ``"adaptive"``, the default); remaining keys become
      :class:`~repro.adapt.config.AdaptConfig` fields.
    """
    if spec is None:
        return None
    if isinstance(spec, SchedulingAdapter):
        return spec
    if isinstance(spec, AdaptConfig):
        return AdaptiveLCF(spec)
    pairs = dict(spec)
    if not pairs:
        return None
    policy = pairs.get("policy", "adaptive")
    if policy == "oblivious":
        extras = set(pairs) - {"policy"}
        if extras:
            raise ValueError(
                f"oblivious adapter takes no config keys, got {sorted(extras)}"
            )
        return ObliviousAdapter()
    if policy != "adaptive":
        raise ValueError(
            f"unknown adapter policy {policy!r}; expected 'adaptive' or 'oblivious'"
        )
    return AdaptiveLCF(AdaptConfig.from_spec(pairs))
