"""Fault-reactive scheduling: close the loop from observation to decision.

:mod:`repro.faults` (PR 3) made every scheduler *survive* faults;
this package makes them *react*. A masked crosspoint is exactly a lost
choice, so fault awareness slots directly into the paper's
least-choice-first priority rule: subtract suspected-dead crosspoints
from the request matrix and the NRQ choice counts reflect *usable*
choices.

Layers (each importable on its own):

* :class:`~repro.adapt.config.AdaptConfig` — frozen declarative
  reaction parameters (detection/probation windows, probe cadence,
  count vs EWMA evidence), sweep-spec round-trippable;
* :class:`~repro.adapt.estimator.HealthEstimator` — deterministic
  online health inference from grant outcomes, with ``suspect`` /
  ``probe`` / ``readmit`` trace events and detection-latency metrics;
* :class:`~repro.adapt.policy.BackupPortPolicy` — stateless re-ranking
  of alternate outputs for flows whose primary crosspoint is suspect;
* :class:`~repro.adapt.adapter.AdaptiveLCF` /
  :class:`~repro.adapt.adapter.ObliviousAdapter` — the switch-facing
  stances, resolved from wire specs by
  :func:`~repro.adapt.adapter.make_adapter`.

See ``docs/ADAPTIVE.md`` for the estimator model and benchmark results.
"""

from repro.adapt.adapter import (
    AdaptiveLCF,
    ObliviousAdapter,
    SchedulingAdapter,
    make_adapter,
)
from repro.adapt.config import AdaptConfig
from repro.adapt.estimator import HealthEstimator
from repro.adapt.policy import BackupPortPolicy

__all__ = [
    "AdaptConfig",
    "AdaptiveLCF",
    "BackupPortPolicy",
    "HealthEstimator",
    "ObliviousAdapter",
    "SchedulingAdapter",
    "make_adapter",
]
