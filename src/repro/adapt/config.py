"""Adaptive-scheduling configuration: *how* the loop reacts, declaratively.

An :class:`AdaptConfig` is the frozen, declarative counterpart of
:class:`~repro.faults.plan.FaultPlan` for the reaction side: it says how
much evidence turns a crosspoint suspect, how often suspects are probed,
and how many successful probes readmit them. It contains **no state**;
:class:`~repro.adapt.estimator.HealthEstimator` turns it into concrete,
deterministic per-slot decisions.

Like a fault plan, a config round-trips through :meth:`AdaptConfig.to_spec`
/ :meth:`AdaptConfig.from_spec` as flat ``(key, value)`` tuples so it can
ride inside a frozen :class:`~repro.sweep.spec.SweepSpec` and be folded
into the sweep cache key — an adaptive sweep point caches and resumes
exactly like a plain one, and a plain point's key is unchanged.

The spec form additionally carries a ``policy`` key (``"adaptive"`` or
``"oblivious"``) so one wire format names all three scheduling stances:

* *empty spec* — the default informed stance: the switch masks faulted
  crosspoints out of the request matrix before scheduling (the PR 3
  semantics; the scheduler is told the fault state by an oracle);
* ``policy=oblivious`` — fault-blind: the scheduler sees every request
  and wastes grants on dead crosspoints (the fabric gate silently drops
  them). This is the degraded baseline reactive scheduling must beat;
* ``policy=adaptive`` — fault-blind *and* reactive: an
  :class:`~repro.adapt.adapter.AdaptiveLCF` layer learns dead
  crosspoints from the wasted grants and steers scheduling around them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

__all__ = ["AdaptConfig"]


@dataclass(frozen=True)
class AdaptConfig:
    """Parameters of the fault-reaction loop (defaults are deliberately
    conservative: quick detection, light probing, no starvation signal).

    ``mode`` selects the evidence accumulator: ``"count"`` tracks
    consecutive failed grants per crosspoint/port, ``"ewma"`` tracks an
    exponentially weighted health score with hysteresis.
    """

    #: ``"count"`` (consecutive-failure windows) or ``"ewma"``.
    mode: str = "count"
    #: Count mode: consecutive undelivered grants on one crosspoint that
    #: turn it suspect.
    detection_window: int = 3
    #: Count mode: successful probes required to readmit a suspect.
    probation_window: int = 1
    #: Slots between probe grants offered to one suspect crosspoint
    #: (anchored at the slot it became suspect, so the cadence is a pure
    #: function of the event history). The default is aggressive on
    #: purpose: a failed probe wastes at most one grant, while every
    #: slot a *recovered* crosspoint stays blocked compounds queue
    #: backlog — benchmarks showed readmission lag, not probe cost,
    #: dominating the reactive-vs-oblivious gap.
    probe_interval: int = 4
    #: Consecutive undelivered grants *anywhere on a port* (row or
    #: column) that turn the whole port suspect; 0 disables port-level
    #: inference and keeps health purely per-crosspoint.
    port_detection_window: int = 4
    #: Slots a continuously requesting crosspoint may go entirely
    #: ungranted before that counts as one failure strike; 0 disables
    #: the starvation signal (the default — under heavy contention it
    #: trades detection coverage for false positives).
    starvation_window: int = 0
    #: EWMA mode: smoothing factor for the per-crosspoint health score.
    ewma_alpha: float = 0.25
    #: EWMA mode: health below this turns a crosspoint suspect.
    suspect_threshold: float = 0.5
    #: EWMA mode: probed health at or above this readmits it (hysteresis
    #: band; must be >= suspect_threshold).
    readmit_threshold: float = 0.75

    def __post_init__(self) -> None:
        if self.mode not in ("count", "ewma"):
            raise ValueError(f"mode must be count or ewma, got {self.mode!r}")
        for name in ("detection_window", "probation_window", "probe_interval"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1, got {getattr(self, name)}")
        for name in ("port_detection_window", "starvation_window"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got {getattr(self, name)}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}")
        for name in ("suspect_threshold", "readmit_threshold"):
            if not 0.0 <= getattr(self, name) <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], "
                    f"got {getattr(self, name)}"
                )
        if self.readmit_threshold < self.suspect_threshold:
            raise ValueError(
                "readmit_threshold must be >= suspect_threshold "
                f"(hysteresis), got {self.readmit_threshold} < "
                f"{self.suspect_threshold}"
            )

    # -- sweep-spec round trip -----------------------------------------------

    def to_spec(self) -> tuple[tuple[str, object], ...]:
        """Flatten to sorted ``(key, value)`` pairs for
        ``SweepSpec.adapt_kwargs``; default values are omitted, and a
        ``("policy", "adaptive")`` pair is always present so the spec of
        an all-defaults config is still non-empty (an empty spec means
        *no adapter at all*)."""
        spec: list[tuple[str, object]] = [("policy", "adaptive")]
        for field in fields(self):
            value = getattr(self, field.name)
            if value != field.default:
                spec.append((field.name, value))
        return tuple(sorted(spec))

    @classmethod
    def from_spec(cls, spec) -> "AdaptConfig":
        """Inverse of :meth:`to_spec`; also accepts a plain dict. A
        ``policy`` key, if present, must say ``adaptive``."""
        pairs = dict(spec) if not isinstance(spec, dict) else dict(spec)
        policy = pairs.pop("policy", "adaptive")
        if policy != "adaptive":
            raise ValueError(
                f"AdaptConfig.from_spec got policy {policy!r}; use "
                "make_adapter() to resolve oblivious specs"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(pairs) - known
        if unknown:
            raise ValueError(f"unknown adapt-config keys: {sorted(unknown)}")
        return cls(**pairs)

    def describe(self) -> str:
        """One-line human summary for CLI banners."""
        if self.mode == "count":
            detail = (
                f"detect after {self.detection_window} failed grant(s), "
                f"readmit after {self.probation_window} probe(s)"
            )
        else:
            detail = (
                f"ewma alpha={self.ewma_alpha:g} suspect<{self.suspect_threshold:g} "
                f"readmit>={self.readmit_threshold:g}"
            )
        port = (
            f", port quorum {self.port_detection_window}"
            if self.port_detection_window
            else ""
        )
        return f"adaptive ({self.mode}): {detail}, probe every {self.probe_interval}{port}"
