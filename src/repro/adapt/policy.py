"""Backup-output ranking for flows whose primary crosspoint is suspect.

When the :class:`~repro.adapt.estimator.HealthEstimator` steers every
requested output of one input out of the request matrix, that input
would starve — and, worse, stop producing the very grant outcomes the
estimator learns from. The :class:`BackupPortPolicy` breaks the
deadlock: it re-ranks the input's blocked alternatives and restores the
most promising one as a backup grant opportunity. The same ranking
picks which crosspoint a suspect *port* probes through.

The policy is stateless and pure: the rank of a candidate depends only
on ``(slot, port, health scores)``, so replaying a trace replays the
same backups. Ties rotate with the slot number, spreading consecutive
backup attempts across equally healthy candidates instead of hammering
the lowest index.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BackupPortPolicy"]


class BackupPortPolicy:
    """Deterministic ranking of alternate outputs.

    Candidates are ordered by descending health score (the estimator's
    EWMA score, or ``1 / (1 + fail_streak)`` in count mode) and, within
    a health tie, by a slot-rotated round robin so repeated backup
    picks cycle through the tie instead of always retrying one loser.
    """

    def rank(
        self, slot: int, port: int, candidates: np.ndarray, health: np.ndarray
    ) -> list[int]:
        """All candidate indices, best first.

        ``candidates`` is a length-``n`` bool mask (the blocked lane
        entries that still have a request); ``health`` the matching
        per-candidate scores. Empty mask returns an empty list.
        """
        n = candidates.shape[0]
        picks = np.flatnonzero(candidates)
        order = sorted(
            (int(j) for j in picks),
            key=lambda j: (-float(health[j]), (j - slot - port) % n),
        )
        return order

    def choose(
        self, slot: int, port: int, candidates: np.ndarray, health: np.ndarray
    ) -> int:
        """The single best candidate (see :meth:`rank`).

        Raises ``ValueError`` on an empty candidate mask — callers gate
        on ``candidates.any()`` first.
        """
        order = self.rank(slot, port, candidates, health)
        if not order:
            raise ValueError("no candidate outputs to choose from")
        return order[0]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "BackupPortPolicy(health-desc, slot-rotated ties)"
