"""Online crosspoint/port health inference from scheduling outcomes.

The estimator closes the observation half of the fault-reaction loop.
It never sees the :class:`~repro.faults.plan.FaultPlan`; everything it
knows is inferred from what a scheduler can actually observe in a real
switch:

* **grants that never forward** — the fabric gate silently drops a
  grant over a dead crosspoint, so a proposed grant that is missing
  from the applied schedule is one failure strike;
* **requests that never receive grants** — optionally (the starvation
  signal), a crosspoint that keeps requesting without ever being
  granted for ``starvation_window`` slots counts as a strike too;
* **fault/recovery ground truth when available** — the injector's
  usability mask is *never* used for decisions, only to score them
  (detection latency, readmission latency, false positives) through
  :mod:`repro.obs` metrics.

Evidence is accumulated per crosspoint and, when
``port_detection_window`` is non-zero, per port side: ``n`` consecutive
failures anywhere on one row (input) or column (output) suspect the
whole port long before every individual crosspoint could be learned.

Everything is deterministic and replay-safe: the estimator's state is a
pure function of the observation sequence, probes fire on a fixed
cadence anchored at the slot an entry became suspect, and no wall-clock
or RNG is consulted — an adaptive simulation stays a pure function of
``(config, scheduler, load, plan, adapt, seed)`` exactly like a faulted
one, which is what keeps the sweep cache and golden traces valid.

Lifecycle per slot (driven by :class:`~repro.adapt.adapter.AdaptiveLCF`):

1. :meth:`usable` — the adaptive request mask: everything not suspect,
   plus the probe grants due this slot (each emitting a ``probe``
   event);
2. the scheduler runs over the filtered requests;
3. :meth:`observe` — proposed-versus-applied outcomes update the
   evidence, emitting ``suspect`` / ``readmit`` events on transitions.
"""

from __future__ import annotations

import numpy as np

from repro.adapt.config import AdaptConfig
from repro.adapt.policy import BackupPortPolicy
from repro.obs import events as ev
from repro.obs.metrics import MetricsRegistry
from repro.types import NO_GRANT

__all__ = ["HealthEstimator"]

#: Bucket edges of the detection/readmission latency histograms, slots.
_LATENCY_BUCKETS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class HealthEstimator:
    """Per-crosspoint and per-port health state machine.

    ``n`` is the switch port count. ``tracer``/``metrics`` (both
    optional) receive ``suspect``/``probe``/``readmit`` events and the
    ``detection_latency``/``readmit_latency``/``adapt_false_positives``
    instruments; with neither attached the estimator is silent but
    decides identically.
    """

    def __init__(
        self,
        n: int,
        config: AdaptConfig | None = None,
        policy: BackupPortPolicy | None = None,
        tracer=None,
        metrics: MetricsRegistry | None = None,
    ):
        if n < 1:
            raise ValueError(f"switch must have at least 1 port, got n={n}")
        self.n = n
        self.config = config if config is not None else AdaptConfig()
        self.policy = policy if policy is not None else BackupPortPolicy()
        self.tracer = tracer
        self.metrics = metrics
        self._bind_metrics()
        self.reset()

    def _bind_metrics(self) -> None:
        metrics = self.metrics
        if metrics is None:
            self._m_suspects = self._m_probes = self._m_readmits = None
            return
        self._m_suspects = metrics.counter("suspects")
        self._m_probes = metrics.counter("probes")
        self._m_readmits = metrics.counter("readmits")
        self._m_false = metrics.counter("adapt_false_positives")
        self._m_detect = metrics.histogram("detection_latency", _LATENCY_BUCKETS)
        self._m_readmit_lat = metrics.histogram("readmit_latency", _LATENCY_BUCKETS)

        # Live suspect count as a collector-refreshed gauge: only export
        # paths (snapshots, scrapes) pay for the mask reduction, and the
        # keyed registration means a re-attach replaces rather than
        # stacks the closure.
        def _collect() -> None:
            metrics.gauge("active_suspects").set(int(self.blocked.sum()))

        metrics.add_collector(f"adapt-suspects-{id(self)}", _collect)

    def attach(self, tracer, metrics: MetricsRegistry | None) -> None:
        """Late-bind instrumentation (the switch resolves its tracer
        after the estimator may already exist)."""
        self.tracer = tracer
        if metrics is not None:
            self.metrics = metrics
        self._bind_metrics()

    def reset(self) -> None:
        """Restore the power-on state: everything healthy."""
        n = self.n
        self._fail = np.zeros((n, n), dtype=np.int64)
        self._ok = np.zeros((n, n), dtype=np.int64)
        self._suspect = np.zeros((n, n), dtype=bool)
        self._since = np.full((n, n), -1, dtype=np.int64)
        self._health = np.ones((n, n), dtype=np.float64)
        #: Per-port evidence, one row per side ("input" row 0, "output" row 1).
        self._port_fail = np.zeros((2, n), dtype=np.int64)
        self._port_ok = np.zeros((2, n), dtype=np.int64)
        self._port_suspect = np.zeros((2, n), dtype=bool)
        self._port_since = np.full((2, n), -1, dtype=np.int64)
        self._port_health = np.ones((2, n), dtype=np.float64)
        #: Starvation clocks: slot an entry started continuously
        #: requesting without any grant; -1 = not pending.
        self._pending_since = np.full((n, n), -1, dtype=np.int64)
        #: Crosspoints admitted as probes this slot (valid until the
        #: next :meth:`usable` call).
        self._probe_set: set[tuple[int, int]] = set()
        #: Ground truth (metrics only): slot an entry went down / came
        #: back up according to the injector mask.
        self._truth_down_since = np.full((n, n), -1, dtype=np.int64)
        self._truth_up_since = np.zeros((n, n), dtype=np.int64)
        self._have_truth = False
        #: Transition totals (kept as plain ints so the CLI can report
        #: without a MetricsRegistry attached).
        self.suspect_events = 0
        self.probe_events = 0
        self.readmit_events = 0
        self.false_positives = 0

    # -- decision surface ----------------------------------------------------

    @property
    def blocked(self) -> np.ndarray:
        """``(n, n)`` bool mask of crosspoints currently steered around
        (crosspoint suspects plus suspect-port rows/columns)."""
        return (
            self._suspect
            | self._port_suspect[0][:, np.newaxis]
            | self._port_suspect[1][np.newaxis, :]
        )

    def health_score(self) -> np.ndarray:
        """Per-crosspoint health in ``[0, 1]`` for ranking backups:
        the EWMA score in ``ewma`` mode, ``1 / (1 + fail_streak)`` in
        ``count`` mode."""
        if self.config.mode == "ewma":
            return self._health
        return 1.0 / (1.0 + self._fail)

    def _due(self, slot: int, since: int) -> bool:
        """Probe cadence: every ``probe_interval`` slots after ``since``."""
        return slot > since and (slot - since) % self.config.probe_interval == 0

    def usable(self, slot: int, matrix: np.ndarray) -> np.ndarray:
        """The adaptive request mask for one slot.

        Returns ``matrix`` with suspect crosspoints removed and due
        probes re-admitted; also advances the starvation clocks. The
        input matrix is not mutated. When nothing is suspect and the
        starvation signal is off, ``matrix`` itself is returned — the
        zero-fault path adds no work and no copies, which is what makes
        a null-plan adaptive run bit-identical to a plain one.
        """
        self._probe_set = set()
        blocked = self.blocked
        starving = self.config.starvation_window > 0
        if not blocked.any() and not starving:
            return matrix
        if starving:
            self._advance_starvation(slot, matrix, blocked)
            blocked = self.blocked  # starvation may have raised suspects
            if not blocked.any():
                return matrix
        usable = matrix & ~blocked

        # Crosspoint probes: each suspect entry re-offers itself on its
        # own cadence, so recovered links are re-learned without waiting
        # for an operator.
        for i, j in zip(*np.nonzero(self._suspect & matrix)):
            if self._due(slot, int(self._since[i, j])):
                self._admit_probe(slot, int(i), int(j), "link", usable)
        # Port probes: one representative crosspoint per due port, picked
        # by the backup policy so the healthiest candidate goes first.
        for side in (0, 1):
            for port in np.flatnonzero(self._port_suspect[side]):
                if not self._due(slot, int(self._port_since[side, port])):
                    continue
                lane = matrix[port, :] if side == 0 else matrix[:, port]
                already = usable[port, :] if side == 0 else usable[:, port]
                candidates = lane & ~already
                if not candidates.any():
                    continue
                pick = self.policy.choose(
                    slot, int(port), candidates, self._lane_health(side, port)
                )
                pair = (int(port), pick) if side == 0 else (pick, int(port))
                self._admit_probe(
                    slot, pair[0], pair[1], "input" if side == 0 else "output", usable
                )

        # A fully-blocked input is not a deadlock: its suspects keep
        # getting probed on cadence, so evidence (and, after a real
        # recovery, service) returns within one probe interval. Grants
        # outside the probe cadence would just repeat the oblivious
        # waste the estimator exists to stop.
        return usable

    def _lane_health(self, side: int, port: int) -> np.ndarray:
        health = self.health_score()
        return health[port, :] if side == 0 else health[:, port]

    def _admit_probe(
        self, slot: int, i: int, j: int, scope: str, usable: np.ndarray
    ) -> None:
        if (i, j) in self._probe_set:
            return
        usable[i, j] = True
        self._probe_set.add((i, j))
        self.probe_events += 1
        if self._m_probes is not None:
            self._m_probes.inc()
        if self.tracer is not None:
            self.tracer.emit(ev.probe(slot, i, j, scope))

    def was_probe(self, i: int, j: int) -> bool:
        """Whether ``(i, j)`` was admitted as a probe this slot."""
        return (i, j) in self._probe_set

    def _advance_starvation(
        self, slot: int, matrix: np.ndarray, blocked: np.ndarray
    ) -> None:
        window = self.config.starvation_window
        pending = matrix & ~blocked
        self._pending_since[~pending] = -1
        fresh = pending & (self._pending_since < 0)
        self._pending_since[fresh] = slot
        ripe = pending & (self._pending_since >= 0) & (
            slot - self._pending_since >= window
        )
        for i, j in zip(*np.nonzero(ripe)):
            self._pending_since[i, j] = slot  # re-arm for the next window
            self._strike(slot, int(i), int(j))

    # -- evidence ------------------------------------------------------------

    def note_truth(self, slot: int, mask: np.ndarray) -> None:
        """Record the injector's ground-truth usability mask — *metrics
        only*; decisions never read it."""
        self._have_truth = True
        going_down = (mask == False) & (self._truth_down_since < 0)  # noqa: E712
        self._truth_down_since[going_down] = slot
        coming_up = mask & (self._truth_down_since >= 0)
        self._truth_up_since[coming_up] = slot
        self._truth_down_since[mask] = -1

    def observe(self, slot: int, proposed: np.ndarray, applied: np.ndarray) -> None:
        """Digest one slot's outcomes: every proposed grant either
        survived the fabric gate (success) or vanished (failure)."""
        for i in range(self.n):
            j = int(proposed[i])
            if j == NO_GRANT:
                continue
            self._pending_since[i, j] = -1
            if int(applied[i]) == j:
                self._success(slot, i, j)
            else:
                self._strike(slot, i, j)

    def _update_health(self, cell: tuple, failed: bool) -> None:
        alpha = self.config.ewma_alpha
        target = self._health if len(cell) == 2 else self._port_health
        target[cell] = (1.0 - alpha) * target[cell] + (0.0 if failed else alpha)

    def _strike(self, slot: int, i: int, j: int) -> None:
        cfg = self.config
        self._fail[i, j] += 1
        self._ok[i, j] = 0
        self._update_health((i, j), failed=True)
        if not self._suspect[i, j]:
            tripped = (
                self._fail[i, j] >= cfg.detection_window
                if cfg.mode == "count"
                else self._health[i, j] < cfg.suspect_threshold
            )
            if tripped:
                self._mark_suspect(slot, i, j)
        if cfg.port_detection_window:
            for side, port in ((0, i), (1, j)):
                self._port_fail[side, port] += 1
                self._port_ok[side, port] = 0
                self._update_health((side, port), failed=True)
                if self._port_suspect[side, port]:
                    continue
                tripped = (
                    self._port_fail[side, port] >= cfg.port_detection_window
                    if cfg.mode == "count"
                    else self._port_health[side, port] < cfg.suspect_threshold
                )
                if tripped:
                    self._mark_port_suspect(slot, side, port)

    def _success(self, slot: int, i: int, j: int) -> None:
        cfg = self.config
        self._fail[i, j] = 0
        self._update_health((i, j), failed=False)
        if self._suspect[i, j]:
            self._ok[i, j] += 1
            cleared = (
                self._ok[i, j] >= cfg.probation_window
                if cfg.mode == "count"
                else self._health[i, j] >= cfg.readmit_threshold
            )
            if cleared:
                self._readmit(slot, i, j, "link")
        if cfg.port_detection_window:
            for side, port in ((0, i), (1, j)):
                self._port_fail[side, port] = 0
                self._update_health((side, port), failed=False)
                if not self._port_suspect[side, port]:
                    continue
                self._port_ok[side, port] += 1
                cleared = (
                    self._port_ok[side, port] >= cfg.probation_window
                    if cfg.mode == "count"
                    else self._port_health[side, port] >= cfg.readmit_threshold
                )
                if cleared:
                    self._readmit_port(slot, side, port)

    # -- transitions ---------------------------------------------------------

    def _mark_suspect(self, slot: int, i: int, j: int) -> None:
        self._suspect[i, j] = True
        self._since[i, j] = slot
        self._ok[i, j] = 0
        self.suspect_events += 1
        if self._m_suspects is not None:
            self._m_suspects.inc()
        self._score_detection(slot, self._truth_down_since[i, j] >= 0,
                              int(self._truth_down_since[i, j]))
        if self.tracer is not None:
            self.tracer.emit(ev.suspect(slot, i, j, "link", int(self._fail[i, j])))

    def _mark_port_suspect(self, slot: int, side: int, port: int) -> None:
        self._port_suspect[side, port] = True
        self._port_since[side, port] = slot
        self._port_ok[side, port] = 0
        self.suspect_events += 1
        if self._m_suspects is not None:
            self._m_suspects.inc()
        lane_down = (
            self._truth_down_since[port, :] if side == 0
            else self._truth_down_since[:, port]
        )
        down = lane_down[lane_down >= 0]
        self._score_detection(slot, down.size > 0, int(down.min()) if down.size else 0)
        if self.tracer is not None:
            scope = "input" if side == 0 else "output"
            pair = (port, -1) if side == 0 else (-1, port)
            fails = int(self._port_fail[side, port])
            self.tracer.emit(ev.suspect(slot, pair[0], pair[1], scope, fails))

    def _score_detection(self, slot: int, truly_down: bool, down_since: int) -> None:
        if not self._have_truth or self._m_suspects is None:
            return
        if truly_down:
            self._m_detect.observe(slot - down_since)
        else:
            self.false_positives += 1
            self._m_false.inc()

    def _readmit(self, slot: int, i: int, j: int, scope: str,
                 emit_latency: bool = True) -> None:
        after = int(slot - self._since[i, j])
        self._suspect[i, j] = False
        self._since[i, j] = -1
        self._ok[i, j] = 0
        self._fail[i, j] = 0
        self.readmit_events += 1
        if self._m_readmits is not None:
            self._m_readmits.inc()
            if (
                emit_latency
                and self._have_truth
                and self._truth_down_since[i, j] < 0
            ):
                self._m_readmit_lat.observe(slot - int(self._truth_up_since[i, j]))
        if self.tracer is not None:
            self.tracer.emit(ev.readmit(slot, i, j, scope, after))

    def _readmit_port(self, slot: int, side: int, port: int) -> None:
        since = int(self._port_since[side, port])
        after = slot - since
        self._port_suspect[side, port] = False
        self._port_since[side, port] = -1
        self._port_ok[side, port] = 0
        self._port_fail[side, port] = 0
        self.readmit_events += 1
        if self._m_readmits is not None:
            self._m_readmits.inc()
        scope = "input" if side == 0 else "output"
        if self.tracer is not None:
            pair = (port, -1) if side == 0 else (-1, port)
            self.tracer.emit(ev.readmit(slot, pair[0], pair[1], scope, after))
        # The port was the fault, not its links: optimistically clear the
        # crosspoint suspects raised during the outage so the lane does
        # not re-learn them one probe interval at a time. A genuine link
        # outage re-detects within one detection window.
        lane = self._suspect[port, :] if side == 0 else self._suspect[:, port]
        lane_since = self._since[port, :] if side == 0 else self._since[:, port]
        for other in np.flatnonzero(lane & (lane_since >= since)):
            pair = (port, int(other)) if side == 0 else (int(other), port)
            self._readmit(slot, pair[0], pair[1], "link", emit_latency=False)

    def summary(self) -> str:
        """One-line state summary for CLI reports."""
        return (
            f"health: {int(self._suspect.sum())} suspect crosspoint(s), "
            f"{int(self._port_suspect.sum())} suspect port side(s); "
            f"{self.suspect_events} suspect / {self.probe_events} probe / "
            f"{self.readmit_events} readmit event(s), "
            f"{self.false_positives} false positive(s)"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"HealthEstimator(n={self.n}, {self.config.describe()})"
