"""Statistical helpers for sweep results.

Confidence intervals use the t-distribution when scipy is importable
and fall back to the normal approximation otherwise (the package's
hard dependency is numpy only).
"""

from __future__ import annotations

import math

import numpy as np

try:  # scipy is an optional (dev) dependency
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover - exercised only without scipy
    _scipy_stats = None

#: Normal quantiles for the fallback path.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def mean_ci(samples, confidence: float = 0.95) -> tuple[float, float]:
    """Sample mean and half-width of its confidence interval.

    Returns ``(mean, half_width)``; half-width is 0 for fewer than two
    samples.
    """
    x = np.asarray(samples, dtype=float)
    if x.size == 0:
        return math.nan, 0.0
    mean = float(x.mean())
    if x.size < 2:
        return mean, 0.0
    sem = float(x.std(ddof=1)) / math.sqrt(x.size)
    if _scipy_stats is not None:
        quantile = float(_scipy_stats.t.ppf((1 + confidence) / 2, df=x.size - 1))
    else:
        quantile = _Z.get(round(confidence, 2), 1.96)
    return mean, quantile * sem


def geometric_mean(values) -> float:
    """Geometric mean of positive values (the right average for ratios
    like the Figure 12b relative latencies)."""
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return math.nan
    if np.any(x <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(x).mean()))


def coefficient_of_variation(values) -> float:
    """std/mean — dispersion measure used in the burstiness tests."""
    x = np.asarray(values, dtype=float)
    mean = x.mean()
    if mean == 0:
        return math.nan
    return float(x.std(ddof=1) / mean) if x.size > 1 else 0.0
