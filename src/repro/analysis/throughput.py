"""Saturation-throughput measurement.

The classic summary statistic of the input-queued switching literature:
drive every input at load 1.0 and measure the fraction of output
bandwidth actually delivered. Uniform saturated FIFO famously converges
to ``2 - sqrt(2) ≈ 0.586`` (Karol et al., the paper's reference [8]);
any maximal-matching VOQ scheduler reaches 1.0 under uniform traffic
once its pointers desynchronise; nonuniform patterns expose the gaps
between them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.config import SimConfig
from repro.sim.simulator import run_simulation

#: Karol/Hluchyj/Morgan's large-n limit for saturated uniform FIFO.
FIFO_SATURATION_LIMIT = 2.0 - 2.0**0.5


@dataclass(frozen=True)
class SaturationResult:
    """Throughput of one scheduler under a saturating workload."""

    scheduler: str
    traffic: str
    throughput: float
    dropped: int


def saturation_throughput(
    scheduler_name: str,
    config: SimConfig | None = None,
    traffic: str = "bernoulli",
    traffic_kwargs: dict | None = None,
) -> SaturationResult:
    """Measure delivered throughput at offered load 1.0.

    Uses small queues relative to the measurement window so that the
    system actually reaches saturation rather than just filling buffers.
    """
    if config is None:
        config = SimConfig(
            n_ports=16,
            voq_capacity=64,
            pq_capacity=64,
            warmup_slots=1000,
            measure_slots=5000,
        )
    result = run_simulation(
        config, scheduler_name, 1.0, traffic=traffic, traffic_kwargs=traffic_kwargs
    )
    return SaturationResult(
        scheduler=scheduler_name,
        traffic=traffic,
        throughput=result.throughput,
        dropped=result.dropped,
    )


def saturation_table(
    schedulers: tuple[str, ...],
    config: SimConfig | None = None,
    traffic: str = "bernoulli",
    traffic_kwargs: dict | None = None,
) -> list[dict[str, object]]:
    """Saturation throughput for a set of schedulers under one workload."""
    rows = []
    for name in schedulers:
        result = saturation_throughput(name, config, traffic, traffic_kwargs)
        rows.append(
            {
                "scheduler": name,
                "traffic": traffic,
                "saturation_throughput": round(result.throughput, 3),
            }
        )
    return rows
