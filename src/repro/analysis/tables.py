"""Fixed-width table rendering for terminal reports.

Used to print the Table 1/2 reproductions, the Figure 12 data grids,
and the EXPERIMENTS.md paper-versus-measured records.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping


def _format_value(value, float_digits: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        return f"{value:.{float_digits}f}"
    return str(value)


def format_table(
    rows: Iterable[Mapping[str, object]],
    columns: list[str] | None = None,
    float_digits: int = 3,
    indent: str = "",
) -> str:
    """Align a list of dict rows into a text table.

    ``columns`` selects and orders the columns (default: keys of the
    first row). Numeric cells are right-aligned.
    """
    rows = list(rows)
    if not rows:
        return f"{indent}(empty table)"
    if columns is None:
        columns = list(rows[0].keys())

    cells = [
        {col: _format_value(row.get(col, ""), float_digits) for col in columns}
        for row in rows
    ]
    widths = {
        col: max(len(col), *(len(row[col]) for row in cells)) for col in columns
    }
    numeric = {
        col: all(
            isinstance(row.get(col), (int, float)) and not isinstance(row.get(col), bool)
            for row in rows
        )
        for col in columns
    }

    def render_row(row: Mapping[str, str]) -> str:
        parts = []
        for col in columns:
            text = row[col]
            parts.append(text.rjust(widths[col]) if numeric[col] else text.ljust(widths[col]))
        return indent + "  ".join(parts).rstrip()

    header = indent + "  ".join(col.ljust(widths[col]) for col in columns).rstrip()
    separator = indent + "  ".join("-" * widths[col] for col in columns)
    return "\n".join([header, separator] + [render_row(row) for row in cells])


def rows_to_csv(rows: Iterable[Mapping[str, object]], columns: list[str] | None = None) -> str:
    """Serialise dict rows as CSV text (no external dependency)."""
    rows = list(rows)
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(str(row.get(col, "")) for col in columns))
    return "\n".join(lines) + "\n"
