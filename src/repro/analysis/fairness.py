"""Fairness analysis: the Section 3 hard lower bound and starvation.

The paper's headline fairness claim (Sections 3 and 7): with the
round-robin overlay, "there is a lower bound on the period each request
represented by a requester/resource pair is granted" — every
continuously backlogged (input, output) pair is served at least once
every ``n^2`` scheduling cycles, i.e. receives at least ``b/n^2`` of the
port bandwidth. Pure throughput-maximising schedulers (and pure LCF)
offer no such bound and can starve requests indefinitely.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import Scheduler
from repro.sim.metrics import jain_index
from repro.types import NO_GRANT, RequestMatrix


def saturated_service_counts(
    scheduler: Scheduler, cycles: int, requests: RequestMatrix | None = None
) -> np.ndarray:
    """Drive the scheduler with a *static* backlog for ``cycles`` cycles
    and count per-pair grants.

    ``requests`` defaults to the all-ones matrix — every VOQ permanently
    backlogged, the adversarial case for fairness. The queues never
    drain: the same matrix is presented every cycle, which models
    saturation.
    """
    n = scheduler.n
    if requests is None:
        requests = np.ones((n, n), dtype=bool)
    counts = np.zeros((n, n), dtype=np.int64)
    for _ in range(cycles):
        schedule = scheduler.schedule(requests)
        for i, j in enumerate(schedule):
            if j != NO_GRANT:
                counts[i, j] += 1
    return counts


@dataclass
class StarvationReport:
    """Outcome of a starvation probe."""

    cycles: int
    counts: np.ndarray
    starved_pairs: list[tuple[int, int]]
    min_rate: float
    jain: float

    @property
    def starvation_free(self) -> bool:
        return not self.starved_pairs


def starvation_report(
    scheduler: Scheduler,
    cycles: int | None = None,
    requests: RequestMatrix | None = None,
) -> StarvationReport:
    """Check the ``b/n^2`` guarantee under a static backlog.

    By default runs exactly ``n^2`` cycles — the period within which the
    round-robin diagonal visits every matrix position, so an LCF-RR
    scheduler must have served every requested pair at least once.
    """
    n = scheduler.n
    if cycles is None:
        cycles = n * n
    if requests is None:
        requests = np.ones((n, n), dtype=bool)
    counts = saturated_service_counts(scheduler, cycles, requests)
    starved = [
        (int(i), int(j))
        for i, j in zip(*np.nonzero(requests & (counts == 0)))
    ]
    active = counts[np.asarray(requests, dtype=bool)]
    return StarvationReport(
        cycles=cycles,
        counts=counts,
        starved_pairs=starved,
        min_rate=float(active.min()) / cycles if active.size else 0.0,
        jain=jain_index(active),
    )


def adversarial_two_flow_matrix(n: int) -> np.ndarray:
    """A request pattern under which maximum-size matching starves a pair.

    Inputs 0 and 1 both request outputs 0 and 1; input 0 additionally
    requests output 2. A maximum-size matcher that prefers larger
    matchings will always route input 0 to output 2 (freeing outputs 0/1
    for input 1 plus nobody), so the pair (0, 0) — with deterministic
    tie-breaking — can wait arbitrarily long. Used by the starvation
    example and tests.
    """
    if n < 3:
        raise ValueError("need at least 3 ports")
    requests = np.zeros((n, n), dtype=bool)
    requests[0, [0, 1, 2]] = True
    requests[1, [0, 1]] = True
    return requests


def bandwidth_shares(counts: np.ndarray, cycles: int) -> np.ndarray:
    """Per-pair fraction of output bandwidth received (grants/cycle)."""
    return counts / float(cycles)
