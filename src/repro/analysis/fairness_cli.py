"""``lcf-fairness`` — starvation and service-guarantee probe.

Drives a scheduler with a static saturated backlog for (by default)
``n^2`` cycles and reports per-pair service: minimum rate, Jain index,
starved pairs, and an ASCII heatmap of the service matrix.

Examples::

    lcf-fairness --scheduler lcf_central_rr --ports 16
    lcf-fairness --scheduler lcf_central --ports 8 --adversarial
    lcf-fairness --all --ports 8
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.fairness import (
    adversarial_two_flow_matrix,
    starvation_report,
)
from repro.analysis.heatmap import service_heatmap
from repro.analysis.tables import format_table
from repro.baselines.registry import available_schedulers, make_scheduler

DEFAULT_SET = ("lcf_central", "lcf_central_rr", "lcf_dist", "lcf_dist_rr",
               "pim", "islip", "wfront")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lcf-fairness",
        description="Service-guarantee probe for crossbar schedulers "
        "(the b/n^2 bound of Gura & Eberle, Section 3).",
    )
    parser.add_argument("--scheduler", default="lcf_central_rr",
                        help=f"one of: {', '.join(available_schedulers())}")
    parser.add_argument("--all", action="store_true",
                        help="probe the whole paper scheduler set")
    parser.add_argument("--ports", type=int, default=16)
    parser.add_argument("--cycles", type=int, default=None,
                        help="default n^2 (one full RR period)")
    parser.add_argument("--adversarial", action="store_true",
                        help="use the crafted starvation pattern instead "
                             "of a full backlog")
    parser.add_argument("--heatmap", action="store_true",
                        help="print the per-pair service heatmap")
    return parser


def probe(name: str, n: int, cycles: int | None, adversarial: bool):
    scheduler = make_scheduler(name, n)
    requests = adversarial_two_flow_matrix(n) if adversarial else None
    return starvation_report(scheduler, cycles=cycles, requests=requests)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.scheduler == "fifo":
        print("fifo has no request-matrix interface; pick a VOQ scheduler",
              file=sys.stderr)
        return 2
    names = DEFAULT_SET if args.all else (args.scheduler,)

    rows = []
    reports = {}
    for name in names:
        report = probe(name, args.ports, args.cycles, args.adversarial)
        reports[name] = report
        rows.append(
            {
                "scheduler": name,
                "cycles": report.cycles,
                "min_rate": round(report.min_rate, 5),
                "bound(1/n^2)": round(1 / (args.ports**2), 5),
                "starved": len(report.starved_pairs),
                "jain": round(report.jain, 3),
            }
        )
    print(format_table(rows))

    if args.heatmap:
        for name in names:
            print()
            print(service_heatmap(reports[name].counts, reports[name].cycles,
                                  title=f"{name}: per-pair grants"))

    # Exit status communicates the guarantee: 0 iff nothing starved.
    return 0 if all(not r.starved_pairs for r in reports.values()) else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
