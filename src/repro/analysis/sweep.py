"""The Figure 12 load-sweep harness (presentation layer).

Runs a grid of (scheduler, load) simulation points through the
:mod:`repro.sweep` engine — optionally over parallel worker processes,
replicated seeds, and an on-disk result cache — and post-processes the
results into the two paper plots: absolute queueing delay versus load
(Figure 12a) and delay relative to the output-buffered switch
(Figure 12b).

:func:`check_paper_shape` encodes the qualitative claims of Section 6.3
as machine-checkable assertions — the reproduction's acceptance
criteria. Absolute delays depend on simulator details the paper does
not specify (measurement conventions, run lengths); the *orderings and
crossovers* are what must hold.

``SweepSpec`` and ``PAPER_LOADS`` are re-exported from
:mod:`repro.sweep.spec`, where they now live; existing imports keep
working.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path

from repro.analysis.asciiplot import ascii_plot
from repro.analysis.tables import rows_to_csv
from repro.sim.simulator import SimResult
from repro.sweep.cache import ResultCache
from repro.sweep.runner import ParallelRunner, SweepRunReport
from repro.sweep.spec import PAPER_LOADS, SweepSpec

__all__ = [
    "PAPER_LOADS",
    "SweepSpec",
    "SweepResult",
    "run_sweep",
    "check_paper_shape",
    "shape_report",
    "ShapeCheck",
]


@dataclass
class SweepResult:
    """Results of a sweep, indexed by (scheduler, load).

    With ``replicates > 1`` each entry is the shard-merged statistic
    (see :func:`repro.sweep.merge.merge_results`); with one replicate
    it is the plain per-point :class:`SimResult`.
    """

    spec: SweepSpec
    results: dict[tuple[str, float], SimResult]
    #: Timing/caching report of the run that produced these results
    #: (``None`` for hand-built instances).
    report: SweepRunReport | None = None

    def get(self, scheduler: str, load: float) -> SimResult:
        return self.results[(scheduler, load)]

    def series(self, scheduler: str) -> tuple[list[float], list[float]]:
        """(loads, mean latencies) for one scheduler — a Figure 12a curve."""
        loads = list(self.spec.loads)
        return loads, [self.results[(scheduler, load)].mean_latency for load in loads]

    def relative_series(
        self, scheduler: str, reference: str = "outbuf"
    ) -> tuple[list[float], list[float]]:
        """(loads, latency ratios to the reference) — a Figure 12b curve.

        Points whose ratio is NaN — a zero/NaN reference latency, e.g.
        from a warmup-only or saturated reference run — are dropped
        rather than plotted: the ASCII plot clips non-finite values to
        the top row, which would misread as saturation.
        """
        loads: list[float] = []
        ratios: list[float] = []
        for load in self.spec.loads:
            ref = self.results[(reference, load)]
            ratio = self.results[(scheduler, load)].relative_to(ref)
            if math.isfinite(ratio):
                loads.append(load)
                ratios.append(ratio)
        return loads, ratios

    def rows(self) -> list[dict]:
        """Flat rows (one per point) for CSV / tables."""
        return [
            self.results[(name, load)].row()
            for name in self.spec.schedulers
            for load in self.spec.loads
        ]

    def to_csv(self) -> str:
        return rows_to_csv(self.rows())

    def plot(self, relative: bool = False, y_max: float | None = None, **kwargs) -> str:
        """ASCII rendering of Figure 12a (or 12b with ``relative=True``)."""
        series = {}
        for name in self.spec.schedulers:
            if relative:
                if name == "outbuf":
                    continue
                series[name] = self.relative_series(name)
            else:
                series[name] = self.series(name)
        default_y = 3.0 if relative else 25.0
        return ascii_plot(
            series,
            title=(
                "Figure 12b: latency relative to outbuf"
                if relative
                else "Figure 12a: mean queueing delay vs load"
            ),
            x_label="load",
            y_label="relative latency" if relative else "latency [packet slots]",
            y_max=y_max if y_max is not None else default_y,
            y_min=1.0 if relative else 0.0,
            **kwargs,
        )


def run_sweep(
    spec: SweepSpec,
    processes: int = 1,
    progress: bool = False,
    cache: ResultCache | str | Path | None = None,
    profile_dir: str | Path | None = None,
    fast: bool = False,
    columnar: bool = False,
) -> SweepResult:
    """Execute every point of the sweep grid via the parallel engine.

    ``processes > 1`` fans the points out over a multiprocessing pool —
    each point is independent, so this scales linearly on real
    multi-core hosts. ``processes=1`` runs serially in grid order and
    is bit-identical to the historical sequential loop. ``cache`` (a
    directory path or :class:`ResultCache`) makes the sweep resumable:
    completed points are stored as they finish and reused on re-runs.
    ``profile_dir`` dumps one cProfile stats file per computed point.
    ``fast`` runs the points on the :mod:`repro.fastpath` bitmask
    kernels — bit-identical results, so fast and reference runs share
    cache entries. ``columnar`` hands each worker a whole replicate
    block batched on the :mod:`repro.columnar` engine — also
    bit-identical and cache-compatible (uncovered configurations fall
    back to serial execution per block).
    """
    run = ParallelRunner(
        workers=processes,
        cache=cache,
        progress=progress,
        profile_dir=profile_dir,
        fast=fast,
        columnar=columnar,
    ).run(spec)
    return SweepResult(spec, dict(run.merged), report=run.report)


@dataclass
class ShapeCheck:
    """One qualitative claim from Section 6.3 and whether it held."""

    claim: str
    passed: bool
    detail: str


def _nearest(loads: tuple[float, ...], target: float) -> float:
    return min(loads, key=lambda x: abs(x - target))


def check_paper_shape(sweep: SweepResult) -> list[ShapeCheck]:
    """Evaluate the Section 6.3 qualitative claims against a sweep.

    Requires the sweep to contain the paper's scheduler set; claims
    referencing missing schedulers are skipped.
    """
    loads = sweep.spec.loads
    present = set(sweep.spec.schedulers)
    checks: list[ShapeCheck] = []

    def latency(name: str, load: float) -> float:
        return sweep.get(name, _nearest(loads, load)).mean_latency

    def add(claim: str, needed: set[str], predicate, detail_fn) -> None:
        if not needed <= present:
            return
        try:
            passed = bool(predicate())
            detail = detail_fn()
        except Exception as exc:  # pragma: no cover - defensive
            passed, detail = False, f"error: {exc}"
        checks.append(ShapeCheck(claim, passed, detail))

    mid, high = 0.6, 0.9

    add(
        "fifo has the worst latency at moderate load (HOL blocking)",
        {"fifo", "lcf_central", "islip", "pim", "wfront"},
        lambda: latency("fifo", mid)
        > max(latency(s, mid) for s in ("lcf_central", "islip", "pim", "wfront")),
        lambda: f"fifo={latency('fifo', mid):.2f} at load {mid}",
    )
    add(
        "outbuf is the lower envelope at high load",
        {"outbuf", "lcf_central", "islip", "pim", "wfront", "fifo"},
        lambda: latency("outbuf", high)
        <= min(
            latency(s, high)
            for s in ("lcf_central", "islip", "pim", "wfront", "fifo")
        )
        + 1e-9,
        lambda: f"outbuf={latency('outbuf', high):.2f} at load {high}",
    )
    add(
        "lcf_central beats the non-LCF crossbar schedulers at high load",
        {"lcf_central", "lcf_dist", "pim", "islip", "wfront"},
        # The paper's claim: lcf_central "performs significantly better
        # than any other scheduler examined"; its own RR variant crosses
        # below it above load 0.9, so it is excluded here.
        lambda: latency("lcf_central", high)
        <= min(latency(s, high) for s in ("lcf_dist", "pim", "islip", "wfront"))
        + 1e-9,
        lambda: f"lcf_central={latency('lcf_central', high):.2f} at load {high}",
    )
    add(
        "central LCF variants track each other at load 0.9 (crossover region)",
        {"lcf_central", "lcf_central_rr"},
        lambda: abs(latency("lcf_central_rr", high) - latency("lcf_central", high))
        <= 0.25 * latency("lcf_central", high),
        lambda: (
            f"lcf_central={latency('lcf_central', high):.2f} "
            f"lcf_central_rr={latency('lcf_central_rr', high):.2f} at load {high}"
        ),
    )
    add(
        "lcf_central is within ~1.4x of outbuf at high load",
        {"lcf_central", "outbuf"},
        lambda: latency("lcf_central", high) / latency("outbuf", high) < 2.0,
        lambda: (
            f"ratio={latency('lcf_central', high) / latency('outbuf', high):.2f} "
            f"at load {high} (paper: about 1.4)"
        ),
    )
    add(
        "lcf_dist tracks pim (distributed LCF ~ PIM class)",
        {"lcf_dist", "pim"},
        lambda: latency("lcf_dist", high) < 1.5 * latency("pim", high),
        lambda: (
            f"lcf_dist={latency('lcf_dist', high):.2f} "
            f"pim={latency('pim', high):.2f} at load {high}"
        ),
    )
    add(
        "lcf_dist beats islip at high load (paper: 'superior to iSLIP')",
        {"lcf_dist", "islip"},
        lambda: latency("lcf_dist", high) < latency("islip", high),
        lambda: (
            f"lcf_dist={latency('lcf_dist', high):.2f} "
            f"islip={latency('islip', high):.2f} at load {high}"
        ),
    )
    add(
        "islip and wfront are similar (both round-robin based)",
        {"islip", "wfront"},
        lambda: 0.5
        < latency("islip", high) / max(latency("wfront", high), 1e-9)
        < 2.0,
        lambda: (
            f"islip={latency('islip', high):.2f} "
            f"wfront={latency('wfront', high):.2f} at load {high}"
        ),
    )
    add(
        "rr variant costs little below load 0.9 (lcf_central_rr ~ lcf_central)",
        {"lcf_central", "lcf_central_rr"},
        lambda: latency("lcf_central_rr", 0.7) < 1.5 * latency("lcf_central", 0.7),
        lambda: (
            f"lcf_central_rr={latency('lcf_central_rr', 0.7):.2f} "
            f"lcf_central={latency('lcf_central', 0.7):.2f} at load 0.7"
        ),
    )
    add(
        "fifo saturates early: throughput well below 1 at full load",
        {"fifo"},
        lambda: sweep.get("fifo", _nearest(loads, 1.0)).throughput < 0.75,
        lambda: (
            f"fifo throughput={sweep.get('fifo', _nearest(loads, 1.0)).throughput:.3f} "
            f"at load {_nearest(loads, 1.0)}"
        ),
    )

    return checks


def shape_report(checks: list[ShapeCheck]) -> str:
    """Human-readable pass/fail summary."""
    lines = []
    for check in checks:
        status = "PASS" if check.passed else "FAIL"
        lines.append(f"[{status}] {check.claim}\n        {check.detail}")
    passed = sum(c.passed for c in checks)
    lines.append(f"{passed}/{len(checks)} shape checks passed")
    return "\n".join(lines)
