"""One-command reproduction report.

``lcf-report`` (or :func:`generate_report`) runs every experiment in
DESIGN.md's index at a chosen fidelity and writes a self-contained
Markdown report: the Figure 12 tables and shape checks, Tables 1–2, the
Section 6.2 comparison, the fairness probes, and the VOQ-leveling
measurement — the machine-generated counterpart of EXPERIMENTS.md.

``lcf-report --dashboard`` runs the matching-efficiency-vs-load
dashboard instead (:func:`repro.obs.analytics.run_matching_dashboard`):
achieved/maximum matching per (scheduler, load) cell of the Figure 12
grid, joined with the cached sweep's latency/throughput columns, as
CSV + a plot (matplotlib when installed, ASCII otherwise).
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.fairness import starvation_report
from repro.analysis.sweep import SweepSpec, check_paper_shape, run_sweep, shape_report
from repro.analysis.tables import format_table
from repro.analysis.throughput import saturation_table
from repro.analysis.voq_dynamics import measure_voq_dynamics
from repro.baselines.registry import PAPER_SCHEDULERS, make_scheduler
from repro.hw.comm import comm_table
from repro.hw.cost import table1
from repro.hw.timing import table2
from repro.sim.config import SimConfig

#: Fidelity presets: (loads, warmup, measure).
FIDELITIES = {
    "smoke": ((0.6, 0.9), 200, 1000),
    "quick": ((0.3, 0.6, 0.8, 0.9, 0.95, 1.0), 500, 3000),
    "full": (tuple(round(0.05 * k, 2) for k in range(1, 21)), 2000, 20000),
}


def generate_report(fidelity: str = "quick", n_ports: int = 16, seed: int = 1) -> str:
    """Run the experiment battery and return the Markdown report."""
    if fidelity not in FIDELITIES:
        raise ValueError(f"fidelity must be one of {sorted(FIDELITIES)}")
    loads, warmup, measure = FIDELITIES[fidelity]
    config = SimConfig(
        n_ports=n_ports, warmup_slots=warmup, measure_slots=measure, seed=seed
    )
    started = time.time()
    sections: list[str] = [
        "# LCF reproduction report",
        "",
        f"fidelity: **{fidelity}** — {n_ports} ports, loads {list(loads)}, "
        f"{measure} measured slots, seed {seed}",
        "",
    ]

    # --- Figure 12 ---------------------------------------------------------
    sweep = run_sweep(SweepSpec(schedulers=PAPER_SCHEDULERS, loads=loads, config=config))
    sections += [
        "## Figure 12a — mean queueing delay vs load",
        "",
        "```",
        format_table(
            sweep.rows(),
            columns=["scheduler", "load", "mean_latency", "throughput", "dropped"],
        ),
        "```",
        "",
        "## Section 6.3 shape checks",
        "",
        "```",
        shape_report(check_paper_shape(sweep)),
        "```",
        "",
    ]

    # --- Tables 1 and 2 ------------------------------------------------------
    sections += [
        "## Table 1 — gate/register counts",
        "",
        "```",
        format_table(table1(16)),
        "```",
        "",
        "## Table 2 — scheduling tasks",
        "",
        "```",
        format_table(
            [
                {
                    "task": r.task,
                    "decomposition": r.decomposition,
                    "cycles": r.cycles,
                    "time [ns]": r.time_ns,
                }
                for r in table2(16)
            ]
        ),
        "```",
        "",
        "## Section 6.2 — communication cost (i = 4)",
        "",
        "```",
        format_table(comm_table(port_counts=(4, 16, 64, 256), iterations=4)),
        "```",
        "",
    ]

    # --- fairness ------------------------------------------------------------
    fairness_rows = []
    for name in ("lcf_central", "lcf_central_rr", "lcf_dist_rr", "islip"):
        probe = starvation_report(make_scheduler(name, n_ports))
        fairness_rows.append(
            {
                "scheduler": name,
                "min_rate": round(probe.min_rate, 5),
                "bound(1/n^2)": round(1 / n_ports**2, 5),
                "starved": len(probe.starved_pairs),
                "jain": round(probe.jain, 3),
            }
        )
    sections += [
        f"## Fairness under saturation ({n_ports * n_ports} cycles)",
        "",
        "```",
        format_table(fairness_rows),
        "```",
        "",
    ]

    # --- leveling conjecture ---------------------------------------------------
    leveling_rows = []
    for name in ("lcf_central", "lcf_central_rr"):
        d = measure_voq_dynamics(config, name, 0.95)
        leveling_rows.append(
            {
                "scheduler": name,
                "occupancy_cv": round(d.occupancy_cv, 3),
                "drained_frac": round(d.drained_fraction, 3),
                "mean_choice": round(d.mean_choice, 2),
                "latency@0.95": round(d.mean_latency, 2),
            }
        )
    sections += [
        "## Section 6.3 VOQ-leveling conjecture (load 0.95)",
        "",
        "```",
        format_table(leveling_rows),
        "```",
        "",
    ]

    # --- saturation ------------------------------------------------------------
    saturation_config = config.with_(voq_capacity=64, pq_capacity=64)
    sections += [
        "## Saturation throughput (load 1.0)",
        "",
        "```",
        format_table(
            saturation_table(
                ("lcf_central", "islip", "wfront", "fifo", "outbuf"),
                saturation_config,
            )
        ),
        "```",
        "",
        f"_generated in {time.time() - started:.1f}s_",
        "",
    ]
    return "\n".join(sections)


#: Crossbar schedulers the dashboard probes by default (fifo/outbuf run
#: dedicated switch models with no crossbar matching to score).
DASHBOARD_SCHEDULERS = (
    "lcf_central",
    "lcf_central_rr",
    "lcf_dist",
    "lcf_dist_rr",
    "pim",
    "islip",
    "wfront",
)


def run_dashboard(args) -> int:
    """The ``--dashboard`` mode: matching efficiency across the grid."""
    from repro.obs.analytics import (
        dashboard_ascii,
        run_matching_dashboard,
        write_dashboard_csv,
        write_dashboard_plot,
    )

    loads, warmup, measure = FIDELITIES[args.fidelity]
    if args.loads:
        loads = tuple(float(x) for x in args.loads.split(","))
    config = SimConfig(
        n_ports=args.ports, warmup_slots=warmup, measure_slots=measure,
        seed=args.seed,
    )
    schedulers = (
        tuple(args.schedulers.split(",")) if args.schedulers
        else DASHBOARD_SCHEDULERS
    )
    rows, sweep_report = run_matching_dashboard(
        config,
        schedulers,
        loads,
        cache=args.cache_dir,
        probe_slots=args.probe_slots,
        fast=args.fast,
    )
    if args.csv:
        print(f"wrote {write_dashboard_csv(rows, args.csv)}")
    if args.png:
        written = write_dashboard_plot(rows, args.png)
        if written is not None:
            print(f"wrote {written}")
        else:
            print("matplotlib not installed; ASCII fallback:")
            print(dashboard_ascii(rows))
    if not args.csv and not args.png:
        print(dashboard_ascii(rows))
    cached = sweep_report.cache_hits if sweep_report is not None else 0
    print(
        f"{len(rows)} grid cells ({len(schedulers)} schedulers x "
        f"{len(loads)} loads), {cached} sweep points from cache"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lcf-report",
        description="Generate the full reproduction report (Markdown).",
    )
    parser.add_argument("--fidelity", choices=sorted(FIDELITIES), default="quick")
    parser.add_argument("--ports", type=int, default=16)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--output", metavar="PATH", default=None,
                        help="write to a file instead of stdout")
    parser.add_argument("--dashboard", action="store_true",
                        help="emit the matching-efficiency-vs-load dashboard "
                             "instead of the Markdown report")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="sweep result cache directory (dashboard mode)")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="write the dashboard grid as CSV")
    parser.add_argument("--png", metavar="PATH", default=None,
                        help="write the dashboard plot as PNG (needs "
                             "matplotlib; falls back to ASCII)")
    parser.add_argument("--schedulers", metavar="A,B,...", default=None,
                        help="comma-separated scheduler subset (dashboard)")
    parser.add_argument("--loads", metavar="0.6,0.9,...", default=None,
                        help="comma-separated load override (dashboard)")
    parser.add_argument("--probe-slots", type=int, default=400,
                        help="slots per matching-quality probe run")
    parser.add_argument("--fast", action="store_true",
                        help="use the fastpath kernels for dashboard runs")
    args = parser.parse_args(argv)
    if args.dashboard:
        return run_dashboard(args)
    report = generate_report(args.fidelity, args.ports, args.seed)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(report)
        print(f"wrote {args.output}")
    else:
        print(report)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
