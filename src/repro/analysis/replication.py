"""Replicated simulation runs: mean ± confidence interval over seeds.

A single Figure 12 point is one finite Monte-Carlo run; publication-
grade numbers need replications. :func:`replicate` runs the same
(scheduler, load) point under independent seeds and reports the mean
latency/throughput with a t-interval, so statements like "lcf_central
is 1.33x outbuf at load 0.9" carry error bars.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.stats import mean_ci
from repro.sim.config import SimConfig
from repro.sim.simulator import SimResult, run_simulation
from repro.traffic.base import TrafficPattern


@dataclass(frozen=True)
class ReplicatedResult:
    """Aggregate of independent replications of one simulation point."""

    scheduler: str
    load: float
    replications: int
    mean_latency: float
    latency_ci: float  # half-width, 95% t-interval
    mean_throughput: float
    throughput_ci: float
    results: tuple[SimResult, ...]

    def latency_interval(self) -> tuple[float, float]:
        return (self.mean_latency - self.latency_ci,
                self.mean_latency + self.latency_ci)

    def row(self) -> dict[str, object]:
        return {
            "scheduler": self.scheduler,
            "load": self.load,
            "replications": self.replications,
            "mean_latency": round(self.mean_latency, 3),
            "latency_ci95": round(self.latency_ci, 3),
            "throughput": round(self.mean_throughput, 4),
        }


def replicate(
    config: SimConfig,
    scheduler_name: str,
    load: float,
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    traffic: str = "bernoulli",
    traffic_kwargs: dict | None = None,
    confidence: float = 0.95,
) -> ReplicatedResult:
    """Run one point under each seed and aggregate.

    Each replication reseeds both the traffic and any randomised
    scheduler (PIM) through ``SimConfig.seed``, so replications are
    fully independent.
    """
    if len(seeds) < 2:
        raise ValueError("need at least two seeds for a confidence interval")
    results = tuple(
        run_simulation(
            config.with_(seed=seed),
            scheduler_name,
            load,
            traffic=traffic,
            traffic_kwargs=traffic_kwargs,
        )
        for seed in seeds
    )
    latency_mean, latency_half = mean_ci(
        [r.mean_latency for r in results], confidence
    )
    throughput_mean, throughput_half = mean_ci(
        [r.throughput for r in results], confidence
    )
    return ReplicatedResult(
        scheduler=scheduler_name,
        load=load,
        replications=len(seeds),
        mean_latency=latency_mean,
        latency_ci=latency_half,
        mean_throughput=throughput_mean,
        throughput_ci=throughput_half,
        results=results,
    )


def compare_with_ci(
    config: SimConfig,
    candidate: str,
    baseline: str,
    load: float,
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
) -> dict[str, object]:
    """Paired comparison of two schedulers on identical traffic seeds.

    Pairing by seed removes the workload variance, so the per-seed
    latency *ratios* get the confidence interval — the right statistic
    for claims like "lcf_central is 1.3-1.4x outbuf".
    """
    ratios = []
    for seed in seeds:
        point_config = config.with_(seed=seed)
        candidate_result = run_simulation(point_config, candidate, load)
        baseline_result = run_simulation(point_config, baseline, load)
        ratios.append(candidate_result.mean_latency / baseline_result.mean_latency)
    mean, half = mean_ci(ratios)
    return {
        "candidate": candidate,
        "baseline": baseline,
        "load": load,
        "mean_ratio": round(mean, 3),
        "ratio_ci95": round(half, 3),
        "ratios": tuple(round(r, 3) for r in ratios),
    }
