"""ASCII heatmaps for service matrices.

Renders an ``(n, n)`` matrix — typically per-pair grant counts from a
fairness run — as a character-density grid, the terminal equivalent of
the service heatmaps switching papers print. Starved cells (zero
service against a backlog) stand out as blanks.
"""

from __future__ import annotations

import numpy as np

#: Density ramp, light to dark.
DEFAULT_RAMP = " .:-=+*#%@"


def ascii_heatmap(
    matrix: np.ndarray,
    title: str = "",
    ramp: str = DEFAULT_RAMP,
    normalise: str = "max",
) -> str:
    """Render a non-negative matrix as a density grid.

    ``normalise`` — "max" scales by the matrix maximum; "cell" expects
    values already in [0, 1].
    """
    matrix = np.asarray(matrix, dtype=float)
    if matrix.ndim != 2:
        raise ValueError(f"heatmap needs a 2-D matrix, got shape {matrix.shape}")
    if (matrix < 0).any():
        raise ValueError("heatmap values must be non-negative")
    if normalise == "max":
        peak = matrix.max()
        scaled = matrix / peak if peak > 0 else matrix
    elif normalise == "cell":
        if matrix.max() > 1.0:
            raise ValueError("normalise='cell' expects values in [0, 1]")
        scaled = matrix
    else:
        raise ValueError(f"unknown normalise mode {normalise!r}")

    levels = (scaled * (len(ramp) - 1)).round().astype(int)
    n_rows, n_cols = matrix.shape
    header = "    " + "".join(f"{j % 10}" for j in range(n_cols))
    lines = [title] if title else []
    lines.append(header)
    for i in range(n_rows):
        cells = "".join(ramp[level] for level in levels[i])
        lines.append(f"{i:>3} {cells}")
    lines.append(f"scale: '{ramp[0]}'=0 .. '{ramp[-1]}'={matrix.max():g}")
    return "\n".join(lines)


def service_heatmap(counts: np.ndarray, cycles: int, title: str | None = None) -> str:
    """Heatmap of a per-pair service-count matrix (fairness runs)."""
    if title is None:
        title = f"per-pair grants over {cycles} cycles"
    return ascii_heatmap(counts, title=title)
