"""Terminal line plots.

The environment has no plotting library, so the Figure 12 reproductions
render as character grids — one marker per series, a legend, and axis
labels. Good enough to eyeball curve shapes and crossovers, which is
what the reproduction criteria are about; the CSV output carries the
exact numbers.
"""

from __future__ import annotations

import math

#: Marker characters assigned to series in insertion order.
MARKERS = "ox+*#@%&$~^"


def ascii_plot(
    series: dict[str, tuple[list[float], list[float]]],
    width: int = 72,
    height: int = 22,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
    y_max: float | None = None,
    y_min: float | None = None,
) -> str:
    """Render multiple (xs, ys) series onto one character grid.

    NaN/inf points and points above ``y_max`` are clipped to the top
    row (mirroring how saturated latencies run off a paper figure).
    """
    if not series:
        return "(no data)"
    finite_y = [
        y
        for _, (xs, ys) in series.items()
        for y in ys
        if math.isfinite(y)
    ]
    all_x = [x for _, (xs, _) in series.items() for x in xs]
    if not all_x:
        return "(no data)"
    x_lo, x_hi = min(all_x), max(all_x)
    y_lo = y_min if y_min is not None else (min(finite_y) if finite_y else 0.0)
    y_hi = y_max if y_max is not None else (max(finite_y) if finite_y else 1.0)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi <= y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return min(width - 1, max(0, round((x - x_lo) / (x_hi - x_lo) * (width - 1))))

    def to_row(y: float) -> int:
        if not math.isfinite(y):
            return 0
        frac = (y - y_lo) / (y_hi - y_lo)
        return min(height - 1, max(0, round((1.0 - frac) * (height - 1))))

    legend = []
    for index, (name, (xs, ys)) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        legend.append(f"{marker}={name}")
        for x, y in zip(xs, ys):
            grid[to_row(y)][to_col(x)] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (top={y_hi:g}, bottom={y_lo:g})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:g} .. {x_hi:g}")
    lines.append(" " + "  ".join(legend))
    return "\n".join(lines)
