"""Sweep harness, fairness analysis, and reporting.

* :mod:`repro.analysis.sweep` — the Figure 12 load-sweep driver and the
  paper-shape acceptance checks;
* :mod:`repro.analysis.fairness` — the Section 3 ``b/n^2`` bound and
  starvation detection;
* :mod:`repro.analysis.asciiplot` — terminal line plots (no matplotlib
  dependency);
* :mod:`repro.analysis.tables` — fixed-width table rendering for the
  Table 1/2 reproductions;
* :mod:`repro.analysis.stats` — confidence intervals and summary
  statistics;
* :mod:`repro.analysis.cli` — the ``lcf-sweep`` command-line entry point.
"""

from repro.analysis.convergence import convergence_curve, convergence_table
from repro.analysis.fairness import saturated_service_counts, starvation_report
from repro.analysis.replication import compare_with_ci, replicate
from repro.analysis.sweep import (
    SweepResult,
    SweepSpec,
    check_paper_shape,
    run_sweep,
    shape_report,
)
from repro.analysis.throughput import saturation_table, saturation_throughput
from repro.analysis.voq_dynamics import leveling_comparison, measure_voq_dynamics

__all__ = [
    "SweepSpec",
    "SweepResult",
    "run_sweep",
    "check_paper_shape",
    "shape_report",
    "saturated_service_counts",
    "starvation_report",
    "saturation_throughput",
    "saturation_table",
    "replicate",
    "compare_with_ci",
    "convergence_curve",
    "convergence_table",
    "measure_voq_dynamics",
    "leveling_comparison",
]
