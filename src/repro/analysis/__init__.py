"""Sweep harness, fairness analysis, and reporting.

* :mod:`repro.analysis.sweep` — the Figure 12 load-sweep driver and the
  paper-shape acceptance checks;
* :mod:`repro.analysis.fairness` — the Section 3 ``b/n^2`` bound and
  starvation detection;
* :mod:`repro.analysis.asciiplot` — terminal line plots (no matplotlib
  dependency);
* :mod:`repro.analysis.tables` — fixed-width table rendering for the
  Table 1/2 reproductions;
* :mod:`repro.analysis.stats` — confidence intervals and summary
  statistics;
* :mod:`repro.analysis.cli` — the ``lcf-sweep`` command-line entry point.
"""

from repro.analysis.fairness import saturated_service_counts, starvation_report
from repro.analysis.sweep import SweepResult, SweepSpec, check_paper_shape, run_sweep
from repro.analysis.throughput import saturation_table, saturation_throughput

__all__ = [
    "SweepSpec",
    "SweepResult",
    "run_sweep",
    "check_paper_shape",
    "saturated_service_counts",
    "starvation_report",
    "saturation_throughput",
    "saturation_table",
]
