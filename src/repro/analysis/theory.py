"""Closed-form queueing results for slotted switches.

The classic analytical companions to the Figure 12 curves, from Karol,
Hluchyj & Morgan, *Input versus Output Queueing on a Space-Division
Packet Switch* (the paper's reference [8]):

* **Output queueing** (our ``outbuf`` model): with Bernoulli arrivals
  of rate ``p`` per input and uniform destinations, each output queue
  receives binomial arrivals; the mean steady-state waiting time is

      W = ((n-1)/n) * p / (2 (1 - p))

  slots, an exact discrete-time M/D/1-type result. As n -> inf this
  becomes the M/D/1 wait ``p / (2(1-p))``.

* **Input queueing with FIFO** (our ``fifo`` model): saturated uniform
  throughput tends to ``2 - sqrt(2) ≈ 0.586`` as n -> inf (the
  head-of-line blocking limit). Finite-n saturation throughputs from
  Karol et al.'s Table I are included for validation.

These give the simulator something *exact* to be checked against —
`tests/analysis/test_theory.py` holds the simulated ``outbuf`` curve to
the closed form within Monte-Carlo tolerance.
"""

from __future__ import annotations

import math

#: Karol et al., Table I: saturation throughput of uniform FIFO input
#: queueing for small n (n=1 trivially 1.0), converging to 2 - sqrt(2).
FIFO_SATURATION_BY_N = {
    1: 1.0,
    2: 0.75,
    3: 0.6825,
    4: 0.6553,
    5: 0.6399,
    6: 0.6302,
    7: 0.6234,
    8: 0.6184,
}

FIFO_SATURATION_LIMIT = 2.0 - math.sqrt(2.0)


def output_queue_wait(load: float, n: int) -> float:
    """Mean waiting time (slots, excluding service) of an output queue
    under uniform Bernoulli traffic — Karol et al., eq. (2).

    ``load`` is the per-input packet probability ``p``; each of the
    ``n`` outputs sees binomial(n, p/n) arrivals per slot.
    """
    if not 0.0 <= load < 1.0:
        raise ValueError(f"load must be in [0, 1), got {load}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return ((n - 1) / n) * load / (2.0 * (1.0 - load))


def output_queue_latency(load: float, n: int) -> float:
    """Mean total latency (slots) of the ``outbuf`` switch: waiting time
    plus the one-slot transmission our simulator's convention includes."""
    return output_queue_wait(load, n) + 1.0


def md1_wait(load: float) -> float:
    """The continuous M/D/1 mean wait ``p / (2(1-p))`` — the n -> inf
    limit of :func:`output_queue_wait`."""
    if not 0.0 <= load < 1.0:
        raise ValueError(f"load must be in [0, 1), got {load}")
    return load / (2.0 * (1.0 - load))


def fifo_saturation_throughput(n: int) -> float:
    """Saturation throughput of uniform FIFO input queueing: Karol et
    al.'s exact small-n values, the asymptotic limit beyond."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return FIFO_SATURATION_BY_N.get(n, FIFO_SATURATION_LIMIT)


def fifo_saturates_below(load: float, n: int) -> bool:
    """Whether uniform FIFO input queueing can carry ``load`` at all."""
    return load <= fifo_saturation_throughput(n)
