"""VOQ occupancy dynamics — testing the paper's leveling hypothesis.

Section 6.3 explains the high-load crossover between ``lcf_central``
and ``lcf_central_rr`` with a conjecture: "We assume that the round
robin algorithm of lcf_central_rr is leveling the lengths of the VOQs
thereby maintaining choice by avoiding the VOQs to drain."

This module instruments the simulator to measure exactly that:

* **occupancy dispersion** — the coefficient of variation of VOQ
  lengths across the switch, time-averaged (lower = more level);
* **drained fraction** — the fraction of (input, output) pairs whose
  VOQ is empty while the input still has traffic elsewhere (higher =
  fewer choices for the scheduler);
* **mean choice** — the average NRQ (requests per backlogged input)
  the scheduler sees per slot.

The leveling hypothesis predicts the RR variant shows lower dispersion
and higher mean choice at loads above 0.9.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.registry import make_scheduler
from repro.sim.config import SimConfig
from repro.sim.crossbar import InputQueuedSwitch
from repro.traffic.base import TrafficPattern, make_traffic


@dataclass(frozen=True)
class VOQDynamics:
    """Time-averaged VOQ occupancy statistics for one run."""

    scheduler: str
    load: float
    #: Time-averaged coefficient of variation of VOQ lengths.
    occupancy_cv: float
    #: Time-averaged fraction of empty VOQs at backlogged inputs.
    drained_fraction: float
    #: Time-averaged requests per backlogged input (the scheduler's choice).
    mean_choice: float
    mean_latency: float


def measure_voq_dynamics(
    config: SimConfig,
    scheduler_name: str,
    load: float,
    traffic: str | TrafficPattern = "bernoulli",
    sample_every: int = 4,
) -> VOQDynamics:
    """Run one simulation while sampling VOQ occupancy statistics."""
    if isinstance(traffic, TrafficPattern):
        pattern = traffic
    else:
        pattern = make_traffic(traffic, config.n_ports, load, seed=config.seed)
    scheduler = make_scheduler(
        scheduler_name, config.n_ports, iterations=config.iterations,
        seed=config.seed,
    )
    switch = InputQueuedSwitch(config, scheduler)

    cv_samples: list[float] = []
    drained_samples: list[float] = []
    choice_samples: list[float] = []

    for slot in range(config.total_slots):
        if slot == config.warmup_slots:
            switch.measuring = True
        switch.step(slot, pattern.arrivals())
        if switch.measuring and slot % sample_every == 0:
            occupancy = switch.voqs.occupancy
            backlogged = occupancy.sum(axis=1) > 0
            if backlogged.any():
                lengths = occupancy[backlogged].astype(float)
                mean_len = lengths.mean()
                if mean_len > 0:
                    cv_samples.append(float(lengths.std() / mean_len))
                drained_samples.append(float((lengths == 0).mean()))
                choice_samples.append(float((lengths > 0).sum(axis=1).mean()))

    def _avg(samples: list[float]) -> float:
        return float(np.mean(samples)) if samples else float("nan")

    return VOQDynamics(
        scheduler=scheduler_name,
        load=load,
        occupancy_cv=_avg(cv_samples),
        drained_fraction=_avg(drained_samples),
        mean_choice=_avg(choice_samples),
        mean_latency=switch.latency.mean,
    )


def leveling_comparison(
    config: SimConfig, load: float = 0.95
) -> dict[str, VOQDynamics]:
    """The paper's conjecture, head to head: pure vs RR central LCF."""
    return {
        name: measure_voq_dynamics(config, name, load)
        for name in ("lcf_central", "lcf_central_rr")
    }
