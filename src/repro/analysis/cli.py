"""``lcf-sweep`` — command-line front end for the Figure 12 harness.

Examples::

    lcf-sweep --schedulers lcf_central,islip,outbuf --loads 0.5,0.8,0.95 \
        --ports 16 --measure-slots 5000 --plot
    lcf-sweep --paper --csv fig12a.csv          # the full Figure 12 grid
    lcf-sweep --relative --plot                 # Figure 12b transform
    lcf-sweep --paper --workers 4 --replicates 4 --cache-dir .sweep-cache
                                                # parallel, resumable run

The sweep itself is executed by :mod:`repro.sweep` — see
``docs/EXPERIMENT_WORKFLOW.md`` for the full workflow (parallelism,
shard seeds, caching/resume).
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.sweep import (
    PAPER_LOADS,
    SweepSpec,
    check_paper_shape,
    run_sweep,
    shape_report,
)
from repro.analysis.tables import format_table
from repro.baselines.registry import PAPER_SCHEDULERS, available_schedulers
from repro.sim.config import SimConfig


def _parse_loads(text: str) -> tuple[float, ...]:
    loads = tuple(float(part) for part in text.split(","))
    for load in loads:
        if not 0.0 < load <= 1.0:
            raise argparse.ArgumentTypeError(f"load {load} outside (0, 1]")
    return loads


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="lcf-sweep",
        description="Load-sweep harness for the LCF scheduler reproduction "
        "(Figure 12 of Gura & Eberle, IPPS 2002).",
    )
    parser.add_argument(
        "--schedulers",
        default=",".join(PAPER_SCHEDULERS),
        help="comma-separated scheduler names "
        f"(known: {', '.join(available_schedulers())}, outbuf)",
    )
    parser.add_argument("--loads", type=_parse_loads, default=None,
                        help="comma-separated loads in (0, 1]")
    parser.add_argument("--paper", action="store_true",
                        help="use the full paper load grid (0.05..1.0)")
    parser.add_argument("--ports", type=int, default=16)
    parser.add_argument("--warmup-slots", type=int, default=2000)
    parser.add_argument("--measure-slots", type=int, default=20000)
    parser.add_argument("--iterations", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--traffic", default="bernoulli")
    parser.add_argument(
        "--traffic-arg",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="pattern parameter, repeatable (e.g. --traffic-arg fraction=0.3 "
        "with --traffic hotspot); values parse as int, then float, else str",
    )
    parser.add_argument(
        "--workers", "--processes", dest="workers", type=int, default=1,
        help="simulation worker processes (1 = serial, bit-identical to "
        "the historical sequential run)",
    )
    parser.add_argument(
        "--replicates", type=int, default=1,
        help="independent seed replicates per (scheduler, load) point; "
        "replicate r runs under seed+r and shards are merged with "
        "pooled statistics",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="on-disk result cache; completed points are stored as they "
        "finish, so interrupted sweeps resume and re-runs are instant",
    )
    parser.add_argument(
        "--profile", metavar="DIR", default=None,
        help="capture one cProfile stats file per computed point into DIR "
        "(inspect with pstats/snakeviz); the run report adds per-worker "
        "telemetry either way",
    )
    parser.add_argument(
        "--fast", action="store_true",
        help="run on the repro.fastpath bitmask kernels (bit-identical "
        "results, several times the slot rate; cache entries are shared "
        "with reference runs)",
    )
    parser.add_argument(
        "--columnar", action="store_true",
        help="batch each (scheduler, load) cell's replicates on the "
        "repro.columnar engine — one numpy slot loop advances all "
        "replicates at once (bit-identical results; cache entries are "
        "shared with per-point runs; uncovered configurations fall "
        "back to serial execution automatically)",
    )
    parser.add_argument("--relative", action="store_true",
                        help="report latency relative to outbuf (Figure 12b)")
    parser.add_argument("--plot", action="store_true", help="ASCII plot")
    parser.add_argument("--check-shape", action="store_true",
                        help="evaluate the Section 6.3 qualitative claims")
    parser.add_argument("--csv", metavar="PATH", default=None,
                        help="write per-point results as CSV")
    parser.add_argument("--quiet", action="store_true")
    return parser


def _parse_traffic_args(pairs: list[str]) -> tuple[tuple[str, object], ...]:
    parsed: list[tuple[str, object]] = []
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--traffic-arg expects KEY=VALUE, got {pair!r}")
        key, text = pair.split("=", 1)
        value: object
        try:
            value = int(text)
        except ValueError:
            try:
                value = float(text)
            except ValueError:
                value = text
        parsed.append((key, value))
    return tuple(parsed)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    schedulers = tuple(args.schedulers.split(","))
    loads = args.loads or (PAPER_LOADS if args.paper else (0.3, 0.6, 0.8, 0.9, 0.95))
    if args.relative and "outbuf" not in schedulers:
        schedulers = schedulers + ("outbuf",)

    spec = SweepSpec(
        schedulers=schedulers,
        loads=loads,
        config=SimConfig(
            n_ports=args.ports,
            warmup_slots=args.warmup_slots,
            measure_slots=args.measure_slots,
            iterations=args.iterations,
            seed=args.seed,
        ),
        traffic=args.traffic,
        traffic_kwargs=_parse_traffic_args(args.traffic_arg),
        replicates=args.replicates,
    )
    sweep = run_sweep(
        spec,
        processes=args.workers,
        progress=not args.quiet,
        cache=args.cache_dir,
        profile_dir=args.profile,
        fast=args.fast,
        columnar=args.columnar,
    )

    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep.to_csv())
        print(f"wrote {args.csv}")

    if not args.quiet:
        print()
        print(format_table(sweep.rows(),
                           columns=["scheduler", "load", "mean_latency",
                                    "throughput", "dropped"]))
    if args.plot:
        print()
        print(sweep.plot(relative=args.relative))
    if args.check_shape:
        print()
        print(shape_report(check_paper_shape(sweep)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
