"""Iteration-convergence analysis for the iterative schedulers.

Section 6.2 justifies the distributed scheduler's speed with "the time
complexity for the distributed scheduler is O(log2 n) assuming it takes
one time step for each iteration", inheriting PIM's convergence
argument. This module measures the convergence curve directly: the
matching size reached after 1, 2, ... iterations, as a fraction of the
maximum matching, averaged over random request matrices.

It also quantifies the *grant-concentration* effect this reproduction
surfaced (EXPERIMENTS.md): on dense i.i.d. matrices many outputs grant
the same minimum-``nrq`` input, so distributed LCF converges slower
than PIM in the open loop even though it wins in the closed-loop
switch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.registry import make_scheduler
from repro.matching.hopcroft_karp import maximum_matching_size
from repro.matching.verify import matching_size


@dataclass(frozen=True)
class ConvergenceCurve:
    """Mean matching-size fraction per iteration count."""

    scheduler: str
    density: float
    n: int
    #: ``fractions[k]`` = mean matching size with k+1 iterations,
    #: normalised by the maximum matching size.
    fractions: tuple[float, ...]

    def iterations_to(self, target: float) -> int | None:
        """Smallest iteration count reaching ``target`` fraction, or None."""
        for k, fraction in enumerate(self.fractions, start=1):
            if fraction >= target:
                return k
        return None


def convergence_curve(
    scheduler_name: str,
    n: int,
    density: float,
    max_iterations: int | None = None,
    samples: int = 50,
    seed: int = 0,
) -> ConvergenceCurve:
    """Measure the convergence curve of one iterative scheduler.

    Every iteration count gets a fresh scheduler (so pointer state does
    not leak between counts) driven over the same ``samples`` random
    matrices.
    """
    if max_iterations is None:
        max_iterations = 2 * max(1, int(np.ceil(np.log2(n))))
    achieved = np.zeros(max_iterations)
    optimal = 0.0
    schedulers = [
        make_scheduler(scheduler_name, n, iterations=k, seed=seed)
        for k in range(1, max_iterations + 1)
    ]
    rng = np.random.default_rng(seed)
    for _ in range(samples):
        requests = rng.random((n, n)) < density
        best = maximum_matching_size(requests)
        optimal += best
        for index, scheduler in enumerate(schedulers):
            achieved[index] += matching_size(scheduler.schedule(requests))
    if optimal == 0:
        fractions = tuple(1.0 for _ in range(max_iterations))
    else:
        fractions = tuple(float(a / optimal) for a in achieved)
    return ConvergenceCurve(scheduler_name, density, n, fractions)


def convergence_table(
    schedulers: tuple[str, ...] = ("lcf_dist", "pim", "islip"),
    n: int = 16,
    density: float = 0.5,
    samples: int = 50,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Convergence fractions per iteration for several schedulers."""
    rows = []
    for name in schedulers:
        curve = convergence_curve(name, n, density, samples=samples, seed=seed)
        row: dict[str, object] = {"scheduler": name}
        for k, fraction in enumerate(curve.fractions, start=1):
            row[f"iter {k}"] = round(fraction, 3)
        rows.append(row)
    return rows
