#!/usr/bin/env python3
"""Quickstart: schedule one crossbar cycle, then simulate a data point.

Walks through the paper's Figure 3 worked example with the central LCF
scheduler, compares the matching against the other schedulers and the
true maximum, and finishes with one Figure 12-style simulation point.

Run: python examples/quickstart.py
"""

import numpy as np

from repro import (
    ISLIP,
    LCFCentralRR,
    NO_GRANT,
    SimConfig,
    WrappedWaveFront,
    hopcroft_karp,
    maximum_matching_size,
    run_simulation,
)


def show_schedule(name: str, schedule) -> None:
    pairs = ", ".join(
        f"I{i}->T{j}" for i, j in enumerate(schedule) if j != NO_GRANT
    )
    size = int(np.count_nonzero(schedule != NO_GRANT))
    print(f"  {name:<14} matches {size}:  {pairs}")


def main() -> None:
    # --- the Figure 3 example ------------------------------------------------
    requests = np.array(
        [
            [0, 1, 1, 0],  # I0 requests T1, T2          (2 choices)
            [1, 0, 1, 1],  # I1 requests T0, T2, T3      (3 choices)
            [1, 0, 1, 1],  # I2 requests T0, T2, T3      (3 choices)
            [0, 1, 0, 0],  # I3 requests T1              (1 choice)
        ],
        dtype=bool,
    )
    print("Request matrix (Figure 3), NRQ =", requests.sum(axis=1).tolist())

    lcf = LCFCentralRR(4)
    lcf.set_rr_offsets(1, 0)  # the paper's diagonal position [I1, T0]
    show_schedule("lcf_central_rr", lcf.schedule(requests))
    show_schedule("islip", ISLIP(4).schedule(requests))
    show_schedule("wfront", WrappedWaveFront(4).schedule(requests))
    show_schedule("maximum", hopcroft_karp(requests))
    print(f"  maximum matching size: {maximum_matching_size(requests)}")
    print()

    # --- one simulated Figure 12 point ---------------------------------------
    config = SimConfig(n_ports=16, warmup_slots=500, measure_slots=5000)
    for name in ("lcf_central", "islip", "fifo", "outbuf"):
        result = run_simulation(config, name, load=0.8)
        print(
            f"  {name:<12} load 0.80: latency {result.mean_latency:6.2f} slots, "
            f"throughput {result.throughput:.3f}"
        )


if __name__ == "__main__":
    main()
