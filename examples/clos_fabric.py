#!/usr/bin/env python3
"""Realising LCF schedules on a Clos fabric (paper Section 2).

"We assume a non-blocking switch fabric such as the crossbar switch of
Figure 1. Other non-blocking fabrics such as Clos networks are also
possible [2]." This example runs the central LCF scheduler and routes
every matching it produces through a three-stage Clos network with the
Slepian–Duguid middle-stage assignment, then compares the crosspoint
cost of the two fabrics across switch sizes.

Run: python examples/clos_fabric.py
"""

import numpy as np

from repro import LCFCentralRR
from repro.analysis.tables import format_table
from repro.fabric import ClosNetwork, CrossbarFabric
from repro.fabric.clos import square_clos
from repro.types import NO_GRANT


def route_lcf_schedules() -> None:
    print("=== Routing LCF matchings through a C(4,4,4) Clos network ===")
    net = ClosNetwork(m=4, k=4, r=4)  # 16 ports, rearrangeably non-blocking
    scheduler = LCFCentralRR(net.n_ports)
    rng = np.random.default_rng(1)

    routed = 0
    for cycle in range(100):
        requests = rng.random((16, 16)) < 0.5
        schedule = scheduler.schedule(requests)
        routing = net.route(schedule)
        assert net.validate_routing(routing)
        routed += len(routing.assignments)
    print(f"100 scheduling cycles, {routed} connections routed, "
          "0 middle-stage conflicts")

    # Show one concrete assignment.
    requests = rng.random((16, 16)) < 0.5
    schedule = scheduler.schedule(requests)
    routing = net.route(schedule)
    print("\nexample assignment (input -> output via middle switch):")
    for i, j, middle in routing.assignments[:6]:
        print(f"  port {i:2} -> port {j:2}   via middle {middle}")
    granted = int((schedule != NO_GRANT).sum())
    print(f"  ... {granted} connections total\n")


def cost_comparison() -> None:
    print("=== Crosspoint cost: crossbar vs square Clos ===")
    rows = []
    for n in (16, 64, 144, 256, 1024):
        crossbar = CrossbarFabric(n)
        clos = square_clos(n)
        rows.append(
            {
                "ports": n,
                "crossbar": crossbar.crosspoints,
                "clos (m=k=r~sqrt N)": clos.crosspoints,
                "saving": f"{1 - clos.crosspoints / crossbar.crosspoints:.0%}",
            }
        )
    print(format_table(rows))
    print("\nThe Clos construction wins asymptotically (O(N^1.5) vs O(N^2)),")
    print("which is why wide switches trade the crossbar's strict")
    print("non-blocking for rearrangeable routing.")


def main() -> None:
    route_lcf_schedules()
    cost_comparison()


if __name__ == "__main__":
    main()
