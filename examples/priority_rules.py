#!/usr/bin/env python3
"""Priority currencies compared: what should a grant decision rank by?

The central LCF scheduler ranks requesters by *choice count* (NRQ).
The literature's alternatives rank by queue length (LQF) or head-of-line
age (OCF), and iSLIP ranks by nothing but pointer position. This
example runs all four on identical workloads and weighs the latency
results against what each rule costs to communicate — the Section 6.2
angle that motivates LCF's compact log2(n)-bit counts.

Run: python examples/priority_rules.py
"""

import math

from repro import SimConfig, run_simulation
from repro.analysis.tables import format_table

N = 16
CONFIG = SimConfig(n_ports=N, warmup_slots=1000, measure_slots=8000)
RULES = {
    "lcf_central": "choice count (NRQ)",
    "lqf": "VOQ length",
    "ocf": "head-of-line age",
    "islip": "pointer position only",
}


def wire_bits(rule: str) -> str:
    """Bits each input must ship to the scheduler per cycle, beyond the
    n-bit request vector everyone needs."""
    log2n = math.ceil(math.log2(N))
    if rule == "lcf_central":
        return f"0 (scheduler derives NRQ from the {N}-bit request vector)"
    if rule == "lqf":
        return f"{N} x log2(voq_capacity) = {N * 8} (queue lengths)"
    if rule == "ocf":
        return f"{N} x timestamp ~ {N * 16} (HOL ages)"
    return "0 (pointers live in the scheduler)"


def main() -> None:
    print(f"Priority-rule comparison, {N}-port switch, uniform Bernoulli\n")
    rows = []
    for load in (0.7, 0.9, 0.95):
        for rule in RULES:
            result = run_simulation(CONFIG, rule, load)
            rows.append(
                {
                    "load": load,
                    "scheduler": rule,
                    "ranks by": RULES[rule],
                    "mean_latency": round(result.mean_latency, 2),
                    "max_latency": int(result.max_latency),
                }
            )
    print(format_table(rows))

    print("\nCommunication cost of the priority currency (per input, per cycle):")
    for rule in RULES:
        print(f"  {rule:<12} {wire_bits(rule)}")

    print(
        "\nTakeaways: the queue-aware rules (lcf/lqf/ocf) beat pure"
        "\nround-robin at high load; OCF tightens the tail (max latency);"
        "\nand LCF gets its latency without shipping any per-VOQ state —"
        "\nthe scheduler computes choice counts from the request bits it"
        "\nalready has, which is what made it cheap enough for the Clint"
        "\nFPGA (Table 1)."
    )


if __name__ == "__main__":
    main()
