#!/usr/bin/env python3
"""The precalculated schedule (paper Section 4.3): real-time slots and
multicast over the LCF-scheduled bulk channel.

Shows the two-stage scheduling at matrix level (the Figure 7 example),
then drives a periodic real-time multicast stream through the full
Clint network while background unicast traffic competes for the
remaining slots.

Run: python examples/multicast_realtime.py
"""

import numpy as np

from repro.clint import ClintNetwork
from repro.core import PrecalcScheduler, check_precalc_integrity
from repro.traffic import BernoulliUniform


def figure7_example() -> None:
    print("=== Figure 7: precalculated multicast, matrix level ===")
    requests = np.zeros((4, 4), dtype=bool)
    requests[0, 0] = True
    requests[1, [0, 2]] = True
    requests[2, [0, 2]] = True
    precalc = np.zeros((4, 4), dtype=bool)
    precalc[3, 1] = precalc[3, 3] = True  # I3 multicasts to T1 and T3

    result = PrecalcScheduler(4).schedule(requests, precalc)
    print("connections:", result.connections())
    print("I3 drives both T1 and T3 in the same slot;"
          " LCF fills the rest.\n")

    # Integrity check: conflicting precalc entries are dropped.
    bad = np.zeros((4, 4), dtype=bool)
    bad[0, 2] = bad[3, 2] = True  # both claim T2
    accepted, dropped = check_precalc_integrity(bad)
    print("conflicting precalc {I0->T2, I3->T2}: accepted",
          [(int(i), int(j)) for i, j in zip(*np.nonzero(accepted))],
          "dropped", dropped, "\n")


def realtime_stream() -> None:
    print("=== Periodic real-time multicast over the Clint network ===")
    n, period, slots = 8, 10, 400
    net = ClintNetwork(n, seed=3)
    background = BernoulliUniform(n, 0.6, seed=4)

    deliveries_before = 0
    for slot in range(slots):
        if slot % period == 0:
            # Host 0 pre-schedules a frame to three subscribers.
            net.hosts[0].request_multicast([2, 5, 7], slot)
        net.step(slot, bulk_arrivals=background.arrivals())
    net.step(slots, quiesce=True)
    net.step(slots + 1, quiesce=True)

    expected_frames = slots // period
    print(f"multicast frames sent      : {expected_frames} "
          f"(one every {period} slots)")
    print(f"multicast deliveries       : {net.stats.multicast_deliveries} "
          f"(= frames x 3 subscribers: {expected_frames * 3})")
    print(f"background bulk delivered  : "
          f"{net.stats.bulk_delivered - net.stats.multicast_deliveries}")
    print(f"bulk mean latency          : {net.stats.mean_bulk_latency:.2f} slots")
    print("\nThe real-time stream rides stage 1 of the scheduler — it is")
    print("never contended, while best-effort unicast fills stage 2.")


def main() -> None:
    figure7_example()
    realtime_stream()


if __name__ == "__main__":
    main()
