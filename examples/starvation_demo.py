#!/usr/bin/env python3
"""Starvation: why pure throughput optimisation is not enough.

Section 1 of the paper: "it can be easily shown that an algorithm that
finds the maximum number of matches can lead to starvation." This demo
constructs that adversarial workload and runs three schedulers over it:

* maximum-size matching (Hopcroft-Karp) — throughput-optimal, starves;
* pure LCF — near-optimal throughput, still starves;
* LCF with the round-robin diagonal — serves every backlogged pair at
  least once every n^2 cycles (the hard b/n^2 guarantee of Section 3).

Run: python examples/starvation_demo.py
"""

import numpy as np

from repro import LCFCentral, LCFCentralRR, hopcroft_karp
from repro.analysis.fairness import (
    adversarial_two_flow_matrix,
    starvation_report,
)

N = 8
CYCLES = N * N


def main() -> None:
    requests = adversarial_two_flow_matrix(N)
    print("Static backlog (1 = packets waiting):")
    print(requests.astype(int))
    print(f"\nRunning {CYCLES} scheduling cycles (= n^2, one full RR period)...\n")

    # Maximum-size matching: same deterministic schedule forever.
    counts = np.zeros((N, N), dtype=np.int64)
    for _ in range(CYCLES):
        schedule = hopcroft_karp(requests)
        for i, j in enumerate(schedule):
            if j >= 0:
                counts[i, j] += 1
    starved = [(int(i), int(j)) for i, j in zip(*np.nonzero(requests & (counts == 0)))]
    print(f"maximum-size matching: starved pairs = {starved}")

    pure = starvation_report(LCFCentral(N), cycles=CYCLES, requests=requests)
    print(f"lcf_central (pure)   : starved pairs = {pure.starved_pairs}")

    rr = starvation_report(LCFCentralRR(N), cycles=CYCLES, requests=requests)
    print(f"lcf_central_rr       : starved pairs = {rr.starved_pairs}")
    print(f"                       min service rate = {rr.min_rate:.4f} "
          f">= 1/n^2 = {1 / CYCLES:.4f}")

    print("\nThe RR diagonal visits every matrix position once per n^2 cycles")
    print("and wins unconditionally there — a hard, not statistical, bound.")

    # The cost side of the trade: total grants (throughput proxy).
    print("\nThroughput over the same period (total grants):")
    print(f"  maximum-size matching: {counts.sum()}")
    print(f"  lcf_central          : {pure.counts.sum()}")
    print(f"  lcf_central_rr       : {rr.counts.sum()}")


if __name__ == "__main__":
    main()
