#!/usr/bin/env python3
"""Full Figure 12 reproduction: queueing delay versus load for all nine
schedulers, absolute (12a) and relative to output buffering (12b).

With no arguments this runs a medium-fidelity grid (~a few minutes on
one core). ``--full`` runs the paper-fidelity grid (20 loads, 20k
measured slots). The grid is executed by the :mod:`repro.sweep` engine:

* ``--workers N`` fans the independent points out over N processes —
  the statistics are identical to a serial run, only faster;
* ``--replicates R`` runs each point under R derived seeds
  (``seed+0 .. seed+R-1``) and merges the shards with pooled
  mean/variance, shrinking Monte-Carlo noise;
* ``--cache-dir DIR`` makes the sweep resumable: completed points are
  stored as they finish, an interrupted run picks up where it stopped,
  and a finished run replays from disk in seconds.

Results are printed as tables and ASCII plots and optionally written to
CSV. See docs/EXPERIMENT_WORKFLOW.md for the full workflow.

Run: python examples/figure12_sweep.py [--full] [--workers 4]
         [--replicates 4] [--cache-dir .sweep-cache] [--csv fig12.csv]
"""

import argparse

from repro.analysis.sweep import (
    PAPER_LOADS,
    SweepSpec,
    check_paper_shape,
    run_sweep,
    shape_report,
)
from repro.analysis.tables import format_table
from repro.baselines.registry import PAPER_SCHEDULERS
from repro.sim.config import SimConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-fidelity grid (slow)")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = serial)")
    parser.add_argument("--replicates", type=int, default=1,
                        help="seed replicates per point, merged with "
                        "pooled statistics")
    parser.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="resumable on-disk result cache")
    parser.add_argument("--csv", metavar="PATH", help="write results as CSV")
    args = parser.parse_args()

    if args.full:
        config = SimConfig()  # the exact Section 6.3 parameters
        loads = PAPER_LOADS
    else:
        config = SimConfig(warmup_slots=500, measure_slots=4000)
        loads = (0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0)

    spec = SweepSpec(
        schedulers=PAPER_SCHEDULERS,
        loads=loads,
        config=config,
        replicates=args.replicates,
    )
    print(
        f"Sweeping {len(spec.schedulers)} schedulers x {len(loads)} loads "
        f"x {spec.replicates} replicate(s), {config.n_ports} ports, "
        f"{config.measure_slots} measured slots each, "
        f"{args.workers} worker(s)..."
    )
    sweep = run_sweep(
        spec, processes=args.workers, progress=True, cache=args.cache_dir
    )

    print()
    print(sweep.plot(relative=False))
    print()
    print(sweep.plot(relative=True))
    print()
    print(
        format_table(
            sweep.rows(),
            columns=["scheduler", "load", "mean_latency", "throughput", "dropped"],
        )
    )
    print()
    print(shape_report(check_paper_shape(sweep)))

    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep.to_csv())
        print(f"\nwrote {args.csv}")


if __name__ == "__main__":
    main()
