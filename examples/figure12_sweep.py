#!/usr/bin/env python3
"""Full Figure 12 reproduction: queueing delay versus load for all nine
schedulers, absolute (12a) and relative to output buffering (12b).

With no arguments this runs a medium-fidelity grid (~a few minutes on
one core). ``--full`` runs the paper-fidelity grid (20 loads, 20k
measured slots — plan for an hour on a laptop core). Results are
printed as tables and ASCII plots and optionally written to CSV.

Run: python examples/figure12_sweep.py [--full] [--csv fig12.csv]
"""

import argparse

from repro.analysis.sweep import (
    PAPER_LOADS,
    SweepSpec,
    check_paper_shape,
    run_sweep,
    shape_report,
)
from repro.analysis.tables import format_table
from repro.baselines.registry import PAPER_SCHEDULERS
from repro.sim.config import SimConfig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--full", action="store_true",
                        help="paper-fidelity grid (slow)")
    parser.add_argument("--csv", metavar="PATH", help="write results as CSV")
    args = parser.parse_args()

    if args.full:
        config = SimConfig()  # the exact Section 6.3 parameters
        loads = PAPER_LOADS
    else:
        config = SimConfig(warmup_slots=500, measure_slots=4000)
        loads = (0.1, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0)

    spec = SweepSpec(schedulers=PAPER_SCHEDULERS, loads=loads, config=config)
    print(
        f"Sweeping {len(spec.schedulers)} schedulers x {len(loads)} loads, "
        f"{config.n_ports} ports, {config.measure_slots} measured slots each..."
    )
    sweep = run_sweep(spec, progress=True)

    print()
    print(sweep.plot(relative=False))
    print()
    print(sweep.plot(relative=True))
    print()
    print(
        format_table(
            sweep.rows(),
            columns=["scheduler", "load", "mean_latency", "throughput", "dropped"],
        )
    )
    print()
    print(shape_report(check_paper_shape(sweep)))

    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(sweep.to_csv())
        print(f"\nwrote {args.csv}")


if __name__ == "__main__":
    main()
