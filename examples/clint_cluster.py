#!/usr/bin/env python3
"""The Clint cluster interconnect (paper Section 4) end to end.

Simulates the 16-host prototype: the bulk channel scheduled by the
central LCF scheduler through the three-stage pipeline
(configuration/grant -> transfer -> acknowledgment), the best-effort
quick channel with collision drops, and link-error injection exercising
the CRC protection of the packet formats.

Run: python examples/clint_cluster.py
"""

from repro.clint import ClintNetwork
from repro.traffic import BernoulliUniform, BurstyOnOff


def run_scenario(title: str, *, bulk_load: float, quick_load: float,
                 cfg_loss_rate: float = 0.0, slots: int = 2000,
                 bursty: bool = False) -> None:
    net = ClintNetwork(16, cfg_loss_rate=cfg_loss_rate, seed=7)
    bulk = (
        BurstyOnOff(16, bulk_load, seed=1, mean_burst=16)
        if bursty
        else BernoulliUniform(16, bulk_load, seed=1)
    )
    quick = BernoulliUniform(16, quick_load, seed=2)
    stats = net.run(slots, bulk_traffic=bulk, quick_traffic=quick)

    print(f"--- {title} ---")
    print(f"  bulk delivered     : {stats.bulk_delivered} packets")
    print(f"  bulk mean latency  : {stats.mean_bulk_latency:.2f} slots "
          "(2 = scheduling + transfer pipeline minimum)")
    print(f"  acknowledgments    : {stats.acks_delivered} "
          f"({'every request acked' if stats.acks_delivered == stats.bulk_delivered else 'MISSING ACKS'})")
    print(f"  quick delivered    : {stats.quick_delivered}, "
          f"dropped on collision: {stats.quick_dropped} "
          f"({stats.quick_drop_rate:.1%})")
    if cfg_loss_rate:
        print(f"  corrupted configs  : {stats.cfg_crc_errors} "
              "(detected by CRC-16, reported via CRCErr)")
    print(f"  residual backlog   : {net.backlog()} packets\n")


def main() -> None:
    print("Clint: 16-host star, LCF-scheduled bulk channel + "
          "best-effort quick channel\n")

    run_scenario("moderate load", bulk_load=0.5, quick_load=0.2)
    run_scenario("heavy bulk, heavy quick", bulk_load=0.9, quick_load=0.7)
    run_scenario("bursty bulk traffic", bulk_load=0.5, quick_load=0.2,
                 bursty=True)
    run_scenario("noisy links (5% config corruption)", bulk_load=0.5,
                 quick_load=0.2, cfg_loss_rate=0.05)

    print("Note how the scheduled bulk channel never drops packets in the")
    print("fabric — collisions are impossible by construction — while the")
    print("quick channel trades losses for zero scheduling latency.")


if __name__ == "__main__":
    main()
