#!/usr/bin/env python3
"""Hardware implementation report: Tables 1 and 2 plus the Section 6.2
central-versus-distributed comparison, regenerated from the cost models
and cross-checked against the register-level simulation of Figure 6.

Run: python examples/hw_cost_report.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.hw.comm import comm_table
from repro.hw.cost import fpga_utilisation, table1
from repro.hw.rtl import LCFSchedulerRTL
from repro.hw.timing import (
    central_time_steps,
    distributed_time_steps,
    table2,
)
from repro import LCFCentralRR


def main() -> None:
    print("Table 1: Gate Count and Register Count (n=16, Xilinx XCV600)")
    print(format_table(table1(16)))
    print(f"estimated FPGA utilisation: {fpga_utilisation(16):.0%} (paper: 15%)\n")

    print("Table 2: Scheduling Tasks (66 MHz)")
    print(
        format_table(
            [
                {
                    "task": r.task,
                    "decomposition": r.decomposition,
                    "cycles": r.cycles,
                    "time [ns]": r.time_ns,
                }
                for r in table2(16)
            ]
        )
    )
    print()

    print("Register-level model of Figure 6 (open-collector bus arbitration):")
    rtl = LCFSchedulerRTL(16)
    behavioural = LCFCentralRR(16)
    rng = np.random.default_rng(0)
    mismatches = 0
    for _ in range(200):
        requests = rng.random((16, 16)) < 0.5
        if not (rtl.schedule(requests) == behavioural.schedule(requests)).all():
            mismatches += 1
    print(f"  200 random cycles vs behavioural scheduler: {mismatches} mismatches")
    print(f"  cycles per LCF schedule: {rtl.last_cycles} (Table 2: 50)")
    print(f"  scheduling time at 66 MHz: "
          f"{rtl.last_cycles * 1000 / 66:.0f} ns (within the 1.3 us budget of "
          "the Clint prototype)\n")

    print("Section 6.2: communication cost per scheduling cycle (i = 4)")
    print(format_table(comm_table(port_counts=(4, 16, 64, 256, 1024))))
    print()

    print("Section 6.2: time steps (central O(n) vs distributed O(log2 n))")
    rows = [
        {
            "n": n,
            "central": central_time_steps(n),
            "distributed": distributed_time_steps(n),
        }
        for n in (4, 16, 64, 256, 1024)
    ]
    print(format_table(rows))
    print("\nThe trade in one sentence: the distributed scheduler is")
    print("exponentially faster but pays ~i*n*(2 log2 n+3)/(n+log2 n+1) times")
    print("the communication bits of the central one.")


if __name__ == "__main__":
    main()
