#!/usr/bin/env python3
"""Diff a freshly generated checkpoint against the pinned golden file.

The golden checkpoint pins the *on-disk byte format* of
:mod:`repro.checkpoint`: the envelope fields, the canonical payload
ordering, the ``__repro__`` state-encoding tags, and the captured
attribute set of every serialised component. A regenerated checkpoint
must match byte for byte; any divergence means the checkpoint schema —
or the state any component carries — changed, and CI fails until the
change is deliberately re-goldened (bump ``CHECKPOINT_VERSION`` when
the change breaks old files).

The pinned run deliberately exercises every serialised subsystem at
once: a faulted, adaptive, admission-controlled ``lcf_central_rr`` run
(the same base parameters as the golden traces) paused mid-flight by
``stop_at_slot``, so the file holds live VOQ contents, estimator health
tables, admission counters, and metrics.

Usage::

    python tools/check_checkpoint_format.py             # diff
    python tools/check_checkpoint_format.py --update    # re-golden

Exit status 0 on match, 1 on divergence.
"""

from __future__ import annotations

import argparse
import difflib
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DATA = REPO_ROOT / "tests" / "data"
GOLDEN = DATA / "golden_checkpoint.json"

#: Pinned run parameters — change only when re-goldening.
SCHEDULER = "lcf_central_rr"
N_PORTS = 4
SEED = 7
LOAD = 0.85
WARMUP = 20
MEASURE = 100
STOP_AT = 60
CHECKPOINT_EVERY = 30
FAULT_SPEC = (
    ("link_down", ((0, 1, 30, 70),)),
    ("port_down", ((2, 50, 90, "output"),)),
)
ADAPT_SPEC = (("policy", "adaptive"),)
ADMISSION = (50, 100)
MAX_SHOWN = 10


def generate(path: Path) -> None:
    """Write the pinned run's checkpoint to ``path``."""
    from repro.obs.metrics import MetricsRegistry
    from repro.sim.config import SimConfig
    from repro.sim.simulator import run_simulation

    config = SimConfig(
        n_ports=N_PORTS, warmup_slots=WARMUP, measure_slots=MEASURE, seed=SEED
    )
    run_simulation(
        config,
        SCHEDULER,
        LOAD,
        faults=FAULT_SPEC,
        adapter=ADAPT_SPEC,
        admission=ADMISSION,
        metrics=MetricsRegistry(),
        checkpoint_path=path,
        checkpoint_every=CHECKPOINT_EVERY,
        stop_at_slot=STOP_AT,
    )


def _pretty(text: str) -> list[str]:
    """Stable pretty-printed lines for a readable diff."""
    return json.dumps(json.loads(text), indent=1, sort_keys=True).splitlines()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update", action="store_true",
        help="rewrite the golden checkpoint from the current code",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))

    if args.update:
        DATA.mkdir(parents=True, exist_ok=True)
        generate(GOLDEN)
        print(f"re-goldened {GOLDEN.relative_to(REPO_ROOT)}")
        return 0

    if not GOLDEN.exists():
        print(f"missing golden {GOLDEN.relative_to(REPO_ROOT)}; "
              "run with --update to create it", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory() as tmp:
        fresh_path = Path(tmp) / "fresh_checkpoint.json"
        generate(fresh_path)
        fresh = fresh_path.read_text()
    golden = GOLDEN.read_text()
    if fresh == golden:
        print(f"checkpoint format matches {GOLDEN.relative_to(REPO_ROOT)} "
              f"({len(golden)} bytes)")
        return 0

    print(f"checkpoint format DIVERGED from {GOLDEN.relative_to(REPO_ROOT)}:",
          file=sys.stderr)
    diff = difflib.unified_diff(
        _pretty(golden), _pretty(fresh),
        fromfile="golden", tofile="fresh", lineterm="", n=1,
    )
    for shown, line in enumerate(diff):
        if shown >= MAX_SHOWN:
            print("  ...", file=sys.stderr)
            break
        print(f"  {line}", file=sys.stderr)
    print("re-golden with --update if the change is intentional "
          "(and bump CHECKPOINT_VERSION if it breaks old files)",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
