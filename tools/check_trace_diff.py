#!/usr/bin/env python3
"""Diff a freshly generated event trace against the golden trace.

The golden trace (``tests/data/golden_trace.jsonl``) pins the exact
event stream of one reference simulation — scheduler ``lcf_central_rr``,
4 ports, seed 7, load 0.85, 20 warmup + 100 measured slots. Because
every simulation is a pure function of its seed, the regenerated trace
must match the golden file *byte for byte*; any divergence means the
simulator, scheduler, or trace schema changed behaviour, and CI fails
until the change is either fixed or deliberately re-goldened.

Usage::

    python tools/check_trace_diff.py            # regenerate + diff
    python tools/check_trace_diff.py --update   # re-golden (after an
                                                # intentional change)

Exit status 0 on match, 1 on divergence (first few differing lines are
printed with their line numbers).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
GOLDEN = REPO_ROOT / "tests" / "data" / "golden_trace.jsonl"

#: Reference run parameters — change these only when re-goldening.
SCHEDULER = "lcf_central_rr"
N_PORTS = 4
SEED = 7
LOAD = 0.85
WARMUP = 20
MEASURE = 100
MAX_SHOWN = 10


def generate_trace() -> str:
    """The reference run's JSONL event stream, as one string."""
    from repro.obs.tracer import JsonlTracer
    from repro.sim.config import SimConfig
    from repro.sim.simulator import run_simulation

    config = SimConfig(
        n_ports=N_PORTS, warmup_slots=WARMUP, measure_slots=MEASURE, seed=SEED
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.jsonl"
        tracer = JsonlTracer(path)
        with tracer:
            run_simulation(config, SCHEDULER, LOAD, tracer=tracer)
        return path.read_text()


def diff_traces(golden: str, fresh: str) -> list[str]:
    """Human-readable line-level differences (empty = identical)."""
    if golden == fresh:
        return []
    problems: list[str] = []
    golden_lines = golden.splitlines()
    fresh_lines = fresh.splitlines()
    if len(golden_lines) != len(fresh_lines):
        problems.append(
            f"line count differs: golden {len(golden_lines)}, "
            f"fresh {len(fresh_lines)}"
        )
    for number, (expected, actual) in enumerate(
        zip(golden_lines, fresh_lines), start=1
    ):
        if expected != actual:
            problems.append(
                f"line {number}:\n  golden: {expected}\n  fresh:  {actual}"
            )
            if len(problems) >= MAX_SHOWN:
                problems.append("... (further differences suppressed)")
                break
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the golden trace from the current simulator",
    )
    args = parser.parse_args(argv)
    sys.path.insert(0, str(REPO_ROOT / "src"))

    fresh = generate_trace()
    if args.update:
        GOLDEN.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN.write_text(fresh)
        print(f"golden trace updated: {GOLDEN} ({len(fresh.splitlines())} events)")
        return 0
    if not GOLDEN.exists():
        print(f"golden trace missing: {GOLDEN} (run with --update)", file=sys.stderr)
        return 1
    problems = diff_traces(GOLDEN.read_text(), fresh)
    if problems:
        print(
            f"trace diverged from golden ({GOLDEN.name}); if the change is "
            "intentional, re-golden with tools/check_trace_diff.py --update",
            file=sys.stderr,
        )
        for problem in problems:
            print(problem, file=sys.stderr)
        return 1
    print(
        f"trace matches golden: {len(fresh.splitlines())} events, "
        f"{SCHEDULER} n={N_PORTS} seed={SEED} load={LOAD}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
