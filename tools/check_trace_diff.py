#!/usr/bin/env python3
"""Diff freshly generated event traces against the pinned golden traces.

Each golden trace pins the exact event stream of one reference
simulation. Because every simulation is a pure function of its seed, a
regenerated trace must match its golden file *byte for byte*; any
divergence means the simulator, a scheduler, the adaptive layer, or the
trace schema changed behaviour, and CI fails until the change is either
fixed or deliberately re-goldened.

Two goldens are pinned:

* ``reference`` — a plain fault-free run (``lcf_central_rr``, 4 ports,
  seed 7, load 0.85, 20 warmup + 100 measured slots): the baseline
  behavioural pin since PR 2.
* ``adaptive`` — the same run under a fixed :class:`FaultPlan` with an
  :class:`AdaptiveLCF` layer attached, pinning the full fault-reaction
  loop (suspect/probe/readmit events included) added in PR 4.

Usage::

    python tools/check_trace_diff.py                    # diff all goldens
    python tools/check_trace_diff.py --only adaptive    # just one
    python tools/check_trace_diff.py --update           # re-golden (after
                                                        # an intentional change)

Exit status 0 on match, 1 on divergence (first few differing lines are
printed with their line numbers).
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DATA = REPO_ROOT / "tests" / "data"

#: Reference run parameters shared by every golden — change these only
#: when re-goldening.
SCHEDULER = "lcf_central_rr"
N_PORTS = 4
SEED = 7
LOAD = 0.85
WARMUP = 20
MEASURE = 100
MAX_SHOWN = 10

#: Backwards-compatible alias for the original single golden.
GOLDEN = DATA / "golden_trace.jsonl"


@dataclass(frozen=True)
class GoldenRun:
    """One pinned reference simulation and where its golden lives."""

    name: str
    path: Path
    description: str
    #: Extra ``run_simulation`` keyword specs (plan / adapter wiring).
    fault_spec: tuple = ()
    adapt_spec: tuple = ()


GOLDENS = (
    GoldenRun(
        name="reference",
        path=GOLDEN,
        description="plain fault-free run",
    ),
    GoldenRun(
        name="adaptive",
        path=DATA / "golden_trace_adaptive.jsonl",
        description="fixed fault plan + AdaptiveLCF reaction loop",
        fault_spec=(
            ("link_down", ((0, 1, 30, 70),)),
            ("port_down", ((2, 50, 90, "output"),)),
        ),
        adapt_spec=(("policy", "adaptive"),),
    ),
)


def _build_faults(run: GoldenRun):
    if not run.fault_spec:
        return None
    from repro.faults import FaultPlan, LinkOutage, PortDownInterval

    spec = dict(run.fault_spec)
    return FaultPlan(
        link_down=tuple(LinkOutage(*entry) for entry in spec.get("link_down", ())),
        port_down=tuple(
            PortDownInterval(*entry) for entry in spec.get("port_down", ())
        ),
    )


def generate_trace(run: GoldenRun | None = None) -> str:
    """One golden run's JSONL event stream, as a single string.

    Called without arguments it regenerates the original ``reference``
    golden (backwards-compatible entry point).
    """
    from repro.adapt import make_adapter
    from repro.obs.tracer import JsonlTracer
    from repro.sim.config import SimConfig
    from repro.sim.simulator import run_simulation

    run = run if run is not None else GOLDENS[0]
    config = SimConfig(
        n_ports=N_PORTS, warmup_slots=WARMUP, measure_slots=MEASURE, seed=SEED
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.jsonl"
        tracer = JsonlTracer(path)
        with tracer:
            run_simulation(
                config,
                SCHEDULER,
                LOAD,
                tracer=tracer,
                faults=_build_faults(run),
                adapter=make_adapter(run.adapt_spec or None),
            )
        return path.read_text()


def diff_traces(golden: str, fresh: str) -> list[str]:
    """Human-readable line-level differences (empty = identical)."""
    if golden == fresh:
        return []
    problems: list[str] = []
    golden_lines = golden.splitlines()
    fresh_lines = fresh.splitlines()
    if len(golden_lines) != len(fresh_lines):
        problems.append(
            f"line count differs: golden {len(golden_lines)}, "
            f"fresh {len(fresh_lines)}"
        )
    for number, (expected, actual) in enumerate(
        zip(golden_lines, fresh_lines), start=1
    ):
        if expected != actual:
            problems.append(
                f"line {number}:\n  golden: {expected}\n  fresh:  {actual}"
            )
            if len(problems) >= MAX_SHOWN:
                problems.append("... (further differences suppressed)")
                break
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the golden trace(s) from the current simulator",
    )
    parser.add_argument(
        "--only",
        choices=tuple(run.name for run in GOLDENS),
        default=None,
        help="check a single golden instead of all of them",
    )
    args = parser.parse_args(argv)
    sys.path.insert(0, str(REPO_ROOT / "src"))

    status = 0
    for run in GOLDENS:
        if args.only is not None and run.name != args.only:
            continue
        fresh = generate_trace(run)
        if args.update:
            run.path.parent.mkdir(parents=True, exist_ok=True)
            run.path.write_text(fresh)
            print(
                f"golden '{run.name}' updated: {run.path} "
                f"({len(fresh.splitlines())} events)"
            )
            continue
        if not run.path.exists():
            print(
                f"golden '{run.name}' missing: {run.path} (run with --update)",
                file=sys.stderr,
            )
            status = 1
            continue
        problems = diff_traces(run.path.read_text(), fresh)
        if problems:
            print(
                f"trace diverged from golden '{run.name}' ({run.path.name}); "
                "if the change is intentional, re-golden with "
                "tools/check_trace_diff.py --update",
                file=sys.stderr,
            )
            for problem in problems:
                print(problem, file=sys.stderr)
            status = 1
            continue
        print(
            f"trace matches golden '{run.name}': "
            f"{len(fresh.splitlines())} events, {run.description} "
            f"({SCHEDULER} n={N_PORTS} seed={SEED} load={LOAD})"
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
