#!/usr/bin/env python3
"""Validate an OpenMetrics snapshot as written by ``repro.obs.serve``.

Checks, without any Prometheus dependency:

1. the text parses line by line: ``# TYPE <name> <kind>`` / ``# HELP``
   comments, ``name{labels} value`` samples, and a final ``# EOF``;
2. every ``# TYPE`` kind is ``counter``/``gauge``/``histogram`` and no
   metric is typed twice;
3. every sample belongs to a declared metric family (histograms via
   their ``_bucket``/``_sum``/``_count`` suffixes) and its value parses
   as a float (``NaN``/``+Inf``/``-Inf`` allowed on gauges);
4. counter and histogram-count samples are non-negative;
5. histogram buckets are *cumulative*: ``le`` edges strictly increase,
   bucket counts are monotone non-decreasing, the final bucket is
   ``le="+Inf"`` and equals ``<name>_count``;
6. optionally (``--expect name1,name2``), the snapshot contains the
   given metric families — how CI asserts a scraped snapshot actually
   carries the registered instruments.

Exit status 0 when valid, 1 otherwise. Also importable:
:func:`validate_openmetrics` returns the error list for tests.

Usage: ``python tools/check_metrics_snapshot.py SNAPSHOT.prom
[--expect forwarded,slots,matching_size]``
"""

from __future__ import annotations

import argparse
import math
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

_KINDS = {"counter", "gauge", "histogram"}
_SAMPLE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>\S+)$'
)
_LE = re.compile(r'le="(?P<le>[^"]+)"')


def _parse_value(raw: str) -> float | None:
    if raw == "NaN":
        return math.nan
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    try:
        return float(raw)
    except ValueError:
        return None


def validate_openmetrics(
    text: str, expected_names: list[str] | None = None
) -> list[str]:
    """All conformance errors in one snapshot (empty list = valid)."""
    errors: list[str] = []
    types: dict[str, str] = {}
    #: histogram name -> list of (le, cumulative count) in file order.
    buckets: dict[str, list[tuple[float, float]]] = {}
    counts: dict[str, float] = {}
    sums: set[str] = set()
    sampled: set[str] = set()
    saw_eof = False

    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if saw_eof:
            errors.append(f"line {number}: content after # EOF")
            break
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "EOF":
                saw_eof = True
            elif len(parts) >= 4 and parts[1] == "TYPE":
                name, kind = parts[2], parts[3]
                if kind not in _KINDS:
                    errors.append(f"line {number}: unknown kind {kind!r}")
                if name in types:
                    errors.append(f"line {number}: duplicate TYPE for {name}")
                types[name] = kind
            elif len(parts) >= 2 and parts[1] == "HELP":
                pass
            else:
                errors.append(f"line {number}: malformed comment {line!r}")
            continue

        match = _SAMPLE.match(line)
        if match is None:
            errors.append(f"line {number}: unparseable sample {line!r}")
            continue
        name = match.group("name")
        value = _parse_value(match.group("value"))
        if value is None:
            errors.append(
                f"line {number}: bad value {match.group('value')!r} for {name}"
            )
            continue

        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                family = name[: -len(suffix)]
                break
        kind = types.get(family)
        if kind is None:
            errors.append(f"line {number}: sample {name} has no # TYPE line")
            continue
        sampled.add(family)

        if kind == "histogram":
            if name == f"{family}_bucket":
                labels = match.group("labels") or ""
                le_match = _LE.search(labels)
                if le_match is None:
                    errors.append(f"line {number}: {name} without an le label")
                    continue
                le_raw = le_match.group("le")
                le = math.inf if le_raw == "+Inf" else _parse_value(le_raw)
                if le is None:
                    errors.append(f"line {number}: bad le {le_raw!r}")
                    continue
                buckets.setdefault(family, []).append((le, value))
            elif name == f"{family}_count":
                counts[family] = value
                if value < 0:
                    errors.append(f"line {number}: negative count for {family}")
            elif name == f"{family}_sum":
                sums.add(family)
            else:
                errors.append(
                    f"line {number}: bare sample {name} for histogram {family}"
                )
        elif kind == "counter":
            if not math.isfinite(value) or value < 0:
                errors.append(
                    f"line {number}: counter {name} must be finite and >= 0, "
                    f"got {match.group('value')}"
                )
        # gauges may carry any value, NaN included

    if not saw_eof:
        errors.append("missing # EOF terminator")

    for family, kind in types.items():
        if family not in sampled:
            errors.append(f"metric {family} has a TYPE line but no samples")

    for family, series in buckets.items():
        edges = [le for le, _ in series]
        if edges != sorted(edges) or len(set(edges)) != len(edges):
            errors.append(f"{family}: bucket le edges not strictly increasing")
        values = [count for _, count in series]
        if any(b < a for a, b in zip(values, values[1:])):
            errors.append(f"{family}: cumulative bucket counts decrease")
        if not edges or not math.isinf(edges[-1]):
            errors.append(f"{family}: missing le=\"+Inf\" bucket")
        elif family in counts and values[-1] != counts[family]:
            errors.append(
                f"{family}: +Inf bucket {values[-1]:g} != _count "
                f"{counts[family]:g}"
            )
        if family not in counts:
            errors.append(f"{family}: missing _count sample")
        if family not in sums:
            errors.append(f"{family}: missing _sum sample")
    for family, kind in types.items():
        if kind == "histogram" and family in sampled and family not in buckets:
            errors.append(f"{family}: histogram with no _bucket samples")

    for name in expected_names or []:
        if name not in types:
            errors.append(f"expected metric {name} not present")

    return errors


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Validate an OpenMetrics snapshot file."
    )
    parser.add_argument("snapshot", metavar="SNAPSHOT.prom")
    parser.add_argument(
        "--expect", metavar="NAME,NAME,...", default=None,
        help="comma-separated metric families that must be present",
    )
    args = parser.parse_args(argv)
    path = Path(args.snapshot)
    if not path.exists():
        print(f"{path}: no such file", file=sys.stderr)
        return 2
    expected = (
        [name for name in args.expect.split(",") if name] if args.expect else None
    )
    errors = validate_openmetrics(path.read_text(), expected)
    if errors:
        for error in errors[:20]:
            print(error)
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more")
        print(f"\n{len(errors)} conformance errors in {path}")
        return 1
    print(f"{path}: OpenMetrics-valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
