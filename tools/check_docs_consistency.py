#!/usr/bin/env python3
"""Docs-consistency checks: symbols must import, links must resolve.

Two independent checks, both run by CI and by the tier-1 wrapper in
``tests/test_docs_consistency.py``:

**Symbols** — every public symbol referenced in ``docs/API.md`` must
actually import from ``repro``. The reference is organised as Markdown
tables under section headers that name a module in backticks, e.g.
``## Simulation (`repro.sim`)``. For every table row whose first cell
is a code span, this script extracts each symbol (stripping call
signatures, splitting ``a / b`` alternatives) and resolves it, in
order, against

1. the top-level ``repro`` namespace,
2. the section's module,
3. a fully dotted import path (``repro.sim.fifo_switch.FIFOSwitch``).

Rows under sections with no module in the header (e.g. *Conventions*)
and cells that are not plain identifiers (``lcf-sweep``) are skipped.

**Links** — every relative Markdown link in ``README.md`` and
``docs/*.md`` must point at a file that exists (resolved against the
containing file's directory), and a ``#fragment`` must name a heading
anchor of the target file under GitHub's slug rules (``#`` alone and
external ``scheme://``/``mailto:`` targets are skipped; links inside
fenced code blocks are not links). This is what keeps
``docs/INDEX.md`` an index instead of a wish list.

Exit status 0 if everything resolves, 1 otherwise — CI runs this after
the test suite so the docs can never drift silently.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
API_MD = REPO_ROOT / "docs" / "API.md"

SECTION = re.compile(r"^##\s+.*`(?P<module>repro[\w.]*)`")
PLAIN_SECTION = re.compile(r"^##\s+")
ROW = re.compile(r"^\|\s*`(?P<entry>[^`]+)`")
IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


def iter_referenced_symbols(text: str):
    """Yield (section_module, symbol, line_number) for every code-span
    symbol in the reference tables."""
    module = None
    for number, line in enumerate(text.splitlines(), start=1):
        match = SECTION.match(line)
        if match:
            module = match.group("module")
            continue
        if PLAIN_SECTION.match(line):
            module = None  # section without a module: rows are prose
            continue
        if module is None:
            continue
        match = ROW.match(line)
        if not match:
            continue
        for part in match.group("entry").split("/"):
            symbol = part.strip().split("(")[0].strip()
            if symbol and IDENTIFIER.match(symbol):
                yield module, symbol, number


def resolves(section_module: str, symbol: str) -> bool:
    """True if ``symbol`` imports from repro (see module docstring)."""
    import repro

    if "." not in symbol:
        if hasattr(repro, symbol):
            return True
        try:
            return hasattr(importlib.import_module(section_module), symbol)
        except ImportError:
            return False
    try:
        importlib.import_module(symbol)
        return True
    except ImportError:
        pass
    module_name, _, attribute = symbol.rpartition(".")
    try:
        return hasattr(importlib.import_module(module_name), attribute)
    except ImportError:
        return False


LINK = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(?P<title>.+?)\s*#*\s*$")
FENCE = re.compile(r"^(```|~~~)")
EXTERNAL = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def linked_documents() -> list[Path]:
    """The files whose outgoing relative links are validated."""
    return [REPO_ROOT / "README.md"] + sorted((REPO_ROOT / "docs").glob("*.md"))


def strip_code_fences(text: str) -> list[str]:
    """Lines of ``text`` with fenced code blocks blanked (not removed,
    so line numbers stay aligned with the source file)."""
    lines = []
    in_fence = False
    for line in text.splitlines():
        if FENCE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else line)
    return lines


def heading_anchors(text: str) -> set[str]:
    """GitHub-style anchor slugs of every heading in a Markdown text:
    lowercase, punctuation dropped (code-span backticks included),
    spaces to hyphens, ``-1``/``-2`` suffixes on duplicates."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    for line in strip_code_fences(text):
        match = HEADING.match(line)
        if not match:
            continue
        title = match.group("title")
        slug = re.sub(r"[^\w\- ]", "", title.lower().strip()).replace(" ", "-")
        seen = counts.get(slug, 0)
        counts[slug] = seen + 1
        anchors.add(slug if seen == 0 else f"{slug}-{seen}")
    return anchors


def iter_links(text: str):
    """Yield (target, line_number) for every inline Markdown link."""
    for number, line in enumerate(strip_code_fences(text), start=1):
        for match in LINK.finditer(line):
            yield match.group(1), number


def check_links(path: Path) -> list[str]:
    """Dead relative links / dead anchors in one Markdown file."""
    failures = []
    rel = path.relative_to(REPO_ROOT) if path.is_relative_to(REPO_ROOT) else path
    text = path.read_text()
    for target, number in iter_links(text):
        if EXTERNAL.match(target) or target.startswith("//"):
            continue  # external URL — not this checker's business
        file_part, _, anchor = target.partition("#")
        if not file_part and not anchor:
            continue
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                failures.append(f"{rel}:{number}: dead link `{target}`")
                continue
            anchor_source = resolved
        else:
            anchor_source = path  # pure fragment: same-file anchor
        if anchor:
            if anchor_source.suffix != ".md" or not anchor_source.is_file():
                continue  # anchors into non-Markdown targets: unverifiable
            if anchor.lower() not in heading_anchors(anchor_source.read_text()):
                failures.append(
                    f"{rel}:{number}: dead anchor `{target}` "
                    f"(no such heading in {anchor_source.name})"
                )
    return failures


def main() -> int:
    src = REPO_ROOT / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))

    text = API_MD.read_text()
    checked = 0
    failures: list[str] = []
    for section_module, symbol, line_number in iter_referenced_symbols(text):
        checked += 1
        if not resolves(section_module, symbol):
            failures.append(
                f"docs/API.md:{line_number}: `{symbol}` does not import "
                f"from repro or {section_module}"
            )

    link_count = 0
    for document in linked_documents():
        document_links = list(iter_links(document.read_text()))
        link_count += len(document_links)
        failures += check_links(document)

    if failures:
        print("\n".join(failures))
        print(f"\n{len(failures)} docs-consistency failure(s) "
              f"({checked} symbols, {link_count} links checked)")
        return 1
    print(f"docs OK: {checked} referenced symbols import cleanly, "
          f"{link_count} links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
