#!/usr/bin/env python3
"""Docs-consistency check: every public symbol referenced in
``docs/API.md`` must actually import from ``repro``.

The reference is organised as Markdown tables under section headers
that name a module in backticks, e.g. ``## Simulation (`repro.sim`)``.
For every table row whose first cell is a code span, this script
extracts each symbol (stripping call signatures, splitting ``a / b``
alternatives) and resolves it, in order, against

1. the top-level ``repro`` namespace,
2. the section's module,
3. a fully dotted import path (``repro.sim.fifo_switch.FIFOSwitch``).

Rows under sections with no module in the header (e.g. *Conventions*)
and cells that are not plain identifiers (``lcf-sweep``) are skipped.

Exit status 0 if everything resolves, 1 otherwise — CI runs this after
the test suite so the API reference can never drift silently.
"""

from __future__ import annotations

import importlib
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
API_MD = REPO_ROOT / "docs" / "API.md"

SECTION = re.compile(r"^##\s+.*`(?P<module>repro[\w.]*)`")
PLAIN_SECTION = re.compile(r"^##\s+")
ROW = re.compile(r"^\|\s*`(?P<entry>[^`]+)`")
IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_.]*$")


def iter_referenced_symbols(text: str):
    """Yield (section_module, symbol, line_number) for every code-span
    symbol in the reference tables."""
    module = None
    for number, line in enumerate(text.splitlines(), start=1):
        match = SECTION.match(line)
        if match:
            module = match.group("module")
            continue
        if PLAIN_SECTION.match(line):
            module = None  # section without a module: rows are prose
            continue
        if module is None:
            continue
        match = ROW.match(line)
        if not match:
            continue
        for part in match.group("entry").split("/"):
            symbol = part.strip().split("(")[0].strip()
            if symbol and IDENTIFIER.match(symbol):
                yield module, symbol, number


def resolves(section_module: str, symbol: str) -> bool:
    """True if ``symbol`` imports from repro (see module docstring)."""
    import repro

    if "." not in symbol:
        if hasattr(repro, symbol):
            return True
        try:
            return hasattr(importlib.import_module(section_module), symbol)
        except ImportError:
            return False
    try:
        importlib.import_module(symbol)
        return True
    except ImportError:
        pass
    module_name, _, attribute = symbol.rpartition(".")
    try:
        return hasattr(importlib.import_module(module_name), attribute)
    except ImportError:
        return False


def main() -> int:
    src = REPO_ROOT / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))

    text = API_MD.read_text()
    checked = 0
    failures: list[str] = []
    for section_module, symbol, line_number in iter_referenced_symbols(text):
        checked += 1
        if not resolves(section_module, symbol):
            failures.append(
                f"docs/API.md:{line_number}: `{symbol}` does not import "
                f"from repro or {section_module}"
            )

    if failures:
        print("\n".join(failures))
        print(f"\n{len(failures)}/{checked} referenced symbols failed to resolve")
        return 1
    print(f"docs/API.md: all {checked} referenced symbols import cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main())
