#!/usr/bin/env python3
"""Perf-regression gate over the fastpath speed report.

Compares a freshly measured ``BENCH_speed.json``-format report against
the committed baseline, on *speedup ratios* (fast over reference) —
absolute slots/sec depend on the host machine, but both layers run in
the same interpreter on the same box, so the ratio is the portable
signal. A cell fails when its speedup drops more than ``--tolerance``
(default 30%) below the baseline, or when it falls below one of the
absolute ``--min`` floors (default: the repo's committed claim that
fastpath ``lcf_central_rr`` is at least 3x the reference at n=16).

Usage::

    PYTHONPATH=src python benchmarks/bench_scheduler_speed.py fresh.json
    python tools/check_bench_regression.py --current fresh.json

Exit status 0 when every cell holds, 1 otherwise — CI's perf-smoke job
runs exactly this pair of commands.
"""

from __future__ import annotations

import argparse
import sys
from fnmatch import fnmatchcase
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fastpath.bench import (  # noqa: E402
    check_min_speedups,
    compare_reports,
    iter_cells,
    load_report,
)

#: Absolute speedup floors the repo commits to (``name:n:floor``).
#: The columnar floor is the replicate-batching acceptance bar: the
#: engine must hold >= 3x over R=32 fast serial runs at 64 ports.
DEFAULT_FLOORS = (
    "lcf_central_rr:16:3.0",
    "columnar_lcf_central_rr_r32:64:3.0",
)


def family_selected(
    name: str,
    only: tuple[str, ...] | None = None,
    exclude: tuple[str, ...] = (),
) -> bool:
    """Whether a family name passes the ``--only``/``--exclude`` cut.

    Entries are shell-style patterns (``fnmatch``), so family *groups*
    select in one flag — ``--exclude 'columnar_*'`` drops every
    replicate-batching family. A literal name matches itself.
    """
    if any(fnmatchcase(name, pattern) for pattern in exclude):
        return False
    return only is None or any(fnmatchcase(name, pattern) for pattern in only)


def filter_families(
    report: dict,
    only: tuple[str, ...] | None = None,
    exclude: tuple[str, ...] = (),
) -> dict:
    """Keep only the selected benchmark families (top-level
    ``schedulers`` keys — registry scheduler names or composite
    families like ``fabric_clos``), matched as ``fnmatch`` patterns.
    ``only=None`` keeps everything not excluded.

    CI jobs measure disjoint family subsets (perf-smoke re-measures the
    scheduler kernels and excludes the fabric and columnar families;
    the fabric and columnar jobs measure only theirs), so both reports
    must be cut to the same families before comparing — otherwise
    unmeasured families read as "missing from current".
    """
    schedulers = {
        name: cells
        for name, cells in report.get("schedulers", {}).items()
        if family_selected(name, only, exclude)
    }
    return {**report, "schedulers": schedulers}


def prune_report(report: dict, max_n: int | None) -> dict:
    """Drop cells wider than ``max_n`` ports (None keeps everything).

    CI's perf-smoke job measures only up to 64 ports to stay fast, so
    it prunes both reports to the measured widths — otherwise the
    baseline's wider cells would read as "missing from current".
    """
    if max_n is None:
        return report
    schedulers = {
        name: {n: cell for n, cell in cells.items() if int(n) <= max_n}
        for name, cells in report.get("schedulers", {}).items()
    }
    return {**report, "schedulers": schedulers}


def parse_floor(text: str) -> tuple[tuple[str, int], float]:
    try:
        name, n, floor = text.rsplit(":", 2)
        return (name, int(n)), float(floor)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected NAME:N:FLOOR (e.g. lcf_central_rr:16:3.0), got {text!r}"
        ) from None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=str(REPO_ROOT / "BENCH_speed.json"),
        help="committed baseline report (default: repo BENCH_speed.json)",
    )
    parser.add_argument(
        "--current",
        required=True,
        help="freshly measured report to check",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional speedup drop vs baseline (default 0.30)",
    )
    parser.add_argument(
        "--min",
        dest="floors",
        action="append",
        type=parse_floor,
        metavar="NAME:N:FLOOR",
        help="absolute speedup floor, repeatable "
        f"(default: {', '.join(DEFAULT_FLOORS)})",
    )
    parser.add_argument(
        "--max-n",
        type=int,
        default=None,
        metavar="N",
        help="ignore cells (and floors) wider than N ports — for runs "
        "that measured a width subset of the baseline",
    )
    parser.add_argument(
        "--only",
        action="append",
        default=None,
        metavar="FAMILY",
        help="check only matching benchmark families (repeatable; "
        "fnmatch pattern, e.g. 'columnar_*') — for runs that measured "
        "a family subset of the baseline",
    )
    parser.add_argument(
        "--exclude",
        action="append",
        default=[],
        metavar="FAMILY",
        help="skip matching benchmark families (repeatable; fnmatch "
        "pattern)",
    )
    args = parser.parse_args(argv)
    floors = dict(
        args.floors
        if args.floors is not None
        else (parse_floor(text) for text in DEFAULT_FLOORS)
    )
    if args.max_n is not None:
        floors = {(name, n): f for (name, n), f in floors.items() if n <= args.max_n}
    only = tuple(args.only) if args.only is not None else None
    exclude = tuple(args.exclude)
    floors = {
        (name, n): f
        for (name, n), f in floors.items()
        if family_selected(name, only, exclude)
    }

    baseline = prune_report(
        filter_families(load_report(args.baseline), only, exclude), args.max_n
    )
    current = prune_report(
        filter_families(load_report(args.current), only, exclude), args.max_n
    )
    for name, n, cell in iter_cells(current):
        print(
            f"{name:<16} n={n:<3} ref {cell['reference_slots_per_sec']:>10.0f}/s  "
            f"fast {cell['fast_slots_per_sec']:>10.0f}/s  {cell['speedup']:.2f}x"
        )

    failures = compare_reports(baseline, current, tolerance=args.tolerance)
    failures += check_min_speedups(current, floors)
    if failures:
        print()
        for failure in failures:
            print(f"REGRESSION: {failure}")
        print(f"{len(failures)} perf check(s) failed "
              f"(baseline {args.baseline}, tolerance {args.tolerance:.0%})")
        return 1
    print(f"perf OK: every cell within {args.tolerance:.0%} of "
          f"{args.baseline} and above the absolute floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
