#!/usr/bin/env python3
"""Validate a ``lcf-trace`` JSONL event trace against the event schema.

Checks, line by line:

1. every line is a JSON object;
2. every event passes :func:`repro.obs.events.validate_event` (known
   type, required fields with the right primitive types, no extras);
3. ``slot`` values are non-decreasing (the trace is slot-ordered);
4. the trace contains at least one ``slot`` summary event.

Exit status 0 if the trace is schema-valid, 1 otherwise. CI runs this
against a freshly traced simulation so the on-disk format and
``EVENT_SCHEMA`` can never drift apart.

Usage: ``python tools/check_trace_schema.py trace.jsonl``
"""

from __future__ import annotations

import json
import sys
from collections import Counter
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def check_trace(path: Path) -> tuple[int, list[str]]:
    """Validate one JSONL trace; returns (events checked, errors)."""
    from repro.obs.events import SLOT, validate_event

    errors: list[str] = []
    counts: Counter[str] = Counter()
    last_slot = -1
    checked = 0
    with path.open() as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            checked += 1
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                errors.append(f"{path}:{number}: not JSON ({exc})")
                continue
            for problem in validate_event(event):
                errors.append(f"{path}:{number}: {problem}")
            slot = event.get("slot")
            if isinstance(slot, int):
                if slot < last_slot:
                    errors.append(
                        f"{path}:{number}: slot went backwards "
                        f"({last_slot} -> {slot})"
                    )
                last_slot = slot
            if isinstance(event, dict):
                counts[str(event.get("type"))] += 1
    if checked == 0:
        errors.append(f"{path}: empty trace")
    elif counts.get(SLOT, 0) == 0:
        errors.append(f"{path}: no per-slot summary events")
    return checked, errors


def main(argv: list[str]) -> int:
    src = REPO_ROOT / "src"
    if src.is_dir() and str(src) not in sys.path:
        sys.path.insert(0, str(src))

    if len(argv) != 1:
        print("usage: check_trace_schema.py TRACE.jsonl", file=sys.stderr)
        return 2
    path = Path(argv[0])
    if not path.exists():
        print(f"{path}: no such file", file=sys.stderr)
        return 2

    checked, errors = check_trace(path)
    if errors:
        for error in errors[:20]:
            print(error)
        if len(errors) > 20:
            print(f"... and {len(errors) - 20} more")
        print(f"\n{len(errors)} schema violations in {checked} events")
        return 1
    print(f"{path}: all {checked} events schema-valid")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
