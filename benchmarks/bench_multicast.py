"""Beyond-paper benchmark: in-scheduler multicast (reference [11] territory).

The paper handles multicast through the precalculated schedule; this
bench evaluates the alternative — scheduling multicast cells directly
with fanout splitting — comparing the least-residue-first rule (the LCF
idea generalised) against uniform random granting across fanout widths.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.tables import format_table
from repro.sim.multicast_switch import run_multicast

N = 16
LOAD = 0.25
FANOUTS = (2, 4, 8)


def test_multicast_policy_comparison(benchmark):
    def report():
        rows = []
        for max_fanout in FANOUTS:
            for policy in ("lcf", "random"):
                switch = run_multicast(
                    n=N, load=LOAD, policy=policy, max_fanout=max_fanout,
                    warmup_slots=500, measure_slots=2500,
                )
                rows.append(
                    {
                        "max_fanout": max_fanout,
                        "policy": policy,
                        "completion_latency": round(
                            switch.completion_latency.mean, 2
                        ),
                        "copies/slot": round(switch.copies_delivered / 2500, 2),
                        "cells_completed": switch.cells_completed,
                    }
                )
        print(f"\nMulticast scheduling (n={N}, load {LOAD}, fanout splitting):")
        print(format_table(rows))
        return rows

    rows = once(benchmark, report)
    by_key = {(row["max_fanout"], row["policy"]): row for row in rows}
    for max_fanout in FANOUTS:
        lcf = by_key[(max_fanout, "lcf")]
        rnd = by_key[(max_fanout, "random")]
        # The residue rule wins (or ties) at every fanout width.
        assert lcf["completion_latency"] <= rnd["completion_latency"] * 1.02, max_fanout


def test_multicast_switch_speed(benchmark):
    """Micro-benchmark: one multicast scheduling slot at n=16."""
    from repro.core.multicast import MulticastScheduler
    from repro.sim.multicast_switch import MulticastTraffic

    scheduler = MulticastScheduler(N)
    traffic = MulticastTraffic(N, 0.5, seed=9)
    heads = traffic.arrivals(0)
    benchmark(scheduler.schedule, heads)
