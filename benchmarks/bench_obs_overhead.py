"""Observability overhead: the disabled path must be (nearly) free.

The :mod:`repro.obs` contract is that a simulation with no tracer — or
with a :class:`~repro.obs.tracer.NullTracer`, which resolves to the
same code path — pays only the ``is not None`` guards in the switch's
step loop. ``test_disabled_path_overhead_budget`` turns that into a
hard assertion: the instrumented-but-disabled step loop must run within
2% of the uninstrumented one (min-of-repeats timing, retried to ride
out scheduler noise on shared CI hosts).

The remaining benchmarks are informational: what tracing *costs when
enabled*, for sizing trace windows before a big capture.
"""

from __future__ import annotations

import time

from benchmarks.conftest import BENCH_CONFIG
from repro.baselines.registry import make_scheduler
from repro.obs.metrics import MetricsRegistry
from repro.obs.serve import SnapshotExporter, effective_exporter
from repro.obs.tracer import NullTracer, RingTracer
from repro.sim.crossbar import InputQueuedSwitch
from repro.traffic.bernoulli import BernoulliUniform

#: Acceptance budget: disabled-path slowdown on the step loop.
MAX_DISABLED_OVERHEAD = 1.02

SLOTS = 400


def _run_slots(tracer=None, metrics=None, slots: int = SLOTS) -> float:
    """Seconds for ``slots`` steps of the 16-port bench crossbar."""
    switch = InputQueuedSwitch(
        BENCH_CONFIG,
        make_scheduler("lcf_central_rr", 16),
        tracer=tracer,
        metrics=metrics,
    )
    pattern = BernoulliUniform(16, 0.9, seed=1)
    arrivals = [pattern.arrivals() for _ in range(slots)]
    start = time.perf_counter()
    for slot in range(slots):
        switch.step(slot, arrivals[slot])
    return time.perf_counter() - start


def _min_of(repeats: int, tracer_factory) -> float:
    return min(_run_slots(tracer=tracer_factory()) for _ in range(repeats))


def test_disabled_path_overhead_budget():
    """A NullTracer run must be within 2% of an uninstrumented run.

    NullTracer resolves to ``tracer=None`` inside the switch, so the
    two sides execute structurally identical code — the assertion
    guards against anyone re-introducing per-event work on the
    disabled path. Min-of-repeats timing with a few retries keeps the
    check robust to transient load spikes.
    """
    for attempt in range(4):
        baseline = _min_of(5, lambda: None)
        disabled = _min_of(5, NullTracer)
        ratio = disabled / baseline
        if ratio <= MAX_DISABLED_OVERHEAD:
            return
    assert ratio <= MAX_DISABLED_OVERHEAD, (
        f"disabled-path instrumentation costs {ratio:.3f}x "
        f"(budget {MAX_DISABLED_OVERHEAD}x)"
    )


def test_disabled_exporter_overhead_budget(tmp_path):
    """A disabled SnapshotExporter must cost as much as none at all.

    ``effective_exporter`` resolves a disabled exporter to ``None``
    before the simulation driver's block loop, so — exactly like the
    NullTracer contract above — the per-slot path is structurally
    identical with and without one. The run here mimics the driver:
    ``tick`` is only ever reached when an exporter survives resolution.
    """

    def run_with(exporter) -> float:
        resolved = effective_exporter(exporter)
        switch = InputQueuedSwitch(
            BENCH_CONFIG, make_scheduler("lcf_central_rr", 16)
        )
        pattern = BernoulliUniform(16, 0.9, seed=1)
        arrivals = [pattern.arrivals() for _ in range(SLOTS)]
        start = time.perf_counter()
        for slot in range(SLOTS):
            switch.step(slot, arrivals[slot])
            if resolved is not None:
                resolved.tick(slot)
        return time.perf_counter() - start

    disabled = SnapshotExporter(
        MetricsRegistry(), tmp_path / "snap.prom", enabled=False
    )
    for attempt in range(4):
        baseline = min(run_with(None) for _ in range(5))
        gated = min(run_with(disabled) for _ in range(5))
        ratio = gated / baseline
        if ratio <= MAX_DISABLED_OVERHEAD:
            break
    assert ratio <= MAX_DISABLED_OVERHEAD, (
        f"disabled snapshot exporter costs {ratio:.3f}x "
        f"(budget {MAX_DISABLED_OVERHEAD}x)"
    )
    assert disabled.writes == 0 and not (tmp_path / "snap.prom").exists()


def test_step_loop_uninstrumented(benchmark):
    """Baseline: the bare step loop (reference for the ratios below)."""
    benchmark.pedantic(_run_slots, rounds=3, iterations=1)


def test_step_loop_ring_tracer(benchmark):
    """Enabled-path cost with an in-memory RingTracer attached."""
    benchmark.pedantic(
        lambda: _run_slots(tracer=RingTracer()), rounds=3, iterations=1
    )


def test_step_loop_metrics_only(benchmark):
    """Enabled-path cost with only a MetricsRegistry attached."""
    benchmark.pedantic(
        lambda: _run_slots(metrics=MetricsRegistry()), rounds=3, iterations=1
    )
