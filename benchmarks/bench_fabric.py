"""Fabric simulation throughput: slots/sec of the multi-stage engine.

The unit of work is one full fabric *slot* — every stage switch steps
once, boundary deliveries and credit returns are applied, and arrivals
are generated — so the rate here is directly comparable across fabric
sizes and engine variants. Two variants are measured per size, in the
``BENCH_speed.json`` cell format the perf gate already understands:

* ``reference`` — the serial engine on reference schedulers;
* ``fast`` — the same engine with every stage scheduler swapped for
  its :mod:`repro.fastpath` kernel (bit-identical results).

The committed baseline carries the ``fabric_clos`` family at 64 ports
(C(8,8,8), 24 switches) and 1024 ports (C(32,32,32), 96 switches, the
issue's >= 1024-port scale proof); CI re-measures the 64-port cell and
gates its speedup ratio with ``tools/check_bench_regression.py
--only fabric_clos``.

As a module: ``python benchmarks/bench_fabric.py --out fabric.json``
measures the suite; ``--merge BENCH_speed.json`` folds the family into
an existing report in place (preserving the scheduler families).
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from benchmarks.conftest import once
from repro.fabric.sim import run_fabric
from repro.fabric.spec import FabricSpec
from repro.sim.config import SimConfig

#: Family name under the report's ``schedulers`` mapping.
FABRIC_FAMILY = "fabric_clos"

#: Port counts the standard suite measures. 1024 = C(32,32,32), the
#: repo's at-scale proof point.
DEFAULT_SIZES = (64, 1024)

#: Slots per timing window (the issue's 1000-slot benchmark run).
DEFAULT_SLOTS = 1000

#: Scheduler every stage runs in the speed cells.
BENCH_SCHEDULER = "lcf_central_rr"


def fabric_spec(n_ports: int, slots: int, load: float = 0.8) -> FabricSpec:
    """The benchmark topology: a square Clos, warmup-free so every
    simulated slot is a measured slot."""
    return FabricSpec.square(
        n_ports,
        BENCH_SCHEDULER,
        load=load,
        config=SimConfig(n_ports=n_ports, warmup_slots=0, measure_slots=slots),
    )


def measure_cell(
    n_ports: int,
    slots: int = DEFAULT_SLOTS,
    repeats: int = 3,
    load: float = 0.8,
) -> dict[str, float]:
    """Reference vs fastpath fabric slot rates for one size."""
    spec = fabric_spec(n_ports, slots, load)
    rates: dict[bool, float] = {}
    for fast in (False, True):
        windows = []
        for _ in range(repeats):
            start = time.perf_counter()
            run_fabric(spec, fast=fast)
            windows.append(slots / (time.perf_counter() - start))
        rates[fast] = statistics.median(windows)
    return {
        "reference_slots_per_sec": round(rates[False], 1),
        "fast_slots_per_sec": round(rates[True], 1),
        "speedup": round(rates[True] / rates[False], 3),
    }


def run_fabric_suite(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    slots: int = DEFAULT_SLOTS,
    repeats: int = 3,
    progress=None,
) -> dict:
    """Measure every fabric cell; returns a ``BENCH_speed.json``-format
    report holding only the ``fabric_clos`` family."""
    from repro.fastpath.bench import REPORT_VERSION

    import platform

    cells: dict[str, dict] = {}
    for n_ports in sizes:
        cells[str(n_ports)] = cell = measure_cell(
            n_ports, slots=slots, repeats=repeats
        )
        if progress is not None:
            progress(
                f"{FABRIC_FAMILY:<16} n={n_ports:<5} "
                f"ref {cell['reference_slots_per_sec']:>8.1f}/s  "
                f"fast {cell['fast_slots_per_sec']:>8.1f}/s  "
                f"{cell['speedup']:.2f}x"
            )
    return {
        "version": REPORT_VERSION,
        "slots": slots,
        "repeats": repeats,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "schedulers": {FABRIC_FAMILY: cells},
    }


def merge_family(report_path: Path, suite: dict) -> None:
    """Fold the suite's families into an existing report file in place."""
    report = json.loads(report_path.read_text())
    report.setdefault("schedulers", {}).update(suite["schedulers"])
    report_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


# -- pytest benchmarks -------------------------------------------------------


def test_fabric_slot_rate(benchmark):
    """A C(8,8,8) fabric sustains a usable slot rate and the fastpath
    variant is no slower than the reference engine."""

    def report():
        cell = measure_cell(64, slots=250, repeats=1)
        print(
            f"\nfabric C(8,8,8) 64 ports: "
            f"ref {cell['reference_slots_per_sec']:.1f} slots/s, "
            f"fast {cell['fast_slots_per_sec']:.1f} slots/s "
            f"({cell['speedup']:.2f}x)"
        )
        return cell

    cell = once(benchmark, report)
    assert cell["reference_slots_per_sec"] > 0
    # The fast kernels must never make the fabric slower (generous
    # bound: timing noise on shared CI runners).
    assert cell["speedup"] > 0.7


def test_fabric_sharded_matches_serial(benchmark):
    """Sharded execution is bit-identical to serial at bench scale."""

    def report():
        spec = fabric_spec(64, 200)
        serial = run_fabric(spec)
        sharded = run_fabric(spec, shards=4)
        return serial, sharded

    serial, sharded = once(benchmark, report)
    assert serial.mean_latency == sharded.mean_latency
    assert serial.forwarded == sharded.forwarded
    assert serial.stage_forwards == sharded.stage_forwards


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure fabric slot rates in BENCH_speed.json format."
    )
    parser.add_argument("--sizes", default=None,
                        help=f"comma list of port counts (default "
                        f"{','.join(str(n) for n in DEFAULT_SIZES)})")
    parser.add_argument("--slots", type=int, default=DEFAULT_SLOTS)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--out", metavar="PATH", default=None,
                        help="write the fabric-only report here")
    parser.add_argument("--merge", metavar="PATH", default=None,
                        help="fold the family into an existing report file")
    args = parser.parse_args(argv)
    sizes = (
        tuple(int(part) for part in args.sizes.split(",") if part.strip())
        if args.sizes
        else DEFAULT_SIZES
    )
    suite = run_fabric_suite(
        sizes=sizes, slots=args.slots, repeats=args.repeats, progress=print
    )
    if args.out:
        Path(args.out).write_text(
            json.dumps(suite, indent=2, sort_keys=True) + "\n"
        )
        print(f"fabric report written to {args.out}")
    if args.merge:
        merge_family(Path(args.merge), suite)
        print(f"fabric family merged into {args.merge}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
