"""Ablation: scheduler pipelining (paper Section 1).

"By pipelining the scheduler and overlapping scheduling and packet
forwarding, packet throughput is optimized. Note that these techniques
do not reduce latency and that the scheduling latency adds to the
overall switch forwarding latency."

We sweep the pipeline depth of the LCF-scheduled crossbar and measure
both sides of that sentence: throughput must be depth-independent,
latency must grow by the depth. (The Clint bulk channel is this switch
at depth 1.)
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import once
from repro.analysis.tables import format_table
from repro.core.lcf_central import LCFCentralRR
from repro.sim.config import SimConfig
from repro.sim.pipelined import PipelinedSwitch
from repro.traffic.bernoulli import BernoulliUniform

DEPTHS = (0, 1, 2, 4)
CONFIG = SimConfig(
    n_ports=16, voq_capacity=256, pq_capacity=1000,
    warmup_slots=300, measure_slots=1500,
)


def _run(depth: int, load: float):
    switch = PipelinedSwitch(CONFIG, LCFCentralRR(16), depth)
    pattern = BernoulliUniform(16, load, seed=CONFIG.seed)
    for slot in range(CONFIG.total_slots):
        if slot == CONFIG.warmup_slots:
            switch.measuring = True
        switch.step(slot, pattern.arrivals())
    return (
        switch.latency.mean,
        switch.forwarded / (16 * CONFIG.measure_slots),
    )


def test_pipeline_depth_ablation(benchmark):
    def report():
        rows = []
        for depth in DEPTHS:
            low_lat, low_tp = _run(depth, 0.2)
            high_lat, high_tp = _run(depth, 0.9)
            rows.append(
                {
                    "depth": depth,
                    "latency@0.2": round(low_lat, 2),
                    "latency@0.9": round(high_lat, 2),
                    "throughput@0.9": round(high_tp, 3),
                }
            )
        print("\nAblation: scheduling pipeline depth (lcf_central_rr, n=16)")
        print(format_table(rows))
        return rows

    rows = once(benchmark, report)
    by_depth = {row["depth"]: row for row in rows}

    # Throughput is depth-independent.
    throughputs = [row["throughput@0.9"] for row in rows]
    assert max(throughputs) - min(throughputs) < 0.02
    # At low load, latency grows by exactly the depth.
    base = by_depth[0]["latency@0.2"]
    for depth in DEPTHS[1:]:
        assert by_depth[depth]["latency@0.2"] == pytest.approx(
            base + depth, abs=0.2
        )
    # At high load the penalty persists.
    assert by_depth[4]["latency@0.9"] > by_depth[0]["latency@0.9"]
