"""Resilience benchmark: degradation curves under control-plane faults.

The paper evaluates LCF on a healthy fabric; this benchmark asks how
gracefully each scheduler degrades when the fabric is not healthy:

* **message loss** — request/grant/accept messages dropped with uniform
  probability. The distributed LCF protocol retries lost handshakes on
  later iterations, so throughput should degrade smoothly rather than
  collapse.
* **port availability** — duty-cycled port outages averaging a target
  availability, exercising the degraded-mode masking, fault/recovery
  events, and backlog drain.

Both axes run through the parallel sweep engine (set
``LCF_BENCH_WORKERS=4`` to fan out; a ``LCF_BENCH_CACHE`` directory
enables the result cache). The zero-fault point of each curve is
asserted equal to a plain fault-free run — the resilience harness adds
*nothing* to the healthy path, so its baseline reproduces the Figure 12
numbers exactly.
"""

from __future__ import annotations

import os

from benchmarks.conftest import BENCH_CONFIG, once
from repro.analysis.tables import format_table
from repro.faults.harness import run_availability_sweep, run_loss_sweep
from repro.sim.simulator import run_simulation

LOSS_SCHEDULERS = ("lcf_dist", "lcf_dist_rr", "pim", "islip")
LOSS_GRID = (0.0, 0.1, 0.3, 0.5)
AVAIL_SCHEDULERS = ("lcf_central_rr", "lcf_dist_rr", "islip")
AVAIL_GRID = (1.0, 0.95, 0.9, 0.8)
LOAD = 0.8


def _workers() -> int:
    return int(os.environ.get("LCF_BENCH_WORKERS", "1"))


def _cache() -> str | None:
    return os.environ.get("LCF_BENCH_CACHE") or None


def test_message_loss_degradation(benchmark):
    """Throughput/latency versus control-message loss probability."""

    def report():
        result = run_loss_sweep(
            LOSS_SCHEDULERS,
            rates=LOSS_GRID,
            load=LOAD,
            config=BENCH_CONFIG,
            processes=_workers(),
            cache=_cache(),
        )
        print()
        print(result.plot(metric="throughput"))
        print()
        print(result.plot(metric="mean_latency"))
        print()
        print(
            format_table(
                result.rows(),
                columns=[
                    "scheduler",
                    "message_loss",
                    "throughput",
                    "mean_latency",
                    "delivery",
                    "throughput_vs_baseline",
                ],
            )
        )
        print()
        print(result.summary())
        return result

    result = once(benchmark, report)

    # The zero-fault point must reproduce the plain (Figure 12 style)
    # run bit for bit — the fault layer is absent, not merely inert.
    for name in LOSS_SCHEDULERS:
        plain = run_simulation(BENCH_CONFIG, name, LOAD)
        assert result.get(name, 0.0).row() == plain.row(), name

    # Graceful degradation: every scheduler still moves traffic at 50%
    # loss, and throughput is monotone non-increasing within noise.
    for name in LOSS_SCHEDULERS:
        curve = [result.get(name, rate).throughput for rate in LOSS_GRID]
        assert curve[-1] > 0.2, (name, curve)
        assert curve[-1] <= curve[0] + 0.02, (name, curve)


def test_port_availability_degradation(benchmark):
    """Throughput/latency versus mean port availability."""

    def report():
        result = run_availability_sweep(
            AVAIL_SCHEDULERS,
            availabilities=AVAIL_GRID,
            load=LOAD,
            config=BENCH_CONFIG,
            processes=_workers(),
            cache=_cache(),
        )
        print()
        print(result.plot(metric="throughput"))
        print()
        print(
            format_table(
                result.rows(),
                columns=[
                    "scheduler",
                    "availability",
                    "throughput",
                    "mean_latency",
                    "delivery",
                    "throughput_vs_baseline",
                ],
            )
        )
        print()
        print(result.summary())
        return result

    result = once(benchmark, report)

    for name in AVAIL_SCHEDULERS:
        plain = run_simulation(BENCH_CONFIG, name, LOAD)
        assert result.get(name, 1.0).row() == plain.row(), name
        # At 80% availability throughput cannot exceed what the duty
        # cycle leaves, but the backlog drain should keep it close.
        degraded = result.get(name, 0.8).throughput
        healthy = result.get(name, 1.0).throughput
        assert degraded <= healthy + 0.02, name
        assert degraded > 0.4 * healthy, (name, degraded, healthy)
