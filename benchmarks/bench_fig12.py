"""Experiment fig12a / fig12b: mean queueing delay versus load for the
nine schedulers of Figure 12, absolute and relative to outbuf.

Regenerates both plots (ASCII + data table) on a reduced grid and
asserts the Section 6.3 qualitative claims. The paper's exact setup
(16 ports, VOQ 256, PQ 1000, 4 iterations, uniform Bernoulli) is kept;
only the measurement window and load grid are shortened.

The grid is executed by the :mod:`repro.sweep` engine. It runs serially
by default so the benchmark numbers stay comparable; set
``LCF_BENCH_WORKERS=4`` to fan the points out over worker processes
(the statistics are identical — every point is a pure function of its
seed).
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import BENCH_CONFIG, BENCH_LOADS, once
from repro.analysis.sweep import (
    SweepSpec,
    check_paper_shape,
    run_sweep,
    shape_report,
)
from repro.analysis.tables import format_table
from repro.baselines.registry import PAPER_SCHEDULERS


@pytest.fixture(scope="module")
def fig12_sweep():
    spec = SweepSpec(
        schedulers=PAPER_SCHEDULERS, loads=BENCH_LOADS, config=BENCH_CONFIG
    )
    return run_sweep(spec, processes=int(os.environ.get("LCF_BENCH_WORKERS", "1")))


def test_fig12a_absolute_latency(benchmark, fig12_sweep):
    """Figure 12a: simulated latencies (reduced grid)."""

    def report():
        print()
        print(fig12_sweep.plot(relative=False))
        print()
        print(
            format_table(
                fig12_sweep.rows(),
                columns=["scheduler", "load", "mean_latency", "throughput"],
            )
        )
        return fig12_sweep

    once(benchmark, report)


def test_fig12b_relative_latency(benchmark, fig12_sweep):
    """Figure 12b: latency relative to output buffering."""

    def report():
        print()
        print(fig12_sweep.plot(relative=True))
        rows = []
        for name in PAPER_SCHEDULERS:
            if name == "outbuf":
                continue
            loads, ratios = fig12_sweep.relative_series(name)
            rows.append(
                {"scheduler": name}
                | {f"load {load}": round(r, 2) for load, r in zip(loads, ratios)}
            )
        print()
        print(format_table(rows))
        return rows

    once(benchmark, report)


def test_fig12_shape_claims(benchmark, fig12_sweep):
    """The reproduction criteria: orderings and crossovers of Section 6.3."""

    def check():
        checks = check_paper_shape(fig12_sweep)
        print()
        print(shape_report(checks))
        return checks

    checks = once(benchmark, check)
    failed = [c for c in checks if not c.passed]
    assert not failed, "\n".join(f"{c.claim}: {c.detail}" for c in failed)


def test_lcf_central_vs_outbuf_ratio(benchmark, fig12_sweep):
    """Paper: 'For high load, the latency for lcf_central is about 1.4
    times the latency of outbuf.'"""

    def ratio():
        high = fig12_sweep.get("lcf_central", 0.9).mean_latency
        reference = fig12_sweep.get("outbuf", 0.9).mean_latency
        value = high / reference
        print(f"\nlcf_central / outbuf latency at load 0.9: {value:.2f} (paper ~1.4)")
        return value

    value = once(benchmark, ratio)
    assert 1.0 <= value <= 2.0
