"""Experiment: iteration convergence of the iterative schedulers.

Underpins both the Section 6.2 O(log2 n) claim and this reproduction's
grant-concentration finding: the per-iteration matching fraction for
lcf_dist / pim / islip at sparse and dense request densities.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.convergence import convergence_table
from repro.analysis.tables import format_table

N = 16
SCHEDULERS = ("lcf_dist", "pim", "islip")


def test_convergence_curves(benchmark):
    def report():
        tables = {}
        for density in (0.15, 0.5, 0.8):
            rows = convergence_table(SCHEDULERS, n=N, density=density,
                                     samples=40, seed=5)
            tables[density] = {row["scheduler"]: row for row in rows}
            print(f"\nMatching fraction vs iterations (n={N}, density {density}):")
            print(format_table(rows))
        return tables

    tables = once(benchmark, report)

    for density, by_name in tables.items():
        for name in SCHEDULERS:
            # Iterations converge to a *maximal* matching, which can sit
            # below the maximum — but never below half of it, and in
            # practice well above 80%.
            assert by_name[name]["iter 8"] > 0.8, (density, name)
        # LCF's headline property, quantified: the maximal matchings the
        # least-choice order converges to are closer to the maximum than
        # PIM's or iSLIP's, at every density.
        assert by_name["lcf_dist"]["iter 8"] >= by_name["pim"]["iter 8"], density
        assert by_name["lcf_dist"]["iter 8"] >= by_name["islip"]["iter 8"], density
    # The two open-loop regimes (see EXPERIMENTS.md): priorities win in
    # one iteration when sparse; grant concentration loses when dense.
    assert tables[0.15]["lcf_dist"]["iter 1"] > tables[0.15]["pim"]["iter 1"]
    assert tables[0.8]["lcf_dist"]["iter 1"] < tables[0.8]["pim"]["iter 1"]
