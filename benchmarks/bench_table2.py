"""Experiment tab2: scheduling-task cycle counts and times (Table 2,
Section 6.1), cross-validated against the register-level model.

The analytic decomposition (2n+1 / 3n+2 / 5n+3 cycles at 66 MHz) must
match the paper, and the RTL simulation of Figure 6 must take exactly
those cycle counts when actually scheduling.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once
from repro.analysis.tables import format_table
from repro.hw.rtl import LCFSchedulerRTL
from repro.hw.timing import table2

PAPER_TABLE2 = [
    ("Check prec. schedule", 33, 500),
    ("Calculate LCF schedule", 50, 758),
    ("Total", 83, 1258),
]


def test_table2_reproduction(benchmark):
    def report():
        rows = table2(16)
        print("\nTable 2: Scheduling Tasks (n=16, 66 MHz)")
        print(
            format_table(
                [
                    {
                        "task": r.task,
                        "decomposition": r.decomposition,
                        "clock cycles": r.cycles,
                        "time [ns]": r.time_ns,
                    }
                    for r in rows
                ]
            )
        )
        return rows

    rows = once(benchmark, report)
    assert [(r.task, r.cycles, r.time_ns) for r in rows] == PAPER_TABLE2


def test_rtl_cycle_counts_match_table2(benchmark):
    """The RTL model must *execute* in the Table 2 cycle counts."""

    def measure():
        rtl = LCFSchedulerRTL(16)
        requests = np.ones((16, 16), dtype=bool)
        rtl.schedule_with_precalc(requests, np.zeros((16, 16), dtype=bool))
        total = rtl.last_cycles
        rtl.schedule(requests)
        lcf_only = rtl.last_cycles
        print(f"\nRTL cycles: total={total} (paper 83), LCF-only={lcf_only} (paper 50)")
        return total, lcf_only

    total, lcf_only = once(benchmark, measure)
    assert total == 83
    assert lcf_only == 50


def test_rtl_scheduling_speed(benchmark, dense_requests):
    """Micro-benchmark: one RTL scheduling cycle at n=16 (the software
    model of what the FPGA does in 758 ns)."""
    rtl = LCFSchedulerRTL(16)
    schedule = benchmark(rtl.schedule, dense_requests)
    assert schedule.shape == (16,)
