"""Ablation: the round-robin coverage family (Section 3).

DESIGN.md calls out the throughput/fairness dial the paper describes:
pure LCF (fraction 0) -> single position / diagonal (b/n^2) -> whole
diagonal first (b/n). This bench quantifies both sides of the trade:
queueing delay under uniform load, and guaranteed minimum service under
saturation.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_CONFIG, once
from repro.analysis.fairness import starvation_report
from repro.analysis.tables import format_table
from repro.core.lcf_central import RRCoverage
from repro.core.rr_variants import guaranteed_fraction, make_variant
from repro.sim.crossbar import InputQueuedSwitch
from repro.traffic.bernoulli import BernoulliUniform

COVERAGES = (
    RRCoverage.NONE,
    RRCoverage.SINGLE,
    RRCoverage.DIAGONAL,
    RRCoverage.DIAGONAL_FIRST,
)
LOAD = 0.95
N = 16


def _simulate(coverage: RRCoverage) -> float:
    config = BENCH_CONFIG
    switch = InputQueuedSwitch(config, make_variant(N, coverage))
    pattern = BernoulliUniform(N, LOAD, seed=config.seed)
    for slot in range(config.total_slots):
        if slot == config.warmup_slots:
            switch.measuring = True
        switch.step(slot, pattern.arrivals())
    return switch.latency.mean


def test_rr_coverage_ablation(benchmark):
    def report():
        rows = []
        for coverage in COVERAGES:
            scheduler = make_variant(N, coverage)
            fairness = starvation_report(scheduler)  # saturated, n^2 cycles
            rows.append(
                {
                    "coverage": coverage.value,
                    "guaranteed_fraction": guaranteed_fraction(coverage, N),
                    "latency@0.95": round(_simulate(coverage), 2),
                    "min_service_rate": round(fairness.min_rate, 5),
                    "jain": round(fairness.jain, 3),
                }
            )
        print(f"\nAblation: RR coverage (n={N}, load {LOAD}, saturation fairness)")
        print(format_table(rows))
        return rows

    rows = once(benchmark, report)
    by_coverage = {row["coverage"]: row for row in rows}

    # Fairness side: guaranteed minimum service materialises for every
    # coverage with a bound; pure LCF offers none under saturation.
    for coverage in ("single", "diagonal", "diagonal_first"):
        assert (
            by_coverage[coverage]["min_service_rate"]
            >= by_coverage[coverage]["guaranteed_fraction"] - 1e-9
        )
    # Throughput side: the heavier the overlay, the (weakly) worse the
    # delay at high uniform load.
    assert (
        by_coverage["none"]["latency@0.95"]
        <= by_coverage["diagonal_first"]["latency@0.95"] * 1.05
    )
    # Jain fairness improves monotonically along the dial.
    assert by_coverage["diagonal_first"]["jain"] >= by_coverage["none"]["jain"]
