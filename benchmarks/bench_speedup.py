"""Ablation: fabric speedup (CIOQ) closes the Figure 12 gap to outbuf.

Figure 12 shows lcf_central ~1.3-1.4x the latency of the output-buffered
reference at high load. That gap is an architectural property of
speedup-1 input queueing, not of the scheduler: this bench shows a CIOQ
switch with speedup 2 running the same LCF scheduler lands on top of
the outbuf curve.
"""

from __future__ import annotations

from benchmarks.conftest import BENCH_CONFIG, once
from repro.analysis.tables import format_table
from repro.core.lcf_central import LCFCentralRR
from repro.sim.cioq import CIOQSwitch
from repro.sim.simulator import run_simulation
from repro.traffic.bernoulli import BernoulliUniform

SPEEDUPS = (1, 2, 3)
LOADS = (0.7, 0.9, 0.95)


def _run_cioq(speedup: int, load: float) -> float:
    config = BENCH_CONFIG
    switch = CIOQSwitch(config, LCFCentralRR(config.n_ports), speedup)
    pattern = BernoulliUniform(config.n_ports, load, seed=config.seed)
    for slot in range(config.total_slots):
        if slot == config.warmup_slots:
            switch.measuring = True
        switch.step(slot, pattern.arrivals())
    return switch.latency.mean


def test_speedup_ablation(benchmark):
    def report():
        outbuf = {
            load: run_simulation(BENCH_CONFIG, "outbuf", load).mean_latency
            for load in LOADS
        }
        rows = []
        for speedup in SPEEDUPS:
            row: dict[str, object] = {"speedup": speedup}
            for load in LOADS:
                row[f"latency@{load}"] = round(_run_cioq(speedup, load), 2)
            rows.append(row)
        rows.append(
            {"speedup": "outbuf"}
            | {f"latency@{load}": round(outbuf[load], 2) for load in LOADS}
        )
        print("\nAblation: CIOQ fabric speedup (lcf_central_rr, n=16)")
        print(format_table(rows))
        return rows, outbuf

    rows, outbuf = once(benchmark, report)
    by_speedup = {row["speedup"]: row for row in rows}
    # Speedup 1 shows the Figure 12 gap; speedup 2 closes it to <15%.
    assert by_speedup[1]["latency@0.9"] > 1.15 * outbuf[0.9]
    assert by_speedup[2]["latency@0.9"] < 1.15 * outbuf[0.9]
    # Monotone improvement.
    assert (
        by_speedup[1]["latency@0.9"]
        >= by_speedup[2]["latency@0.9"]
        >= by_speedup[3]["latency@0.9"] * 0.9
    )
