"""Experiment: the Section 6.3 VOQ-leveling conjecture, quantified.

The paper explains the load>0.9 crossover between lcf_central and
lcf_central_rr with an untested hypothesis about VOQ length leveling.
This bench measures the three quantities the hypothesis is about —
occupancy dispersion, drained-VOQ fraction, and scheduler choice — and
confirms the mechanism.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.tables import format_table
from repro.analysis.voq_dynamics import measure_voq_dynamics
from repro.sim.config import SimConfig

CONFIG = SimConfig(n_ports=16, voq_capacity=256, pq_capacity=1000,
                   warmup_slots=1000, measure_slots=5000)
LOADS = (0.9, 0.95, 1.0)


def test_voq_leveling_mechanism(benchmark):
    def report():
        rows = []
        for load in LOADS:
            for name in ("lcf_central", "lcf_central_rr"):
                d = measure_voq_dynamics(CONFIG, name, load)
                rows.append(
                    {
                        "load": load,
                        "scheduler": name,
                        "occupancy_cv": round(d.occupancy_cv, 3),
                        "drained_frac": round(d.drained_fraction, 3),
                        "mean_choice": round(d.mean_choice, 2),
                        "latency": round(d.mean_latency, 2),
                    }
                )
        print("\nVOQ leveling (Section 6.3 conjecture), n=16:")
        print(format_table(rows))
        return rows

    rows = once(benchmark, report)
    by_key = {(row["load"], row["scheduler"]): row for row in rows}
    for load in LOADS:
        pure = by_key[(load, "lcf_central")]
        rr = by_key[(load, "lcf_central_rr")]
        # The three predictions of the hypothesis, at every high load:
        assert rr["occupancy_cv"] < pure["occupancy_cv"], load
        assert rr["drained_frac"] < pure["drained_frac"], load
        assert rr["mean_choice"] > pure["mean_choice"], load
