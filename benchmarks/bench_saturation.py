"""Saturation throughput: the classic summary table of the field.

Offered load 1.0 on every input; the delivered fraction of output
bandwidth separates the architectures: FIFO collapses to the
Karol/Hluchyj/Morgan limit 2-sqrt(2) ~ 0.586 (the paper's reference
[8]), every maximal-matching VOQ scheduler approaches 1.0 under uniform
traffic, and nonuniform patterns spread the field.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.tables import format_table
from repro.analysis.throughput import FIFO_SATURATION_LIMIT, saturation_table
from repro.sim.config import SimConfig

SCHEDULERS = (
    "lcf_central", "lcf_central_rr", "lcf_dist", "pim", "islip",
    "wfront", "fifo", "outbuf",
)
CONFIG = SimConfig(
    n_ports=16, voq_capacity=64, pq_capacity=64,
    warmup_slots=800, measure_slots=3000,
)


def test_uniform_saturation_table(benchmark):
    def report():
        rows = saturation_table(SCHEDULERS, CONFIG)
        print("\nSaturation throughput, uniform Bernoulli load 1.0 (n=16):")
        print(format_table(rows))
        return {row["scheduler"]: row["saturation_throughput"] for row in rows}

    throughput = once(benchmark, report)
    assert abs(throughput["fifo"] - FIFO_SATURATION_LIMIT) < 0.06
    for name in ("lcf_central", "islip", "wfront", "lcf_dist"):
        assert throughput[name] > 0.93, name
    # LCF is at least as good as the round-robin schedulers.
    assert throughput["lcf_central"] >= throughput["islip"] - 0.01


def test_diagonal_saturation_table(benchmark):
    """Nonuniform stress: diagonal traffic concentrates demand on two
    inputs per output with a 2:1 skew."""

    def report():
        rows = saturation_table(
            ("lcf_central", "islip", "wfront", "pim"), CONFIG, traffic="diagonal"
        )
        print("\nSaturation throughput, diagonal traffic (n=16):")
        print(format_table(rows))
        return {row["scheduler"]: row["saturation_throughput"] for row in rows}

    throughput = once(benchmark, report)
    for name, value in throughput.items():
        assert value > 0.7, name
