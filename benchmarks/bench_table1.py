"""Experiment tab1: gate and register counts of the LCF scheduler
implementation (Table 1, Section 6.1).

The cost model's n=16 output must equal the paper's published counts
exactly; the benchmark also reports the scaling the paper argues about
in Section 6.2 (per-slice cost linear in n, total quadratic).
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.tables import format_table
from repro.hw.cost import cost_report, fpga_utilisation, table1

PAPER_TABLE1 = {
    "gates": {"distributed": 7200, "central": 767, "total": 7967},
    "registers": {"distributed": 1376, "central": 216, "total": 1592},
}


def test_table1_reproduction(benchmark):
    """Regenerate Table 1 and check it against the paper bit for bit."""

    def report():
        rows = table1(16)
        print("\nTable 1: Gate Count and Register Count of the LCF Scheduler (n=16)")
        print(format_table(rows))
        print(f"Estimated XCV600 utilisation: {fpga_utilisation(16):.0%} (paper: 15%)")
        return rows

    rows = once(benchmark, report)
    for row in rows:
        expected = PAPER_TABLE1[str(row["count"])]
        for key, value in expected.items():
            assert row[key] == value, (row["count"], key)


def test_cost_scaling(benchmark):
    """Beyond the paper: the model's scaling from 4 to 1024 ports."""

    def report():
        rows = []
        for n in (4, 8, 16, 32, 64, 128, 256, 512, 1024):
            r = cost_report(n)
            rows.append(
                {
                    "n": n,
                    "slice_gates": r.distributed_gates // n,
                    "total_gates": r.total_gates,
                    "total_registers": r.total_registers,
                }
            )
        print("\nCost model scaling (central LCF scheduler):")
        print(format_table(rows))
        return rows

    rows = once(benchmark, report)
    # Total cost is quadratic: 64 ports must cost more than 4x 16 ports.
    by_n = {row["n"]: row for row in rows}
    assert by_n[64]["total_gates"] > 4 * by_n[16]["total_gates"]


def test_cost_model_speed(benchmark):
    """Micro-benchmark: the model itself is O(1) arithmetic."""
    result = benchmark(cost_report, 16)
    assert result.total_gates == 7967
