"""Beyond-paper benchmark: scheduler behaviour under nonuniform and
bursty traffic.

The paper evaluates uniform Bernoulli traffic only; these are the
standard stress patterns from the input-queued switching literature.
They probe whether LCF's least-choice rule — tuned to break uniform
contention — survives skew (hotspot), structural asymmetry (diagonal)
and temporal correlation (bursty arrivals).

Each scenario is one :class:`~repro.sweep.SweepSpec` grid executed by
the :mod:`repro.sweep` engine (serially here, for stable benchmark
numbers — the per-point results are identical at any worker count).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_CONFIG, once
from repro.analysis.tables import format_table
from repro.sweep import ParallelRunner, SweepSpec

SCHEDULERS = ("lcf_central", "lcf_central_rr", "lcf_dist", "pim", "islip", "wfront")

SCENARIOS = {
    # name: (traffic, load, kwargs)
    "hotspot": ("hotspot", 0.5, {"fraction": 0.3}),
    "diagonal": ("diagonal", 0.85, {}),
    "bursty": ("bursty", 0.8, {"mean_burst": 16}),
}


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_nonuniform_scenario(benchmark, scenario):
    traffic, load, kwargs = SCENARIOS[scenario]

    def report():
        spec = SweepSpec(
            schedulers=SCHEDULERS,
            loads=(load,),
            config=BENCH_CONFIG,
            traffic=traffic,
            traffic_kwargs=tuple(kwargs.items()),
        )
        run = ParallelRunner(workers=1).run(spec)
        rows = []
        for name in SCHEDULERS:
            result = run.get(name, load)
            rows.append(
                {
                    "scheduler": name,
                    "mean_latency": round(result.mean_latency, 2),
                    "throughput": round(result.throughput, 3),
                    "dropped": result.dropped,
                }
            )
        print(f"\n{scenario} traffic (load {load}): ")
        print(format_table(rows))
        return {row["scheduler"]: row for row in rows}

    rows = once(benchmark, report)

    # Universal sanity: everything keeps forwarding.
    for name in SCHEDULERS:
        assert rows[name]["throughput"] > 0.2, name
    # LCF central remains competitive (within 2x of the best) on every
    # scenario — the design claim is robustness, not uniform-only tuning.
    best = min(rows[name]["mean_latency"] for name in SCHEDULERS)
    assert rows["lcf_central"]["mean_latency"] <= 2.0 * best
