"""Adaptive benchmark: what fault-reactive scheduling wins back.

PR 3's resilience benchmark measured how schedulers degrade when an
oracle masks faulted crosspoints out of their requests (the *informed*
stance). This benchmark drops the oracle: both stances here are
fault-blind — the scheduler sees every request, and grants over dead
crosspoints are silently wasted by the fabric gate. The *oblivious*
stance keeps wasting them; the *adaptive* stance
(:class:`repro.adapt.AdaptiveLCF`) learns dead crosspoints from the
wasted grants and steers choice counts around them.

Asserted, not just printed:

* at availability 1.0 both stances are **bit-identical** to a plain
  fault-free run (no faults → nothing learned → no filtering);
* at the two heavily degraded grid points (0.9, 0.8) the adaptive
  stance **strictly dominates** the oblivious one — lower mean delay
  *and* at-least-equal throughput — for every benchmarked scheduler;
* detections happen, and fast: mean detection latency stays within a
  couple of port-detection windows.

Set ``LCF_BENCH_WORKERS=4`` to fan out; ``LCF_BENCH_CACHE`` enables the
result cache.
"""

from __future__ import annotations

import os

from benchmarks.conftest import BENCH_CONFIG, once
from repro.adapt import AdaptConfig, AdaptiveLCF
from repro.analysis.tables import format_table
from repro.faults.harness import run_adaptive_sweep
from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.sim.simulator import run_simulation

SCHEDULERS = ("lcf_central_rr", "lcf_dist_rr")
AVAIL_GRID = (1.0, 0.95, 0.9, 0.8)
#: Grid points where reactive scheduling must strictly dominate: the
#: heavy-degradation end, where outages outlive the detection window.
DOMINATED_POINTS = (0.9, 0.8)
LOAD = 0.7


def _workers() -> int:
    return int(os.environ.get("LCF_BENCH_WORKERS", "1"))


def _cache() -> str | None:
    return os.environ.get("LCF_BENCH_CACHE") or None


def test_reactive_vs_oblivious(benchmark):
    """Adaptive recovers throughput/delay the oblivious stance wastes."""

    def report():
        result = run_adaptive_sweep(
            SCHEDULERS,
            availabilities=AVAIL_GRID,
            load=LOAD,
            config=BENCH_CONFIG,
            processes=_workers(),
            cache=_cache(),
        )
        print()
        print(
            format_table(
                result.rows(),
                columns=[
                    "scheduler",
                    "availability",
                    "stance",
                    "throughput",
                    "mean_latency",
                    "recovered",
                ],
            )
        )
        print()
        print(result.summary())
        return result

    result = once(benchmark, report)

    for name in SCHEDULERS:
        # Zero-fault point: both stances bit-identical to a plain run —
        # the adaptive layer is absent from the healthy path, not
        # merely quiet.
        plain = run_simulation(BENCH_CONFIG, name, LOAD)
        assert result.oblivious[(name, 1.0)].row() == plain.row(), name
        assert result.adaptive[(name, 1.0)].row() == plain.row(), name

        # Strict dominance at the heavy-degradation points.
        for availability in DOMINATED_POINTS:
            blind = result.oblivious[(name, availability)]
            adaptive = result.adaptive[(name, availability)]
            assert adaptive.mean_latency < blind.mean_latency, (
                name, availability, adaptive.mean_latency, blind.mean_latency,
            )
            assert adaptive.throughput >= blind.throughput, (
                name, availability, adaptive.throughput, blind.throughput,
            )


def test_detection_latency(benchmark):
    """The estimator detects injected outages quickly and cleanly."""

    def run():
        metrics = MetricsRegistry()
        adapter = AdaptiveLCF(AdaptConfig())
        plan = FaultPlan.availability(
            BENCH_CONFIG.n_ports, 0.9, period=400
        )
        result = run_simulation(
            BENCH_CONFIG, "lcf_central_rr", LOAD,
            faults=plan, adapter=adapter, metrics=metrics,
        )
        hist = metrics.histogram(
            "detection_latency",
            (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
        )
        print()
        print(adapter.summary())
        print(
            f"detection latency: mean {hist.mean:.1f} slot(s) over "
            f"{hist.count} detection(s); "
            f"false positives {adapter.estimator.false_positives}"
        )
        return result, adapter, hist

    _, adapter, hist = once(benchmark, run)
    estimator = adapter.estimator
    config = estimator.config

    # Outages are detected, and detected while they still matter: the
    # availability plan's duty cycle keeps each port down for
    # period * (1 - availability) = 40 consecutive slots, and the mean
    # detection (wall-clock slots from outage start to suspect, across
    # both port-level and slower per-crosspoint detections) lands well
    # inside that. The precise window-count bounds are property-tested
    # in tests/adapt/ under a controlled single-flow load.
    outage_length = 400 * (1 - 0.9)
    assert hist.count > 0
    assert hist.mean < outage_length, hist.mean
    assert config.detection_window <= hist.mean  # sanity: not oracle-fast
    # Evidence-based suspicion never fired on a healthy crosspoint.
    assert estimator.false_positives == 0
