"""Replicate-batching throughput: the columnar engine vs serial runs.

Measures whole replicate blocks — R replicates of one (scheduler,
load, n) cell — through :func:`repro.columnar.run.run_replicates`, once
on the columnar engine and once as R fast serial runs, and reports
replicate-slots per second for both plus their ratio. The families
(``columnar_<scheduler>_r<R>``) merge into the committed
``BENCH_speed.json`` baseline and gate in CI next to the kernel
families; the acceptance claim is >= 3x for ``lcf_central_rr`` at
R=32, n=64.

Run as a script to (re)generate the columnar cells of the baseline::

    PYTHONPATH=src python benchmarks/bench_columnar.py BENCH_speed.json

Families already in the output file that this suite does not measure
(the kernel and fabric families) are preserved.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.columnar.bench import (
    DEFAULT_COLUMNAR_SIZES,
    DEFAULT_MEASURE_SLOTS,
    DEFAULT_REPLICATES,
    DEFAULT_WARMUP_SLOTS,
    run_columnar_suite,
)
from repro.fastpath.bench import write_report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("out", nargs="?", default="BENCH_speed.json")
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=list(DEFAULT_COLUMNAR_SIZES),
        help="switch widths per cell",
    )
    parser.add_argument(
        "--replicates", type=int, nargs="+", default=list(DEFAULT_REPLICATES),
        help="replicate counts (one family per scheduler x R)",
    )
    parser.add_argument(
        "--warmup-slots", type=int, default=DEFAULT_WARMUP_SLOTS,
        help="simulation warmup slots at the anchor width",
    )
    parser.add_argument(
        "--measure-slots", type=int, default=DEFAULT_MEASURE_SLOTS,
        help="simulation measure slots at the anchor width",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing windows per cell (median is reported)",
    )
    args = parser.parse_args(argv)

    report = run_columnar_suite(
        replicates=tuple(args.replicates),
        sizes=tuple(args.sizes),
        warmup_slots=args.warmup_slots,
        measure_slots=args.measure_slots,
        repeats=args.repeats,
        progress=print,
    )
    out_path = Path(args.out)
    if out_path.exists():
        previous = json.loads(out_path.read_text()).get("schedulers", {})
        for family, cells in previous.items():
            report["schedulers"].setdefault(family, cells)
    write_report(report, args.out)
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
