"""Ablation: iteration count for the iterative schedulers.

The paper fixes 4 iterations for pim / lcf_dist / lcf_dist_rr
(Section 6.3) and argues O(log2 n) iterations suffice (Section 6.2) —
log2(16) = 4. This ablation sweeps the iteration count at high load and
shows (a) latency improves steeply from 1 to ~log2 n iterations and
(b) saturates beyond, justifying the paper's choice.
"""

from __future__ import annotations

import math

from benchmarks.conftest import BENCH_CONFIG, once
from repro.analysis.tables import format_table
from repro.sim.simulator import run_simulation

ITERATION_GRID = (1, 2, 3, 4, 6, 8)
LOAD = 0.9


def _latency(name: str, iterations: int) -> float:
    config = BENCH_CONFIG.with_(iterations=iterations)
    return run_simulation(config, name, LOAD).mean_latency


def test_iteration_ablation(benchmark):
    def report():
        rows = []
        for iterations in ITERATION_GRID:
            rows.append(
                {
                    "iterations": iterations,
                    "lcf_dist": round(_latency("lcf_dist", iterations), 2),
                    "pim": round(_latency("pim", iterations), 2),
                    "islip": round(_latency("islip", iterations), 2),
                }
            )
        print(f"\nAblation: latency vs iteration count (load {LOAD}, n=16)")
        print(format_table(rows))
        return rows

    rows = once(benchmark, report)
    by_iter = {row["iterations"]: row for row in rows}
    log2n = int(math.log2(BENCH_CONFIG.n_ports))

    for name in ("lcf_dist", "pim"):
        # (a) more iterations help a lot initially...
        assert by_iter[1][name] > by_iter[log2n][name]
        # (b) ...but saturate: doubling beyond log2 n buys < 20%.
        assert by_iter[2 * log2n][name] > 0.8 * by_iter[log2n][name]


def test_one_iteration_lcf_beats_one_iteration_pim(benchmark):
    """With a single iteration the least-choice priorities matter most —
    PIM wastes grants on contested inputs, LCF does not."""

    def measure():
        lcf = _latency("lcf_dist", 1)
        pim = _latency("pim", 1)
        print(f"\n1-iteration latency at load {LOAD}: lcf_dist={lcf:.2f} pim={pim:.2f}")
        return lcf, pim

    lcf, pim = once(benchmark, measure)
    assert lcf < pim
