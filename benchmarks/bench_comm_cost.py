"""Experiment sec62: communication cost and time complexity of central
versus distributed scheduling (Section 6.2, Figure 10).

Regenerates the bit-count comparison ``n(n+log2 n+1)`` versus
``i n^2 (2 log2 n + 3)`` over a range of switch widths, and the O(n)
versus O(log2 n) time-step comparison.
"""

from __future__ import annotations

from benchmarks.conftest import once
from repro.analysis.tables import format_table
from repro.hw.comm import central_bits, comm_table, distributed_bits
from repro.hw.timing import (
    central_time_steps,
    distributed_time_steps,
    speedup_distributed_over_central,
)


def test_communication_cost_table(benchmark):
    def report():
        rows = comm_table(iterations=4)
        print("\nSection 6.2: bits exchanged per scheduling cycle (i = 4)")
        print(format_table(rows))
        return rows

    rows = once(benchmark, report)
    by_n = {row["n"]: row for row in rows}
    # The paper's n=16 values.
    assert by_n[16]["central_bits"] == 336
    assert by_n[16]["distributed_bits"] == 11264
    # The distributed scheme is always the more communication-hungry one.
    assert all(row["ratio"] > 1 for row in rows)


def test_speed_comparison_table(benchmark):
    def report():
        rows = []
        for n in (4, 16, 64, 256, 1024):
            rows.append(
                {
                    "n": n,
                    "central_steps (O(n))": central_time_steps(n),
                    "distributed_steps (O(log2 n))": distributed_time_steps(n),
                    "speedup": round(speedup_distributed_over_central(n), 1),
                }
            )
        print("\nSection 6.2: scheduling time steps, central vs distributed")
        print(format_table(rows))
        return rows

    rows = once(benchmark, report)
    speedups = [row["speedup"] for row in rows]
    assert speedups == sorted(speedups)  # the gap widens with n


def test_crossover_never_happens(benchmark):
    """The communication advantage of the central scheduler holds at
    every width — the trade is speed, not bits."""

    def scan():
        return [
            (n, distributed_bits(n, 1) / central_bits(n))
            for n in (2, 4, 8, 16, 64, 256, 1024, 4096)
        ]

    ratios = once(benchmark, scan)
    assert all(ratio > 1.0 for _, ratio in ratios)
