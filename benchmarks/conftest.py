"""Shared benchmark configuration.

The benchmarks serve two purposes:

* **regenerate the paper's tables and figures** — each ``bench_*``
  module prints the reproduced artefact (reduced simulation windows so
  the suite completes in minutes on one core; the full-scale grids live
  in ``examples/figure12_sweep.py``), and
* **measure the implementation** — per-scheduler scheduling throughput,
  which stands in for the paper's execution-time comparison on our
  software substrate.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the printed
reproductions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.config import SimConfig

#: Paper port count with reduced measurement windows for bench speed.
BENCH_CONFIG = SimConfig(
    n_ports=16,
    voq_capacity=256,
    pq_capacity=1000,
    iterations=4,
    warmup_slots=300,
    measure_slots=1500,
    seed=1,
)

#: Reduced load grid preserving the regions Figure 12 cares about:
#: the flat low-load region, the knee, and saturation.
BENCH_LOADS = (0.3, 0.5, 0.7, 0.8, 0.9, 0.95, 1.0)


@pytest.fixture
def bench_config() -> SimConfig:
    return BENCH_CONFIG


@pytest.fixture
def dense_requests() -> np.ndarray:
    """A reproducible 16x16 request matrix at ~50% density."""
    rng = np.random.default_rng(99)
    return rng.random((16, 16)) < 0.5


def once(benchmark, function, *args, **kwargs):
    """Run a reporting function exactly once under the benchmark timer
    (pedantic mode: reporting benches regenerate an artefact, they are
    not micro-benchmarks to be repeated)."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
