"""Scheduler execution speed on the software substrate.

The paper compares hardware scheduling times (Table 2, Section 6.2);
on our Python substrate the equivalent measurement is schedule() calls
per second. The relative picture should echo the asymptotics: the
central LCF's O(n) sequential loop versus the iterative schedulers'
fixed iteration count, the n-scaling of each — and, since the
:mod:`repro.fastpath` layer, the bitset kernels' speedup over their
reference twins.

All timings warm the scheduler up before measuring and report the
median of several rounds (``benchmark.pedantic``) so one-off numpy or
bytecode warmup cost and scheduling noise don't land in the numbers —
the same methodology as :mod:`repro.fastpath.bench`.

Run as a script to (re)generate the committed perf baseline::

    PYTHONPATH=src python benchmarks/bench_scheduler_speed.py BENCH_speed.json

which measures every fastpath kernel against its reference twin at
n in {4, 16, 32, 64, 128, 256} (the widest cells exercise the
multi-word kernel layouts) and writes the JSON report that
``tools/check_bench_regression.py`` gates CI on. The committed
baseline also carries the ``columnar_*`` replicate-batching families —
regenerate those with ``benchmarks/bench_columnar.py`` — and the
``fabric_clos`` family from ``benchmarks/bench_fabric.py``; this
script preserves families it does not measure.
"""

from __future__ import annotations

import sys

import pytest

from repro.baselines.registry import available_schedulers, make_scheduler
from repro.fastpath.bench import (
    DEFAULT_SIZES,
    request_pool,
    run_speed_suite,
    write_report,
)
from repro.fastpath.registry import fast_schedulers, make_fast_scheduler

#: benchmark.pedantic settings: warm up, then median over ROUNDS rounds.
WARMUP_ROUNDS = 3
ROUNDS = 7
ITERATIONS = 25


def _bench_schedule(benchmark, scheduler, matrices):
    """Time schedule() over the cycled matrix pool, warmed up, median-of-k."""
    pool = len(matrices)
    counter = iter(range(10**9))

    def cycle():
        scheduler.schedule(matrices[next(counter) % pool])

    benchmark.pedantic(
        cycle, warmup_rounds=WARMUP_ROUNDS, rounds=ROUNDS, iterations=ITERATIONS
    )


@pytest.mark.parametrize(
    "name",
    [n for n in available_schedulers() if n != "fifo"],
)
def test_schedule_speed_16_ports(benchmark, name):
    """One scheduling cycle at the paper's 16 ports, ~50% density."""
    _bench_schedule(benchmark, make_scheduler(name, 16), request_pool(16))


@pytest.mark.parametrize("name", sorted(fast_schedulers()))
def test_fastpath_speed_16_ports(benchmark, name):
    """The bitset kernels on the same 16-port workload."""
    _bench_schedule(benchmark, make_fast_scheduler(name, 16), request_pool(16))


@pytest.mark.parametrize("n", [4, 16, 64])
def test_lcf_central_scaling(benchmark, n):
    """Central LCF across switch widths (O(n) outputs x O(n) vector ops)."""
    _bench_schedule(benchmark, make_scheduler("lcf_central", n), request_pool(n))


@pytest.mark.parametrize("n", [4, 16, 64])
def test_fast_lcf_central_rr_scaling(benchmark, n):
    """The flagship bitset kernel across switch widths (one word per row)."""
    _bench_schedule(
        benchmark, make_fast_scheduler("lcf_central_rr", n), request_pool(n)
    )


@pytest.mark.parametrize("n", [4, 16, 64])
def test_lcf_dist_scaling(benchmark, n):
    """Distributed LCF across switch widths (4 iterations)."""
    _bench_schedule(benchmark, make_scheduler("lcf_dist", n), request_pool(n))


def test_hopcroft_karp_speed_16_ports(benchmark):
    """Maximum matching — the 'too slow for high-speed networking'
    reference point (Section 1)."""
    from repro.matching.hopcroft_karp import hopcroft_karp

    matrices = request_pool(16)
    counter = iter(range(10**9))

    def cycle():
        hopcroft_karp(matrices[next(counter) % len(matrices)])

    benchmark.pedantic(
        cycle, warmup_rounds=WARMUP_ROUNDS, rounds=ROUNDS, iterations=ITERATIONS
    )


@pytest.mark.parametrize("fast", [False, True], ids=["reference", "fastpath"])
def test_simulator_slot_throughput(benchmark, fast):
    """Simulator hot loop: one slot of the 16-port crossbar at load 0.9."""
    from benchmarks.conftest import BENCH_CONFIG
    from repro.sim.crossbar import InputQueuedSwitch
    from repro.traffic.bernoulli import BernoulliUniform

    factory = make_fast_scheduler if fast else make_scheduler
    switch = InputQueuedSwitch(BENCH_CONFIG, factory("lcf_central", 16))
    pattern = BernoulliUniform(16, 0.9, seed=1)
    slot_counter = iter(range(10**9))

    def one_slot():
        switch.step(next(slot_counter), pattern.arrivals())

    benchmark.pedantic(
        one_slot, warmup_rounds=WARMUP_ROUNDS, rounds=ROUNDS, iterations=ITERATIONS
    )


def main(argv: list[str] | None = None) -> int:
    """Write the fast-vs-reference speed report (the CI perf baseline).

    Families already in the output file that this suite does not
    measure (e.g. ``fabric_clos`` from ``benchmarks/bench_fabric.py``)
    are preserved, so regenerating the kernel cells cannot silently
    drop another suite's baseline.
    """
    import json
    from pathlib import Path

    argv = sys.argv[1:] if argv is None else argv
    out = argv[0] if argv else "BENCH_speed.json"
    report = run_speed_suite(sizes=DEFAULT_SIZES, progress=print)
    out_path = Path(out)
    if out_path.exists():
        previous = json.loads(out_path.read_text()).get("schedulers", {})
        for family, cells in previous.items():
            report["schedulers"].setdefault(family, cells)
    write_report(report, out)
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
