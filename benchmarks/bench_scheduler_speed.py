"""Scheduler execution speed on the software substrate.

The paper compares hardware scheduling times (Table 2, Section 6.2);
on our Python substrate the equivalent measurement is schedule() calls
per second. The relative picture should echo the asymptotics: the
central LCF's O(n) sequential loop versus the iterative schedulers'
fixed iteration count, and the n-scaling of each.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.registry import available_schedulers, make_scheduler


def _requests(n: int, density: float = 0.5, seed: int = 42) -> np.ndarray:
    return np.random.default_rng(seed).random((n, n)) < density


@pytest.mark.parametrize(
    "name",
    [n for n in available_schedulers() if n != "fifo"],
)
def test_schedule_speed_16_ports(benchmark, name):
    """One scheduling cycle at the paper's 16 ports, ~50% density."""
    scheduler = make_scheduler(name, 16)
    requests = _requests(16)
    benchmark(scheduler.schedule, requests)


@pytest.mark.parametrize("n", [4, 16, 64])
def test_lcf_central_scaling(benchmark, n):
    """Central LCF across switch widths (O(n) outputs x O(n) vector ops)."""
    scheduler = make_scheduler("lcf_central", n)
    requests = _requests(n)
    benchmark(scheduler.schedule, requests)


@pytest.mark.parametrize("n", [4, 16, 64])
def test_lcf_dist_scaling(benchmark, n):
    """Distributed LCF across switch widths (4 iterations)."""
    scheduler = make_scheduler("lcf_dist", n)
    requests = _requests(n)
    benchmark(scheduler.schedule, requests)


def test_hopcroft_karp_speed_16_ports(benchmark):
    """Maximum matching — the 'too slow for high-speed networking'
    reference point (Section 1)."""
    from repro.matching.hopcroft_karp import hopcroft_karp

    requests = _requests(16)
    benchmark(hopcroft_karp, requests)


def test_simulator_slot_throughput(benchmark):
    """Simulator hot loop: one slot of the 16-port crossbar at load 0.9."""
    from benchmarks.conftest import BENCH_CONFIG
    from repro.sim.crossbar import InputQueuedSwitch
    from repro.traffic.bernoulli import BernoulliUniform

    switch = InputQueuedSwitch(BENCH_CONFIG, make_scheduler("lcf_central", 16))
    pattern = BernoulliUniform(16, 0.9, seed=1)
    slot_counter = iter(range(10**9))

    def one_slot():
        switch.step(next(slot_counter), pattern.arrivals())

    benchmark(one_slot)
