"""Experiment claim-fair / claim-starve: the Section 3 and Section 7
fairness claims.

* LCF with the round-robin overlay gives a *hard* (not statistical)
  lower bound of ``b/n^2`` per (input, output) pair.
* Pure throughput-maximising scheduling starves: both pure LCF and a
  maximum-size matcher leave a crafted pair unserved indefinitely.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once
from repro.analysis.fairness import (
    adversarial_two_flow_matrix,
    starvation_report,
)
from repro.analysis.tables import format_table
from repro.baselines.islip import ISLIP
from repro.baselines.pim import PIM
from repro.core.lcf_central import LCFCentral, LCFCentralRR
from repro.core.lcf_dist import LCFDistributed, LCFDistributedRR
from repro.matching.hopcroft_karp import hopcroft_karp

N = 16


def test_saturation_fairness_table(benchmark):
    """Minimum per-pair service under a permanently full request matrix
    over exactly n^2 cycles — the period of the RR diagonal."""

    def report():
        schedulers = [
            LCFCentral(N),
            LCFCentralRR(N),
            LCFDistributed(N),
            LCFDistributedRR(N),
            ISLIP(N),
            PIM(N),
        ]
        rows = []
        for scheduler in schedulers:
            result = starvation_report(scheduler)
            rows.append(
                {
                    "scheduler": scheduler.name,
                    "min_rate": round(result.min_rate, 5),
                    "bound (1/n^2)": round(1 / (N * N), 5),
                    "starved_pairs": len(result.starved_pairs),
                    "jain": round(result.jain, 3),
                }
            )
        print(f"\nSaturation fairness over n^2 = {N * N} cycles:")
        print(format_table(rows))
        return {row["scheduler"]: row for row in rows}

    rows = once(benchmark, report)
    # The paper's hard guarantee for the RR variants.
    assert rows["lcf_central_rr"]["min_rate"] >= 1 / (N * N)
    assert rows["lcf_central_rr"]["starved_pairs"] == 0
    assert rows["lcf_dist_rr"]["starved_pairs"] == 0


def test_starvation_demonstration(benchmark):
    """Experiment claim-starve: maximum-size matching (and pure LCF)
    starve a flow that the RR overlay provably serves."""

    def run():
        requests = adversarial_two_flow_matrix(N)
        cycles = N * N

        # Maximum-size matching, deterministic tie-break: same schedule
        # every cycle, so unchosen pairs starve forever.
        max_counts = np.zeros((N, N), dtype=np.int64)
        for _ in range(cycles):
            schedule = hopcroft_karp(requests)
            for i, j in enumerate(schedule):
                if j >= 0:
                    max_counts[i, j] += 1
        max_starved = int((requests & (max_counts == 0)).sum())

        pure = starvation_report(LCFCentral(N), cycles=cycles, requests=requests)
        rr = starvation_report(LCFCentralRR(N), cycles=cycles, requests=requests)

        print(
            f"\nStarved (requested but never served) pairs over {cycles} cycles:\n"
            f"  maximum-size matching: {max_starved}\n"
            f"  lcf_central (pure):    {len(pure.starved_pairs)}\n"
            f"  lcf_central_rr:        {len(rr.starved_pairs)}"
        )
        return max_starved, len(pure.starved_pairs), len(rr.starved_pairs)

    max_starved, pure_starved, rr_starved = once(benchmark, run)
    assert max_starved > 0  # throughput-optimal scheduling starves
    assert pure_starved > 0  # pure LCF starves too
    assert rr_starved == 0  # the RR overlay removes starvation


def test_rr_guarantee_speed(benchmark):
    """Micro-benchmark: one starvation probe (n^2 scheduling cycles)."""
    scheduler = LCFCentralRR(8)
    benchmark(starvation_report, scheduler)
