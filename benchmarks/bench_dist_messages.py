"""Experiment sec62-measured: actual wire traffic of the distributed
scheduler versus the Section 6.2 budget.

The paper's ``i n^2 (2 log2 n + 3)`` counts the *wiring capacity* of
Figure 10b — every pair, every iteration. The message-passing agent
implementation measures what actually crosses the wires per scheduling
cycle as load varies: requests dominate and scale with backlog; grants
and accepts are capped at n per iteration.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import once
from repro.analysis.tables import format_table
from repro.core.lcf_dist_agents import LCFDistributedAgents
from repro.hw.comm import central_bits, distributed_bits

N = 16
ITERATIONS = 4


def test_measured_traffic_vs_budget(benchmark):
    def report():
        rng = np.random.default_rng(7)
        agents = LCFDistributedAgents(N, ITERATIONS)
        budget = distributed_bits(N, ITERATIONS)
        rows = []
        for density in (0.1, 0.3, 0.5, 0.8, 1.0):
            bits_samples = []
            messages = None
            for _ in range(50):
                requests = rng.random((N, N)) < density
                agents.schedule(requests)
                bits_samples.append(agents.last_message_log.total_bits)
                messages = agents.last_message_log
            rows.append(
                {
                    "density": density,
                    "mean_bits": round(float(np.mean(bits_samples)), 1),
                    "budget_bits": budget,
                    "utilisation": f"{np.mean(bits_samples) / budget:.0%}",
                    "req/gnt/acc (last)": (
                        f"{messages.requests}/{messages.grants}/{messages.accepts}"
                    ),
                }
            )
        print(
            f"\nDistributed LCF wire traffic (n={N}, i={ITERATIONS}); "
            f"central scheduler for comparison: {central_bits(N)} bits/cycle"
        )
        print(format_table(rows))
        return rows, budget

    rows, budget = once(benchmark, report)
    means = [row["mean_bits"] for row in rows]
    # Traffic always fits the Section 6.2 budget.
    assert all(m <= budget for m in means)
    # It grows with backlog through the low-to-mid range. (It is NOT
    # monotone to density 1.0: with every nrq equal the pointer ties
    # spread the grants, convergence speeds up, and the request floods
    # stop earlier — the peak sits near density 0.8.)
    assert means[0] < means[1] < means[2] < means[3]
    # Any real backlog outweighs the central scheme's n(n+log2 n+1)
    # bits — the Section 6.2 conclusion.
    assert all(m > central_bits(N) for m in means[1:])


def test_agents_scheduling_speed(benchmark, dense_requests):
    """Micro-benchmark: one agent-based scheduling cycle at n=16."""
    agents = LCFDistributedAgents(16, ITERATIONS)
    benchmark(agents.schedule, dense_requests)
