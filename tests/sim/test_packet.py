"""Packet object."""

import pytest

from repro.sim.packet import Packet


class TestPacket:
    def test_latency_includes_transmission_slot(self):
        packet = Packet(src=0, dst=1, t_generated=10)
        packet.depart(10)
        assert packet.latency == 1

    def test_latency_counts_waiting(self):
        packet = Packet(src=0, dst=1, t_generated=10)
        packet.depart(14)
        assert packet.latency == 5

    def test_latency_before_departure_raises(self):
        packet = Packet(src=0, dst=1, t_generated=10)
        with pytest.raises(ValueError):
            _ = packet.latency

    def test_departure_before_generation_rejected(self):
        packet = Packet(src=0, dst=1, t_generated=10)
        with pytest.raises(ValueError):
            packet.depart(9)

    def test_uids_are_unique(self):
        a = Packet(src=0, dst=0, t_generated=0)
        b = Packet(src=0, dst=0, t_generated=0)
        assert a.uid != b.uid
