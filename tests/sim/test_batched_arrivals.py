"""Batched Bernoulli arrival drawing.

``batch=1`` (the default) must consume the PCG64 stream exactly like
the historical per-slot implementation — golden traces, sweep cache
keys and every seeded experiment depend on it — while larger batches
amortise numpy dispatch over a chunk of slots and are an explicit
opt-in to a different (equally valid) sample path.
"""

import numpy as np
import pytest

from repro.traffic.base import NO_ARRIVAL
from repro.traffic.bernoulli import BernoulliUniform


def legacy_arrivals(n, load, seed, self_traffic, slots):
    """The pre-batching per-slot draw, reproduced verbatim."""
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(slots):
        active = rng.random(n) < load
        dst = rng.integers(0, n, size=n)
        if not self_traffic:
            offsets = rng.integers(1, n, size=n)
            dst = (np.arange(n) + offsets) % n
        out.append(np.where(active, dst, NO_ARRIVAL).astype(np.int64))
    return out


class TestStreamCompatibility:
    @pytest.mark.parametrize("self_traffic", [True, False])
    def test_batch_one_matches_the_legacy_stream(self, self_traffic):
        pattern = BernoulliUniform(8, 0.7, seed=17, self_traffic=self_traffic)
        for expected in legacy_arrivals(8, 0.7, 17, self_traffic, slots=200):
            assert np.array_equal(pattern.arrivals(), expected)

    def test_batch_one_is_the_default(self):
        assert BernoulliUniform(4, 0.5).batch == 1


class TestBatchedDraws:
    def test_chunk_is_served_in_slot_order(self):
        # Each chunk is one (batch, n) draw; slot k of the chunk must be
        # row k, i.e. identical to drawing the same shapes and indexing.
        batched = BernoulliUniform(6, 0.6, seed=4, batch=5)
        rng = np.random.default_rng(4)
        active = rng.random((5, 6)) < 0.6
        dst = rng.integers(0, 6, size=(5, 6))
        expected = np.where(active, dst, NO_ARRIVAL).astype(np.int64)
        for k in range(5):
            assert np.array_equal(batched.arrivals(), expected[k])

    @pytest.mark.parametrize("batch", [1, 3, 16])
    def test_arrivals_are_well_formed(self, batch):
        pattern = BernoulliUniform(5, 0.8, seed=2, batch=batch)
        for _ in range(50):
            arrivals = pattern.arrivals()
            assert arrivals.shape == (5,)
            assert arrivals.dtype == np.int64
            live = arrivals[arrivals != NO_ARRIVAL]
            assert ((live >= 0) & (live < 5)).all()

    def test_no_self_traffic_holds_across_chunks(self):
        pattern = BernoulliUniform(4, 1.0, seed=3, self_traffic=False, batch=8)
        for _ in range(40):
            arrivals = pattern.arrivals()
            assert (arrivals != np.arange(4)).all()

    def test_batched_load_is_statistically_right(self):
        pattern = BernoulliUniform(16, 0.5, seed=0, batch=64)
        live = sum(
            int((pattern.arrivals() != NO_ARRIVAL).sum()) for _ in range(2000)
        )
        assert live / (2000 * 16) == pytest.approx(0.5, abs=0.02)

    def test_reset_discards_the_pending_chunk_and_replays(self):
        pattern = BernoulliUniform(6, 0.7, seed=11, batch=4)
        first = [pattern.arrivals().copy() for _ in range(10)]
        pattern.reset()  # mid-chunk: 10 = 2 chunks + 2 slots
        replay = [pattern.arrivals().copy() for _ in range(10)]
        assert all(np.array_equal(a, b) for a, b in zip(first, replay))

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ValueError):
            BernoulliUniform(4, 0.5, batch=0)
