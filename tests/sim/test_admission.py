"""Admission control: hysteresis shedding at the switch ingress."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import RingTracer
from repro.sim.admission import AdmissionController, make_admission
from repro.sim.config import SimConfig
from repro.sim.simulator import build_switch, run_simulation

OVERLOAD = SimConfig(
    n_ports=4, warmup_slots=0, measure_slots=200,
    voq_capacity=8, pq_capacity=16, seed=41,
)


class TestController:
    def test_hysteresis_band(self):
        ctrl = AdmissionController(low=2, high=5)
        assert not ctrl.shedding
        ctrl.update(4)          # below high: stays off
        assert not ctrl.shedding
        ctrl.update(5)          # reaches high: turns on
        assert ctrl.shedding
        ctrl.update(3)          # inside the band: stays ON (hysteresis)
        assert ctrl.shedding
        ctrl.update(2)          # drains to low: turns off
        assert not ctrl.shedding
        ctrl.update(4)          # inside the band: stays OFF
        assert not ctrl.shedding
        assert ctrl.transitions == 2

    def test_degenerate_band_flaps(self):
        # low == high collapses the hysteresis to a single threshold.
        ctrl = AdmissionController(low=3, high=3)
        for occupancy in (3, 2, 3, 2):
            ctrl.update(occupancy)
        assert ctrl.transitions == 4

    def test_shed_accounting_and_events(self):
        ctrl = AdmissionController(low=0, high=1)
        tracer = RingTracer(16)
        metrics = MetricsRegistry()
        ctrl.bind(tracer=tracer, metrics=metrics)
        ctrl.update(1)
        ctrl.shed(slot=7, input=2, output=3)
        assert ctrl.shed_packets == 1
        event = list(tracer.events)[-1]
        assert event["type"] == "admission_drop"
        assert (event["slot"], event["input"], event["output"]) == (7, 2, 3)
        assert metrics.counter("shed_packets").value == 1
        assert metrics.gauge("admission_state").value == 1

    @pytest.mark.parametrize("low,high", [(-1, 5), (6, 5)])
    def test_bad_watermarks_rejected(self, low, high):
        with pytest.raises(ValueError):
            AdmissionController(low, high)


class TestMakeAdmission:
    def test_none_passthrough(self):
        assert make_admission(None) is None

    def test_instance_passthrough(self):
        ctrl = AdmissionController(1, 2)
        assert make_admission(ctrl) is ctrl

    def test_pair_and_dict_forms(self):
        for spec in ((50, 100), [50, 100], {"low": 50, "high": 100}):
            ctrl = make_admission(spec)
            assert (ctrl.low, ctrl.high) == (50, 100)


class TestSimulationIntegration:
    def test_sheds_under_overload(self):
        result = run_simulation(OVERLOAD, "lcf_central_rr", 1.0, admission=(10, 30))
        assert result.shed > 0
        # Shed packets count toward offered, not toward PQ drops.
        assert result.offered >= result.forwarded + result.dropped + result.shed

    def test_no_shedding_at_moderate_load(self):
        config = SimConfig(n_ports=4, warmup_slots=10, measure_slots=200, seed=42)
        result = run_simulation(config, "lcf_central_rr", 0.5, admission=(50, 100))
        assert result.shed == 0

    def test_without_admission_shed_is_zero(self):
        result = run_simulation(OVERLOAD, "lcf_central_rr", 1.0)
        assert result.shed == 0

    def test_fast_matches_reference_with_admission(self):
        # Admission disables the fastpath slot kernel; both layers must
        # still agree bit for bit.
        kwargs = dict(admission=(10, 30))
        reference = run_simulation(OVERLOAD, "lcf_central_rr", 1.0, **kwargs)
        fast = run_simulation(OVERLOAD, "lcf_central_rr", 1.0, fast=True, **kwargs)
        assert fast.row() == reference.row()
        assert fast.shed == reference.shed > 0

    def test_admission_drop_events_traced(self):
        tracer = RingTracer(1 << 16)
        result = run_simulation(
            OVERLOAD, "lcf_central_rr", 1.0, admission=(10, 30), tracer=tracer
        )
        drops = [e for e in tracer.events if e["type"] == "admission_drop"]
        assert len(drops) == result.shed > 0

    def test_metrics_track_shedding(self):
        metrics = MetricsRegistry()
        result = run_simulation(
            OVERLOAD, "lcf_central_rr", 1.0, admission=(10, 30), metrics=metrics
        )
        assert metrics.counter("shed_packets").value == result.shed > 0

    def test_shed_in_result_row(self):
        result = run_simulation(OVERLOAD, "lcf_central_rr", 1.0, admission=(10, 30))
        assert result.row()["shed"] == result.shed

    @pytest.mark.parametrize("name", ["fifo", "outbuf"])
    def test_dedicated_models_reject_admission(self, name):
        with pytest.raises(ValueError, match="admission"):
            build_switch(OVERLOAD, name, 0.9, admission=make_admission((1, 2)))
