"""Multicast switch simulator."""

import pytest

from repro.core.multicast import MulticastCell
from repro.sim.multicast_switch import MulticastSwitch, MulticastTraffic, run_multicast


class TestTraffic:
    def test_load_controls_arrivals(self):
        traffic = MulticastTraffic(8, 0.0, seed=1)
        assert all(c is None for c in traffic.arrivals(0))
        traffic = MulticastTraffic(8, 1.0, seed=1)
        assert all(c is not None for c in traffic.arrivals(0))

    def test_fanout_bounds(self):
        traffic = MulticastTraffic(8, 1.0, max_fanout=3, seed=2)
        for slot in range(20):
            for cell in traffic.arrivals(slot):
                assert 1 <= len(cell.fanout) <= 3

    def test_invalid_fanout_rejected(self):
        with pytest.raises(ValueError):
            MulticastTraffic(4, 0.5, max_fanout=5)


class TestSwitch:
    def test_unicast_cell_completes_in_one_slot(self):
        switch = MulticastSwitch(4)
        switch.measuring = True
        arrivals = [None] * 4
        arrivals[0] = MulticastCell(0, {2}, 0)
        switch.step(0, arrivals)
        assert switch.cells_completed == 1
        assert switch.completion_latency.mean == 1.0

    def test_wide_fanout_completes_in_one_slot_uncontended(self):
        switch = MulticastSwitch(4)
        switch.measuring = True
        arrivals = [None] * 4
        arrivals[0] = MulticastCell(0, {0, 1, 2, 3}, 0)
        switch.step(0, arrivals)
        assert switch.cells_completed == 1
        assert switch.copies_delivered == 4

    def test_contention_splits_fanout_across_slots(self):
        switch = MulticastSwitch(4)
        switch.measuring = True
        arrivals = [
            MulticastCell(0, {1, 2}, 0),
            MulticastCell(1, {1, 2}, 0),
            None,
            None,
        ]
        switch.step(0, arrivals)
        # Output 1 and 2 each picked one input; nobody finished unless
        # one input won both.
        switch.step(1, [None] * 4)
        assert switch.cells_completed >= 1
        switch.step(2, [None] * 4)
        assert switch.cells_completed == 2
        assert switch.copies_delivered == 4

    def test_conservation(self):
        switch = run_multicast(n=8, load=0.3, warmup_slots=0, measure_slots=500)
        assert (
            switch.cells_offered
            == switch.cells_completed + switch.total_queued() + switch.dropped
        )


class TestPolicyComparison:
    def test_least_residue_beats_random(self):
        """The LCF-style residue rule must finish cells faster than
        uniform random granting under contention."""
        lcf = run_multicast(n=16, load=0.25, policy="lcf", seed=4)
        rnd = run_multicast(n=16, load=0.25, policy="random", seed=4)
        assert lcf.completion_latency.mean < rnd.completion_latency.mean

    def test_both_policies_deliver(self):
        for policy in ("lcf", "random"):
            switch = run_multicast(n=8, load=0.2, policy=policy,
                                   warmup_slots=200, measure_slots=1000)
            assert switch.cells_completed > 0
